//! # maritime — maritime data integration and analysis
//!
//! A Rust reproduction of the system envisioned in *Claramunt et al.,
//! "Maritime Data Integration and Analysis: Recent Progress and Research
//! Challenges", EDBT 2017* (the datAcron architecture paper).
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`geo`] | `mda-geo` | geospatial/kinematic substrate |
//! | [`ais`] | `mda-ais` | AIS data model + AIVDM codec |
//! | [`sim`] | `mda-sim` | maritime world simulator (data substitution) |
//! | [`stream`] | `mda-stream` | event-time stream processing |
//! | [`synopses`] | `mda-synopses` | trajectory compression |
//! | [`track`] | `mda-track` | multi-source fusion & tracking |
//! | [`uncertainty`] | `mda-uncertainty` | probability/evidence/possibility |
//! | [`events`] | `mda-events` | complex event recognition |
//! | [`semantics`] | `mda-semantics` | triple store, link discovery |
//! | [`store`] | `mda-store` | archival store, kNN over moving objects |
//! | [`forecast`] | `mda-forecast` | trajectory prediction & normalcy |
//! | [`viz`] | `mda-viz` | density rasters, pyramids, flows |
//! | [`core`] | `mda-core` | the integrated Figure-2 pipeline |
//! | [`serve`] | `mda-serve` | network serving front over the query service |
//!
//! ## Quickstart: ingest *and* query
//!
//! The pipeline is a single-writer ingest loop; its
//! [`query_service`](mda_core::MaritimePipeline::query_service) hands
//! out cloneable, thread-safe read handles that answer from consistent
//! watermark-stamped snapshots — during ingest or after it.
//!
//! ```
//! use maritime::core::{MaritimePipeline, PipelineConfig};
//! use maritime::geo::{time::MINUTE, Position};
//! use maritime::sim::{Scenario, ScenarioConfig};
//!
//! // Simulate an hour of a small fleet and run the full pipeline.
//! let sim = Scenario::generate(ScenarioConfig::regional(1, 5, 60 * MINUTE));
//! let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(sim.world.bounds))
//!     .with_weather(sim.weather.clone());
//! let service = pipeline.query_service(); // Clone + Send + Sync
//! let events = pipeline.run_scenario(&sim);
//!
//! // Query the served picture: all answers are watermark-stamped.
//! let snap = service.snapshot();
//! let wm = snap.watermark();
//! let near = snap.knn(Position::new(43.0, 5.0), wm, 3).value;
//! let fleet = snap.fleet();
//! println!(
//!     "{} events, {} archived vessels, {} vessels near Marseille",
//!     events.len(),
//!     fleet.archived_vessels,
//!     near.len()
//! );
//! # assert!(fleet.archived_vessels > 0);
//! ```

pub use mda_ais as ais;
pub use mda_core as core;
pub use mda_events as events;
pub use mda_forecast as forecast;
pub use mda_geo as geo;
pub use mda_semantics as semantics;
pub use mda_serve as serve;
pub use mda_sim as sim;
pub use mda_store as store;
pub use mda_stream as stream;
pub use mda_synopses as synopses;
pub use mda_track as track;
pub use mda_uncertainty as uncertainty;
pub use mda_viz as viz;

/// Convert the simulator's world zones into event-engine zones —
/// the small glue examples and tests need constantly.
pub fn zones_of_world(world: &sim::World) -> Vec<events::NamedZone> {
    world
        .zones
        .iter()
        .map(|z| events::NamedZone {
            name: z.name.clone(),
            area: z.area.clone(),
            protected: z.kind == sim::ZoneKind::ProtectedArea,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let p = crate::geo::Position::new(43.0, 5.0);
        assert!(p.is_valid());
        let world = crate::sim::World::gulf_of_lion();
        let zones = crate::zones_of_world(&world);
        assert_eq!(zones.len(), world.zones.len());
        assert!(zones.iter().any(|z| z.protected));
    }
}
