//! Quickstart: simulate a small fleet, run the integrated pipeline,
//! triage the events, print the operator picture.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use maritime::core::decision::{DecisionConfig, DecisionSupport, OperatorPicture};
use maritime::core::{MaritimePipeline, PipelineConfig};
use maritime::geo::time::HOUR;
use maritime::sim::{Scenario, ScenarioConfig};

fn main() {
    // 1. A reproducible scenario: 30 vessels, 3 hours, the paper's
    //    deception rates (27% dark ships, 5% static errors, spoofers).
    let sim = Scenario::generate(ScenarioConfig::regional(2024, 30, 3 * HOUR));
    println!(
        "scenario: {} vessels, {} AIS msgs, {} radar plots, {} VMS reports",
        sim.vessels.len(),
        sim.ais.len(),
        sim.radar.len(),
        sim.vms.len()
    );

    // 2. The integrated pipeline (Figure 2 of the paper), with the
    //    world's zones installed and the weather field attached.
    let mut config = PipelineConfig::regional(sim.world.bounds);
    config.events.zones = maritime::zones_of_world(&sim.world);
    let mut pipeline = MaritimePipeline::new(config).with_weather(sim.weather.clone());

    // 3. Run everything in arrival order.
    let events = pipeline.run_scenario(&sim);
    println!("\nrecognised {} raw events", events.len());

    // 4. Decision support: filter, deduplicate, explain.
    let mut triage = DecisionSupport::new(DecisionConfig::default());
    let alerts: Vec<_> = events.iter().filter_map(|e| triage.triage(e)).collect();
    println!("triaged to {} operator alerts:\n", alerts.len());
    for alert in alerts.iter().take(10) {
        println!("  {} {}", alert.confidence, alert.explanation);
    }
    if alerts.len() > 10 {
        println!("  ... and {} more", alerts.len() - 10);
    }

    // 5. The operator picture.
    let picture = OperatorPicture::assemble(&pipeline, &alerts);
    println!("\n{}", picture.render());

    // 6. What the archive kept.
    let report = pipeline.report();
    println!(
        "ingest: {} AIS ({} static, {:.1}% flagged), synopsis compression {:.1}%",
        report.ais_messages,
        report.static_messages,
        report.static_error_rate() * 100.0,
        pipeline.compression_ratio() * 100.0
    );
}
