//! Collision watch: CPA/TCPA screening and trajectory forecasting.
//!
//! Builds a deliberate crossing situation, screens it with the
//! collision detector, and shows how the three predictors of the
//! forecasting layer diverge with horizon.
//!
//! ```sh
//! cargo run --release --example collision_watch
//! ```

use maritime::events::engine::{EngineConfig, EventEngine};
use maritime::events::EventKind;
use maritime::forecast::{ConstantTurnPredictor, DeadReckoningPredictor, Predictor};
use maritime::geo::distance::haversine_m;
use maritime::geo::motion::cpa;
use maritime::geo::time::MINUTE;
use maritime::geo::{Fix, Position, Timestamp};

fn main() {
    // --- a crossing situation -----------------------------------------
    // Ferry northbound at 18 kn; tanker eastbound at 12 kn, on course to
    // pass very close in ~25 minutes.
    let ferry0 = Fix::new(1, Timestamp::from_mins(0), Position::new(42.90, 5.10), 18.0, 0.0);
    let cross = ferry0.dead_reckon(Timestamp::from_mins(25));
    // Place the tanker so it reaches the same point at the same time.
    let tanker_speed = 12.0;
    let dist = maritime::geo::units::knots_to_mps(tanker_speed) * 25.0 * 60.0;
    let tanker_start = maritime::geo::distance::destination(cross, 270.0, dist);
    let tanker0 = Fix::new(2, Timestamp::from_mins(0), tanker_start, tanker_speed, 90.0);

    let r = cpa(&ferry0, &tanker0);
    println!(
        "analytic CPA: {:.0} m in {:.1} min (collision-course geometry)",
        r.dcpa_m,
        r.tcpa_s / 60.0
    );

    // --- streaming screening -------------------------------------------
    // Pairwise analytics are watermark-swept: feed each minute's fixes
    // as a batch, then tick the engine at that minute boundary.
    let mut engine = EventEngine::new(EngineConfig::default());
    let mut alerts = Vec::new();
    for minute in 0..30 {
        let t = Timestamp::from_mins(minute);
        let batch: Vec<Fix> = [&ferry0, &tanker0]
            .into_iter()
            .map(|base| Fix { t, pos: base.dead_reckon(t), ..*base })
            .collect();
        engine.observe_batch(&batch);
        alerts.extend(
            engine
                .tick(t)
                .into_iter()
                .filter(|e| matches!(e.kind, EventKind::CollisionRisk { .. })),
        );
    }
    println!("\nstreaming screening raised {} collision alert(s):", alerts.len());
    for a in &alerts {
        if let EventKind::CollisionRisk { other, dcpa_m, tcpa_s } = &a.kind {
            println!(
                "  t={} vessel {} vs {}: projected {:.0} m in {:.0} min",
                a.t,
                a.vessel,
                other,
                dcpa_m,
                tcpa_s / 60.0
            );
        }
    }

    // --- forecasting divergence -----------------------------------------
    // A vessel in a steady turn: dead reckoning vs constant-turn.
    println!("\nforecast error vs horizon for a turning vessel (0.3°/s starboard):");
    let mut history = Vec::new();
    let mut pos = Position::new(43.0, 4.5);
    let mut cog = 0.0f64;
    let speed = 14.0;
    for i in 0..10 {
        history.push(Fix::new(3, Timestamp::from_secs(i * 60), pos, speed, cog));
        pos = maritime::geo::distance::destination(
            pos,
            cog,
            maritime::geo::units::knots_to_mps(speed) * 60.0,
        );
        cog = maritime::geo::units::norm_deg_360(cog + 0.3 * 60.0);
    }
    let last = *history.last().unwrap();
    println!("  {:>8} {:>14} {:>14}", "horizon", "dead-reckon", "constant-turn");
    for horizon_min in [5i64, 10, 20] {
        let at = last.t + horizon_min * MINUTE;
        // Ground truth continues the turn.
        let (mut tp, mut tc) = (last.pos, last.cog_deg);
        for _ in 0..horizon_min {
            tp = maritime::geo::distance::destination(
                tp,
                tc,
                maritime::geo::units::knots_to_mps(speed) * 60.0,
            );
            tc = maritime::geo::units::norm_deg_360(tc + 0.3 * 60.0);
        }
        let dr = DeadReckoningPredictor.predict(&history, at).unwrap();
        let ct = ConstantTurnPredictor::default().predict(&history, at).unwrap();
        println!(
            "  {horizon_min:>5} min {:>11.0} m {:>11.0} m",
            haversine_m(dr, tp),
            haversine_m(ct, tp)
        );
    }
    println!("\n(the route-network predictor needs learned traffic — see the c6 bench)");
}
