//! Port surveillance: zone analytics, flows, kNN and semantic queries
//! around Marseille.
//!
//! ```sh
//! cargo run --release --example port_surveillance
//! ```

use maritime::core::{MaritimePipeline, PipelineConfig};
use maritime::events::EventKind;
use maritime::geo::time::HOUR;
use maritime::geo::Position;
use maritime::semantics::query::{Pattern, QueryTerm};
use maritime::sim::{Scenario, ScenarioConfig};
use maritime::viz::FlowMatrix;

fn main() {
    let sim = Scenario::generate(ScenarioConfig::regional(11, 40, 5 * HOUR));
    let mut config = PipelineConfig::regional(sim.world.bounds);
    config.events.zones = maritime::zones_of_world(&sim.world);
    let mut pipeline = MaritimePipeline::new(config).with_weather(sim.weather.clone());
    let events = pipeline.run_scenario(&sim);

    // --- zone activity -------------------------------------------------
    println!("zone activity around Marseille:");
    for zone in ["MARSEILLE-APPROACH", "MARSEILLE-ANCHORAGE", "CALANQUES-RESERVE"] {
        let entries = events
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::ZoneEntry { zone: z } if z == zone))
            .count();
        let exits = events
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::ZoneExit { zone: z, .. } if z == zone))
            .count();
        println!("  {zone}: {entries} entries, {exits} exits");
    }
    let poaching =
        events.iter().filter(|e| matches!(e.kind, EventKind::IllegalFishing { .. })).count();
    println!("  illegal-fishing alerts in the reserve: {poaching}");

    // --- port-to-port flows ---------------------------------------------
    let regions: Vec<(String, maritime::geo::Polygon)> = sim
        .world
        .ports
        .iter()
        .map(|p| (p.name.clone(), maritime::geo::Polygon::circle(p.pos, 8_000.0)))
        .collect();
    let mut flows = FlowMatrix::new(regions);
    for (id, fixes) in &sim.truth {
        for f in fixes.iter().step_by(30) {
            flows.observe(*id, f.pos);
        }
    }
    println!("\nheaviest port-to-port flows:");
    for (from, to, n) in flows.top_flows().into_iter().take(5) {
        println!("  {from} -> {to}: {n} voyages");
    }

    // --- who is near the approach right now? ----------------------------
    let marseille = Position::new(43.28, 5.33);
    let now = pipeline.watermark();
    println!("\nclosest 5 vessels to Marseille at {now}:");
    for r in pipeline.knn(marseille, now, 5) {
        println!("  vessel {} at {:.1} km", r.id, r.dist_m / 1_000.0);
    }

    // --- a semantic query over the knowledge graph ----------------------
    // "Which vessels were observed at fishing speed inside the reserve?"
    let (graph, interner) = pipeline.graph();
    let (Some(in_zone), Some(reserve), Some(state), Some(fishing)) = (
        interner.get(":inZone"),
        interner.get(":zone/CALANQUES-RESERVE"),
        interner.get(":movingState"),
        interner.get(":fishingSpeed"),
    ) else {
        println!("\n(no reserve activity recorded in the graph)");
        return;
    };
    let q = Pattern::new()
        .with(QueryTerm::var("v"), QueryTerm::Const(in_zone), QueryTerm::Const(reserve))
        .with(QueryTerm::var("v"), QueryTerm::Const(state), QueryTerm::Const(fishing));
    let solutions = q.solve(graph);
    println!(
        "\nknowledge graph: {} triples; vessels at fishing speed inside the reserve:",
        graph.len()
    );
    for s in &solutions {
        println!("  {}", interner.name(s["v"]).unwrap_or("?"));
    }
    if solutions.is_empty() {
        println!("  (none — the reserve stayed clean this run)");
    }
}
