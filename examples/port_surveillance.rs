//! Port surveillance: zone analytics, flows, kNN, predictive and
//! semantic queries around Marseille — with the live queries served by
//! a `QueryService` *while the pipeline ingests*.
//!
//! ```sh
//! cargo run --release --example port_surveillance
//! ```

use maritime::core::{MaritimePipeline, PipelineConfig};
use maritime::events::{EventCursor, EventKind, Severity};
use maritime::geo::time::{HOUR, MINUTE};
use maritime::geo::{Position, Timestamp};
use maritime::semantics::query::{Pattern, QueryTerm};
use maritime::sim::{Scenario, ScenarioConfig};
use maritime::stream::runner::run_with_readers;
use maritime::viz::FlowMatrix;
use std::sync::atomic::Ordering;

fn main() {
    let sim = Scenario::generate(ScenarioConfig::regional(11, 40, 5 * HOUR));
    let mut config = PipelineConfig::regional(sim.world.bounds);
    config.events.zones = maritime::zones_of_world(&sim.world);
    let mut pipeline = MaritimePipeline::new(config).with_weather(sim.weather.clone());

    // Ingest runs on the writer thread while a watch console follows
    // along live on a reader thread: the QueryService serves
    // watermark-stamped snapshots and event cursors during ingest.
    let service = pipeline.query_service();
    let (events, watch) = run_with_readers(
        || pipeline.run_scenario(&sim),
        1,
        |_, running| {
            let service = service.clone();
            let mut cursor = EventCursor::default();
            let (mut stamps, mut alerts) = (0u64, 0u64);
            let mut last = Timestamp::MIN;
            loop {
                let done = !running.load(Ordering::Acquire);
                let wm = service.watermark();
                if wm > last {
                    last = wm;
                    stamps += 1;
                }
                let poll = service.poll_since(cursor);
                cursor = poll.cursor;
                alerts +=
                    poll.events.iter().filter(|e| e.severity() == Severity::Alert).count() as u64;
                if done {
                    return (stamps, alerts);
                }
                std::thread::yield_now();
            }
        },
    );
    let (stamps, live_alerts) = watch[0];
    // The alert total is deterministic (the final poll drains the
    // ring); how many snapshot generations the reader happened to
    // observe is scheduling-dependent, so it goes to stderr to keep
    // stdout byte-identical across runs.
    println!("live watch during ingest: {live_alerts} alert-severity events streamed by cursor");
    eprintln!("(watch thread observed {stamps} snapshot generations while ingest ran)");

    // --- zone activity -------------------------------------------------
    println!("zone activity around Marseille:");
    for zone in ["MARSEILLE-APPROACH", "MARSEILLE-ANCHORAGE", "CALANQUES-RESERVE"] {
        let entries = events
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::ZoneEntry { zone: z } if z == zone))
            .count();
        let exits = events
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::ZoneExit { zone: z, .. } if z == zone))
            .count();
        println!("  {zone}: {entries} entries, {exits} exits");
    }
    let poaching =
        events.iter().filter(|e| matches!(e.kind, EventKind::IllegalFishing { .. })).count();
    println!("  illegal-fishing alerts in the reserve: {poaching}");

    // --- port-to-port flows ---------------------------------------------
    let regions: Vec<(String, maritime::geo::Polygon)> = sim
        .world
        .ports
        .iter()
        .map(|p| (p.name.clone(), maritime::geo::Polygon::circle(p.pos, 8_000.0)))
        .collect();
    let mut flows = FlowMatrix::new(regions);
    for (id, fixes) in &sim.truth {
        for f in fixes.iter().step_by(30) {
            flows.observe(*id, f.pos);
        }
    }
    println!("\nheaviest port-to-port flows:");
    for (from, to, n) in flows.top_flows().into_iter().take(5) {
        println!("  {from} -> {to}: {n} voyages");
    }

    // --- who is near the approach right now, and where next? ------------
    // Served from one pinned snapshot: every answer below is consistent
    // at the same watermark.
    let marseille = Position::new(43.28, 5.33);
    let snap = service.snapshot();
    let now = snap.watermark();
    println!("\nclosest 5 vessels to Marseille at {now}:");
    let near = snap.knn(marseille, now, 5).value;
    for r in &near {
        println!("  vessel {} at {:.1} km", r.id, r.dist_m / 1_000.0);
    }
    if let Some(nearest) = near.first() {
        if let Some(next) = snap.where_at(nearest.id, now + 20 * MINUTE).value {
            println!("  vessel {} in 20 min ({}): {}", nearest.id, next.predictor, next.pos);
        }
        if let Some(eta) = snap.eta(nearest.id, marseille).value.and_then(|e| e.best()) {
            println!(
                "  eta of vessel {} to the approach: {:.0} min",
                nearest.id,
                eta as f64 / 60_000.0
            );
        }
    }

    // --- a semantic query over the knowledge graph ----------------------
    // "Which vessels were observed at fishing speed inside the reserve?"
    let (graph, interner) = pipeline.graph();
    let (Some(in_zone), Some(reserve), Some(state), Some(fishing)) = (
        interner.get(":inZone"),
        interner.get(":zone/CALANQUES-RESERVE"),
        interner.get(":movingState"),
        interner.get(":fishingSpeed"),
    ) else {
        println!("\n(no reserve activity recorded in the graph)");
        return;
    };
    let q = Pattern::new()
        .with(QueryTerm::var("v"), QueryTerm::Const(in_zone), QueryTerm::Const(reserve))
        .with(QueryTerm::var("v"), QueryTerm::Const(state), QueryTerm::Const(fishing));
    let solutions = q.solve(graph);
    println!(
        "\nknowledge graph: {} triples; vessels at fishing speed inside the reserve:",
        graph.len()
    );
    for s in &solutions {
        println!("  {}", interner.name(s["v"]).unwrap_or("?"));
    }
    if solutions.is_empty() {
        println!("  (none — the reserve stayed clean this run)");
    }
}
