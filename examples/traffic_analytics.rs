//! Historical traffic analytics: density maps, synopses, drill-down.
//!
//! The archival / visual-analytics half of the paper: compress a day of
//! traffic into synopses, render the density picture as ASCII, drill
//! into it with an aggregation pyramid, and show the reconstruction
//! error the compression cost.
//!
//! ```sh
//! cargo run --release --example traffic_analytics
//! ```

use maritime::geo::time::HOUR;
use maritime::geo::BoundingBox;
use maritime::sim::{Scenario, ScenarioConfig};
use maritime::synopses::compress::{compress_trajectory, ThresholdConfig};
use maritime::synopses::error::{compression_ratio, reconstruction_error};
use maritime::viz::pyramid::AggregationPyramid;
use maritime::viz::raster::DensityRaster;
use maritime::viz::render::render_ascii;

fn main() {
    // A day of honest traffic (ground truth: what the paper calls
    // archival data).
    let sim = Scenario::generate(ScenarioConfig::regional_honest(5, 40, 12 * HOUR));
    let total: usize = sim.truth.values().map(Vec::len).sum();
    println!("archive: {} vessels, {} raw fixes", sim.truth.len(), total);

    // --- density picture -------------------------------------------------
    let mut raster = DensityRaster::new(sim.world.bounds, 24, 48);
    for fixes in sim.truth.values() {
        for f in fixes.iter().step_by(6) {
            raster.add(f.pos);
        }
    }
    println!("\ntraffic density (Gulf of Lion, north up):\n{}", render_ascii(&raster));

    // --- synopses: the 95% claim -----------------------------------------
    println!("synopsis compression at three tolerances:");
    println!("  {:>10} {:>12} {:>12} {:>12}", "tolerance", "ratio", "mean err", "max err");
    for tol in [50.0, 100.0, 250.0] {
        let cfg = ThresholdConfig { tolerance_m: tol, ..Default::default() };
        let mut kept_total = 0usize;
        let mut errs = Vec::new();
        for fixes in sim.truth.values() {
            let kept = compress_trajectory(fixes, cfg);
            kept_total += kept.len();
            errs.push(reconstruction_error(fixes, &kept));
        }
        let ratio = compression_ratio(total, kept_total);
        let mean = errs.iter().map(|e| e.mean_m).sum::<f64>() / errs.len() as f64;
        let max = errs.iter().map(|e| e.max_m).fold(0.0f64, f64::max);
        println!("  {tol:>8} m {:>11.1}% {mean:>10.1} m {max:>10.1} m", ratio * 100.0);
    }

    // --- multi-resolution drill-down --------------------------------------
    let mut base = DensityRaster::new(sim.world.bounds, 64, 64);
    for fixes in sim.truth.values() {
        for f in fixes.iter().step_by(6) {
            base.add(f.pos);
        }
    }
    let pyramid = AggregationPyramid::from_base(base);
    let marseille_box = BoundingBox::new(43.1, 5.1, 43.5, 5.6);
    println!("\ndrill-down on the Marseille approaches:");
    for level in (0..pyramid.level_count()).rev() {
        let (r, c) = pyramid.level(level).shape();
        println!(
            "  level {level} ({r:>2}x{c:<2}): {:>8} observations in the window",
            pyramid.region_sum(level, &marseille_box)
        );
    }
}
