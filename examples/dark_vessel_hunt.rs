//! Dark-vessel hunting: gaps, spoofing, identity fraud, and open-world
//! querying.
//!
//! Reproduces the §4 scenario of the paper: 27% of ships go dark, AIS
//! data is spoofed and cloned, and a closed-world query over the AIS
//! database misses what an open-world one keeps possible. Radar keeps
//! dark vessels under track because it is non-cooperative.
//!
//! ```sh
//! cargo run --release --example dark_vessel_hunt
//! ```

use maritime::core::{MaritimePipeline, PipelineConfig};
use maritime::events::EventKind;
use maritime::geo::time::HOUR;
use maritime::sim::corruption::CorruptionLabel;
use maritime::sim::{Scenario, ScenarioConfig};
use maritime::uncertainty::OpenWorldRelation;

fn main() {
    let sim = Scenario::generate(ScenarioConfig::regional(7, 60, 4 * HOUR));
    let truly_dark = sim.dark_episodes.len();
    let truly_spoofing = sim.spoof_episodes.len();
    let truly_fraudulent = sim.fraud_episodes.len();
    println!(
        "ground truth: {truly_dark} dark ships, {truly_spoofing} spoofers, \
         {truly_fraudulent} identity thieves (of {} vessels)",
        sim.vessels.len()
    );

    let mut config = PipelineConfig::regional(sim.world.bounds);
    config.events.zones = maritime::zones_of_world(&sim.world);
    let mut pipeline = MaritimePipeline::new(config).with_weather(sim.weather.clone());
    let events = pipeline.run_scenario(&sim);

    // --- detection vs ground truth -----------------------------------
    let mut flagged_dark: Vec<u32> =
        events.iter().filter(|e| matches!(e.kind, EventKind::GapStart)).map(|e| e.vessel).collect();
    flagged_dark.sort_unstable();
    flagged_dark.dedup();
    let hits = flagged_dark.iter().filter(|v| sim.dark_episodes.contains_key(v)).count();
    println!(
        "\ngap detection: flagged {} vessels, {} truly dark (recall {:.0}%)",
        flagged_dark.len(),
        hits,
        100.0 * hits as f64 / truly_dark.max(1) as f64
    );

    let spoof_vessels: std::collections::HashSet<u32> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::KinematicSpoofing { .. }))
        .map(|e| e.vessel)
        .collect();
    let conflict_vessels: std::collections::HashSet<u32> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::IdentityConflict { .. }))
        .map(|e| e.vessel)
        .collect();
    println!(
        "veracity: {} identities with spoofing alerts, {} with identity conflicts",
        spoof_vessels.len(),
        conflict_vessels.len()
    );

    // Radar kept dark vessels in the fused picture.
    let (live, confirmed, _) = pipeline.fuser().stats();
    println!("fusion: {live} live tracks ({confirmed} confirmed) despite dark episodes");

    // --- open-world vs closed-world (§4) ------------------------------
    // The motivating query: "did any rendezvous happen *while a vessel
    // was dark*?" AIS-based recognition cannot observe those (both
    // parties must transmit), so the closed world says 'no' by
    // construction. The open-world relation budgets the dark exposure
    // and keeps the possibility alive.
    let mut relation: OpenWorldRelation<(u32, u32, bool)> =
        OpenWorldRelation::new(flagged_dark.len() as f64 * 0.2);
    for e in &events {
        if let EventKind::Rendezvous { other, .. } = e.kind {
            let during_dark = [e.vessel, other].iter().any(|v| {
                sim.dark_episodes
                    .get(v)
                    .map(|eps| eps.iter().any(|ep| ep.contains(e.t)))
                    .unwrap_or(false)
            });
            relation.insert((e.vessel, other, during_dark), 0.8);
        }
    }
    let closed = relation.exists_closed(|t| t.2);
    let open = relation.exists_open(|t| t.2, 0.3);
    println!(
        "\nrendezvous-while-dark query: closed-world P = {closed:.2}; \
         open-world P ∈ {open}\n(what went unobserved while dark remains possible)"
    );

    // Corruption labels the receiver actually saw (for context).
    let labels = |l: CorruptionLabel| sim.ais.iter().filter(|o| o.label == l).count();
    println!(
        "\nAIS stream composition: {} clean, {} static-error, {} spoofed, {} fraudulent",
        labels(CorruptionLabel::Clean),
        labels(CorruptionLabel::StaticError),
        labels(CorruptionLabel::Spoofed),
        labels(CorruptionLabel::IdentityFraud),
    );
}
