//! The serving layer's isolation contract, held against a
//! single-threaded oracle.
//!
//! Two properties are enforced:
//!
//! 1. **Oracle equivalence** — every answer a [`QueryService`] gives at
//!    watermark `W` equals the answer of a single-threaded oracle
//!    evaluated at the same watermark. The oracle is a fresh pipeline
//!    run over the arrival stream *truncated to event time ≤ W*: with
//!    lossless sealing and a disorder tolerance wide enough that
//!    nothing is ever dropped late (both asserted), the system state at
//!    a published boundary is a pure function of the event-time stream
//!    up to it, so the truncated run reproduces it exactly.
//! 2. **Concurrent stress** — one ingest writer and N reader threads
//!    over a full simulated scenario: every reader's observed
//!    watermarks are monotone, recorded answers match the oracle at
//!    their stamp, and a cursor-polling subscriber reassembles exactly
//!    the event stream the writer emitted.
//!
//! Both are also enforced for the multi-writer frontend: at 1/2/4/8
//! writer lanes the published stamp sequence is identical and the
//! answers at each stamp equal the same oracle (see
//! `tests/multi_writer.rs` for the barrier fault and adversarial
//! lateness batteries).

use maritime::core::query::{PredictedPosition, SystemSnapshot};
use maritime::core::{MaritimePipeline, MultiWriterPipeline, PipelineConfig};
use maritime::forecast::{DeadReckoningPredictor, Predictor};
use maritime::geo::time::MINUTE;
use maritime::geo::{Fix, Position, Timestamp, VesselId};
use maritime::sim::receivers::{RadarPlot, VmsReport};
use maritime::sim::scenario::AisObservation;
use maritime::sim::{Scenario, ScenarioConfig, SimOutput};
use maritime::store::KnnResult;
use proptest::prelude::*;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A pipeline configuration under which the truncated-run oracle is
/// exact: lossless sealing (tier rotation cannot change any answer),
/// a disorder tolerance wide enough that nothing is dropped late, and
/// a predictor refreshed every tick (predictive answers are a pure
/// function of the watermark).
fn serving_config(sim: &SimOutput) -> PipelineConfig {
    let mut config = PipelineConfig::regional(sim.world.bounds);
    config.events.zones = maritime::zones_of_world(&sim.world);
    config.retention.cold_tolerance_m = 0.0;
    config.watermark_delay = 60 * MINUTE;
    config.query.predictor_refresh_ticks = 1;
    config
}

/// The merged arrival stream of a scenario, as `run_scenario` replays
/// it, with each item's *event* time alongside.
enum Arrival<'a> {
    Ais(&'a AisObservation),
    Radar(&'a RadarPlot),
    Vms(&'a VmsReport),
}

fn arrivals(sim: &SimOutput) -> Vec<(Timestamp, Timestamp, Arrival<'_>)> {
    let mut merged: Vec<(Timestamp, Timestamp, Arrival)> =
        Vec::with_capacity(sim.ais.len() + sim.radar.len() + sim.vms.len());
    merged.extend(sim.ais.iter().map(|o| (o.t_received, o.t_sent, Arrival::Ais(o))));
    merged.extend(sim.radar.iter().map(|p| (p.t, p.t, Arrival::Radar(p))));
    merged.extend(sim.vms.iter().map(|v| (v.t, v.t, Arrival::Vms(v))));
    merged.sort_by_key(|(arr, _, _)| *arr);
    merged
}

fn push(pipeline: &mut MaritimePipeline, item: &Arrival<'_>) {
    match item {
        Arrival::Ais(o) => drop(pipeline.push_ais(o)),
        Arrival::Radar(p) => drop(pipeline.push_radar(p)),
        Arrival::Vms(v) => drop(pipeline.push_vms(v)),
    }
}

/// The single-threaded oracle at watermark `w`: a fresh pipeline over
/// the arrival stream truncated to event time ≤ `w` (arrival order
/// preserved), drained. Returns its final published snapshot.
fn oracle_at(sim: &SimOutput, w: Timestamp) -> Arc<SystemSnapshot> {
    let mut pipeline = MaritimePipeline::new(serving_config(sim)).with_weather(sim.weather.clone());
    // Hold a service for the whole run so the end-of-stream snapshot
    // (stamped at the final watermark, ahead of the tick grid) is
    // published — write-only pipelines skip publication entirely.
    let service = pipeline.query_service();
    for (_, event_t, item) in arrivals(sim) {
        if event_t <= w {
            push(&mut pipeline, &item);
        }
    }
    pipeline.finish();
    assert_eq!(pipeline.report().dropped_late, 0, "oracle must not drop");
    service.snapshot()
}

/// One battery of answers, all evaluated relative to a stamp `w` so
/// the same questions can be asked of a snapshot published at `w` and
/// of the oracle's final snapshot (whose own watermark differs).
#[derive(Debug, PartialEq)]
struct Battery {
    len: usize,
    vessels: Vec<VesselId>,
    window: Vec<Fix>,
    knn: Vec<KnnResult>,
    latest: Vec<Option<Fix>>,
    trajectories: Vec<Option<Vec<Fix>>>,
    positions: Vec<Option<Position>>,
    where_past: Vec<Option<PredictedPosition>>,
    where_future: Vec<Option<PredictedPosition>>,
}

fn battery(snap: &SystemSnapshot, sim: &SimOutput, w: Timestamp, ids: &[VesselId]) -> Battery {
    let b = sim.world.bounds;
    let mid = Position::new((b.min_lat + b.max_lat) / 2.0, (b.min_lon + b.max_lon) / 2.0);
    let west = maritime::geo::BoundingBox::new(b.min_lat, b.min_lon, b.max_lat, mid.lon);
    // Strictly beyond every watermark the oracle can reach (w + delay),
    // so both sides take the predictive branch.
    let future = w + 61 * MINUTE + 30 * MINUTE;
    let past = w - 30 * MINUTE;
    Battery {
        len: snap.store().len(),
        vessels: snap.store().vessels(),
        window: snap.window(&west, w - 40 * MINUTE, w).value,
        knn: snap.knn(mid, w, 8).value,
        latest: ids.iter().map(|&id| snap.latest(id).value).collect(),
        trajectories: ids.iter().map(|&id| snap.trajectory(id).value).collect(),
        positions: ids.iter().map(|&id| snap.position_at(id, past).value).collect(),
        where_past: ids.iter().map(|&id| snap.where_at(id, past).value).collect(),
        where_future: ids.iter().map(|&id| snap.where_at(id, future).value).collect(),
    }
}

/// Evenly sample up to `n` stamps, always keeping the first and last.
fn sample_stamps(stamps: &[Timestamp], n: usize) -> Vec<Timestamp> {
    if stamps.len() <= n {
        return stamps.to_vec();
    }
    (0..n).map(|i| stamps[i * (stamps.len() - 1) / (n - 1)]).collect()
}

fn check_oracle_equivalence(
    sim: &SimOutput,
    recorded: &[(Timestamp, Arc<SystemSnapshot>)],
    oracle_stamps: usize,
) {
    let stamps: Vec<Timestamp> = recorded.iter().map(|(w, _)| *w).collect();
    for w in sample_stamps(&stamps, oracle_stamps) {
        let (_, snap) = recorded.iter().find(|(s, _)| *s == w).unwrap();
        let oracle_snap = oracle_at(sim, w);
        let ids: Vec<VesselId> = snap.store().vessels().into_iter().take(5).collect();
        let got = battery(snap, sim, w, &ids);
        let want = battery(&oracle_snap, sim, w, &ids);
        assert_eq!(got, want, "service diverged from the oracle at watermark {w}");
        // The predictive branch really is predictive, and routes
        // through the forecast layer's predictors.
        for p in got.where_future.iter().flatten() {
            assert!(
                p.predictor == "route-network" || p.predictor == DeadReckoningPredictor.name(),
                "future instants must use a forecast predictor, got {}",
                p.predictor
            );
        }
    }
}

/// Serially capture every stamped snapshot a reader could have seen:
/// after each pushed arrival, record the published snapshot if its
/// stamp moved. Returns the recordings plus the finished pipeline.
fn run_and_capture(sim: &SimOutput) -> (MaritimePipeline, Vec<(Timestamp, Arc<SystemSnapshot>)>) {
    let mut pipeline = MaritimePipeline::new(serving_config(sim)).with_weather(sim.weather.clone());
    let service = pipeline.query_service();
    let mut recorded: Vec<(Timestamp, Arc<SystemSnapshot>)> = Vec::new();
    for (_, _, item) in arrivals(sim) {
        push(&mut pipeline, &item);
        let snap = service.snapshot();
        if snap.watermark() != Timestamp::MIN
            && recorded.last().map(|(w, _)| *w) != Some(snap.watermark())
        {
            recorded.push((snap.watermark(), snap));
        }
    }
    pipeline.finish();
    let last = service.snapshot();
    recorded.push((last.watermark(), last));
    assert_eq!(pipeline.report().dropped_late, 0, "config must prevent late drops");
    (pipeline, recorded)
}

fn multi_push(pipeline: &mut MultiWriterPipeline, item: &Arrival<'_>) {
    match item {
        Arrival::Ais(o) => drop(pipeline.push_ais(o)),
        Arrival::Radar(p) => drop(pipeline.push_radar(p)),
        Arrival::Vms(v) => drop(pipeline.push_vms(v)),
    }
}

/// [`run_and_capture`] for the multi-writer frontend: serially feed
/// the arrival stream to a `writers`-lane pipeline (small ingest batch,
/// so stamps publish densely) and record the stamped snapshot whenever
/// the published stamp moves.
fn multi_run_and_capture(
    sim: &SimOutput,
    writers: usize,
) -> (MultiWriterPipeline, Vec<(Timestamp, Arc<SystemSnapshot>)>) {
    let mut pipeline = MultiWriterPipeline::new(serving_config(sim), writers).with_ingest_batch(16);
    let service = pipeline.query_service();
    let mut recorded: Vec<(Timestamp, Arc<SystemSnapshot>)> = Vec::new();
    for (_, _, item) in arrivals(sim) {
        multi_push(&mut pipeline, &item);
        let snap = service.snapshot();
        if snap.watermark() != Timestamp::MIN
            && recorded.last().map(|(w, _)| *w) != Some(snap.watermark())
        {
            recorded.push((snap.watermark(), snap));
        }
    }
    pipeline.finish();
    let last = service.snapshot();
    recorded.push((last.watermark(), last));
    assert_eq!(pipeline.report().dropped_late, 0, "config must prevent late drops");
    (pipeline, recorded)
}

/// The multi-writer analogue of [`oracle_at`]: a fresh *single-lane*
/// multi-writer run over the stream truncated to event time ≤ `w`.
/// The oracle stays on the same frontend so batch granularity is
/// identical on both sides and the comparison is exact; classic-vs-
/// multi agreement (exact events, archives equal up to same-timestamp
/// duplicate resolution) is enforced separately in
/// `tests/scenario_determinism.rs`.
fn multi_oracle_at(sim: &SimOutput, w: Timestamp) -> Arc<SystemSnapshot> {
    let mut pipeline = MultiWriterPipeline::new(serving_config(sim), 1).with_ingest_batch(16);
    let service = pipeline.query_service();
    for (_, event_t, item) in arrivals(sim) {
        if event_t <= w {
            multi_push(&mut pipeline, &item);
        }
    }
    pipeline.finish();
    assert_eq!(pipeline.report().dropped_late, 0, "oracle must not drop");
    service.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Tentpole property: every answer the service gives at watermark
    /// `W` equals the single-threaded oracle evaluated at `W`.
    #[test]
    fn every_answer_equals_the_oracle_at_its_watermark(
        seed in 0u64..500,
        vessels in 8usize..16,
        mins in 90i64..140,
    ) {
        let sim = Scenario::generate(ScenarioConfig::regional(seed, vessels, mins * MINUTE));
        let (_pipeline, recorded) = run_and_capture(&sim);
        prop_assert!(recorded.len() > 3, "expected several published snapshots");
        // Monotone stamps even serially.
        prop_assert!(recorded.windows(2).all(|w| w[0].0 < w[1].0));
        check_oracle_equivalence(&sim, &recorded, 4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Writer-count invariance of the serving layer: at 1/2/4/8 writer
    /// lanes the multi-writer pipeline publishes exactly the same
    /// stamp sequence, and the answers at each sampled stamp equal the
    /// classic single-threaded oracle at that watermark.
    #[test]
    fn multi_writer_answers_equal_the_oracle_at_every_writer_count(
        seed in 0u64..500,
        vessels in 8usize..14,
        mins in 90i64..120,
    ) {
        let sim = Scenario::generate(ScenarioConfig::regional(seed, vessels, mins * MINUTE));
        let writer_counts = [1usize, 2, 4, 8];
        let runs: Vec<_> =
            writer_counts.iter().map(|&w| multi_run_and_capture(&sim, w).1).collect();
        let reference: Vec<Timestamp> = runs[0].iter().map(|(w, _)| *w).collect();
        prop_assert!(reference.len() > 3, "expected several published snapshots");
        prop_assert!(reference.windows(2).all(|w| w[0] < w[1]), "stamps must be monotone");
        for (writers, recorded) in writer_counts.iter().zip(&runs) {
            let stamps: Vec<Timestamp> = recorded.iter().map(|(w, _)| *w).collect();
            prop_assert_eq!(
                &stamps, &reference,
                "{} writer lanes published a different stamp sequence", writers
            );
        }
        // One oracle run per sampled stamp, held against every writer
        // count's snapshot at that stamp.
        for w in sample_stamps(&reference, 3) {
            let oracle_snap = multi_oracle_at(&sim, w);
            for (writers, recorded) in writer_counts.iter().zip(&runs) {
                let (_, snap) = recorded.iter().find(|(s, _)| *s == w).unwrap();
                let ids: Vec<VesselId> = snap.store().vessels().into_iter().take(5).collect();
                let got = battery(snap, &sim, w, &ids);
                prop_assert_eq!(
                    &got,
                    &battery(&oracle_snap, &sim, w, &ids),
                    "{} writer lanes diverged from the oracle at watermark {}", writers, w
                );
                for p in got.where_future.iter().flatten() {
                    prop_assert!(
                        p.predictor == "route-network"
                            || p.predictor == DeadReckoningPredictor.name(),
                        "future instants must use a forecast predictor, got {}", p.predictor
                    );
                }
            }
        }
    }
}

/// Satellite: 1 ingest writer × N concurrent `QueryService` readers
/// over a full simulated scenario. Watermarks are monotone per reader,
/// recorded answers equal the oracle at their stamp, and the event
/// ring reassembles the writer's exact emission.
#[test]
fn one_writer_many_readers_stress() {
    let sim = Scenario::generate(ScenarioConfig::regional(77, 20, 2 * 60 * MINUTE));
    let mut pipeline =
        MaritimePipeline::new(serving_config(&sim)).with_weather(sim.weather.clone());
    let service = pipeline.query_service();

    struct ReaderLog {
        stamps_seen: usize,
        final_wm: Timestamp,
        recorded: Vec<(Timestamp, Arc<SystemSnapshot>)>,
        polled: Vec<maritime::events::MaritimeEvent>,
        missed: u64,
    }

    let (writer_events, reader_logs) = maritime::stream::runner::run_with_readers(
        || pipeline.run_scenario(&sim),
        4,
        |reader, running| {
            let service = service.clone();
            let mut log = ReaderLog {
                stamps_seen: 0,
                final_wm: Timestamp::MIN,
                recorded: Vec::new(),
                polled: Vec::new(),
                missed: 0,
            };
            let mut cursor = maritime::events::EventCursor::default();
            let mut last_wm = Timestamp::MIN;
            loop {
                let done = !running.load(Ordering::Acquire);
                let snap = service.snapshot();
                assert!(snap.watermark() >= last_wm, "reader {reader}: watermark regressed");
                if snap.watermark() > last_wm {
                    last_wm = snap.watermark();
                    log.final_wm = last_wm;
                    log.stamps_seen += 1;
                    // Keep a bounded sample for oracle checks.
                    if log.recorded.len() < 64 {
                        log.recorded.push((last_wm, snap));
                    }
                }
                // Reader 0 is the event subscriber.
                if reader == 0 {
                    let poll = service.poll_since(cursor);
                    cursor = poll.cursor;
                    log.missed += poll.missed;
                    log.polled.extend(poll.events);
                }
                if done {
                    return log;
                }
                std::thread::yield_now();
            }
        },
    );

    // Every reader saw live, monotone, oracle-consistent state.
    let mut checked = 0;
    for (reader, log) in reader_logs.iter().enumerate() {
        assert!(log.stamps_seen > 0, "reader {reader} never saw a published snapshot");
        // The final publication is visible to the post-flag iteration.
        assert_eq!(log.final_wm, service.watermark(), "reader {reader} missed the final snapshot");
        // Oracle-check a couple of recorded answers per reader (the
        // serial proptest above covers stamps densely; this proves the
        // concurrently observed ones are the same states).
        let picks: Vec<_> =
            sample_stamps(&log.recorded.iter().map(|(w, _)| *w).collect::<Vec<_>>(), 2);
        for w in picks {
            let (_, snap) = log.recorded.iter().find(|(s, _)| *s == w).unwrap();
            let oracle_snap = oracle_at(&sim, w);
            let ids: Vec<VesselId> = snap.store().vessels().into_iter().take(4).collect();
            assert_eq!(
                battery(snap, &sim, w, &ids),
                battery(&oracle_snap, &sim, w, &ids),
                "reader {reader} diverged from the oracle at {w}"
            );
            checked += 1;
        }
    }
    assert!(checked >= 4, "stress test must actually oracle-check answers");

    // The subscriber reassembled the writer's exact event stream.
    let subscriber = &reader_logs[0];
    assert_eq!(subscriber.missed, 0, "ring capacity must cover the scenario");
    assert_eq!(
        subscriber.polled, writer_events,
        "cursor polling must reassemble the emitted event stream exactly"
    );
}
