//! End-to-end determinism: the simulator → streaming pipeline → event
//! engine chain must be a pure function of the scenario seed.
//!
//! This locks the concurrency refactors (sharded store, shard-affine
//! ingest, sharded event engine, multi-writer lanes) down against
//! nondeterminism: two identical runs must produce identical event
//! sets, identical archives, parallel backfill must be agnostic to the
//! worker count, the event layer must emit identically for any
//! detector shard count, and the multi-writer pipeline must be exactly
//! invariant in the writer count (and agree with the classic
//! single-writer frontend).

use maritime::core::{MaritimePipeline, MultiWriterPipeline, PipelineConfig};
use maritime::events::event::MaritimeEvent;
use maritime::geo::time::HOUR;
use maritime::geo::Fix;
use maritime::sim::{Scenario, ScenarioConfig, SimOutput};

fn build_pipeline(sim: &SimOutput) -> MaritimePipeline {
    let mut config = PipelineConfig::regional(sim.world.bounds);
    config.events.zones = maritime::zones_of_world(&sim.world);
    MaritimePipeline::new(config).with_weather(sim.weather.clone())
}

/// One full run: scenario generation, pipeline, event recognition.
/// Returns the recognised events plus an archive fingerprint.
fn run_once(seed: u64) -> (Vec<MaritimeEvent>, usize, Vec<(u32, usize)>) {
    let sim = Scenario::generate(ScenarioConfig::regional(seed, 20, 2 * HOUR));
    let mut pipeline = build_pipeline(&sim);
    let events = pipeline.run_scenario(&sim);
    let store = pipeline.store();
    let per_vessel: Vec<(u32, usize)> =
        store.vessels().iter().map(|&id| (id, store.trajectory(id).unwrap().len())).collect();
    (events, store.len(), per_vessel)
}

#[test]
fn same_seed_same_events_and_archive() {
    let (events_a, len_a, vessels_a) = run_once(11);
    let (events_b, len_b, vessels_b) = run_once(11);
    assert!(!events_a.is_empty(), "scenario must produce events");
    assert_eq!(events_a, events_b, "event sets diverged between identical runs");
    assert_eq!(len_a, len_b);
    assert_eq!(vessels_a, vessels_b);
}

#[test]
fn different_seeds_differ() {
    // Sanity check that the fingerprint is actually sensitive.
    let (events_a, _, _) = run_once(11);
    let (events_b, _, _) = run_once(12);
    assert_ne!(events_a, events_b, "distinct seeds should not collide");
}

#[test]
fn scenario_generation_is_seed_pure() {
    let a = Scenario::generate(ScenarioConfig::regional(31, 15, HOUR));
    let b = Scenario::generate(ScenarioConfig::regional(31, 15, HOUR));
    assert_eq!(a.ais.len(), b.ais.len());
    assert_eq!(a.radar.len(), b.radar.len());
    assert_eq!(a.vms.len(), b.vms.len());
    assert!(a
        .ais
        .iter()
        .zip(&b.ais)
        .all(|(x, y)| x.t_sent == y.t_sent && x.t_received == y.t_received));
}

#[test]
fn event_layer_is_shard_count_invariant() {
    // The sharded engine merges per-shard emission with a stable
    // (t, vessel, kind) sort, so the *exact* event sequence — not just
    // the multiset — must be independent of the detector shard count.
    let sim = Scenario::generate(ScenarioConfig::regional(23, 20, 2 * HOUR));
    let run = |shards: usize| {
        let mut config = PipelineConfig::regional(sim.world.bounds);
        config.events.zones = maritime::zones_of_world(&sim.world);
        config.events.shards = shards;
        let mut pipeline = MaritimePipeline::new(config).with_weather(sim.weather.clone());
        pipeline.run_scenario(&sim)
    };
    let reference = run(1);
    assert!(!reference.is_empty(), "scenario must produce events");
    for shards in [2usize, 4, 8] {
        assert_eq!(run(shards), reference, "{shards} detector shards diverged");
    }
}

#[test]
fn multi_writer_ingest_is_writer_count_invariant() {
    // Writer lanes + tick barrier: the whole observable output of the
    // multi-writer pipeline — event sequence, archive, counters — must
    // be *exactly* invariant in the writer count, and must agree with
    // the classic single-writer pipeline (event multiset + archive;
    // only release batching, and therefore emission order, differs
    // between the two frontends).
    let sim = Scenario::generate(ScenarioConfig::regional(23, 20, 2 * HOUR));
    let multi_config = || {
        let mut config = PipelineConfig::regional(sim.world.bounds);
        config.events.zones = maritime::zones_of_world(&sim.world);
        config
    };
    let run = |writers: usize| {
        let mut pipeline = MultiWriterPipeline::new(multi_config(), writers).with_ingest_batch(128);
        let events = pipeline.run_scenario(&sim);
        let store = pipeline.store();
        let per_vessel: Vec<(u32, Option<Vec<Fix>>)> =
            store.vessels().iter().map(|&id| (id, store.trajectory(id))).collect();
        let report = pipeline.report();
        (
            events,
            store.len(),
            per_vessel,
            report.events_emitted,
            report.detector_counts,
            report.evicted_vessels,
            report.seal_sweeps,
            report.dropped_late,
        )
    };
    let reference = run(1);
    assert!(!reference.0.is_empty(), "scenario must produce events");
    for writers in [2usize, 4, 8] {
        assert_eq!(run(writers), reference, "{writers} writer lanes diverged");
    }

    // Cross-check the classic frontend over the same scenario.
    let mut classic = build_pipeline(&sim);
    let classic_events = classic.run_scenario(&sim);
    let canon = |mut events: Vec<MaritimeEvent>| {
        events.sort_by(|a, b| {
            a.sort_key().cmp(&b.sort_key()).then_with(|| format!("{a:?}").cmp(&format!("{b:?}")))
        });
        events
    };
    assert_eq!(
        canon(reference.0.clone()),
        canon(classic_events),
        "multi-writer event multiset diverged from the classic pipeline"
    );
    let classic_store = classic.store();
    assert_eq!(reference.1, classic_store.len(), "archive size diverged from classic");
    // Archives agree up to same-timestamp duplicate resolution: the
    // classic frontend batches per push, the lanes per boundary, so
    // when dual-receiver feeds clone a fix the two keep (possibly)
    // different members of the duplicate pair — metres apart, same
    // vessel, same instant. Structure must be exact; positions within
    // receiver jitter.
    for (id, trajectory) in &reference.2 {
        let multi = trajectory.as_ref().unwrap();
        let classic = classic_store.trajectory(*id).unwrap();
        assert_eq!(multi.len(), classic.len(), "vessel {id} archive length diverged");
        for (m, c) in multi.iter().zip(&classic) {
            assert_eq!((m.id, m.t), (c.id, c.t), "vessel {id} archive structure diverged");
            assert!(
                (m.pos.lat - c.pos.lat).abs() < 1e-3 && (m.pos.lon - c.pos.lon).abs() < 1e-3,
                "vessel {id} at {:?}: archived positions beyond duplicate jitter",
                m.t
            );
        }
    }
}

#[test]
fn detector_ttl_evicts_dead_vessel_state() {
    // A dark-heavy scenario with an aggressive TTL: vessels that stay
    // silent past the TTL must be dropped from live detector state
    // (and counted), while the archive keeps their history.
    let sim = Scenario::generate(ScenarioConfig::regional(29, 20, 3 * HOUR));
    let mut config = PipelineConfig::regional(sim.world.bounds);
    config.events.zones = maritime::zones_of_world(&sim.world);
    config.retention.detector_ttl = 20 * maritime::geo::time::MINUTE;
    let mut pipeline = MaritimePipeline::new(config).with_weather(sim.weather.clone());
    pipeline.run_scenario(&sim);
    let report = pipeline.report();
    assert!(report.evicted_vessels > 0, "27% dark ships over 3 h must trip a 20-min TTL");
    let stats = pipeline.engine().state_stats();
    assert!(
        stats.live_vessels as u64 + report.evicted_vessels >= 20,
        "every vessel is either live or was evicted at least once"
    );
    // Eviction is about *live* state only: archived trajectories stay.
    assert!(!pipeline.store().is_empty());
}

#[test]
fn parallel_backfill_is_worker_count_agnostic() {
    let sim = Scenario::generate(ScenarioConfig::regional_honest(47, 20, 2 * HOUR));
    let fixes: Vec<Fix> = sim.ais.iter().filter_map(|o| o.msg.to_fix(o.t_sent)).collect();
    assert!(fixes.len() > 1_000);

    let fingerprint = |p: &MaritimePipeline| {
        let store = p.store();
        (
            store.len(),
            store.vessels(),
            store.vessels().iter().map(|&v| store.trajectory(v)).collect::<Vec<_>>(),
        )
    };

    let reference = build_pipeline(&sim);
    reference.backfill_archive(fixes.clone(), 1);
    for workers in [2usize, 4, 8] {
        let p = build_pipeline(&sim);
        p.backfill_archive(fixes.clone(), workers);
        assert_eq!(fingerprint(&p), fingerprint(&reference), "{workers} workers diverged");
    }
}
