//! Multi-writer shard-owned ingest: the deterministic battery behind
//! the writer-count-invariance claim.
//!
//! Three properties are enforced on [`MultiWriterPipeline`]:
//!
//! 1. **Barrier fault release** — a lane panicking mid-scenario must
//!    abandon the tick barrier so the surviving lanes unwind and the
//!    panic propagates to the caller, instead of deadlocking the
//!    writer and its concurrent readers.
//! 2. **Adversarial lateness** — under shuffled arrival with
//!    stragglers arriving *exactly* at the watermark delay, every
//!    published boundary `T` is tick-aligned and carries exactly the
//!    data with event time `≤ T`, identically for every writer count
//!    and identically to the classic single-writer pipeline.
//! 3. **Concurrent readers** — N `QueryService` readers over a
//!    multi-writer scenario observe monotone stamps, snapshot-isolated
//!    state, and a cursor-polling subscriber reassembles exactly the
//!    event stream the writer lanes emitted.

use maritime::core::query::SystemSnapshot;
use maritime::core::{MaritimePipeline, MultiWriterPipeline, PipelineConfig};
use maritime::geo::time::HOUR;
use maritime::geo::{BoundingBox, Fix, Position, Timestamp};
use maritime::sim::{Scenario, ScenarioConfig};
use proptest::prelude::*;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn bounds() -> BoundingBox {
    BoundingBox::new(42.0, 3.0, 44.0, 6.5)
}

/// Lossless sealing + every-tick predictor refresh, so snapshots are a
/// pure function of the event-time stream at their stamp and the
/// classic pipeline is an exact cross-check.
fn battery_config() -> PipelineConfig {
    let mut config = PipelineConfig::regional(bounds());
    config.retention.cold_tolerance_m = 0.0;
    config.query.predictor_refresh_ticks = 1;
    config
}

#[test]
fn lane_panic_releases_barrier_and_readers() {
    let mut pipeline = MultiWriterPipeline::new(battery_config(), 4).with_ingest_batch(8);
    // Lane 2 dies just before its 3rd tick-boundary crossing: the
    // other three lanes are already parked in (or headed into) the
    // same crossing when it happens.
    pipeline.inject_lane_panic(2, 3);
    let service = pipeline.query_service();

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        maritime::stream::runner::run_with_readers(
            || {
                for i in 0..180i64 {
                    for v in 1..=12u32 {
                        let pos = Position::new(42.3 + 0.12 * f64::from(v), 4.0 + 0.004 * i as f64);
                        pipeline.push_fix(Fix::new(v, Timestamp::from_mins(i), pos, 11.0, 90.0));
                    }
                }
                pipeline.finish();
            },
            3,
            |reader, running| {
                let service = service.clone();
                let mut last = Timestamp::MIN;
                let mut stamps = 0usize;
                while running.load(Ordering::Acquire) {
                    let snap = service.snapshot();
                    assert!(snap.watermark() >= last, "reader {reader}: watermark regressed");
                    if snap.watermark() > last {
                        last = snap.watermark();
                        stamps += 1;
                    }
                    std::thread::yield_now();
                }
                stamps
            },
        )
    }));

    // The fault propagates as the lane's own panic — the barrier was
    // abandoned and every surviving lane (and reader) released, or the
    // join above would have hung forever.
    let payload = result.expect_err("injected lane fault must propagate to the writer");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or_else(|| payload.downcast_ref::<String>().map(String::as_str).unwrap_or(""));
    assert_eq!(msg, "injected lane fault", "the original panic payload must surface");

    // The serving layer is still answerable from the last snapshot
    // published before the fault.
    let snap = service.snapshot();
    assert!(snap.watermark() >= Timestamp::MIN);
    let _ = snap.store().len();
}

/// One run of a pipeline frontend over a pre-shuffled arrival list,
/// recording the stamped snapshot after every push where the stamp
/// moved, plus the end-of-stream snapshot.
type Captured = Vec<(Timestamp, Arc<SystemSnapshot>)>;

fn capture<P>(
    items: &[(i64, Fix)],
    mut push: impl FnMut(&mut P, Fix),
    pipeline: &mut P,
    service: &maritime::core::QueryService,
) -> Captured {
    let mut recorded: Captured = Vec::new();
    for (_, fix) in items {
        push(pipeline, *fix);
        let snap = service.snapshot();
        if snap.watermark() != Timestamp::MIN
            && recorded.last().map(|(w, _)| *w) != Some(snap.watermark())
        {
            recorded.push((snap.watermark(), snap));
        }
    }
    recorded
}

/// A per-stamp fingerprint of everything the archive serves: length,
/// vessel set, every trajectory, every latest fix.
type Fingerprint = (usize, Vec<u32>, Vec<Option<Vec<Fix>>>, Vec<Option<Fix>>);

fn fingerprint(snap: &SystemSnapshot) -> Fingerprint {
    let ids = snap.store().vessels();
    (
        snap.store().len(),
        ids.clone(),
        ids.iter().map(|&id| snap.trajectory(id).value).collect(),
        ids.iter().map(|&id| snap.latest(id).value).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Adversarial lateness: every fix arrives late by a pseudo-random
    /// amount, with every 7th fix a straggler arriving *exactly* at
    /// the watermark delay. Nothing may be dropped, every non-final
    /// published boundary is tick-aligned, no snapshot leaks data past
    /// its stamp, the published stamp sequence and event stream are
    /// identical for 1/2/4/8 writers, and every stamp both frontends
    /// publish carries identical archive state.
    #[test]
    fn adversarial_lateness_fires_exact_tick_boundaries(
        seed in 1u64..10_000,
        vessels in 4u32..8,
        mins in 100i64..140,
    ) {
        let config = battery_config();
        let delay = config.watermark_delay;
        let tick = config.tick_interval;

        // Shuffled arrival stream. Normal lateness is in
        // [1, delay/2]; stragglers sit exactly at the delay, the
        // last instant the drop rule must still accept them.
        let mut items: Vec<(i64, Fix)> = Vec::new();
        let mut state = seed | 1;
        let mut k = 0u64;
        for i in 0..mins {
            for v in 1..=vessels {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                k += 1;
                let lateness =
                    if k % 7 == 0 { delay } else { 1 + (state >> 33) as i64 % (delay / 2) };
                let t = Timestamp::from_mins(i);
                let pos = Position::new(
                    42.4 + 0.15 * f64::from(v),
                    3.5 + 0.005 * i as f64 + 0.02 * f64::from(v),
                );
                items.push((t.millis() + lateness, Fix::new(v, t, pos, 10.0, 90.0)));
            }
        }
        items.sort_by_key(|(arrival, fix)| (*arrival, fix.id, fix.t));
        let final_t = Timestamp::from_mins(mins - 1);

        // Multi-writer runs at every writer count.
        let writer_counts = [1usize, 2, 4, 8];
        let mut stamp_lists: Vec<Vec<Timestamp>> = Vec::new();
        let mut event_streams = Vec::new();
        let mut multi_recorded: Vec<Captured> = Vec::new();
        for &writers in &writer_counts {
            let mut pipeline =
                MultiWriterPipeline::new(battery_config(), writers).with_ingest_batch(16);
            let service = pipeline.query_service();
            let mut events = Vec::new();
            let mut recorded = capture(
                &items,
                |p: &mut MultiWriterPipeline, fix| events.extend(p.push_fix(fix)),
                &mut pipeline,
                &service,
            );
            events.extend(pipeline.finish());
            let last = service.snapshot();
            recorded.push((last.watermark(), last));
            prop_assert_eq!(
                pipeline.report().dropped_late, 0,
                "writers={}: stragglers at the delay must not be dropped", writers
            );

            let stamps: Vec<Timestamp> = recorded.iter().map(|(w, _)| *w).collect();
            prop_assert!(stamps.windows(2).all(|w| w[0] < w[1]), "stamps must be monotone");
            // Every non-final boundary is on the tick grid; the final
            // stamp is the end-of-stream watermark (max event time).
            for w in &stamps[..stamps.len() - 1] {
                prop_assert_eq!(
                    w.millis() % tick, 0,
                    "writers={}: boundary {} off the tick grid", writers, w
                );
            }
            prop_assert_eq!(
                *stamps.last().unwrap(), final_t,
                "writers={}: end-of-stream stamp must reach the max event time", writers
            );
            // Snapshot isolation: a boundary T serves only data t ≤ T.
            for (w, snap) in &recorded {
                for id in snap.store().vessels() {
                    if let Some(traj) = snap.trajectory(id).value {
                        prop_assert!(
                            traj.iter().all(|f| f.t <= *w),
                            "writers={}: data beyond stamp {}", writers, w
                        );
                    }
                }
            }
            stamp_lists.push(stamps);
            event_streams.push(events);
            multi_recorded.push(recorded);
        }
        for (i, stamps) in stamp_lists.iter().enumerate() {
            prop_assert_eq!(
                stamps, &stamp_lists[0],
                "writers={} published a different stamp sequence", writer_counts[i]
            );
            prop_assert_eq!(
                &event_streams[i], &event_streams[0],
                "writers={} emitted a different event stream", writer_counts[i]
            );
        }

        // Classic single-writer cross-check: at every stamp both
        // frontends published, the archives are identical.
        let mut classic = MaritimePipeline::new(battery_config());
        let classic_service = classic.query_service();
        let mut classic_recorded = capture(
            &items,
            |p: &mut MaritimePipeline, fix| drop(p.push_fix(fix)),
            &mut classic,
            &classic_service,
        );
        classic.finish();
        let last = classic_service.snapshot();
        classic_recorded.push((last.watermark(), last));
        prop_assert_eq!(classic.report().dropped_late, 0);

        let mut matched = 0usize;
        for (w, snap) in &multi_recorded[0] {
            if let Some((_, classic_snap)) = classic_recorded.iter().find(|(s, _)| s == w) {
                prop_assert_eq!(
                    fingerprint(snap),
                    fingerprint(classic_snap),
                    "multi-writer archive diverged from classic at stamp {}", w
                );
                matched += 1;
            }
        }
        prop_assert!(matched >= 3, "expected several stamps published by both frontends");
    }
}

#[test]
fn multi_writer_with_concurrent_readers() {
    let sim = Scenario::generate(ScenarioConfig::regional(91, 16, 2 * HOUR));
    let mut config = PipelineConfig::regional(sim.world.bounds);
    config.events.zones = maritime::zones_of_world(&sim.world);
    let mut pipeline = MultiWriterPipeline::new(config, 4).with_ingest_batch(32);
    let service = pipeline.query_service();

    struct ReaderLog {
        stamps_seen: usize,
        final_wm: Timestamp,
        polled: Vec<maritime::events::MaritimeEvent>,
        missed: u64,
    }

    let (writer_events, reader_logs) = maritime::stream::runner::run_with_readers(
        || pipeline.run_scenario(&sim),
        3,
        |reader, running| {
            let service = service.clone();
            let mut log = ReaderLog {
                stamps_seen: 0,
                final_wm: Timestamp::MIN,
                polled: Vec::new(),
                missed: 0,
            };
            let mut cursor = maritime::events::EventCursor::default();
            loop {
                let done = !running.load(Ordering::Acquire);
                let snap = service.snapshot();
                assert!(snap.watermark() >= log.final_wm, "reader {reader}: watermark regressed");
                if snap.watermark() > log.final_wm {
                    log.final_wm = snap.watermark();
                    log.stamps_seen += 1;
                    // Snapshot isolation under concurrency: nothing
                    // beyond the stamp is ever visible.
                    for id in snap.store().vessels().into_iter().take(3) {
                        if let Some(traj) = snap.trajectory(id).value {
                            assert!(
                                traj.iter().all(|f| f.t <= snap.watermark()),
                                "reader {reader}: data beyond the stamp"
                            );
                        }
                    }
                }
                if reader == 0 {
                    let poll = service.poll_since(cursor);
                    cursor = poll.cursor;
                    log.missed += poll.missed;
                    log.polled.extend(poll.events);
                }
                if done {
                    return log;
                }
                std::thread::yield_now();
            }
        },
    );

    assert!(!writer_events.is_empty(), "scenario must produce events");
    for (reader, log) in reader_logs.iter().enumerate() {
        assert!(log.stamps_seen > 0, "reader {reader} never saw a published snapshot");
        assert_eq!(log.final_wm, service.watermark(), "reader {reader} missed the final snapshot");
    }
    // The subscriber reassembled the lanes' merged emission exactly —
    // the ring is written once per boundary, in the same deterministic
    // shard-merge order the writer returns.
    let subscriber = &reader_logs[0];
    assert_eq!(subscriber.missed, 0, "ring capacity must cover the scenario");
    assert_eq!(
        subscriber.polled, writer_events,
        "cursor polling must reassemble the emitted event stream exactly"
    );
}
