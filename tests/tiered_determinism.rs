//! Cross-tier determinism: a store that seals its history into cold
//! segments (at tolerance 0) must answer every query byte-identically
//! to a store that never sealed anything.
//!
//! This locks the hot/cold refactor down the same way
//! `scenario_determinism` locked the concurrency refactor: the fixes
//! come from a full simulated scenario (disordered arrivals included),
//! and the sealed store runs several interleaved seal sweeps while the
//! reference store keeps everything hot.

use maritime::geo::time::{HOUR, MINUTE};
use maritime::geo::{BoundingBox, Fix, Position, Timestamp};
use maritime::sim::{Scenario, ScenarioConfig};
use maritime::store::segment::SegmentConfig;
use maritime::store::shards::{KnnConfig, ShardedTrajectoryStore, StIndexConfig, StoreConfig};

fn scenario_fixes(seed: u64) -> (Vec<Fix>, BoundingBox) {
    let sim = Scenario::generate(ScenarioConfig::regional_honest(seed, 20, 3 * HOUR));
    let fixes: Vec<Fix> = sim.ais.iter().filter_map(|o| o.msg.to_fix(o.t_sent)).collect();
    assert!(fixes.len() > 1_000, "scenario too small to be meaningful");
    (fixes, sim.world.bounds)
}

fn store_config(bounds: BoundingBox, with_knn: bool) -> StoreConfig {
    StoreConfig {
        shards: 5,
        st_index: Some(StIndexConfig { bounds, cell_deg: 0.2, slice: 30 * MINUTE }),
        knn: with_knn.then_some(KnnConfig { cell_deg: 0.1, max_extrapolation: 2 * HOUR }),
        seal: SegmentConfig::lossless(),
    }
}

/// Ingest arrival-ordered fixes into both stores, sealing the first
/// one at every `seal_stride` fixes (mid-stream sealing, not just a
/// final sweep).
fn build_pair(
    fixes: &[Fix],
    bounds: BoundingBox,
    with_knn: bool,
) -> (ShardedTrajectoryStore, ShardedTrajectoryStore) {
    let sealed = ShardedTrajectoryStore::with_config(store_config(bounds, with_knn));
    let plain = ShardedTrajectoryStore::with_config(store_config(bounds, with_knn));
    let seal_stride = fixes.len() / 4;
    for (i, chunk) in fixes.chunks(seal_stride.max(1)).enumerate() {
        sealed.append_batch(chunk.to_vec());
        plain.append_batch(chunk.to_vec());
        // Seal everything older than the max event time seen so far,
        // minus a sliver of hot headroom — late arrivals in later
        // chunks will land hot *behind* sealed segments, exercising
        // the overlap-tolerant merge.
        let max_t = chunk.iter().map(|f| f.t).max().unwrap();
        if i % 2 == 0 {
            sealed.seal_before(max_t - 20 * MINUTE);
        }
    }
    sealed.seal_before(fixes.iter().map(|f| f.t).max().unwrap());
    let stats = sealed.tier_stats();
    assert!(stats.cold_fixes > 0, "sealing never happened");
    assert!(stats.cold_segments > 1, "want multi-segment vessels");
    (sealed, plain)
}

#[test]
fn sealed_store_answers_byte_identically_at_tolerance_zero() {
    let (fixes, bounds) = scenario_fixes(47);
    let (sealed, plain) = build_pair(&fixes, bounds, true);

    assert_eq!(sealed.len(), plain.len());
    assert_eq!(sealed.vessels(), plain.vessels());
    assert_eq!(sealed.vessel_count(), plain.vessel_count());

    let t_lo = fixes.iter().map(|f| f.t).min().unwrap();
    let t_hi = fixes.iter().map(|f| f.t).max().unwrap();
    let mid = Timestamp((t_lo.millis() + t_hi.millis()) / 2);

    // trajectory + range, per vessel.
    for id in plain.vessels() {
        assert_eq!(sealed.trajectory(id), plain.trajectory(id), "trajectory {id}");
        assert_eq!(sealed.range(id, t_lo, mid), plain.range(id, t_lo, mid), "range {id}");
        assert_eq!(
            sealed.range(id, mid, t_hi),
            plain.range(id, mid, t_hi),
            "hot-spanning range {id}"
        );
        for t in [t_lo, mid, mid + 17 * MINUTE, t_hi] {
            assert_eq!(sealed.latest_at(id, t), plain.latest_at(id, t), "latest_at {id} {t}");
            assert_eq!(sealed.position_at(id, t), plain.position_at(id, t), "position_at {id} {t}");
        }
    }

    // window over a grid of sub-boxes and time slices.
    let lat_step = (bounds.max_lat - bounds.min_lat) / 3.0;
    let lon_step = (bounds.max_lon - bounds.min_lon) / 3.0;
    for i in 0..3 {
        for j in 0..3 {
            let area = BoundingBox::new(
                bounds.min_lat + lat_step * f64::from(i),
                bounds.min_lon + lon_step * f64::from(j),
                bounds.min_lat + lat_step * f64::from(i + 1),
                bounds.min_lon + lon_step * f64::from(j + 1),
            );
            for (from, to) in [(t_lo, mid), (mid, t_hi), (t_lo, t_hi)] {
                assert_eq!(
                    sealed.window(&area, from, to),
                    plain.window(&area, from, to),
                    "window {area:?} {from}..{to}"
                );
            }
        }
    }

    // kNN through the maintained latest-fix index.
    for (qlat, qlon, t) in [(43.0, 4.5, mid), (42.5, 5.5, t_hi), (43.4, 3.7, t_hi + 30 * MINUTE)] {
        let q = Position::new(qlat, qlon);
        assert_eq!(sealed.knn(q, t, 10), plain.knn(q, t, 10), "knn at {q} {t}");
    }
}

#[test]
fn sealed_store_knn_fallback_matches_unsealed_scan() {
    // No kNN index configured: both stores take the linear-scan
    // fallback, and sealing must not change its answers.
    let (fixes, bounds) = scenario_fixes(48);
    let (sealed, plain) = build_pair(&fixes, bounds, false);
    let t = fixes.iter().map(|f| f.t).max().unwrap();
    for (qlat, qlon) in [(43.0, 4.5), (42.2, 3.3), (43.5, 6.0)] {
        let q = Position::new(qlat, qlon);
        assert_eq!(sealed.knn(q, t, 8), plain.knn(q, t, 8), "fallback knn at {q}");
    }
}

#[test]
fn sealing_is_idempotent_and_cadence_agnostic() {
    // Sealing in many small sweeps or one big sweep must converge to
    // identical query answers (segment slabs are boundary-aligned).
    let (fixes, bounds) = scenario_fixes(49);
    let many = ShardedTrajectoryStore::with_config(store_config(bounds, false));
    let once = ShardedTrajectoryStore::with_config(store_config(bounds, false));
    many.append_batch(fixes.clone());
    once.append_batch(fixes.clone());
    let t_hi = fixes.iter().map(|f| f.t).max().unwrap();
    for m in (0..=6).map(|k| Timestamp(t_hi.millis() * k / 6)) {
        many.seal_before(m);
    }
    // Re-sealing at an already-sealed watermark is a no-op.
    assert_eq!(many.seal_before(Timestamp(t_hi.millis() / 2)).fixes, 0);
    once.seal_before(t_hi);
    for id in once.vessels() {
        assert_eq!(many.trajectory(id), once.trajectory(id), "vessel {id}");
    }
    let area = BoundingBox::new(42.4, 3.4, 43.6, 5.6);
    assert_eq!(many.window(&area, Timestamp(0), t_hi), once.window(&area, Timestamp(0), t_hi));
}
