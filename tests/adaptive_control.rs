//! Property tests for the adaptive hot-path controller.
//!
//! The controller's contract is *determinism under concurrency*: its
//! knob trajectory must be a pure function of the event-time arrival
//! stream — invariant under the writer count, the absorb granularity,
//! and arrival adversity (bursts, stalls, heavy lateness, per-shard
//! skew). These properties drive generated adversarial streams through
//! the real pipelines and the bare controller and hold them to that.

use maritime::core::{MultiWriterPipeline, PipelineConfig};
use maritime::geo::{BoundingBox, Fix, Position, Timestamp};
use maritime::stream::control::{AdaptiveController, ArrivalWindow, ControlConfig, Knobs};
use proptest::prelude::*;

fn bounds() -> BoundingBox {
    BoundingBox::new(42.0, 3.0, 44.0, 6.5)
}

/// Build an adversarial arrival stream from raw `(vessel, advance_ms,
/// late_ms)` triples: event time walks forward by `advance_ms` per
/// arrival (0 = a burst at one instant, large = a stall), and each
/// arrival is reported `late_ms` behind the frontier (satellite-batch
/// style disorder). Vessel ids are skewed: low raw values collapse onto
/// vessel 1, modelling a port hotspot on one shard.
fn arrivals(raw: &[(u32, i64, i64)]) -> Vec<Fix> {
    let mut frontier = Timestamp::from_mins(0);
    raw.iter()
        .map(|&(v, advance_ms, late_ms)| {
            frontier += advance_ms;
            let id = if v < 8 { 1 } else { v % 24 + 1 };
            let t = frontier.saturating_add(-late_ms);
            let minutes = (t.millis() / 60_000) as f64;
            let pos = Position::new(
                42.2 + 0.07 * f64::from(id % 24),
                3.2 + 0.002 * minutes.abs().min(1_500.0),
            );
            Fix::new(id, t, pos, 10.0, 90.0)
        })
        .collect()
}

fn run_writers(fixes: &[Fix], writers: usize) -> (Vec<(Timestamp, Knobs)>, usize, u64) {
    let mut p =
        MultiWriterPipeline::new(PipelineConfig::adaptive(bounds()), writers).with_ingest_batch(32);
    for f in fixes {
        p.push_fix(*f);
    }
    p.finish();
    let report = p.report();
    (p.control_trace(), p.store().len(), report.dropped_late)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The committed knob trajectory — and everything downstream of it
    /// (archive size, late-drop count) — is invariant under the writer
    /// count for arbitrary adversarial arrival streams.
    #[test]
    fn knob_trajectory_is_writer_count_invariant(
        raw in prop::collection::vec((0u32..64, 0i64..180_000, 0i64..3_000_000), 64..500),
    ) {
        let fixes = arrivals(&raw);
        let reference = run_writers(&fixes, 1);
        for writers in [2usize, 4, 8] {
            let got = run_writers(&fixes, writers);
            prop_assert_eq!(&reference, &got, "{} writers diverged", writers);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every committed knob stays inside the configured clamp bounds,
    /// and commit boundaries strictly increase, no matter how bursty,
    /// stalled or late the stream gets (lateness here runs to ~2 h —
    /// far past the delay clamp ceiling).
    #[test]
    fn knobs_stay_clamped_under_adversarial_bursts(
        raw in prop::collection::vec((0u32..64, 0i64..600_000, 0i64..7_200_000), 32..400),
    ) {
        let fixes = arrivals(&raw);
        let mut p = MultiWriterPipeline::new(PipelineConfig::adaptive(bounds()), 4)
            .with_ingest_batch(16);
        for f in &fixes {
            p.push_fix(*f);
        }
        p.finish();
        let trace = p.control_trace();
        let cfg = ControlConfig::default();
        prop_assert!(trace.windows(2).all(|w| w[0].0 < w[1].0), "boundaries must increase");
        for (b, k) in &trace {
            prop_assert!(
                cfg.delay_bounds.0 <= k.delay && k.delay <= cfg.delay_bounds.1,
                "delay {} out of bounds at {:?}", k.delay, b
            );
            prop_assert!(
                cfg.seal_bounds.0 <= k.seal_every && k.seal_every <= cfg.seal_bounds.1,
                "seal cadence {} out of bounds at {:?}", k.seal_every, b
            );
            prop_assert!(
                cfg.ring_bounds.0 <= k.ring_capacity && k.ring_capacity <= cfg.ring_bounds.1,
                "ring capacity {} out of bounds at {:?}", k.ring_capacity, b
            );
        }
    }

    /// Bare-controller purity: absorbing the same observation sequence
    /// in arbitrarily different chunkings (absorb-per-arrival versus
    /// absorb-at-commit versus anything between) commits the identical
    /// knob trajectory. This is the property the two pipelines lean on:
    /// the single writer absorbs at every boundary, the multi-writer
    /// router once per epoch.
    #[test]
    fn absorb_granularity_never_changes_the_trajectory(
        raw in prop::collection::vec((0u32..64, 0i64..120_000, 0i64..3_600_000), 16..300),
        chunk in 1usize..64,
    ) {
        let fixes = arrivals(&raw);
        let cfg = ControlConfig::default();
        let initial = Knobs {
            delay: 40 * maritime::geo::time::MINUTE,
            seal_every: 30 * maritime::geo::time::MINUTE,
            ring_capacity: 65_536,
        };
        let shards = 8;
        let commit_every = 50usize;

        let run = |absorb_chunk: usize| {
            let mut ctl = AdaptiveController::new(cfg, initial);
            let mut window = ArrivalWindow::new(shards, cfg.fast_alpha, cfg.slow_alpha);
            let mut boundary = Timestamp::from_mins(0);
            for (i, f) in fixes.iter().enumerate() {
                window.observe(f.t, maritime::geo::vessel_shard(f.id, shards));
                if (i + 1) % absorb_chunk == 0 {
                    ctl.absorb(&mut window);
                }
                if (i + 1) % commit_every == 0 {
                    boundary += maritime::geo::time::MINUTE;
                    ctl.absorb(&mut window);
                    ctl.commit(boundary, (i as u64) % 97, i as u64);
                }
            }
            ctl.trace().to_vec()
        };
        prop_assert_eq!(run(1), run(chunk));
    }
}
