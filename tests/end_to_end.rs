//! Cross-crate integration tests: simulator → pipeline → analytics.

use maritime::core::decision::{DecisionConfig, DecisionSupport, OperatorPicture};
use maritime::core::{MaritimePipeline, PipelineConfig};
use maritime::events::EventKind;
use maritime::forecast::Predictor;
use maritime::geo::time::{HOUR, MINUTE};
use maritime::geo::Position;
use maritime::sim::corruption::CorruptionLabel;
use maritime::sim::{Scenario, ScenarioConfig};

fn build_pipeline(sim: &maritime::sim::SimOutput) -> MaritimePipeline {
    let mut config = PipelineConfig::regional(sim.world.bounds);
    config.events.zones = maritime::zones_of_world(&sim.world);
    MaritimePipeline::new(config).with_weather(sim.weather.clone())
}

#[test]
fn full_stack_detects_injected_deception() {
    let sim = Scenario::generate(ScenarioConfig::regional(101, 50, 4 * HOUR));
    let mut pipeline = build_pipeline(&sim);
    let events = pipeline.run_scenario(&sim);

    // Gap events cover most truly dark vessels.
    let mut flagged: Vec<u32> =
        events.iter().filter(|e| matches!(e.kind, EventKind::GapStart)).map(|e| e.vessel).collect();
    flagged.sort_unstable();
    flagged.dedup();
    let dark_recall = sim.dark_episodes.keys().filter(|v| flagged.contains(v)).count() as f64
        / sim.dark_episodes.len().max(1) as f64;
    assert!(dark_recall >= 0.7, "dark recall {dark_recall}");

    // Spoofers produce veracity alerts.
    let veracity_vessels: Vec<u32> = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::KinematicSpoofing { .. } | EventKind::IdentityConflict { .. }
            )
        })
        .map(|e| e.vessel)
        .collect();
    let spoof_caught = sim.spoof_episodes.keys().filter(|v| veracity_vessels.contains(v)).count();
    assert!(
        spoof_caught * 2 >= sim.spoof_episodes.len(),
        "caught {spoof_caught}/{} spoofers",
        sim.spoof_episodes.len()
    );

    // Identity fraud: the *victim's* MMSI shows the conflict.
    let victims: Vec<u32> = sim.vessels.iter().filter_map(|v| v.deception.cloned_mmsi).collect();
    assert!(!victims.is_empty());
    let victim_conflicts = veracity_vessels.iter().filter(|v| victims.contains(v)).count();
    assert!(victim_conflicts > 0, "no identity conflicts on cloned MMSIs");
}

#[test]
fn triage_reduces_and_annotates() {
    let sim = Scenario::generate(ScenarioConfig::regional(102, 30, 3 * HOUR));
    let mut pipeline = build_pipeline(&sim);
    let events = pipeline.run_scenario(&sim);
    let mut ds = DecisionSupport::new(DecisionConfig::default());
    let alerts: Vec<_> = events.iter().filter_map(|e| ds.triage(e)).collect();
    let (passed, suppressed) = ds.stats();
    assert_eq!(passed as usize, alerts.len());
    assert!(suppressed > 0, "severity filtering should suppress zone chatter");
    for a in &alerts {
        assert!(!a.explanation.is_empty());
        assert!(a.confidence.lo >= 0.0 && a.confidence.hi <= 1.0);
        assert!(a.confidence.lo <= a.confidence.hi);
    }
    let picture = OperatorPicture::assemble(&pipeline, &alerts);
    let text = picture.render();
    assert!(text.contains("tracks:"));
    assert!(text.contains("compression"));
}

#[test]
fn archive_supports_forecast_and_knn() {
    let sim = Scenario::generate(ScenarioConfig::regional_honest(103, 20, 3 * HOUR));
    let mut pipeline = build_pipeline(&sim);
    pipeline.run_scenario(&sim);

    // Compression is strong yet the archive answers queries.
    assert!(pipeline.compression_ratio() > 0.6);
    let store = pipeline.store();
    assert!(store.vessel_count() >= 15);

    // Forecast a vessel 15 minutes ahead using the learned route net.
    let vessel = *store.vessels().first().unwrap();
    let history = store.trajectory(vessel).unwrap();
    let at = pipeline.watermark() + 15 * MINUTE;
    let prediction = pipeline.route_predictor().predict(&history, at);
    assert!(prediction.is_some());

    // kNN near Marseille returns sorted, plausible results.
    let res = pipeline.knn(Position::new(43.28, 5.33), pipeline.watermark(), 8);
    assert!(!res.is_empty());
    for w in res.windows(2) {
        assert!(w[0].dist_m <= w[1].dist_m);
    }
    assert!(res[0].dist_m < 200_000.0);
}

#[test]
fn static_error_rate_recovered_by_validation() {
    let sim = Scenario::generate(ScenarioConfig::regional(104, 60, 3 * HOUR));
    let injected = sim.ais.iter().filter(|o| o.label == CorruptionLabel::StaticError).count();
    let statics = sim
        .ais
        .iter()
        .filter(|o| matches!(o.msg, maritime::ais::AisMessage::StaticVoyage(_)))
        .count();
    assert!(statics > 0 && injected > 0);

    let mut pipeline = build_pipeline(&sim);
    pipeline.run_scenario(&sim);
    let r = pipeline.report();
    // The validator finds what was injected (every injected defect is
    // detectable) with no false positives on clean messages.
    assert_eq!(r.static_flagged as usize, injected);
    let measured = r.static_error_rate();
    assert!((0.01..0.12).contains(&measured), "measured static error rate {measured}");
}

#[test]
fn wire_format_round_trip_through_pipeline_types() {
    // Encode simulated messages to AIVDM sentences and decode them back,
    // as a shore station would, then extract fixes.
    use maritime::ais::codec::{decode_payload, encode_payload};
    use maritime::ais::nmea::{parse_sentence, to_sentences, SentenceAssembler};

    let sim = Scenario::generate(ScenarioConfig::regional(105, 5, HOUR));
    let mut assembler = SentenceAssembler::new();
    let mut decoded = 0usize;
    for obs in sim.ais.iter().take(500) {
        let (bits, fill) = encode_payload(&obs.msg);
        for line in to_sentences(&bits, fill, 'A', 1) {
            let sentence = parse_sentence(&line).expect("valid sentence");
            if let Some(payload) = assembler.push(sentence).expect("assembly") {
                let msg = decode_payload(&payload).expect("decodable");
                assert_eq!(msg.mmsi(), obs.msg.mmsi());
                decoded += 1;
            }
        }
    }
    assert_eq!(decoded, 500.min(sim.ais.len()));
}
