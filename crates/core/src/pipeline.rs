//! The integrated pipeline: arrival-ordered observations in, event-time
//! ordered analytics out.

use crate::config::PipelineConfig;
use crate::query::{QueryService, QueryShared, SystemSnapshot};
use crate::report::{PipelineReport, StageTimer};
use mda_ais::messages::AisMessage;
use mda_ais::quality;
use mda_events::engine::EventEngine;
use mda_events::event::MaritimeEvent;
use mda_forecast::normalcy::NormalcyModel;
use mda_forecast::routenet::{RouteNetPredictor, RouteNetwork};
use mda_geo::{Fix, Position, Timestamp, VesselId};
use mda_semantics::enrich::Enricher;
use mda_semantics::store::TripleStore;
use mda_semantics::term::Interner;
use mda_sim::receivers::{RadarPlot, VmsReport};
use mda_sim::scenario::{AisObservation, SimOutput};
use mda_sim::weather::WeatherField;
use mda_store::knn::KnnEngine;
use mda_store::segment::SegmentConfig;
use mda_store::shards::{StIndexConfig, StoreConfig};
use mda_store::shared::SharedTrajectoryStore;
use mda_store::DurableStore;
use mda_stream::control::{AdaptiveController, ArrivalWindow, Knobs};
use mda_stream::reorder::ReorderBuffer;
use mda_stream::watermark::{BoundedOutOfOrderness, SealSchedule, TickSchedule};
use mda_synopses::compress::ThresholdCompressor;
use mda_track::fusion::Fuser;
use mda_track::sensor::{SensorKind, SensorReport};
use mda_viz::raster::DensityRaster;
use std::collections::HashMap;
use std::sync::Arc;

/// An observation entering the reorder stage.
#[derive(Debug, Clone)]
enum StreamItem {
    Ais(Fix),
    Radar(RadarPlot),
    Vms(VmsReport),
}

/// The integrated maritime pipeline (Figure 2).
pub struct MaritimePipeline {
    config: PipelineConfig,
    watermark: BoundedOutOfOrderness,
    reorder: ReorderBuffer<StreamItem>,
    fuser: Fuser,
    engine: EventEngine,
    compressors: HashMap<VesselId, ThresholdCompressor>,
    store: SharedTrajectoryStore,
    knn: KnnEngine,
    interner: Interner,
    graph: TripleStore,
    enricher: Enricher,
    vessel_terms: HashMap<VesselId, mda_semantics::term::TermId>,
    weather: Option<WeatherField>,
    route_net: RouteNetwork,
    normalcy: NormalcyModel,
    raster: DensityRaster,
    report: PipelineReport,
    ticks: TickSchedule,
    seals: SealSchedule,
    /// Serving-layer state shared with every [`QueryService`] handle.
    query: Arc<QueryShared>,
    /// Cache of the last published store snapshot: `snapshot(Some(prev))`
    /// re-clones only shards whose version moved since.
    store_snapshot: mda_store::StoreSnapshot,
    /// The route-network predictor currently published to readers.
    published_route: Arc<RouteNetPredictor>,
    /// Ticks since the published predictor was last rebuilt.
    ticks_since_refresh: u32,
    /// Stamp of the last published snapshot: each watermark is
    /// published at most once, so equal stamps always mean the same
    /// state (the `Stamped` contract).
    last_published: Timestamp,
    /// True while `finish` drains the stream: every publication
    /// refreshes the predictor, so each final stamp carries the route
    /// state exactly as of that stamp.
    draining: bool,
    /// Durable backing of the archive, when configured: the store
    /// handle above is this store's in-memory face.
    durable: Option<Arc<DurableStore>>,
    /// Event times at or below this were published durable by a
    /// previous run; re-pushed observations there are dropped as late
    /// (they are already in the archive, and accepting them would
    /// break the mark discipline recovery relies on).
    durable_floor: Timestamp,
    /// Arrival-side observation window of the adaptive controller
    /// (`None` when the pipeline runs static knobs).
    arrivals: Option<ArrivalWindow>,
    /// The adaptive controller: absorbs the window and commits knob
    /// moves (watermark delay, seal cadence, event-ring capacity) at
    /// aligned tick boundaries of the arrival frontier.
    control: Option<AdaptiveController>,
    /// The aligned frontier boundary of the last knob commit — the
    /// gate keeping the commit schedule one-per-boundary.
    last_control_commit: Timestamp,
}

impl MaritimePipeline {
    /// Build a pipeline from configuration. Zones for the event engine
    /// and the enricher come from `config.events.zones`.
    ///
    /// With [`PipelineConfig::durability`] set, the archive opens (or
    /// recovers) a [`DurableStore`] in the configured directory: a
    /// directory holding a previous run restores its cold segments,
    /// hot tier and published watermark before any new observation is
    /// accepted, and the first published stamp continues monotonically
    /// from the recovered one.
    ///
    /// # Panics
    ///
    /// Panics if the durable data directory cannot be opened or
    /// recovered (I/O error or corrupt manifest) — a pipeline asked
    /// for durability must not silently run without it.
    pub fn new(config: PipelineConfig) -> Self {
        let mut interner = Interner::new();
        let enrich_zones =
            config.events.zones.iter().map(|z| (z.name.clone(), z.area.clone())).collect();
        let enricher = Enricher::new(&mut interner, enrich_zones);
        let (rows, cols) = config.raster_shape;
        // The retention policy owns the live-state TTL so the detector
        // layer and the pipeline's own per-vessel maps (compressors,
        // term cache) evict together — but an explicitly customised
        // `events.vessel_ttl` wins over the retention default rather
        // than being silently discarded.
        let default_ttl = mda_events::engine::EngineConfig::default().vessel_ttl;
        let vessel_ttl = if config.events.vessel_ttl == default_ttl {
            config.retention.detector_ttl
        } else {
            config.events.vessel_ttl
        };
        let events_config =
            mda_events::engine::EngineConfig { vessel_ttl, ..config.events.clone() };
        // The archive is lock-striped by vessel hash; its per-shard
        // grid index is maintained at ingest time so window queries
        // never rebuild anything. Fixes older than the retention
        // hot horizon are sealed into compressed cold segments as
        // the watermark advances.
        let store_config = StoreConfig {
            shards: config.store_shards,
            st_index: Some(StIndexConfig {
                bounds: config.bounds,
                cell_deg: 0.1,
                slice: 30 * mda_geo::time::MINUTE,
            }),
            knn: None,
            seal: SegmentConfig {
                tolerance_m: config.retention.cold_tolerance_m,
                max_silence: config.synopsis.max_silence,
                ..SegmentConfig::default()
            },
        };
        // With durability configured the durable store owns the data
        // directory (recovering a previous run's archive if present)
        // and the pipeline holds its in-memory face; without it the
        // store is purely in memory, exactly as before.
        let (store, durable) = match &config.durability {
            Some(d) => {
                let durable = DurableStore::open(store_config, d)
                    .expect("open/recover the durable data directory");
                (durable.store().clone(), Some(Arc::new(durable)))
            }
            None => (SharedTrajectoryStore::with_config(store_config), None),
        };
        let durable_floor = durable.as_ref().map_or(Timestamp::MIN, |d| d.watermark());
        // Adaptive control: the static knobs become the initial values
        // (clamped into the configured bounds); the controller commits
        // moves only at aligned tick boundaries, so the knob trajectory
        // is a pure function of the event-time stream.
        let (arrivals, control) = match config.adaptive {
            Some(ctl) => {
                let initial = Knobs {
                    delay: config.watermark_delay,
                    seal_every: config.retention.seal_every,
                    ring_capacity: config.query.event_capacity,
                };
                (
                    Some(ArrivalWindow::new(config.store_shards, ctl.fast_alpha, ctl.slow_alpha)),
                    Some(AdaptiveController::new(ctl, initial)),
                )
            }
            None => (None, None),
        };
        // The knob values actually applied at construction: the static
        // configuration, clamped by the controller when one is present.
        let knobs0 = control.as_ref().map_or(
            Knobs {
                delay: config.watermark_delay,
                seal_every: config.retention.seal_every,
                ring_capacity: config.query.event_capacity,
            },
            |c| c.knobs(),
        );
        let route_net = RouteNetwork::new(config.bounds, config.model_cell_deg);
        // The serving layer starts on an empty snapshot; a fresh
        // pipeline stamps it MIN (the first tick publishes real
        // state), a recovered one stamps it with the recovered
        // watermark so reader stamps continue monotonically.
        let published_route = Arc::new(RouteNetPredictor::new(route_net.clone()));
        let store_snapshot = store.snapshot(None);
        let query = Arc::new(QueryShared::new(
            knobs0.ring_capacity,
            SystemSnapshot::new(
                durable_floor,
                store_snapshot.clone(),
                Arc::clone(&published_route),
                0,
                0,
            ),
        ));
        Self {
            watermark: BoundedOutOfOrderness::new(knobs0.delay),
            reorder: ReorderBuffer::new(),
            fuser: Fuser::new(config.fusion),
            engine: EventEngine::new(events_config),
            compressors: HashMap::new(),
            store,
            // The kNN horizon covers the watermark lag plus a coasting
            // margin, so snapshot queries anywhere in the freshness band
            // still see the fleet. Under adaptive control the lag can
            // grow to the delay clamp ceiling, so the horizon must
            // cover that worst case.
            knn: KnnEngine::new(
                0.05,
                config.adaptive.map_or(config.watermark_delay, |c| c.delay_bounds.1)
                    + 15 * mda_geo::time::MINUTE,
            ),
            interner,
            graph: TripleStore::new(),
            enricher,
            vessel_terms: HashMap::new(),
            weather: None,
            route_net,
            normalcy: NormalcyModel::new(config.bounds, config.model_cell_deg),
            raster: DensityRaster::new(config.bounds, rows, cols),
            report: PipelineReport::default(),
            ticks: TickSchedule::new(config.tick_interval),
            seals: SealSchedule::new(knobs0.seal_every, config.retention.hot_horizon),
            query,
            store_snapshot,
            published_route,
            ticks_since_refresh: 0,
            last_published: durable_floor,
            draining: false,
            durable,
            durable_floor,
            arrivals,
            control,
            last_control_commit: Timestamp::MIN,
            config,
        }
    }

    /// Attach a weather field for enrichment.
    pub fn with_weather(mut self, field: WeatherField) -> Self {
        self.weather = Some(field);
        self
    }

    /// Push one received AIS observation (arrival order). Returns the
    /// events whose event time became final.
    pub fn push_ais(&mut self, obs: &AisObservation) -> Vec<MaritimeEvent> {
        let _t = StageTimer::new(&mut self.report.ingest);
        self.report.ais_messages += 1;
        match &obs.msg {
            AisMessage::StaticVoyage(sv) => {
                self.report.static_messages += 1;
                if !quality::validate_static(sv).is_clean() {
                    self.report.static_flagged += 1;
                }
                drop(_t);
                Vec::new()
            }
            msg => {
                let Some(fix) = msg.to_fix(obs.t_sent) else {
                    self.report.invalid_messages += 1;
                    drop(_t);
                    return Vec::new();
                };
                drop(_t);
                self.enqueue(fix.t, StreamItem::Ais(fix))
            }
        }
    }

    /// Push one already-decoded AIS position fix (arrival order) — the
    /// raw-fix ingest path for feeds that bypass AIVDM decoding.
    /// Returns the events whose event time became final.
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// for i in 0..60i64 {
    ///     let pos = Position::new(43.0, 5.0 + 0.002 * i as f64);
    ///     pipeline.push_fix(Fix::new(1, Timestamp::from_mins(i), pos, 10.0, 90.0));
    /// }
    /// pipeline.finish();
    /// assert_eq!(pipeline.store().vessel_count(), 1);
    /// ```
    pub fn push_fix(&mut self, fix: Fix) -> Vec<MaritimeEvent> {
        self.enqueue(fix.t, StreamItem::Ais(fix))
    }

    /// Push a radar plot.
    pub fn push_radar(&mut self, plot: &RadarPlot) -> Vec<MaritimeEvent> {
        self.report.radar_plots += 1;
        self.enqueue(plot.t, StreamItem::Radar(*plot))
    }

    /// Push a VMS report.
    pub fn push_vms(&mut self, report: &VmsReport) -> Vec<MaritimeEvent> {
        self.report.vms_reports += 1;
        self.enqueue(report.t, StreamItem::Vms(*report))
    }

    fn enqueue(&mut self, t: Timestamp, item: StreamItem) -> Vec<MaritimeEvent> {
        // Adaptive control observes every AIS arrival — including ones
        // about to be dropped as late, since lateness pressure is
        // exactly the signal — keyed by the *store* shard of the
        // vessel, which is writer-count invariant. Radar/VMS routing
        // depends on the writer layout, so those streams are not
        // observed: the controller's inputs must be a pure function of
        // the event-time stream.
        if let (Some(w), StreamItem::Ais(fix)) = (self.arrivals.as_mut(), &item) {
            w.observe(t, mda_geo::vessel_shard(fix.id, self.config.store_shards));
        }
        // Replays of data a previous run already published durable are
        // late by definition: the recovered archive holds them, and the
        // WAL mark discipline needs post-recovery appends to stay past
        // the recovered watermark.
        if t <= self.durable_floor && self.durable_floor != Timestamp::MIN {
            self.report.dropped_late += 1;
            self.watermark.observe(t);
            return Vec::new();
        }
        let wm = {
            let _t = StageTimer::new(&mut self.report.reorder);
            if !self.reorder.push(t, item) {
                self.report.dropped_late += 1;
            }
            self.watermark.observe(t)
        };
        self.commit_control();
        let released = {
            let _t = StageTimer::new(&mut self.report.reorder);
            self.reorder.release(wm)
        };
        let events = self.advance(released, wm);
        // Finalised events feed the serving layer's bounded ring, so
        // `poll_since` consumers see them without touching the caller's
        // return path. (The ring may trail the published snapshot by
        // one ingest call; cursors make that harmless.)
        self.query.append_events(&events);
        // Watermark-driven retention: rotate fixes older than the hot
        // horizon into sealed cold segments. The schedule quantizes
        // cuts to aligned boundaries — a pure function of event time,
        // so identical runs seal identically.
        if let Some(cut) = self.seals.due(wm) {
            {
                let _t = StageTimer::new(&mut self.report.storage);
                // A durable seal persists the sealed segments and
                // rotates the WAL in the same sweep; this thread is
                // the only writer, so the seal sees a quiesced store.
                match &self.durable {
                    Some(d) => {
                        d.seal_before(cut).expect("persist seal sweep");
                    }
                    None => {
                        self.store.seal_before(cut);
                    }
                }
            }
            self.report.seal_sweeps += 1;
            let stats = self.tier_stats();
            self.report.record_tiers(&stats);
        }
        events
    }

    /// Frontier-clocked knob commit: absorb the arrival window and
    /// retune once per aligned `tick_interval` boundary *of the
    /// arrival frontier*. The frontier — not the watermark — is the
    /// controller's clock: a watermark-clocked commit schedule
    /// self-throttles, because widening the delay by Δ stalls the
    /// watermark (and with it the next watermark-aligned boundary)
    /// for exactly Δ of frontier time, blacking out control precisely
    /// while lateness is ramping. The frontier never stalls, and every
    /// input (absorbed observations, hot backlog, events emitted) is a
    /// pure function of the event-time stream, so identical streams
    /// still retune identically — the multi-writer pipeline commits
    /// the same function at its epoch starts.
    fn commit_control(&mut self) {
        let (Some(window), Some(ctl)) = (self.arrivals.as_mut(), self.control.as_mut()) else {
            return;
        };
        let Some(frontier) = self.watermark.frontier() else {
            return;
        };
        let tick = self.config.tick_interval.max(1);
        let aligned = Timestamp(frontier.millis().div_euclid(tick) * tick);
        if aligned <= self.last_control_commit {
            return;
        }
        self.last_control_commit = aligned;
        ctl.absorb(window);
        let hot = self.store.hot_len() as u64;
        let knobs = ctl.commit(aligned, hot, self.report.events_emitted);
        self.watermark.set_max_delay(knobs.delay);
        self.seals.set_every(knobs.seal_every);
        self.query.set_event_capacity(knobs.ring_capacity);
        self.report.record_control(ctl.gauges(), knobs);
    }

    /// Advance event time: interleave a watermark release with every
    /// due live-check tick, **by event time**.
    ///
    /// Tick boundaries are aligned to `tick_interval` (anchored at the
    /// first observation's boundary) and a boundary `T` fires after
    /// exactly the observations with `t <= T` — never after a later
    /// fix that happened to be released in the same call. Together
    /// with the engine's canonical batching this makes the whole
    /// tick/sweep/eviction schedule a pure function of the event-time
    /// stream: arrival jitter within the watermark delay cannot move a
    /// sweep relative to the data it sees.
    fn advance(
        &mut self,
        released: Vec<(Timestamp, StreamItem)>,
        wm: Timestamp,
    ) -> Vec<MaritimeEvent> {
        let mut events = Vec::new();
        let mut pending: Vec<(Timestamp, StreamItem)> = Vec::new();
        for (t, item) in released {
            // Boundaries strictly before this item fire first, each
            // after the data that precedes it.
            while let Some(boundary) = self.ticks.before_observation(t) {
                events.extend(self.process_released(std::mem::take(&mut pending)));
                events.extend(self.run_tick(boundary));
            }
            pending.push((t, item));
        }
        events.extend(self.process_released(pending));
        // Boundaries between the newest released item and the aligned
        // watermark: no more data at or before them can ever be
        // accepted, so they are complete and fire now.
        while let Some(boundary) = self.ticks.at_watermark(wm) {
            events.extend(self.run_tick(boundary));
        }
        events
    }

    /// One live-check tick at event time `t`: engine sweeps (dark
    /// vessels, rendezvous/collision, TTL eviction), propagation of
    /// evictions, track-lifecycle sweep.
    fn run_tick(&mut self, t: Timestamp) -> Vec<MaritimeEvent> {
        let events = {
            let _t = StageTimer::new(&mut self.report.events);
            self.engine.tick(t)
        };
        self.report.events_emitted += events.len() as u64;
        self.drop_evicted_state();
        self.fuser.sweep(t);
        self.report.record_detectors(self.engine.counts());
        self.report.live_vessels = self.engine.live_vessel_count() as u64;
        // Record the durability boundary *whether or not* anything is
        // published: ticks fire after exactly the data with event time
        // ≤ t, so `t` is a correct mark even for a write-only pipeline
        // whose publication is skipped below — durability must never
        // starve because nobody is reading.
        if let Some(d) = &self.durable {
            d.mark(t).expect("record durability mark");
        }
        // Publish the serving snapshot for this boundary: ticks fire
        // after exactly the data with event time ≤ t, so the snapshot
        // a reader sees at watermark t is a pure function of the
        // event-time stream up to t.
        self.publish(t);
        events
    }

    /// Publish a consistent snapshot at watermark `wm` to every
    /// [`QueryService`] handle. The store side reuses unchanged shards
    /// from the previous publication; the route-network predictor is
    /// rebuilt every `query.predictor_refresh_ticks` ticks (every
    /// publication while `finish` drains). Each stamp is published at
    /// most once — equal stamps always mean identical state.
    fn publish(&mut self, wm: Timestamp) {
        // Stamps are monotone and unique: a boundary at or behind the
        // last published stamp (possible when ingest continues after a
        // `finish`, whose stamp runs ahead of the tick grid) is not
        // re-published — readers must never observe a regressing or
        // mutating stamp.
        if wm <= self.last_published {
            return;
        }
        // A write-only pipeline (no outstanding QueryService handle —
        // ours is the only reference) skips the publication work
        // entirely: nobody can observe a snapshot, so cloning changed
        // hot shards and refreshing the predictor would be pure ingest
        // tax. The first boundary after a handle appears publishes as
        // usual. (The event ring is still fed — it is cheap relative
        // to event rates, and a late subscriber may replay retention.)
        if Arc::strong_count(&self.query) == 1 {
            return;
        }
        self.last_published = wm;
        let cadence = self.config.query.predictor_refresh_ticks.max(1);
        self.ticks_since_refresh += 1;
        if self.draining || self.ticks_since_refresh >= cadence {
            self.published_route = Arc::new(RouteNetPredictor::new(self.route_net.clone()));
            self.ticks_since_refresh = 0;
        }
        let snap = self.store.snapshot(Some(&self.store_snapshot));
        self.store_snapshot = snap.clone();
        self.query.publish(SystemSnapshot::new(
            wm,
            snap,
            Arc::clone(&self.published_route),
            self.engine.live_vessel_count() as u64,
            self.report.events_emitted,
        ));
    }

    /// Process a watermark release segment: consecutive AIS fixes are
    /// grouped into one batch for the sharded event engine (one
    /// shard-affine run per batch instead of a full dispatch per fix);
    /// radar/VMS items flush the current batch and go to fusion.
    fn process_released(&mut self, released: Vec<(Timestamp, StreamItem)>) -> Vec<MaritimeEvent> {
        let mut events = Vec::new();
        let mut batch: Vec<Fix> = Vec::new();
        for (_, item) in released {
            match item {
                StreamItem::Ais(fix) => batch.push(fix),
                StreamItem::Radar(plot) => {
                    if !batch.is_empty() {
                        events.extend(self.process_fix_batch(std::mem::take(&mut batch)));
                    }
                    let _t = StageTimer::new(&mut self.report.fusion);
                    self.fuser.ingest(&SensorReport {
                        kind: SensorKind::Radar,
                        t: plot.t,
                        pos: plot.pos,
                        claimed_id: None,
                        sog_kn: None,
                        cog_deg: None,
                        accuracy_m: None,
                    });
                }
                StreamItem::Vms(v) => {
                    if !batch.is_empty() {
                        events.extend(self.process_fix_batch(std::mem::take(&mut batch)));
                    }
                    let _t = StageTimer::new(&mut self.report.fusion);
                    self.fuser.ingest(&SensorReport {
                        kind: SensorKind::Vms,
                        t: v.t,
                        pos: v.pos,
                        claimed_id: Some(v.id),
                        sog_kn: None,
                        cog_deg: None,
                        accuracy_m: None,
                    });
                }
            }
        }
        if !batch.is_empty() {
            events.extend(self.process_fix_batch(batch));
        }
        events
    }

    fn process_fix_batch(&mut self, mut batch: Vec<Fix>) -> Vec<MaritimeEvent> {
        // Canonicalise here, not just inside the engine: the synopsis
        // and archive paths below must also see same-timestamp
        // duplicates in a content order, or an upstream shuffle within
        // the watermark delay could change which fix a compressor keeps.
        mda_events::canonical_sort(&mut batch);
        // Fusion.
        {
            let _t = StageTimer::new(&mut self.report.fusion);
            for fix in &batch {
                self.fuser.ingest(&SensorReport::from_fix(SensorKind::AisTerrestrial, fix));
            }
        }
        // Event recognition: one canonical shard-affine run per batch.
        let events = {
            let _t = StageTimer::new(&mut self.report.events);
            self.engine.observe_batch(&batch)
        };
        // Synopses → archive, models, enrichment.
        let mut kept_batch: Vec<Fix> = Vec::new();
        for fix in batch {
            let kept = {
                let _t = StageTimer::new(&mut self.report.synopses);
                let compressor = self
                    .compressors
                    .entry(fix.id)
                    .or_insert_with(|| ThresholdCompressor::new(self.config.synopsis));
                compressor.observe(fix)
            };
            {
                let _t = StageTimer::new(&mut self.report.analytics);
                self.raster.add(fix.pos);
                self.knn.update(fix);
                self.route_net.learn(&fix);
                self.normalcy.learn(&fix);
            }
            if let Some(kept) = kept {
                let _t = StageTimer::new(&mut self.report.storage);
                kept_batch.push(kept);
                let wind = self
                    .weather
                    .as_ref()
                    .map(|w| w.sample(kept.pos, kept.t).wind_mps)
                    .unwrap_or(5.0);
                let term = match self.vessel_terms.get(&kept.id) {
                    Some(t) => *t,
                    None => {
                        let t = self.interner.intern(&format!(":vessel/{}", kept.id));
                        self.vessel_terms.insert(kept.id, t);
                        t
                    }
                };
                self.enricher.enrich(&mut self.graph, term, &kept, wind);
            }
        }
        // One batched archive append (one shard lock + one merge per
        // touched shard) instead of a per-fix trickle: the batch is
        // already canonically sorted, so per-vessel order is what the
        // per-fix appends would have produced, minus the repeated
        // lookups and any O(n) sort-insert for residual disorder.
        if !kept_batch.is_empty() {
            let _t = StageTimer::new(&mut self.report.storage);
            self.store.append_batch(kept_batch.iter().copied());
        }
        // One WAL record per batch, before this call returns: the mark
        // for any boundary covering these fixes fires strictly later
        // (in `run_tick`), so the log can never trail a durable mark.
        if let Some(d) = &self.durable {
            let _t = StageTimer::new(&mut self.report.storage);
            d.log_batch(&kept_batch).expect("write-ahead-log fix batch");
        }
        self.report.events_emitted += events.len() as u64;
        events
    }

    /// Propagate engine TTL evictions into the pipeline's own
    /// per-vessel maps: dead vessels must not pin compressors or term
    /// cache entries. (Re-interning a returning vessel yields the same
    /// term id, and a fresh compressor simply keeps its next fix.)
    fn drop_evicted_state(&mut self) {
        let gone = self.engine.take_evicted();
        if gone.is_empty() {
            return;
        }
        self.report.evicted_vessels += gone.len() as u64;
        for id in gone {
            self.compressors.remove(&id);
            self.vessel_terms.remove(&id);
        }
    }

    /// Drain everything buffered (end of stream); returns the remaining
    /// events.
    ///
    /// `finish` is terminal for the data plane: it releases the reorder
    /// buffer up to `Timestamp::MAX`, so observations pushed afterwards
    /// are dropped as late (counted in `dropped_late`) — they can no
    /// longer be emitted in order. The published serving stamp runs
    /// ahead of the tick grid to the final watermark and never
    /// regresses.
    pub fn finish(&mut self) -> Vec<MaritimeEvent> {
        let remaining = self.reorder.drain_all();
        // `now` is the maximum event time seen (watermark + delay):
        // independent of arrival order, so the final sweeps are too.
        // The *current* delay, not the configured one — adaptive
        // control may have retuned it.
        let now = self.watermark.current().saturating_add(self.watermark.max_delay());
        // Every publication in this drain refreshes the predictor, so
        // the final stamps carry route state exactly as of each stamp.
        self.draining = true;
        let mut events = self.advance(remaining, now);
        if self.ticks.anchored() && now > self.ticks.last_boundary() {
            events.extend(self.run_tick(now));
        }
        self.report.dropped_late += self.reorder.dropped_late();
        // Leave the tier counters fresh for whoever reads the report.
        let stats = self.tier_stats();
        self.report.record_tiers(&stats);
        self.query.append_events(&events);
        // End-of-stream publication; `publish` itself dedupes if the
        // trailing tick already published this stamp.
        self.publish(now);
        self.draining = false;
        events
    }

    /// Run a whole simulated scenario (AIS + radar + VMS merged by
    /// arrival time). Returns all recognised events.
    pub fn run_scenario(&mut self, sim: &SimOutput) -> Vec<MaritimeEvent> {
        enum Arrival<'a> {
            Ais(&'a AisObservation),
            Radar(&'a RadarPlot),
            Vms(&'a VmsReport),
        }
        let mut merged: Vec<(Timestamp, Arrival)> =
            Vec::with_capacity(sim.ais.len() + sim.radar.len() + sim.vms.len());
        merged.extend(sim.ais.iter().map(|o| (o.t_received, Arrival::Ais(o))));
        merged.extend(sim.radar.iter().map(|p| (p.t, Arrival::Radar(p))));
        merged.extend(sim.vms.iter().map(|v| (v.t, Arrival::Vms(v))));
        merged.sort_by_key(|(t, _)| *t);

        let mut events = Vec::new();
        for (_, item) in merged {
            match item {
                Arrival::Ais(o) => events.extend(self.push_ais(o)),
                Arrival::Radar(p) => events.extend(self.push_radar(p)),
                Arrival::Vms(v) => events.extend(self.push_vms(v)),
            }
        }
        events.extend(self.finish());
        events
    }

    // ---- accessors for decision support, experiments and examples ----

    /// A cloneable, thread-safe read front-end over this pipeline.
    ///
    /// Hand clones to as many reader threads as you like: they serve
    /// point/window/kNN/predictive queries and event subscriptions
    /// against consistent watermark-stamped snapshots, published at
    /// every tick boundary, while this pipeline keeps ingesting. See
    /// [`QueryService`] for the vocabulary and the isolation contract.
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// let service = pipeline.query_service();
    /// let reader = std::thread::spawn({
    ///     let service = service.clone();
    ///     move || service.fleet().watermark
    /// });
    /// reader.join().unwrap();
    /// for i in 0..60i64 {
    ///     let pos = Position::new(43.0, 5.0 + 0.002 * i as f64);
    ///     pipeline.push_fix(Fix::new(1, Timestamp::from_mins(i), pos, 10.0, 90.0));
    /// }
    /// pipeline.finish();
    /// assert!(service.latest(1).value.is_some());
    /// ```
    pub fn query_service(&mut self) -> QueryService {
        let service = QueryService::new(Arc::clone(&self.query));
        // Publication is skipped while no handle exists (write-only
        // pipelines pay nothing), so catch a newly created handle up
        // to the current frontier: everything released so far has
        // event time ≤ the watermark, making `wm` a content-correct
        // stamp even off the tick grid.
        let wm = self.watermark.current();
        if wm > self.last_published {
            self.publish(wm);
        }
        service
    }

    /// Per-stage metrics.
    pub fn report(&self) -> &PipelineReport {
        &self.report
    }

    /// The fused track picture.
    pub fn fuser(&self) -> &Fuser {
        &self.fuser
    }

    /// The event engine (counters, live index).
    pub fn engine(&self) -> &EventEngine {
        &self.engine
    }

    /// The archival (synopsis) store.
    pub fn store(&self) -> &SharedTrajectoryStore {
        &self.store
    }

    /// Per-tier archive accounting: hot/cold fix counts, approximate
    /// bytes and segment count, fresh from the store. With durability
    /// configured, `disk_bytes` reports the real on-disk footprint
    /// (segment files + WAL + manifest); otherwise it is zero.
    pub fn tier_stats(&self) -> mda_store::TierStats {
        match &self.durable {
            Some(d) => d.tier_stats(),
            None => self.store.tier_stats(),
        }
    }

    /// The durable backing store, when durability is configured — for
    /// inspecting the [`mda_store::RecoveryReport`] or the durable
    /// watermark.
    pub fn durable(&self) -> Option<&DurableStore> {
        self.durable.as_deref()
    }

    /// Archived fixes inside a spatial window and time range, served by
    /// the store's incrementally-maintained per-shard grid indexes for
    /// the hot tier and fence-filtered segment decodes for the cold
    /// tier.
    pub fn archive_window(
        &self,
        area: &mda_geo::BoundingBox,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<Fix> {
        self.store.window(area, from, to)
    }

    /// Bulk-load historical fixes into the archive with `workers` ingest
    /// threads routed shard-affine: each worker exclusively owns a set
    /// of store shards, so workers never contend on a shard lock. Fixes
    /// bypass the streaming stages (no compression, events or model
    /// learning) — this is the archive backfill path. Per-vessel input
    /// order is preserved. Returns the number of fixes loaded.
    pub fn backfill_archive(&self, fixes: Vec<Fix>, workers: usize) -> usize {
        let n = fixes.len();
        let shards = self.store.shard_count();
        mda_stream::runner::run_shard_affine(
            fixes,
            workers.max(1),
            shards,
            |f: &Fix| self.store.shard_of(f.id),
            || {
                let store = self.store.clone();
                let durable = self.durable.clone();
                move |batch: Vec<Fix>| {
                    if let Some(d) = &durable {
                        d.log_batch(&batch).expect("write-ahead-log backfill batch");
                    }
                    store.append_batch(batch);
                    Vec::<()>::new()
                }
            },
        );
        n
    }

    /// Snapshot kNN over the live fleet.
    pub fn knn(&self, query: Position, t: Timestamp, k: usize) -> Vec<mda_store::knn::KnnResult> {
        self.knn.knn(query, t, k)
    }

    /// The live knowledge graph and its interner.
    pub fn graph(&self) -> (&TripleStore, &Interner) {
        (&self.graph, &self.interner)
    }

    /// A predictor over the route network learned so far.
    pub fn route_predictor(&self) -> RouteNetPredictor {
        RouteNetPredictor::new(self.route_net.clone())
    }

    /// The learned normalcy model.
    pub fn normalcy(&self) -> &NormalcyModel {
        &self.normalcy
    }

    /// The traffic-density raster accumulated so far.
    pub fn raster(&self) -> &DensityRaster {
        &self.raster
    }

    /// Overall synopsis compression ratio across vessels.
    pub fn compression_ratio(&self) -> f64 {
        // lint:allow(deterministic-iteration): commutative sum over
        // per-vessel counters; the fold result is order-free.
        let (seen, kept) = self.compressors.values().fold((0u64, 0u64), |(s, k), c| {
            let (cs, ck) = c.counts();
            (s + cs, k + ck)
        });
        if seen == 0 {
            0.0
        } else {
            1.0 - kept as f64 / seen as f64
        }
    }

    /// Current event-time watermark.
    pub fn watermark(&self) -> Timestamp {
        self.watermark.current()
    }

    /// The adaptive controller's committed knob trajectory —
    /// `(boundary, knobs)` per commit, in boundary order. Empty for a
    /// pipeline running static knobs. Two runs over the same event-time
    /// stream produce identical traces regardless of arrival jitter
    /// within the watermark delay.
    pub fn control_trace(&self) -> &[(Timestamp, Knobs)] {
        self.control.as_ref().map_or(&[], |c| c.trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_events::zone::NamedZone;
    use mda_geo::time::HOUR;
    use mda_geo::BoundingBox;
    use mda_sim::scenario::{Scenario, ScenarioConfig};

    fn pipeline_for(sim: &SimOutput) -> MaritimePipeline {
        let mut config = PipelineConfig::regional(sim.world.bounds);
        config.events.zones = sim
            .world
            .zones
            .iter()
            .map(|z| NamedZone {
                name: z.name.clone(),
                area: z.area.clone(),
                protected: z.kind == mda_sim::world::ZoneKind::ProtectedArea,
            })
            .collect();
        MaritimePipeline::new(config).with_weather(sim.weather.clone())
    }

    #[test]
    fn end_to_end_regional_scenario() {
        let sim = Scenario::generate(ScenarioConfig::regional(42, 25, 3 * HOUR));
        let mut p = pipeline_for(&sim);
        let events = p.run_scenario(&sim);

        // The pipeline ingested everything.
        let r = p.report();
        assert_eq!(r.ais_messages as usize, sim.ais.len());
        assert_eq!(r.radar_plots as usize, sim.radar.len());
        assert_eq!(r.vms_reports as usize, sim.vms.len());

        // Static quality issues were found at roughly the injected rate.
        assert!(r.static_messages > 0);
        assert!(r.static_flagged > 0, "5% static errors must be flagged");

        // Synopses compress heavily but the archive is non-empty.
        assert!(p.compression_ratio() > 0.5, "ratio {}", p.compression_ratio());
        assert!(!p.store().is_empty());

        // Tracks exist for (most of) the fleet.
        let (live, confirmed, _) = p.fuser().stats();
        assert!(live >= 20, "live tracks {live}");
        assert!(confirmed >= 15, "confirmed {confirmed}");

        // Dark vessels produced gap events.
        assert!(!events.is_empty());
        assert!(
            events.iter().any(|e| matches!(e.kind, mda_events::event::EventKind::GapStart)),
            "dark vessels must trigger gaps"
        );

        // The knowledge graph got populated.
        let (graph, _) = p.graph();
        assert!(graph.len() > 50, "graph size {}", graph.len());

        // Density raster covers the region.
        assert!(p.raster().total() > 1_000);
    }

    #[test]
    fn knn_and_forecast_available_after_run() {
        let sim = Scenario::generate(ScenarioConfig::regional_honest(7, 15, 2 * HOUR));
        let mut p = pipeline_for(&sim);
        p.run_scenario(&sim);

        let t = p.watermark();
        let near = p.knn(Position::new(43.0, 5.0), t, 5);
        assert!(!near.is_empty());

        // Forecast from any vessel's archived synopsis.
        let vessel = *p.store().vessels().first().unwrap();
        let history = p.store().trajectory(vessel).unwrap();
        let predictor = p.route_predictor();
        use mda_forecast::Predictor;
        let predicted = predictor.predict(&history, t + 10 * mda_geo::time::MINUTE);
        assert!(predicted.is_some());

        // Normalcy model learned the region.
        assert!(p.normalcy().cell_count() > 10);
    }

    #[test]
    fn watermark_discipline_orders_disordered_input() {
        let sim = Scenario::generate(ScenarioConfig::regional(9, 10, 2 * HOUR));
        // Verify the input really is event-time disordered.
        let disordered = sim.ais.windows(2).any(|w| w[0].t_sent > w[1].t_sent);
        assert!(disordered);
        let mut p = pipeline_for(&sim);
        p.run_scenario(&sim);
        // Late-beyond-watermark drops stay tiny.
        let r = p.report();
        let drop_rate = r.dropped_late as f64 / r.ais_messages.max(1) as f64;
        assert!(drop_rate < 0.05, "drop rate {drop_rate}");
    }

    #[test]
    fn backfill_loads_archive_shard_affine() {
        let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
        let p = MaritimePipeline::new(PipelineConfig::regional(bounds));
        // 50 vessels × 40 fixes, interleaved arrival.
        let mut fixes = Vec::new();
        for i in 0..40i64 {
            for v in 1..=50u32 {
                fixes.push(Fix::new(
                    v,
                    Timestamp::from_mins(i),
                    Position::new(42.2 + f64::from(v) * 0.03, 3.2 + i as f64 * 0.05),
                    10.0,
                    90.0,
                ));
            }
        }
        assert_eq!(p.backfill_archive(fixes, 4), 2_000);
        assert_eq!(p.store().len(), 2_000);
        assert_eq!(p.store().vessel_count(), 50);
        // Per-vessel order survived parallel ingest.
        for id in p.store().vessels() {
            let traj = p.store().trajectory(id).unwrap();
            assert_eq!(traj.len(), 40);
            assert!(traj.windows(2).all(|w| w[0].t <= w[1].t));
        }
        // The incrementally-maintained grid serves window queries.
        let window = p.archive_window(
            &BoundingBox::new(42.0, 3.0, 44.0, 3.5),
            Timestamp::from_mins(0),
            Timestamp::from_mins(5),
        );
        assert!(!window.is_empty());
        assert!(window.iter().all(|f| f.pos.lon <= 3.5 && f.t <= Timestamp::from_mins(5)));
    }

    #[test]
    fn watermark_advance_seals_old_fixes_cold() {
        let sim = Scenario::generate(ScenarioConfig::regional(13, 20, 4 * HOUR));
        let mut p = pipeline_for(&sim);
        p.run_scenario(&sim);
        let r = p.report();
        // A 4 h scenario with a 1 h hot horizon must have sealed.
        assert!(r.seal_sweeps > 0, "no seal sweeps ran");
        assert!(r.cold_fixes > 0, "nothing was sealed cold");
        assert!(r.cold_segments > 0);
        assert_eq!(r.hot_fixes + r.cold_fixes, p.store().len() as u64);
        // The report exposes both tiers' sizes. (Density claims live in
        // the c11 bench over dense raw fixes; the live archive stores
        // already-thinned synopses, so per-segment headers dominate.)
        let rows = r.tier_rows();
        assert_eq!(rows[0].1, r.hot_fixes);
        assert_eq!(rows[1].1, r.cold_fixes);
        assert!(r.cold_bytes > 0);
        // Cross-tier reads keep working: the full trajectory of any
        // vessel spans sealed and hot fixes seamlessly.
        let id = *p.store().vessels().first().unwrap();
        let traj = p.store().trajectory(id).unwrap();
        assert!(traj.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn published_stamps_never_regress_across_reingest() {
        // `finish` stamps ahead of the tick grid (watermark + delay);
        // continued ingest afterwards fires tick boundaries *behind*
        // that stamp, which must not be re-published: readers hold the
        // monotone-stamp contract.
        let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
        let mut p = MaritimePipeline::new(PipelineConfig::regional(bounds));
        let svc = p.query_service();
        let fix_at = |i: i64| {
            Fix::new(
                1,
                Timestamp::from_mins(i),
                Position::new(43.0, 3.2 + 0.001 * i as f64),
                10.0,
                90.0,
            )
        };
        for i in 0..60 {
            p.push_fix(fix_at(i));
        }
        p.finish();
        let after_finish = svc.watermark();
        assert!(after_finish > Timestamp::MIN);
        let mut wm = after_finish;
        for i in 60..240 {
            p.push_fix(fix_at(i));
            let now = svc.watermark();
            assert!(now >= wm, "stamp regressed after finish: {now} < {wm}");
            wm = now;
        }
        p.finish();
        assert!(svc.watermark() >= after_finish);
    }

    #[test]
    fn adaptive_pipeline_retunes_within_bounds_and_deterministically() {
        use mda_stream::control::ControlConfig;
        let sim = Scenario::generate(ScenarioConfig::regional(21, 20, 3 * HOUR));
        let config = PipelineConfig::adaptive(sim.world.bounds);
        let mut p = MaritimePipeline::new(config.clone());
        p.run_scenario(&sim);

        let trace = p.control_trace();
        assert!(!trace.is_empty(), "a 3 h run must commit knob moves");
        // Boundaries strictly increase; every knob stays clamped.
        assert!(trace.windows(2).all(|w| w[0].0 < w[1].0));
        let cfg = ControlConfig::default();
        for (_, k) in trace {
            assert!(cfg.delay_bounds.0 <= k.delay && k.delay <= cfg.delay_bounds.1);
            assert!(cfg.seal_bounds.0 <= k.seal_every && k.seal_every <= cfg.seal_bounds.1);
            assert!(cfg.ring_bounds.0 <= k.ring_capacity && k.ring_capacity <= cfg.ring_bounds.1);
        }
        // The report surfaces the controller's last commit.
        let status = p.report().control.expect("control status recorded");
        assert_eq!(status.knobs, trace.last().unwrap().1);
        assert!(status.gauges.commits as usize == trace.len());
        assert!(!p.report().control_rows().is_empty());

        // Re-running the identical scenario reproduces the knob
        // trajectory bit-for-bit: the controller sees only event-time
        // observables.
        let mut p2 = MaritimePipeline::new(config);
        p2.run_scenario(&sim);
        assert_eq!(p.control_trace(), p2.control_trace());
    }

    #[test]
    fn empty_bounds_pipeline_is_harmless() {
        let config = PipelineConfig::regional(BoundingBox::new(0.0, 0.0, 1.0, 1.0));
        let mut p = MaritimePipeline::new(config);
        assert!(p.finish().is_empty());
        assert_eq!(p.compression_ratio(), 0.0);
    }
}
