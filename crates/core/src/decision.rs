//! Decision support (paper §4): filtered, explained, uncertainty-
//! annotated alerts and the operator picture.
//!
//! The paper's four requirements for decision support are implemented
//! directly: (1) *judicious filtering* — severity thresholds and per-
//! vessel rate limiting; (2) *separation of events from context* — the
//! alert carries the event, the explanation renders the context; (3)
//! *adequate uncertainty representation* — every alert carries an
//! interval-valued confidence derived from the event kind and the
//! engine's corroboration; (4) *human-system synergy* — explanations
//! are plain sentences, and the operator picture is a compact summary
//! rather than a raw event stream.

use mda_events::event::{EventKind, MaritimeEvent, Severity};
use mda_geo::{Timestamp, VesselId};
use mda_uncertainty::interval::ProbInterval;
use std::collections::HashMap;

/// An operator-facing alert.
#[derive(Debug, Clone)]
pub struct Alert {
    /// The underlying event.
    pub event: MaritimeEvent,
    /// Interval-valued confidence that the alert reflects a real
    /// situation (width = second-order uncertainty, per §4).
    pub confidence: ProbInterval,
    /// A plain-language explanation for the operator.
    pub explanation: String,
}

/// Decision-support configuration.
#[derive(Debug, Clone, Copy)]
pub struct DecisionConfig {
    /// Drop events below this severity.
    pub min_severity: Severity,
    /// At most one alert of the same kind per vessel within this window.
    pub dedup_window: mda_geo::DurationMs,
}

impl Default for DecisionConfig {
    fn default() -> Self {
        Self { min_severity: Severity::Warning, dedup_window: 30 * mda_geo::time::MINUTE }
    }
}

/// The decision-support stage.
#[derive(Debug)]
pub struct DecisionSupport {
    config: DecisionConfig,
    recent: HashMap<(VesselId, &'static str), Timestamp>,
    suppressed: u64,
    passed: u64,
}

impl DecisionSupport {
    /// New stage.
    pub fn new(config: DecisionConfig) -> Self {
        Self { config, recent: HashMap::new(), suppressed: 0, passed: 0 }
    }

    /// Filter, deduplicate and annotate one event.
    pub fn triage(&mut self, event: &MaritimeEvent) -> Option<Alert> {
        if event.severity() < self.config.min_severity {
            self.suppressed += 1;
            return None;
        }
        let key = (event.vessel, event.kind.label());
        if let Some(last) = self.recent.get(&key) {
            if event.t - *last < self.config.dedup_window {
                self.suppressed += 1;
                return None;
            }
        }
        self.recent.insert(key, event.t);
        self.passed += 1;
        Some(Alert {
            event: event.clone(),
            confidence: confidence_of(&event.kind),
            explanation: explain(event),
        })
    }

    /// `(alerts passed, events suppressed)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.passed, self.suppressed)
    }
}

/// Interval confidence by event kind: hard kinematic evidence is
/// narrow/high; behavioural inferences are wider (the honesty the paper
/// demands when "communicating to the user faithful information").
fn confidence_of(kind: &EventKind) -> ProbInterval {
    match kind {
        EventKind::IdentityConflict { .. } => ProbInterval::new(0.9, 0.99),
        EventKind::KinematicSpoofing { implied_speed_kn } => {
            // The wilder the implied speed, the tighter the call.
            if *implied_speed_kn > 200.0 {
                ProbInterval::new(0.9, 0.99)
            } else {
                ProbInterval::new(0.7, 0.95)
            }
        }
        EventKind::CollisionRisk { .. } => ProbInterval::new(0.8, 0.95),
        EventKind::GapStart | EventKind::GapEnd { .. } => ProbInterval::new(0.85, 1.0),
        EventKind::IllegalFishing { .. } => ProbInterval::new(0.5, 0.9),
        EventKind::Loitering { .. } => ProbInterval::new(0.5, 0.85),
        EventKind::Rendezvous { .. } => ProbInterval::new(0.4, 0.85),
        EventKind::ZoneEntry { .. } | EventKind::ZoneExit { .. } => ProbInterval::precise(0.99),
    }
}

/// Render a plain-language explanation.
fn explain(event: &MaritimeEvent) -> String {
    let v = event.vessel;
    match &event.kind {
        EventKind::GapStart => {
            format!("Vessel {v} stopped transmitting AIS; last seen at {}.", event.pos)
        }
        EventKind::GapEnd { minutes } => {
            format!("Vessel {v} resumed transmitting after {minutes:.0} min of silence.")
        }
        EventKind::KinematicSpoofing { implied_speed_kn } => format!(
            "Vessel {v} reported positions implying {implied_speed_kn:.0} kn — \
             physically impossible; GPS manipulation suspected."
        ),
        EventKind::IdentityConflict { separation_km } => format!(
            "MMSI {v} transmitted from two positions {separation_km:.0} km apart \
             near-simultaneously; identity cloning suspected."
        ),
        EventKind::ZoneEntry { zone } => format!("Vessel {v} entered {zone}."),
        EventKind::ZoneExit { zone, dwell_min } => {
            format!("Vessel {v} left {zone} after {dwell_min:.0} min.")
        }
        EventKind::IllegalFishing { zone } => {
            format!("Vessel {v} moving at trawling speed inside protected area {zone}.")
        }
        EventKind::Loitering { radius_m, minutes } => {
            format!("Vessel {v} has loitered within {radius_m:.0} m for {minutes:.0} min at sea.")
        }
        EventKind::Rendezvous { other, distance_m, minutes } => format!(
            "Vessels {v} and {other} stayed {distance_m:.0} m apart for {minutes:.0} min \
             at sea — possible transfer."
        ),
        EventKind::CollisionRisk { other, dcpa_m, tcpa_s } => format!(
            "Vessels {v} and {other} are projected to pass {dcpa_m:.0} m apart \
             in {:.0} min.",
            tcpa_s / 60.0
        ),
    }
}

/// A compact situation summary for the console.
#[derive(Debug, Clone, Default)]
pub struct OperatorPicture {
    /// Live tracks (total, confirmed).
    pub tracks: (usize, usize),
    /// Alerts by kind label.
    pub alerts_by_kind: HashMap<&'static str, u64>,
    /// Vessels currently flagged dark.
    pub dark_vessels: Vec<VesselId>,
    /// Overall synopsis compression ratio.
    pub compression_ratio: f64,
    /// Watermark (how far event time has progressed).
    pub watermark: Timestamp,
}

impl OperatorPicture {
    /// Assemble the picture from a pipeline and a set of alerts.
    pub fn assemble(
        pipeline: &crate::pipeline::MaritimePipeline,
        alerts: &[Alert],
    ) -> OperatorPicture {
        let (live, confirmed, _) = pipeline.fuser().stats();
        let mut alerts_by_kind: HashMap<&'static str, u64> = HashMap::new();
        let mut dark = Vec::new();
        for a in alerts {
            *alerts_by_kind.entry(a.event.kind.label()).or_insert(0) += 1;
            if matches!(a.event.kind, EventKind::GapStart) {
                dark.push(a.event.vessel);
            }
        }
        dark.sort_unstable();
        dark.dedup();
        OperatorPicture {
            tracks: (live, confirmed),
            alerts_by_kind,
            dark_vessels: dark,
            compression_ratio: pipeline.compression_ratio(),
            watermark: pipeline.watermark(),
        }
    }

    /// Render as console text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "OPERATOR PICTURE @ {}\n  tracks: {} live / {} confirmed\n  synopsis compression: {:.1}%\n",
            self.watermark,
            self.tracks.0,
            self.tracks.1,
            self.compression_ratio * 100.0
        ));
        let mut kinds: Vec<(&&str, &u64)> = self.alerts_by_kind.iter().collect();
        kinds.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (kind, n) in kinds {
            out.push_str(&format!("  {kind}: {n}\n"));
        }
        if !self.dark_vessels.is_empty() {
            out.push_str(&format!("  dark vessels: {:?}\n", self.dark_vessels));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::Position;

    fn event(kind: EventKind, vessel: u32, t_min: i64) -> MaritimeEvent {
        MaritimeEvent {
            t: Timestamp::from_mins(t_min),
            vessel,
            pos: Position::new(43.0, 5.0),
            kind,
        }
    }

    #[test]
    fn severity_filter() {
        let mut ds = DecisionSupport::new(DecisionConfig::default());
        // Info-level zone entry is suppressed.
        assert!(ds.triage(&event(EventKind::ZoneEntry { zone: "A".into() }, 1, 0)).is_none());
        // Alert-level spoofing passes.
        assert!(ds
            .triage(&event(EventKind::KinematicSpoofing { implied_speed_kn: 300.0 }, 1, 0))
            .is_some());
        let (passed, suppressed) = ds.stats();
        assert_eq!((passed, suppressed), (1, 1));
    }

    #[test]
    fn dedup_window_rate_limits() {
        let mut ds = DecisionSupport::new(DecisionConfig::default());
        let mk = |t| event(EventKind::Loitering { radius_m: 500.0, minutes: 40.0 }, 7, t);
        assert!(ds.triage(&mk(0)).is_some());
        assert!(ds.triage(&mk(10)).is_none(), "same kind within window");
        assert!(ds.triage(&mk(45)).is_some(), "window elapsed");
        // Different vessel is independent.
        let other = event(EventKind::Loitering { radius_m: 500.0, minutes: 40.0 }, 8, 10);
        assert!(ds.triage(&other).is_some());
    }

    #[test]
    fn confidence_reflects_evidence_strength() {
        let hard = confidence_of(&EventKind::IdentityConflict { separation_km: 60.0 });
        let soft =
            confidence_of(&EventKind::Rendezvous { other: 2, distance_m: 200.0, minutes: 30.0 });
        assert!(hard.lo > soft.lo);
        assert!(hard.width() < soft.width(), "behavioural calls carry wider uncertainty");
    }

    #[test]
    fn explanations_are_specific() {
        let e = event(EventKind::CollisionRisk { other: 9, dcpa_m: 120.0, tcpa_s: 600.0 }, 4, 0);
        let text = explain(&e);
        assert!(text.contains("120 m"));
        assert!(text.contains("10 min"));
        assert!(text.contains('4') && text.contains('9'));
    }

    #[test]
    fn picture_renders() {
        let mut ds = DecisionSupport::new(DecisionConfig::default());
        let alerts: Vec<Alert> = [
            event(EventKind::GapStart, 1, 0),
            event(EventKind::GapStart, 2, 0),
            event(EventKind::KinematicSpoofing { implied_speed_kn: 150.0 }, 3, 0),
        ]
        .iter()
        .filter_map(|e| ds.triage(e))
        .collect();
        assert_eq!(alerts.len(), 3);
        let mut picture = OperatorPicture::default();
        for a in &alerts {
            *picture.alerts_by_kind.entry(a.event.kind.label()).or_insert(0) += 1;
            if matches!(a.event.kind, EventKind::GapStart) {
                picture.dark_vessels.push(a.event.vessel);
            }
        }
        let text = picture.render();
        assert!(text.contains("gap-start: 2"));
        assert!(text.contains("dark vessels"));
    }
}
