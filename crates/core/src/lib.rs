//! The integrated maritime information infrastructure (paper Figure 2).
//!
//! This crate wires every substrate into the architecture the paper
//! sketches: in-situ processing of streaming data, trajectory
//! reconstruction and synopses, multi-source fusion, complex event
//! recognition, semantic enrichment, forecasting, archival storage, and
//! decision support with explicit uncertainty.
//!
//! ```text
//!  AIS/radar/VMS ─▶ validate ─▶ reorder (watermarks) ─▶ fuse ─▶ events
//!                      │             │                    │       │
//!                      ▼             ▼                    ▼       ▼
//!                   quality      synopses ─▶ archive   forecast  alerts
//!                   metrics      enrichment ─▶ knowledge graph    │
//!                                                                 ▼
//!                                                       operator picture
//! ```
//!
//! - [`config`] — one configuration struct for the whole pipeline.
//! - [`pipeline`] — [`pipeline::MaritimePipeline`]: push observations
//!   in arrival order, get events and an updated picture out.
//! - [`multi`] — [`multi::MultiWriterPipeline`]: the same contract
//!   over N shard-owning writer lanes synchronised by a tick-boundary
//!   barrier; everything observable is writer-count invariant.
//! - [`query`] — the serving layer: [`query::QueryService`], a
//!   cloneable read front-end answering point/window/kNN/predictive
//!   queries and event subscriptions from consistent watermark-stamped
//!   snapshots while ingest runs.
//! - [`decision`] — decision support (paper §4): severity filtering,
//!   explanation strings, interval-valued confidence, and the
//!   [`decision::OperatorPicture`].
//! - [`report`] — the per-stage metrics the E2 experiment prints.

pub mod config;
pub mod decision;
pub mod multi;
pub mod pipeline;
pub mod query;
pub mod report;

pub use config::{PipelineConfig, QueryConfig, RetentionPolicy};
pub use decision::{Alert, DecisionSupport, OperatorPicture};
pub use multi::MultiWriterPipeline;
pub use pipeline::MaritimePipeline;
pub use query::{FleetSummary, PredictedPosition, QueryService, Stamped, SystemSnapshot};
pub use report::PipelineReport;
