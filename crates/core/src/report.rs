//! Pipeline metrics: the numbers behind the E2 experiment table.

use mda_stream::control::{ControlGauges, Knobs};
use std::time::Instant;

/// Adaptive-control status as of the last knob commit: the smoothed
/// observables and the knob values they produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlStatus {
    /// Smoothed observable levels (lateness, skew, rates, backlog).
    pub gauges: ControlGauges,
    /// Current knob values (always inside the configured clamp bounds).
    pub knobs: Knobs,
}

/// Cumulative busy time and invocation count of one pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageMetric {
    /// Number of timed sections.
    pub calls: u64,
    /// Total busy time in nanoseconds.
    pub busy_nanos: u128,
}

impl StageMetric {
    /// Mean latency per call in microseconds.
    pub fn mean_micros(&self) -> f64 {
        if self.calls == 0 {
            return 0.0;
        }
        self.busy_nanos as f64 / self.calls as f64 / 1_000.0
    }

    /// Calls per second of busy time.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.busy_nanos == 0 {
            return 0.0;
        }
        self.calls as f64 / (self.busy_nanos as f64 / 1e9)
    }

    /// Fold another metric into this one (multi-writer lane
    /// aggregation: per-lane stage timings sum into one report row).
    pub fn absorb(&mut self, other: &StageMetric) {
        self.calls += other.calls;
        self.busy_nanos += other.busy_nanos;
    }
}

/// RAII timer adding its elapsed time to a [`StageMetric`].
pub struct StageTimer<'a> {
    metric: &'a mut StageMetric,
    start: Instant,
}

impl<'a> StageTimer<'a> {
    /// Start timing a section.
    pub fn new(metric: &'a mut StageMetric) -> Self {
        metric.calls += 1;
        // lint:allow(wall-clock): metrics-only stage timing; never
        // feeds event-time logic or any pipeline observable.
        Self { metric, start: Instant::now() }
    }
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        self.metric.busy_nanos += self.start.elapsed().as_nanos();
    }
}

/// Counters and per-stage timings of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// AIS messages pushed.
    pub ais_messages: u64,
    /// Static & voyage messages among them.
    pub static_messages: u64,
    /// Static messages failing validation.
    pub static_flagged: u64,
    /// Messages without a usable position.
    pub invalid_messages: u64,
    /// Radar plots pushed.
    pub radar_plots: u64,
    /// VMS reports pushed.
    pub vms_reports: u64,
    /// Observations dropped behind the watermark.
    pub dropped_late: u64,
    /// Events emitted by the engine.
    pub events_emitted: u64,
    /// Events by detector label, sorted by label (refreshed from the
    /// engine's counters at every tick and at `finish`).
    pub detector_counts: Vec<(&'static str, u64)>,
    /// Vessels evicted from live detector state by the TTL sweeps.
    pub evicted_vessels: u64,
    /// Vessels currently resident in the engine's live index (gauge).
    pub live_vessels: u64,
    /// Seal sweeps run (watermark-driven hot→cold rotations).
    pub seal_sweeps: u64,
    /// Fixes currently in the archive's hot tier.
    pub hot_fixes: u64,
    /// Fixes currently in sealed cold segments.
    pub cold_fixes: u64,
    /// Approximate bytes held by the hot tier.
    pub hot_bytes: u64,
    /// Approximate bytes held by the cold tier (encoded segments).
    pub cold_bytes: u64,
    /// Sealed segments in the cold tier.
    pub cold_segments: u64,
    /// Real on-disk bytes backing the store (0 when not durable).
    pub disk_bytes: u64,
    /// Ingest/validation stage.
    pub ingest: StageMetric,
    /// Reordering stage.
    pub reorder: StageMetric,
    /// Fusion stage.
    pub fusion: StageMetric,
    /// Event-recognition stage.
    pub events: StageMetric,
    /// Synopsis stage.
    pub synopses: StageMetric,
    /// Model/raster update stage.
    pub analytics: StageMetric,
    /// Storage + enrichment stage.
    pub storage: StageMetric,
    /// Adaptive-controller status (`None` when the pipeline runs with
    /// static knobs). Refreshed at every knob commit.
    pub control: Option<ControlStatus>,
}

impl PipelineReport {
    /// Rows for the E2 table: `(stage, calls, mean µs, calls/s)`.
    pub fn stage_rows(&self) -> Vec<(&'static str, u64, f64, f64)> {
        [
            ("ingest", &self.ingest),
            ("reorder", &self.reorder),
            ("fusion", &self.fusion),
            ("events", &self.events),
            ("synopses", &self.synopses),
            ("analytics", &self.analytics),
            ("storage+graph", &self.storage),
        ]
        .into_iter()
        .map(|(name, m)| (name, m.calls, m.mean_micros(), m.throughput_per_sec()))
        .collect()
    }

    /// Refresh the per-detector event counters from the engine.
    pub fn record_detectors(&mut self, counts: &std::collections::HashMap<&'static str, u64>) {
        let mut rows: Vec<(&'static str, u64)> = counts.iter().map(|(k, v)| (*k, *v)).collect();
        rows.sort_unstable();
        self.detector_counts = rows;
    }

    /// Rows for the per-detector table: `(label, events)`, sorted by
    /// label.
    pub fn detector_rows(&self) -> &[(&'static str, u64)] {
        &self.detector_counts
    }

    /// Fraction of static messages flagged by validation.
    pub fn static_error_rate(&self) -> f64 {
        if self.static_messages == 0 {
            return 0.0;
        }
        self.static_flagged as f64 / self.static_messages as f64
    }

    /// Refresh the per-tier counters from the archive's accounting.
    pub fn record_tiers(&mut self, stats: &mda_store::TierStats) {
        self.hot_fixes = stats.hot_fixes as u64;
        self.cold_fixes = stats.cold_fixes as u64;
        self.hot_bytes = stats.hot_bytes as u64;
        self.cold_bytes = stats.cold_bytes as u64;
        self.cold_segments = stats.cold_segments as u64;
        self.disk_bytes = stats.disk_bytes as u64;
    }

    /// Record the adaptive controller's smoothed observables and knob
    /// values after a commit.
    pub fn record_control(&mut self, gauges: ControlGauges, knobs: Knobs) {
        self.control = Some(ControlStatus { gauges, knobs });
    }

    /// Rows for the adaptive-control table: `(signal, value)`. Empty
    /// when the pipeline runs static knobs.
    pub fn control_rows(&self) -> Vec<(&'static str, f64)> {
        let Some(c) = &self.control else { return Vec::new() };
        vec![
            ("lateness_fast_ms", c.gauges.lateness_fast_ms),
            ("lateness_slow_ms", c.gauges.lateness_slow_ms),
            ("skew_fast", c.gauges.skew_fast),
            ("skew_slow", c.gauges.skew_slow),
            ("rate_fast", c.gauges.rate_fast),
            ("rate_slow", c.gauges.rate_slow),
            ("events_fast", c.gauges.events_fast),
            ("events_slow", c.gauges.events_slow),
            ("hot_backlog", c.gauges.hot_backlog as f64),
            ("commits", c.gauges.commits as f64),
            ("knob_delay_ms", c.knobs.delay as f64),
            ("knob_seal_every_ms", c.knobs.seal_every as f64),
            ("knob_ring_capacity", c.knobs.ring_capacity as f64),
        ]
    }

    /// Rows for the tier table: `(tier, fixes, approx bytes, bytes/fix)`.
    /// The bytes-per-fix derivation lives in [`mda_store::TierStats`],
    /// so the report and the store can never disagree on it.
    pub fn tier_rows(&self) -> Vec<(&'static str, u64, u64, f64)> {
        let stats = mda_store::TierStats {
            hot_fixes: self.hot_fixes as usize,
            cold_fixes: self.cold_fixes as usize,
            hot_bytes: self.hot_bytes as usize,
            cold_bytes: self.cold_bytes as usize,
            cold_segments: self.cold_segments as usize,
            disk_bytes: self.disk_bytes as usize,
        };
        vec![
            ("hot", self.hot_fixes, self.hot_bytes, stats.hot_bytes_per_fix()),
            ("cold", self.cold_fixes, self.cold_bytes, stats.cold_bytes_per_fix()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_accumulates() {
        let mut m = StageMetric::default();
        for _ in 0..10 {
            let _t = StageTimer::new(&mut m);
            std::hint::black_box(1 + 1);
        }
        assert_eq!(m.calls, 10);
        assert!(m.busy_nanos > 0);
        assert!(m.mean_micros() >= 0.0);
        assert!(m.throughput_per_sec() > 0.0);
    }

    #[test]
    fn report_rows_cover_all_stages() {
        let r = PipelineReport::default();
        let rows = r.stage_rows();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].0, "ingest");
        assert_eq!(r.static_error_rate(), 0.0);
    }

    #[test]
    fn detector_rows_sorted_by_label() {
        let mut r = PipelineReport::default();
        let mut counts = std::collections::HashMap::new();
        counts.insert("spoofing", 3u64);
        counts.insert("gap-start", 7);
        r.record_detectors(&counts);
        assert_eq!(r.detector_rows(), &[("gap-start", 7), ("spoofing", 3)]);
    }

    #[test]
    fn static_error_rate_computed() {
        let r = PipelineReport { static_messages: 200, static_flagged: 10, ..Default::default() };
        assert!((r.static_error_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn control_rows_surface_gauges_and_knobs() {
        let mut r = PipelineReport::default();
        assert!(r.control_rows().is_empty(), "static pipelines report no control rows");
        let gauges = ControlGauges { hot_backlog: 42, commits: 7, ..Default::default() };
        let knobs = Knobs { delay: 1_200_000, seal_every: 1_800_000, ring_capacity: 4096 };
        r.record_control(gauges, knobs);
        let rows = r.control_rows();
        assert_eq!(rows.len(), 13);
        let get = |name| rows.iter().find(|(n, _)| *n == name).unwrap().1;
        assert_eq!(get("hot_backlog"), 42.0);
        assert_eq!(get("commits"), 7.0);
        assert_eq!(get("knob_delay_ms"), 1_200_000.0);
        assert_eq!(get("knob_ring_capacity"), 4096.0);
    }

    #[test]
    fn tier_rows_reflect_recorded_stats() {
        let mut r = PipelineReport::default();
        r.record_tiers(&mda_store::TierStats {
            hot_fixes: 100,
            cold_fixes: 400,
            hot_bytes: 4_800,
            cold_bytes: 800,
            cold_segments: 3,
            disk_bytes: 0,
        });
        let rows = r.tier_rows();
        assert_eq!(rows[0], ("hot", 100, 4_800, 48.0));
        assert_eq!(rows[1], ("cold", 400, 800, 2.0));
        assert_eq!(r.cold_segments, 3);
        // Empty tiers divide safely.
        assert_eq!(PipelineReport::default().tier_rows()[1].3, 0.0);
    }
}
