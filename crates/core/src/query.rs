//! The concurrent, snapshot-isolated serving layer.
//!
//! Everything before this module is the *write* path: one `&mut`
//! ingest loop owning the pipeline. This module is the *read* front:
//! a cloneable, thread-safe [`QueryService`] handle that any number of
//! threads can query **while ingest runs**, each answer computed
//! against a consistent, watermark-stamped [`SystemSnapshot`].
//!
//! ## Snapshot isolation
//!
//! The pipeline publishes a snapshot at every event-time tick boundary
//! `T`, containing exactly the accepted data with event time `≤ T`
//! (the `TickSchedule` discipline guarantees a boundary fires after
//! precisely that data). A snapshot is immutable plain data — archive
//! tiers via versioned [`mda_store::StoreSnapshot`] handles (unchanged
//! shards and all sealed segments are pointer-shared, not copied), the
//! route-network predictor behind an `Arc`, and the fleet gauges.
//! Readers grab the current `Arc<SystemSnapshot>` and compute; they
//! never take a lock the writer holds for longer than the pointer
//! swap, and a reader holding [`QueryService::snapshot`] keeps one
//! consistent view across as many queries as it likes.
//!
//! Published watermarks are monotone, so every reader observes a
//! non-decreasing sequence of stamps, and because snapshot contents
//! are a pure function of the event-time stream up to the stamp, a
//! concurrent reader's answer at watermark `W` equals a
//! single-threaded oracle's answer at `W` — `tests/query_consistency.rs`
//! holds the service to both properties.
//!
//! ## Query vocabulary
//!
//! - point lookups: [`QueryService::latest`],
//!   [`QueryService::position_at`], [`QueryService::trajectory`]
//! - scans: [`QueryService::window`], [`QueryService::knn`] — merged
//!   across hot/cold tiers exactly like the live store
//! - fleet state: [`QueryService::fleet`]
//! - event subscriptions: [`QueryService::poll_since`] cursors over a
//!   bounded [`EventRing`]
//! - **predictive** queries routed through `mda-forecast`:
//!   [`QueryService::where_at`] (dead-reckoning / route-network) and
//!   [`QueryService::eta`]

use mda_events::ring::{EventCursor, EventFilter, EventPoll, EventRing, FilteredEventPoll};
use mda_forecast::eta::{estimate, EtaEstimate};
use mda_forecast::{DeadReckoningPredictor, Predictor, RouteNetPredictor};
use mda_geo::{BoundingBox, Fix, Position, Timestamp, VesselId};
use mda_store::snapshot::StoreSnapshot;
use mda_store::{KnnResult, TierStats};
use parking_lot::RwLock;
use std::sync::Arc;

/// Default arrival radius of [`QueryService::eta`] walks, metres.
const ETA_ARRIVAL_RADIUS_M: f64 = 2_000.0;
/// Default step budget of [`QueryService::eta`] network walks (minutes
/// of simulated sailing).
const ETA_MAX_STEPS: usize = 720;

/// An answer stamped with the watermark of the snapshot that produced
/// it. Stamps are monotone per reader; two answers with equal stamps
/// came from the same consistent system state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stamped<T> {
    /// Event-time watermark of the producing snapshot.
    pub watermark: Timestamp,
    /// The answer.
    pub value: T,
}

/// A predicted position and the predictor that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedPosition {
    /// The (possibly interpolated or extrapolated) position.
    pub pos: Position,
    /// Which path answered: `"archive"` (instant within recorded
    /// history), `"route-network"` or `"dead-reckoning"`.
    pub predictor: &'static str,
}

/// Live-fleet gauges of one snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetSummary {
    /// Vessels currently tracked live by the event engine (TTL-bounded).
    pub live_vessels: u64,
    /// Distinct vessels with archived history (across tiers).
    pub archived_vessels: usize,
    /// Archived fixes across tiers.
    pub archived_fixes: usize,
    /// Per-tier archive accounting.
    pub tiers: TierStats,
    /// Events recognised so far.
    pub events_emitted: u64,
}

/// One immutable, consistent view of the whole system at a watermark.
///
/// Obtained from [`QueryService::snapshot`]; every query method on the
/// service delegates here, so a reader that needs multiple answers
/// from *one* consistent state pins the snapshot once and asks it
/// directly.
#[derive(Debug, Clone)]
pub struct SystemSnapshot {
    watermark: Timestamp,
    store: StoreSnapshot,
    route: Arc<RouteNetPredictor>,
    live_vessels: u64,
    events_emitted: u64,
    /// Computed on first [`SystemSnapshot::fleet`] call: the archive
    /// gauges walk every shard's vessel sets, and the publishing write
    /// path must not pay that per tick for readers that never ask.
    fleet: std::sync::OnceLock<FleetSummary>,
}

impl SystemSnapshot {
    pub(crate) fn new(
        watermark: Timestamp,
        store: StoreSnapshot,
        route: Arc<RouteNetPredictor>,
        live_vessels: u64,
        events_emitted: u64,
    ) -> Self {
        Self {
            watermark,
            store,
            route,
            live_vessels,
            events_emitted,
            fleet: std::sync::OnceLock::new(),
        }
    }

    /// The event-time watermark this snapshot is consistent at.
    pub fn watermark(&self) -> Timestamp {
        self.watermark
    }

    /// The archive view (both tiers) frozen at the watermark.
    pub fn store(&self) -> &StoreSnapshot {
        &self.store
    }

    /// The route-network predictor published with this snapshot (flow
    /// statistics may be up to `predictor_refresh_ticks` ticks older
    /// than the watermark; see
    /// [`QueryConfig`](crate::config::QueryConfig)).
    pub fn route_predictor(&self) -> &RouteNetPredictor {
        &self.route
    }

    /// Live-fleet gauges at the watermark (the archive-wide counts are
    /// computed on the first call and cached in the snapshot).
    pub fn fleet(&self) -> FleetSummary {
        *self.fleet.get_or_init(|| FleetSummary {
            live_vessels: self.live_vessels,
            archived_vessels: self.store.vessel_count(),
            archived_fixes: self.store.len(),
            tiers: self.store.tier_stats(),
            events_emitted: self.events_emitted,
        })
    }

    fn stamp<T>(&self, value: T) -> Stamped<T> {
        Stamped { watermark: self.watermark, value }
    }

    /// The freshest archived fix of a vessel.
    pub fn latest(&self, id: VesselId) -> Stamped<Option<Fix>> {
        self.stamp(self.store.latest(id))
    }

    /// Interpolated archived position at `t` (clamped at trajectory
    /// ends); `None` for unknown vessels.
    pub fn position_at(&self, id: VesselId, t: Timestamp) -> Stamped<Option<Position>> {
        self.stamp(self.store.position_at(id, t))
    }

    /// A vessel's full archived trajectory, merged across tiers.
    pub fn trajectory(&self, id: VesselId) -> Stamped<Option<Vec<Fix>>> {
        self.stamp(self.store.trajectory(id))
    }

    /// All archived fixes in the spatio-temporal window, in the
    /// canonical (vessel, time) order.
    pub fn window(&self, area: &BoundingBox, from: Timestamp, to: Timestamp) -> Stamped<Vec<Fix>> {
        self.stamp(self.store.window(area, from, to))
    }

    /// k nearest vessels to `query` at `t`, dead-reckoned from each
    /// vessel's freshest archived fix, ranked (distance, id).
    pub fn knn(&self, query: Position, t: Timestamp, k: usize) -> Stamped<Vec<KnnResult>> {
        self.stamp(self.store.knn(query, t, k))
    }

    /// Where is (or will be) vessel `id` at `t`?
    ///
    /// Instants at or before the watermark interpolate recorded
    /// history (`"archive"`). Future instants are *predictive*: the
    /// vessel's archived trajectory is extrapolated through the
    /// published route-network predictor when it has learned flow
    /// (`"route-network"` — follows lane turns), falling back to plain
    /// dead reckoning otherwise (`"dead-reckoning"`).
    pub fn where_at(&self, id: VesselId, t: Timestamp) -> Stamped<Option<PredictedPosition>> {
        if t <= self.watermark {
            let pos = self.store.position_at(id, t);
            return self.stamp(pos.map(|pos| PredictedPosition { pos, predictor: "archive" }));
        }
        // Both predictors extrapolate from the freshest fix, so the
        // history handed to them is exactly that — an O(1) cross-tier
        // lookup, not a full trajectory decode.
        let Some(last) = self.store.latest(id) else { return self.stamp(None) };
        let history = std::slice::from_ref(&last);
        let value = if self.route.network.cell_count() > 0 {
            self.route
                .predict(history, t)
                .map(|pos| PredictedPosition { pos, predictor: self.route.name() })
        } else {
            DeadReckoningPredictor
                .predict(history, t)
                .map(|pos| PredictedPosition { pos, predictor: DeadReckoningPredictor.name() })
        };
        self.stamp(value)
    }

    /// Estimated time of arrival of vessel `id` at `dest`, from its
    /// freshest archived fix: the straight-line bound plus the
    /// flow-aware walk along the published route network.
    pub fn eta(&self, id: VesselId, dest: Position) -> Stamped<Option<EtaEstimate>> {
        let value = self.store.latest(id).map(|fix| {
            estimate(&fix, dest, &self.route.network, ETA_ARRIVAL_RADIUS_M, ETA_MAX_STEPS)
        });
        self.stamp(value)
    }
}

/// Shared state between the publishing pipeline and every service
/// handle.
pub(crate) struct QueryShared {
    published: RwLock<Arc<SystemSnapshot>>,
    ring: RwLock<EventRing>,
}

impl QueryShared {
    pub(crate) fn new(event_capacity: usize, initial: SystemSnapshot) -> Self {
        Self {
            published: RwLock::new(Arc::new(initial)),
            ring: RwLock::new(EventRing::new(event_capacity)),
        }
    }

    /// Swap in a newer snapshot (writer side; the lock is held for the
    /// duration of one pointer store).
    pub(crate) fn publish(&self, snapshot: SystemSnapshot) {
        *self.published.write() = Arc::new(snapshot);
    }

    /// Append finalised events to the ring (writer side).
    pub(crate) fn append_events(&self, events: &[mda_events::MaritimeEvent]) {
        if !events.is_empty() {
            self.ring.write().extend(events.iter().cloned());
        }
    }

    /// Resize the event-ring retention (writer side; the adaptive
    /// controller's capacity knob). A no-op when the capacity is
    /// unchanged, so steady-state commits never touch the ring lock.
    pub(crate) fn set_event_capacity(&self, capacity: usize) {
        let mut ring = self.ring.write();
        if ring.capacity() != capacity.max(1) {
            ring.set_capacity(capacity);
        }
    }
}

/// A cloneable, thread-safe read front-end over a running
/// [`MaritimePipeline`](crate::pipeline::MaritimePipeline).
///
/// Obtain one with
/// [`MaritimePipeline::query_service`](crate::pipeline::MaritimePipeline::query_service),
/// clone it into as many reader threads as you like, and keep querying
/// while the pipeline ingests on its own thread. Every answer is
/// [`Stamped`] with the watermark of the consistent snapshot that
/// produced it.
///
/// ```
/// use mda_core::{MaritimePipeline, PipelineConfig};
/// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
///
/// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
/// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
/// let service = pipeline.query_service(); // cloneable, Send + Sync
/// for i in 0..60i64 {
///     let pos = Position::new(43.0, 5.0 + 0.002 * i as f64);
///     pipeline.push_fix(Fix::new(1, Timestamp::from_mins(i), pos, 10.0, 90.0));
/// }
/// pipeline.finish();
/// let latest = service.latest(1);
/// assert!(latest.value.is_some());
/// assert_eq!(latest.watermark, service.watermark());
/// ```
#[derive(Clone)]
pub struct QueryService {
    shared: Arc<QueryShared>,
}

impl QueryService {
    pub(crate) fn new(shared: Arc<QueryShared>) -> Self {
        Self { shared }
    }

    /// Pin the current consistent snapshot. Use this directly when one
    /// reader needs several answers from the *same* system state; the
    /// per-query methods below re-fetch the latest snapshot each call.
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// let service = pipeline.query_service();
    /// for i in 0..50i64 {
    ///     let pos = Position::new(43.0, 5.0 + 0.002 * i as f64);
    ///     pipeline.push_fix(Fix::new(7, Timestamp::from_mins(i), pos, 10.0, 90.0));
    /// }
    /// pipeline.finish();
    /// let snap = service.snapshot();
    /// // Several queries, one consistent state:
    /// assert_eq!(snap.fleet().archived_fixes, snap.store().len());
    /// assert_eq!(snap.latest(7).watermark, snap.watermark());
    /// ```
    pub fn snapshot(&self) -> Arc<SystemSnapshot> {
        Arc::clone(&self.shared.published.read())
    }

    /// The watermark of the currently published snapshot (monotone per
    /// service).
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_geo::{BoundingBox, Timestamp};
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// let service = pipeline.query_service();
    /// // Nothing ingested yet: the initial snapshot sits at MIN.
    /// assert_eq!(service.watermark(), Timestamp::MIN);
    /// ```
    pub fn watermark(&self) -> Timestamp {
        self.shared.published.read().watermark()
    }

    /// The freshest archived fix of a vessel.
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// let service = pipeline.query_service();
    /// for i in 0..60i64 {
    ///     let pos = Position::new(43.0, 5.0 + 0.002 * i as f64);
    ///     pipeline.push_fix(Fix::new(9, Timestamp::from_mins(i), pos, 10.0, 90.0));
    /// }
    /// pipeline.finish();
    /// let fix = service.latest(9).value.expect("vessel 9 is archived");
    /// assert_eq!(fix.id, 9);
    /// assert!(service.latest(999).value.is_none());
    /// ```
    pub fn latest(&self, id: VesselId) -> Stamped<Option<Fix>> {
        self.snapshot().latest(id)
    }

    /// Interpolated archived position of a vessel at `t`.
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// let service = pipeline.query_service();
    /// for i in 0..60i64 {
    ///     let pos = Position::new(43.0, 5.0 + 0.01 * i as f64);
    ///     pipeline.push_fix(Fix::new(3, Timestamp::from_mins(i), pos, 10.0, 90.0));
    /// }
    /// pipeline.finish();
    /// let p = service.position_at(3, Timestamp::from_secs(90)).value.unwrap();
    /// assert!(p.lon > 5.0 && p.lon < 5.02, "interpolated between fixes");
    /// ```
    pub fn position_at(&self, id: VesselId, t: Timestamp) -> Stamped<Option<Position>> {
        self.snapshot().position_at(id, t)
    }

    /// A vessel's full archived trajectory, merged across hot and cold
    /// tiers.
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// let service = pipeline.query_service();
    /// for i in 0..90i64 {
    ///     let pos = Position::new(43.0, 5.0 + 0.002 * i as f64);
    ///     pipeline.push_fix(Fix::new(4, Timestamp::from_mins(i), pos, 10.0, 90.0));
    /// }
    /// pipeline.finish();
    /// let traj = service.trajectory(4).value.unwrap();
    /// assert!(traj.windows(2).all(|w| w[0].t <= w[1].t), "time-ordered");
    /// ```
    pub fn trajectory(&self, id: VesselId) -> Stamped<Option<Vec<Fix>>> {
        self.snapshot().trajectory(id)
    }

    /// All archived fixes inside a spatial window and time range,
    /// merged across tiers in the canonical (vessel, time) order.
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// let service = pipeline.query_service();
    /// for i in 0..60i64 {
    ///     let pos = Position::new(43.0, 5.0 + 0.01 * i as f64);
    ///     pipeline.push_fix(Fix::new(5, Timestamp::from_mins(i), pos, 10.0, 90.0));
    /// }
    /// pipeline.finish();
    /// let west = BoundingBox::new(42.5, 4.9, 43.5, 5.2);
    /// let hits = service.window(&west, Timestamp::from_mins(0), Timestamp::from_mins(60));
    /// assert!(!hits.value.is_empty());
    /// assert!(hits.value.iter().all(|f| f.pos.lon <= 5.2));
    /// ```
    pub fn window(&self, area: &BoundingBox, from: Timestamp, to: Timestamp) -> Stamped<Vec<Fix>> {
        self.snapshot().window(area, from, to)
    }

    /// k nearest vessels to `query` at `t` (dead-reckoned from each
    /// vessel's freshest archived fix; ranked by distance, then id).
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// let service = pipeline.query_service();
    /// for v in 1..=5u32 {
    ///     for i in 0..60i64 {
    ///         let pos = Position::new(42.5 + 0.2 * f64::from(v), 5.0);
    ///         pipeline.push_fix(Fix::new(v, Timestamp::from_mins(i), pos, 0.0, 0.0));
    ///     }
    /// }
    /// pipeline.finish();
    /// let wm = service.watermark();
    /// let near = service.knn(Position::new(42.7, 5.0), wm, 2).value;
    /// assert_eq!(near.len(), 2);
    /// assert_eq!(near[0].id, 1, "vessel 1 sits at 42.7");
    /// ```
    pub fn knn(&self, query: Position, t: Timestamp, k: usize) -> Stamped<Vec<KnnResult>> {
        self.snapshot().knn(query, t, k)
    }

    /// Where is (or will be) vessel `id` at `t`? Past instants answer
    /// from recorded history; future instants route through the
    /// forecast layer (route network when it has learned flow, dead
    /// reckoning otherwise). See [`SystemSnapshot::where_at`].
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_geo::time::MINUTE;
    /// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// let service = pipeline.query_service();
    /// for i in 0..120i64 {
    ///     let pos = Position::new(43.0, 5.0 + 0.002 * i as f64);
    ///     pipeline.push_fix(Fix::new(6, Timestamp::from_mins(i), pos, 8.0, 90.0));
    /// }
    /// pipeline.finish();
    /// let wm = service.watermark();
    /// // A past instant reads the archive...
    /// let past = service.where_at(6, Timestamp::from_mins(30)).value.unwrap();
    /// assert_eq!(past.predictor, "archive");
    /// // ...a future instant predicts beyond it (eastbound course).
    /// let future = service.where_at(6, wm + 30 * MINUTE).value.unwrap();
    /// assert_ne!(future.predictor, "archive");
    /// let now = service.where_at(6, wm).value.unwrap();
    /// assert!(future.pos.lon > now.pos.lon, "keeps heading east");
    /// ```
    pub fn where_at(&self, id: VesselId, t: Timestamp) -> Stamped<Option<PredictedPosition>> {
        self.snapshot().where_at(id, t)
    }

    /// Estimated time of arrival of vessel `id` at `dest` — the
    /// straight-line bound plus the flow-aware route-network walk.
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// let service = pipeline.query_service();
    /// for i in 0..60i64 {
    ///     let pos = Position::new(43.0, 5.0 + 0.002 * i as f64);
    ///     pipeline.push_fix(Fix::new(8, Timestamp::from_mins(i), pos, 12.0, 90.0));
    /// }
    /// pipeline.finish();
    /// let eta = service.eta(8, Position::new(43.0, 5.4)).value.unwrap();
    /// assert!(eta.direct.is_some(), "12 kn underway: a direct ETA exists");
    /// assert!(eta.best().unwrap() > 0);
    /// ```
    pub fn eta(&self, id: VesselId, dest: Position) -> Stamped<Option<EtaEstimate>> {
        self.snapshot().eta(id, dest)
    }

    /// Live-fleet summary of the current snapshot.
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// let service = pipeline.query_service();
    /// for i in 0..60i64 {
    ///     let pos = Position::new(43.0, 5.0 + 0.002 * i as f64);
    ///     pipeline.push_fix(Fix::new(2, Timestamp::from_mins(i), pos, 10.0, 90.0));
    /// }
    /// pipeline.finish();
    /// let fleet = service.fleet().value;
    /// assert_eq!(fleet.archived_vessels, 1);
    /// assert!(fleet.archived_fixes > 0);
    /// ```
    pub fn fleet(&self) -> Stamped<FleetSummary> {
        let snap = self.snapshot();
        Stamped { watermark: snap.watermark(), value: snap.fleet() }
    }

    /// Everything recognised since `cursor` (oldest first), the cursor
    /// to resume from, and how many events aged out of retention
    /// unseen. Start from `EventCursor::default()` for the oldest
    /// retained history or [`QueryService::live_cursor`] to follow only
    /// new events.
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_events::ring::EventCursor;
    /// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// let service = pipeline.query_service();
    /// // One fix, then hours of silence: the gap detector must fire.
    /// pipeline.push_fix(Fix::new(1, Timestamp::from_mins(0), Position::new(43.0, 5.0), 10.0, 90.0));
    /// pipeline.push_fix(Fix::new(2, Timestamp::from_mins(180), Position::new(43.5, 5.5), 10.0, 90.0));
    /// pipeline.finish();
    /// let poll = service.poll_since(EventCursor::default());
    /// assert!(poll.events.iter().any(|e| e.vessel == 1), "gap events for the silent vessel");
    /// // Incremental: nothing new since the returned cursor.
    /// assert!(service.poll_since(poll.cursor).events.is_empty());
    /// ```
    pub fn poll_since(&self, cursor: EventCursor) -> EventPoll {
        // Pointer-clone under the lock, deep-copy outside it: even a
        // cold-start consumer replaying the whole retention blocks the
        // ingest thread's appends only for O(returned) `Arc` bumps.
        let shared = self.shared.ring.read().poll_shared(cursor);
        shared.materialize()
    }

    /// Filter-pushdown variant of [`QueryService::poll_since`]: only
    /// events matching `filter` are returned (with their ring sequence
    /// numbers), and the loss counters are split — `missed` counts
    /// events that aged out of retention unseen (match unknowable),
    /// `filtered` counts events examined and excluded by the filter.
    /// This is what a serving front's subscription sessions run on.
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_events::ring::{EventCursor, EventFilter};
    /// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// let service = pipeline.query_service();
    /// // Two vessels go silent for hours: gap events for both.
    /// pipeline.push_fix(Fix::new(1, Timestamp::from_mins(0), Position::new(43.0, 5.0), 10.0, 90.0));
    /// pipeline.push_fix(Fix::new(2, Timestamp::from_mins(1), Position::new(43.2, 5.2), 10.0, 90.0));
    /// pipeline.push_fix(Fix::new(3, Timestamp::from_mins(240), Position::new(43.5, 5.5), 10.0, 90.0));
    /// pipeline.finish();
    /// let filter = EventFilter::for_vessels([1]);
    /// let poll = service.poll_filtered(EventCursor::default(), &filter);
    /// assert!(poll.events.iter().all(|(_, e)| e.vessel == 1));
    /// assert!(poll.filtered > 0, "vessel 2's events were examined and excluded");
    /// assert_eq!(poll.missed, 0, "nothing aged out of the default ring");
    /// ```
    pub fn poll_filtered(&self, cursor: EventCursor, filter: &EventFilter) -> FilteredEventPoll {
        let shared = self.shared.ring.read().poll_shared_filtered(cursor, Some(filter));
        shared.materialize()
    }

    /// Run `f` against the live event ring under its read lock — the
    /// bulk-pump entry point for a serving front that must poll many
    /// subscription cursors in one lock acquisition. Keep `f` cheap
    /// (pointer clones, not deep copies): the ingest thread's event
    /// appends wait while it runs.
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_geo::BoundingBox;
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// let service = pipeline.query_service();
    /// let total = service.with_event_ring(|ring| ring.total_appended());
    /// assert_eq!(total, 0);
    /// ```
    pub fn with_event_ring<R>(&self, f: impl FnOnce(&EventRing) -> R) -> R {
        let ring = self.shared.ring.read();
        f(&ring)
    }

    /// The cursor a new consumer should start from to skip retained
    /// history and follow only events recognised after this call.
    ///
    /// ```
    /// use mda_core::{MaritimePipeline, PipelineConfig};
    /// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
    ///
    /// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    /// let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    /// let service = pipeline.query_service();
    /// let live = service.live_cursor();
    /// assert!(service.poll_since(live).events.is_empty(), "nothing has happened yet");
    /// ```
    pub fn live_cursor(&self) -> EventCursor {
        self.shared.ring.read().live_cursor()
    }
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("QueryService")
            .field("watermark", &snap.watermark())
            .field("archived_fixes", &snap.fleet().archived_fixes)
            .finish()
    }
}
