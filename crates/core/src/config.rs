//! Pipeline configuration.

use mda_events::engine::EngineConfig;
use mda_geo::{BoundingBox, DurationMs};
use mda_synopses::compress::ThresholdConfig;
use mda_track::fusion::FuserConfig;

/// Configuration of the integrated pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Region of interest (density raster, route network, normalcy
    /// model are built over this box).
    pub bounds: BoundingBox,
    /// Watermark disorder tolerance (satellite AIS batches arrive this
    /// late relative to terrestrial traffic).
    pub watermark_delay: DurationMs,
    /// How often (in event time) live checks run (dark-vessel sweep,
    /// track lifecycle).
    pub tick_interval: DurationMs,
    /// Event-engine configuration (zones are installed by the caller).
    pub events: EngineConfig,
    /// Fusion configuration.
    pub fusion: FuserConfig,
    /// Trajectory compression configuration.
    pub synopsis: ThresholdConfig,
    /// Cell size of the learned route network / normalcy model, degrees.
    pub model_cell_deg: f64,
    /// Shape of the traffic-density raster.
    pub raster_shape: (usize, usize),
    /// Lock stripes of the archival trajectory store. Ingest workers are
    /// routed shard-affine, so this bounds write parallelism.
    pub store_shards: usize,
}

impl PipelineConfig {
    /// A configuration suitable for a regional surveillance picture.
    pub fn regional(bounds: BoundingBox) -> Self {
        Self {
            bounds,
            watermark_delay: 40 * mda_geo::time::MINUTE,
            tick_interval: mda_geo::time::MINUTE,
            events: EngineConfig::default(),
            fusion: FuserConfig::default(),
            synopsis: ThresholdConfig::default(),
            model_cell_deg: 0.02,
            raster_shape: (64, 64),
            store_shards: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regional_defaults_are_consistent() {
        let cfg = PipelineConfig::regional(BoundingBox::new(42.0, 3.0, 44.0, 6.5));
        assert!(cfg.watermark_delay > 0);
        assert!(cfg.tick_interval > 0);
        assert!(cfg.model_cell_deg > 0.0);
        assert!(cfg.raster_shape.0 > 0 && cfg.raster_shape.1 > 0);
        assert!(cfg.store_shards > 0);
        assert!(!cfg.bounds.is_empty());
    }
}
