//! Pipeline configuration.

use mda_events::engine::EngineConfig;
use mda_geo::time::{HOUR, MINUTE};
use mda_geo::{BoundingBox, DurationMs};
use mda_synopses::compress::ThresholdConfig;
use mda_track::fusion::FuserConfig;

/// Hot/cold retention policy of the archival trajectory store.
///
/// Fixes older than `watermark − hot_horizon` are rotated out of the
/// hot shards into sealed, compressed cold segments (see
/// `mda_store::segment`), at most once per `seal_every` of event time.
///
/// ```
/// use mda_core::config::RetentionPolicy;
/// use mda_geo::time::HOUR;
///
/// // Keep 2 h hot, archive bit-exactly.
/// let policy = RetentionPolicy { hot_horizon: 2 * HOUR, cold_tolerance_m: 0.0,
///     ..RetentionPolicy::default() };
/// assert!(policy.cold_tolerance_m == 0.0, "lossless sealing");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RetentionPolicy {
    /// How much trailing history stays in the hot (mutable,
    /// uncompressed) tier.
    pub hot_horizon: DurationMs,
    /// Threshold-compression tolerance of sealed segments, metres;
    /// `0` seals bit-exactly (no compression beyond delta coding).
    pub cold_tolerance_m: f64,
    /// Minimum watermark advance between seal sweeps.
    pub seal_every: DurationMs,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        // seal_every matches the default segment slab span (30 min):
        // a finer cadence would only produce no-op sweeps, since seal
        // cuts are aligned down to whole slabs.
        Self { hot_horizon: HOUR, cold_tolerance_m: 50.0, seal_every: 30 * MINUTE }
    }
}

/// Configuration of the integrated pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Region of interest (density raster, route network, normalcy
    /// model are built over this box).
    pub bounds: BoundingBox,
    /// Watermark disorder tolerance (satellite AIS batches arrive this
    /// late relative to terrestrial traffic).
    pub watermark_delay: DurationMs,
    /// How often (in event time) live checks run (dark-vessel sweep,
    /// track lifecycle).
    pub tick_interval: DurationMs,
    /// Event-engine configuration (zones are installed by the caller).
    pub events: EngineConfig,
    /// Fusion configuration.
    pub fusion: FuserConfig,
    /// Trajectory compression configuration.
    pub synopsis: ThresholdConfig,
    /// Cell size of the learned route network / normalcy model, degrees.
    pub model_cell_deg: f64,
    /// Shape of the traffic-density raster.
    pub raster_shape: (usize, usize),
    /// Lock stripes of the archival trajectory store. Ingest workers are
    /// routed shard-affine, so this bounds write parallelism.
    pub store_shards: usize,
    /// Hot/cold tiering of the archival store: when the watermark
    /// advances, fixes older than the hot horizon are sealed into
    /// compressed cold segments.
    pub retention: RetentionPolicy,
}

impl PipelineConfig {
    /// A configuration suitable for a regional surveillance picture.
    pub fn regional(bounds: BoundingBox) -> Self {
        Self {
            bounds,
            watermark_delay: 40 * mda_geo::time::MINUTE,
            tick_interval: mda_geo::time::MINUTE,
            events: EngineConfig::default(),
            fusion: FuserConfig::default(),
            synopsis: ThresholdConfig::default(),
            model_cell_deg: 0.02,
            raster_shape: (64, 64),
            store_shards: 8,
            retention: RetentionPolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regional_defaults_are_consistent() {
        let cfg = PipelineConfig::regional(BoundingBox::new(42.0, 3.0, 44.0, 6.5));
        assert!(cfg.watermark_delay > 0);
        assert!(cfg.tick_interval > 0);
        assert!(cfg.model_cell_deg > 0.0);
        assert!(cfg.raster_shape.0 > 0 && cfg.raster_shape.1 > 0);
        assert!(cfg.store_shards > 0);
        assert!(!cfg.bounds.is_empty());
        assert!(cfg.retention.hot_horizon > 0);
        assert!(cfg.retention.seal_every > 0);
        assert!(cfg.retention.cold_tolerance_m >= 0.0);
    }
}
