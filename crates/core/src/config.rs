//! Pipeline configuration.

use mda_events::engine::EngineConfig;
use mda_geo::time::{HOUR, MINUTE};
use mda_geo::{BoundingBox, DurationMs};
use mda_store::DurabilityConfig;
use mda_stream::control::ControlConfig;
use mda_synopses::compress::ThresholdConfig;
use mda_track::fusion::FuserConfig;

/// Retention policy: hot/cold tiering of the archival trajectory store
/// plus the live detector-state TTL of the event engine.
///
/// Fixes older than `watermark − hot_horizon` are rotated out of the
/// hot shards into sealed, compressed cold segments (see
/// `mda_store::segment`), at most once per `seal_every` of event time.
/// Independently, vessels silent past `detector_ttl` are evicted from
/// the event engine's live state (latest-fix index, gap/loiter/veracity
/// maps, pair state) *and* from the pipeline's per-vessel compressors —
/// the archive keeps their history, but nothing keyed on a dead vessel
/// stays resident.
///
/// ```
/// use mda_core::config::RetentionPolicy;
/// use mda_geo::time::HOUR;
///
/// // Keep 2 h hot, archive bit-exactly, give up on vessels after 3 h
/// // of silence.
/// let policy = RetentionPolicy { hot_horizon: 2 * HOUR, cold_tolerance_m: 0.0,
///     detector_ttl: 3 * HOUR, ..RetentionPolicy::default() };
/// assert!(policy.cold_tolerance_m == 0.0, "lossless sealing");
/// assert!(policy.detector_ttl > policy.hot_horizon);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RetentionPolicy {
    /// How much trailing history stays in the hot (mutable,
    /// uncompressed) tier.
    pub hot_horizon: DurationMs,
    /// Threshold-compression tolerance of sealed segments, metres;
    /// `0` seals bit-exactly (no compression beyond delta coding).
    pub cold_tolerance_m: f64,
    /// Minimum watermark advance between seal sweeps.
    pub seal_every: DurationMs,
    /// Live detector-state time-to-live: a vessel silent this long (of
    /// event time) is dropped from the event engine and the pipeline's
    /// per-vessel maps. The pipeline copies this into
    /// [`EngineConfig::vessel_ttl`] at construction, so the two layers
    /// cannot disagree. `DurationMs::MAX` disables eviction.
    pub detector_ttl: DurationMs,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        // seal_every matches the default segment slab span (30 min):
        // a finer cadence would only produce no-op sweeps, since seal
        // cuts are aligned down to whole slabs. detector_ttl doubles
        // the hot horizon: by the time a silent vessel's live state is
        // dropped, its trajectory has long been sealed cold.
        Self {
            hot_horizon: HOUR,
            cold_tolerance_m: 50.0,
            seal_every: 30 * MINUTE,
            detector_ttl: 2 * HOUR,
        }
    }
}

/// Configuration of the serving layer
/// ([`QueryService`](crate::query::QueryService)).
///
/// The pipeline publishes a consistent, watermark-stamped
/// [`SystemSnapshot`](crate::query::SystemSnapshot) at every event-time
/// tick boundary; these knobs bound what a snapshot carries and how
/// often the (comparatively expensive) predictor state refreshes.
///
/// ```
/// use mda_core::config::QueryConfig;
///
/// let q = QueryConfig::default();
/// assert!(q.event_capacity > 0);
/// assert!(q.predictor_refresh_ticks > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct QueryConfig {
    /// Events retained for [`poll_since`](crate::query::QueryService::poll_since)
    /// consumers. A consumer lagging further than this is told how many
    /// events it missed rather than silently skipping them.
    pub event_capacity: usize,
    /// Refresh the published route-network predictor every this many
    /// ticks (1 = every tick). The network copy is the one snapshot
    /// component whose cost grows with the learned region rather than
    /// the live fleet, so it amortises over a few ticks by default;
    /// predictive answers may be based on flow statistics up to
    /// `predictor_refresh_ticks × tick_interval` of event time old.
    pub predictor_refresh_ticks: u32,
}

impl Default for QueryConfig {
    fn default() -> Self {
        Self { event_capacity: 65_536, predictor_refresh_ticks: 4 }
    }
}

/// Configuration of the integrated pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Region of interest (density raster, route network, normalcy
    /// model are built over this box).
    pub bounds: BoundingBox,
    /// Watermark disorder tolerance (satellite AIS batches arrive this
    /// late relative to terrestrial traffic).
    pub watermark_delay: DurationMs,
    /// How often (in event time) live checks run (dark-vessel sweep,
    /// track lifecycle).
    pub tick_interval: DurationMs,
    /// Event-engine configuration (zones are installed by the caller).
    pub events: EngineConfig,
    /// Fusion configuration.
    pub fusion: FuserConfig,
    /// Trajectory compression configuration.
    pub synopsis: ThresholdConfig,
    /// Cell size of the learned route network / normalcy model, degrees.
    pub model_cell_deg: f64,
    /// Shape of the traffic-density raster.
    pub raster_shape: (usize, usize),
    /// Lock stripes of the archival trajectory store. Ingest workers are
    /// routed shard-affine, so this bounds write parallelism.
    pub store_shards: usize,
    /// Hot/cold tiering of the archival store: when the watermark
    /// advances, fixes older than the hot horizon are sealed into
    /// compressed cold segments.
    pub retention: RetentionPolicy,
    /// Serving-layer knobs: event-log retention and predictor refresh
    /// cadence for the snapshots published to
    /// [`QueryService`](crate::query::QueryService) readers.
    pub query: QueryConfig,
    /// Durable archive storage. `None` (the default) keeps the archive
    /// purely in memory. With a [`DurabilityConfig`], the pipeline
    /// opens a [`mda_store::DurableStore`] in the configured data
    /// directory: accepted fixes are write-ahead-logged, seal sweeps
    /// persist cold segments, every tick boundary records the
    /// published watermark as the durability mark, and constructing a
    /// pipeline over a directory holding a previous run recovers the
    /// archive to that run's exact last published watermark.
    pub durability: Option<DurabilityConfig>,
    /// Adaptive control of the hot path. `None` (the default) runs the
    /// static knobs above unchanged. With a [`ControlConfig`], a
    /// deterministic EMA controller
    /// ([`mda_stream::control::AdaptiveController`]) retunes the
    /// watermark delay, seal cadence and event-ring capacity between
    /// the configured clamp bounds, committing knob moves only at
    /// aligned tick boundaries — the knob trajectory is a pure function
    /// of the event-time stream and invariant under the writer count.
    /// `watermark_delay`, `retention.seal_every` and
    /// `query.event_capacity` become the *initial* knob values.
    pub adaptive: Option<ControlConfig>,
}

impl PipelineConfig {
    /// A configuration suitable for a regional surveillance picture.
    ///
    /// The event engine's detector shards match `store_shards` — both
    /// layers route by [`mda_geo::vessel_shard`], so engine shard *i*
    /// and store shard *i* own the same vessels.
    pub fn regional(bounds: BoundingBox) -> Self {
        let store_shards = 8;
        Self {
            bounds,
            watermark_delay: 40 * mda_geo::time::MINUTE,
            tick_interval: mda_geo::time::MINUTE,
            events: EngineConfig { shards: store_shards, ..EngineConfig::default() },
            fusion: FuserConfig::default(),
            synopsis: ThresholdConfig::default(),
            model_cell_deg: 0.02,
            raster_shape: (64, 64),
            store_shards,
            retention: RetentionPolicy::default(),
            query: QueryConfig::default(),
            durability: None,
            adaptive: None,
        }
    }

    /// A regional configuration with self-tuning knobs: like
    /// [`PipelineConfig::regional`], plus a default
    /// [`ControlConfig`] driving the watermark delay, seal cadence and
    /// event-ring capacity off the observed stream. The static knob
    /// values become the controller's starting point.
    pub fn adaptive(bounds: BoundingBox) -> Self {
        let mut config = Self::regional(bounds);
        config.adaptive = Some(ControlConfig::default());
        config
    }

    /// Enable (or retune) adaptive control with an explicit
    /// [`ControlConfig`]. See [`PipelineConfig::adaptive`].
    pub fn with_adaptive(mut self, control: ControlConfig) -> Self {
        self.adaptive = Some(control);
        self
    }

    /// Persist the archive into `dir` (and recover from it on
    /// construction when it already holds a previous run). See
    /// [`PipelineConfig::durability`].
    pub fn with_durability(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.durability = Some(DurabilityConfig::new(dir));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regional_defaults_are_consistent() {
        let cfg = PipelineConfig::regional(BoundingBox::new(42.0, 3.0, 44.0, 6.5));
        assert!(cfg.watermark_delay > 0);
        assert!(cfg.tick_interval > 0);
        assert!(cfg.model_cell_deg > 0.0);
        assert!(cfg.raster_shape.0 > 0 && cfg.raster_shape.1 > 0);
        assert!(cfg.store_shards > 0);
        assert!(!cfg.bounds.is_empty());
        assert!(cfg.retention.hot_horizon > 0);
        assert!(cfg.retention.seal_every > 0);
        assert!(cfg.retention.cold_tolerance_m >= 0.0);
        assert!(cfg.retention.detector_ttl >= cfg.events.gap_threshold);
        assert_eq!(cfg.events.shards, cfg.store_shards, "event and store sharding aligned");
        assert!(cfg.adaptive.is_none(), "regional defaults stay static");
    }

    #[test]
    fn adaptive_defaults_bracket_the_static_knobs() {
        let cfg = PipelineConfig::adaptive(BoundingBox::new(42.0, 3.0, 44.0, 6.5));
        let ctl = cfg.adaptive.expect("adaptive config present");
        assert!(
            ctl.delay_bounds.0 <= cfg.watermark_delay && cfg.watermark_delay <= ctl.delay_bounds.1,
            "the static delay must be a legal starting knob"
        );
        assert!(
            ctl.seal_bounds.0 <= cfg.retention.seal_every
                && cfg.retention.seal_every <= ctl.seal_bounds.1,
            "the static seal cadence must be a legal starting knob"
        );
        assert!(
            ctl.ring_bounds.0 <= cfg.query.event_capacity
                && cfg.query.event_capacity <= ctl.ring_bounds.1,
            "the static ring capacity must be a legal starting knob"
        );
    }
}
