//! Multi-writer shard-owned ingest: N writer lanes, one tick barrier.
//!
//! [`MultiWriterPipeline`] decomposes the single-writer
//! [`MaritimePipeline`](crate::pipeline::MaritimePipeline) ingest loop
//! into `writers` lanes that each own a **disjoint shard set
//! end-to-end** — reorder buffer → fuser → engine shards
//! ([`mda_events::EngineLane`]) → store shards
//! ([`mda_store::shards::StoreLane`]) — routed by the same
//! [`mda_geo::vessel_shard`] hash every layer already uses (lane `w` of
//! `n` owns the shards `s` with `s % n == w`). Lane state is touched by
//! exactly one thread, so lanes never contend on a lock for their own
//! data.
//!
//! ## The barrier protocol
//!
//! Per-vessel work parallelises trivially; the cross-shard points do
//! not. Exactly two operations need the whole fleet at one event time:
//! the pairwise sweeps (rendezvous/collision read a merged
//! [`FleetIndex`]) and the publication of a [`SystemSnapshot`] stamp.
//! Both happen only at aligned tick boundaries `T`, so the lanes run an
//! explicit two-phase barrier ([`mda_stream::barrier::TickBarrier`],
//! panic-safe like `run_with_readers`) at every boundary:
//!
//! 1. every lane processes exactly its accepted data with `t <= T`,
//!    deposits its per-shard detector events and live-index clones,
//!    then quiesces; the elected leader merges the deposits in global
//!    shard order (the engine's canonical event sort) and builds the
//!    fleet view;
//! 2. every lane sweeps its own shards against the shared fleet view
//!    and deposits tick events and evictions; the leader merges,
//!    seals, and publishes the stamp `T`, then the lanes fan the
//!    eviction union out to their pair state and resume.
//!
//! Because the router accepts/drops arrivals and fires boundaries
//! exactly like the single-writer pipeline, everything observable —
//! emitted event sets, archive contents, published stamps and their
//! snapshot answers, report counters — is a pure function of the
//! arrival stream and **invariant under the writer count**
//! (`tests/scenario_determinism.rs`, `tests/query_consistency.rs` and
//! `tests/multi_writer.rs` hold it to that for 1/2/4/8 writers).
//!
//! ## Scope
//!
//! The lanes carry the serving-relevant stages: reorder, fusion, event
//! recognition, synopsis compression, archive appends and
//! route-network learning (lane parts merge exactly; see
//! [`RouteNetwork::merge_from`]). The single-writer pipeline's
//! console-only extras (density raster, live kNN engine, normalcy
//! model, semantic graph, weather enrichment) stay on
//! [`MaritimePipeline`](crate::pipeline::MaritimePipeline).

use crate::config::PipelineConfig;
use crate::query::{QueryService, QueryShared, SystemSnapshot};
use crate::report::{PipelineReport, StageMetric, StageTimer};
use mda_ais::messages::AisMessage;
use mda_ais::quality;
use mda_events::engine::{canonical_sort, EngineLane};
use mda_events::event::MaritimeEvent;
use mda_events::proximity::{FleetIndex, LiveIndex};
use mda_forecast::routenet::{RouteNetPredictor, RouteNetwork};
use mda_geo::{vessel_shard, Fix, Timestamp, VesselId};
use mda_sim::receivers::{RadarPlot, VmsReport};
use mda_sim::scenario::{AisObservation, SimOutput};
use mda_store::segment::SegmentConfig;
use mda_store::shards::{StIndexConfig, StoreConfig, StoreLane};
use mda_store::shared::SharedTrajectoryStore;
use mda_store::DurableStore;
use mda_stream::barrier::{run_lanes, LaneRole};
use mda_stream::control::{AdaptiveController, ArrivalWindow, Knobs};
use mda_stream::reorder::ReorderBuffer;
use mda_stream::watermark::{BoundedOutOfOrderness, SealSchedule, TickSchedule};
use mda_synopses::compress::ThresholdCompressor;
use mda_track::fusion::Fuser;
use mda_track::sensor::{SensorKind, SensorReport};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};

/// An observation routed to a writer lane's reorder buffer.
#[derive(Debug, Clone)]
enum LaneItem {
    Ais(Fix),
    Radar(RadarPlot),
    Vms(VmsReport),
}

/// Per-lane stage timings, summed into the aggregate report.
#[derive(Debug, Default)]
struct LaneMetrics {
    reorder: StageMetric,
    fusion: StageMetric,
    events: StageMetric,
    synopses: StageMetric,
    analytics: StageMetric,
    storage: StageMetric,
}

/// One writer lane: the full per-shard pipeline for a disjoint shard
/// set, owned by exactly one thread during an epoch.
struct WriterLane {
    reorder: ReorderBuffer<LaneItem>,
    fuser: Fuser,
    engine: EngineLane,
    compressors: HashMap<VesselId, ThresholdCompressor>,
    /// This lane's additive slice of the learned route network; the
    /// published predictor merges all slices (exact under the cell
    /// statistics' integer quantization).
    route_part: RouteNetwork,
    store: StoreLane,
    metrics: LaneMetrics,
    /// Tick boundaries this lane has crossed (fault-injection seam).
    boundaries_crossed: u64,
}

/// Deposit area for one epoch, reused across boundaries: each slot is
/// written by exactly one lane before a barrier and consumed by the
/// leader behind it.
struct EpochScratch {
    /// Per global shard: detector events from the interval batches.
    batch_events: Vec<Vec<MaritimeEvent>>,
    /// Per global shard: detector events from the boundary sweep.
    tick_events: Vec<Vec<MaritimeEvent>>,
    /// Per global shard: live-index clone at the boundary.
    indexes: Vec<Option<LiveIndex>>,
    /// Leader-built fleet view the lanes sweep against.
    fleet: Option<Arc<FleetIndex>>,
    /// Per lane: vessels TTL-evicted by this boundary's sweep.
    gone: Vec<Vec<VesselId>>,
    /// Leader-built union of `gone`, fanned out to every lane's pair
    /// state.
    gone_all: Arc<HashSet<VesselId>>,
    /// Per lane: live vessels after the sweep.
    live_counts: Vec<usize>,
    /// Per lane: route-network slice clone (only when a predictor
    /// refresh is due).
    route_parts: Vec<Option<RouteNetwork>>,
    /// Leader decision: publish a snapshot at this boundary?
    publish: bool,
    /// Leader decision: rebuild the published predictor at this
    /// boundary?
    want_route: bool,
}

/// Serving/publication state shared between the lanes (under one
/// mutex; held only for deposits and leader sections while every other
/// lane is parked at the barrier).
struct SharedState {
    seals: SealSchedule,
    store_snapshot: mda_store::StoreSnapshot,
    published_route: Arc<RouteNetPredictor>,
    ticks_since_refresh: u32,
    last_published: Timestamp,
    draining: bool,
    /// Snapshot of `Arc::strong_count(&query) > 1`, taken once per
    /// epoch on the router thread (handles are created through
    /// `&mut self`, so the count cannot change mid-epoch).
    has_readers: bool,
    emitted: u64,
    evicted: u64,
    live: u64,
    seal_sweeps: u64,
    /// The adaptive controller, when configured. Lives behind the
    /// shared mutex so the phase-2 barrier leader — whichever lane wins
    /// the election — commits knob moves at each boundary, in the same
    /// phase that seals and publishes. The router absorbs its arrival
    /// window into it once per epoch, before any lane runs.
    control: Option<AdaptiveController>,
    detector_counts: HashMap<&'static str, u64>,
    /// Events finalised this epoch, in emission order (flush's return).
    out: Vec<MaritimeEvent>,
    scratch: EpochScratch,
}

fn lock(shared: &Mutex<SharedState>) -> MutexGuard<'_, SharedState> {
    shared.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Concatenate per-shard deposits in global shard order and stable-sort
/// by the canonical event key — byte-for-byte the single engine's
/// emission order.
fn merge_deposits(lists: &mut [Vec<MaritimeEvent>]) -> Vec<MaritimeEvent> {
    let mut all = Vec::new();
    for list in lists {
        all.append(list);
    }
    all.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    all
}

impl SharedState {
    /// Account merged events (tally, gauge, ring, epoch output).
    fn emit(&mut self, events: Vec<MaritimeEvent>, query: &QueryShared) {
        if events.is_empty() {
            return;
        }
        for e in &events {
            *self.detector_counts.entry(e.kind.label()).or_insert(0) += 1;
        }
        self.emitted += events.len() as u64;
        query.append_events(&events);
        self.out.extend(events);
    }
}

/// The multi-writer counterpart of
/// [`MaritimePipeline`](crate::pipeline::MaritimePipeline): same push
/// API, same event-time semantics, `writers` shard-owning lanes doing
/// the work.
///
/// Arrivals are routed to lanes by vessel shard, buffered per lane, and
/// processed in **epochs**: every `ingest_batch` arrivals the router
/// computes the due tick boundaries and runs all lanes to the current
/// watermark under the barrier protocol described in the
/// [module docs](self). Everything observable is writer-count
/// invariant.
///
/// ```
/// use mda_core::multi::MultiWriterPipeline;
/// use mda_core::PipelineConfig;
/// use mda_geo::{BoundingBox, Fix, Position, Timestamp};
///
/// let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
/// let mut pipeline = MultiWriterPipeline::new(PipelineConfig::regional(bounds), 4);
/// let service = pipeline.query_service();
/// for i in 0..120i64 {
///     for v in 1..=8u32 {
///         let pos = Position::new(42.5 + 0.1 * f64::from(v), 5.0 + 0.002 * i as f64);
///         pipeline.push_fix(Fix::new(v, Timestamp::from_mins(i), pos, 10.0, 90.0));
///     }
/// }
/// pipeline.finish();
/// assert_eq!(service.fleet().value.archived_vessels, 8);
/// ```
pub struct MultiWriterPipeline {
    config: PipelineConfig,
    writers: usize,
    total_shards: usize,
    ingest_batch: usize,
    arrivals_since_flush: usize,
    watermark: BoundedOutOfOrderness,
    /// Mirror of the single-writer reorder frontier: arrivals at or
    /// behind it are dropped as late, exactly as `ReorderBuffer::push`
    /// would after a release at every arrival.
    drop_frontier: Timestamp,
    /// Watermark of the last epoch: every accepted observation with
    /// `t <=` this has been fully processed, so it is the
    /// content-correct stamp for catch-up publications.
    released_frontier: Timestamp,
    /// Event times of accepted, not-yet-processed observations — the
    /// router's mirror of the lane buffers, driving the tick schedule
    /// with the same globally sorted stream the single writer sees.
    pending_ts: BinaryHeap<Reverse<Timestamp>>,
    ticks: TickSchedule,
    lanes: Vec<WriterLane>,
    store: SharedTrajectoryStore,
    /// Durable backing of the archive, when configured. Lanes log
    /// their fix batches through it; the phase-2 barrier leader seals
    /// and marks through it (every other lane parked — exactly the
    /// append quiescence a durable seal requires).
    durable: Option<Arc<DurableStore>>,
    query: Arc<QueryShared>,
    shared: Mutex<SharedState>,
    /// Router-side counters (ingest/validation/routing); lane metrics
    /// and shared gauges are folded in by [`MultiWriterPipeline::report`].
    report: PipelineReport,
    /// Arrival-side observation window of the adaptive controller
    /// (`None` when static). Lives on the router thread — the one
    /// thread that sees every arrival — so observing never takes a
    /// lock.
    arrivals: Option<ArrivalWindow>,
    /// The aligned frontier boundary of the last knob commit — the
    /// gate keeping the commit schedule one-per-boundary.
    last_control_commit: Timestamp,
    /// Test seam: `(lane, crossing)` at which that lane panics.
    inject: Option<(usize, u64)>,
}

impl MultiWriterPipeline {
    /// Build a pipeline with `writers` lanes (clamped to
    /// `1..=store_shards`).
    ///
    /// # Panics
    ///
    /// Panics if `config.events.shards != config.store_shards` — lane
    /// ownership is defined over the one shared shard space
    /// ([`PipelineConfig::regional`] guarantees this).
    pub fn new(config: PipelineConfig, writers: usize) -> Self {
        assert_eq!(
            config.events.shards.max(1),
            config.store_shards.max(1),
            "writer lanes need engine and store sharding aligned"
        );
        let total_shards = config.store_shards.max(1);
        let writers = writers.clamp(1, total_shards);
        // Same TTL resolution as the single-writer pipeline: the
        // retention policy owns the live-state TTL unless the engine
        // config was explicitly customised.
        let default_ttl = mda_events::engine::EngineConfig::default().vessel_ttl;
        let vessel_ttl = if config.events.vessel_ttl == default_ttl {
            config.retention.detector_ttl
        } else {
            config.events.vessel_ttl
        };
        let events_config =
            mda_events::engine::EngineConfig { vessel_ttl, ..config.events.clone() };
        let store_config = StoreConfig {
            shards: config.store_shards,
            st_index: Some(StIndexConfig {
                bounds: config.bounds,
                cell_deg: 0.1,
                slice: 30 * mda_geo::time::MINUTE,
            }),
            knn: None,
            seal: SegmentConfig {
                tolerance_m: config.retention.cold_tolerance_m,
                max_silence: config.synopsis.max_silence,
                ..SegmentConfig::default()
            },
        };
        // Same durable wiring as the single writer: a configured data
        // directory is opened (or recovered) before any lane exists,
        // and the lanes share the durable store's in-memory face.
        let (store, durable) = match &config.durability {
            Some(d) => {
                let durable = DurableStore::open(store_config, d)
                    .expect("open/recover the durable data directory");
                (durable.store().clone(), Some(Arc::new(durable)))
            }
            None => (SharedTrajectoryStore::with_config(store_config), None),
        };
        let durable_floor = durable.as_ref().map_or(Timestamp::MIN, |d| d.watermark());
        // Adaptive control: same construction as the single writer —
        // static knobs seed the controller, clamped into bounds, and
        // the clamped values are what actually gets applied.
        let (arrivals, control) = match config.adaptive {
            Some(ctl) => {
                let initial = Knobs {
                    delay: config.watermark_delay,
                    seal_every: config.retention.seal_every,
                    ring_capacity: config.query.event_capacity,
                };
                (
                    Some(ArrivalWindow::new(total_shards, ctl.fast_alpha, ctl.slow_alpha)),
                    Some(AdaptiveController::new(ctl, initial)),
                )
            }
            None => (None, None),
        };
        let knobs0 = control.as_ref().map_or(
            Knobs {
                delay: config.watermark_delay,
                seal_every: config.retention.seal_every,
                ring_capacity: config.query.event_capacity,
            },
            |c| c.knobs(),
        );
        let route_net = RouteNetwork::new(config.bounds, config.model_cell_deg);
        let published_route = Arc::new(RouteNetPredictor::new(route_net.clone()));
        let store_snapshot = store.snapshot(None);
        let query = Arc::new(QueryShared::new(
            knobs0.ring_capacity,
            SystemSnapshot::new(
                durable_floor,
                store_snapshot.clone(),
                Arc::clone(&published_route),
                0,
                0,
            ),
        ));
        let lanes = (0..writers)
            .map(|w| WriterLane {
                reorder: ReorderBuffer::new(),
                fuser: Fuser::new(config.fusion),
                engine: EngineLane::new(&events_config, w, writers),
                compressors: HashMap::new(),
                route_part: route_net.clone(),
                store: store.lane(w, writers),
                metrics: LaneMetrics::default(),
                boundaries_crossed: 0,
            })
            .collect();
        let shared = Mutex::new(SharedState {
            seals: SealSchedule::new(knobs0.seal_every, config.retention.hot_horizon),
            store_snapshot,
            published_route,
            ticks_since_refresh: 0,
            last_published: durable_floor,
            draining: false,
            has_readers: false,
            emitted: 0,
            evicted: 0,
            live: 0,
            seal_sweeps: 0,
            control,
            detector_counts: HashMap::new(),
            out: Vec::new(),
            scratch: EpochScratch {
                batch_events: (0..total_shards).map(|_| Vec::new()).collect(),
                tick_events: (0..total_shards).map(|_| Vec::new()).collect(),
                indexes: (0..total_shards).map(|_| None).collect(),
                fleet: None,
                gone: (0..writers).map(|_| Vec::new()).collect(),
                gone_all: Arc::new(HashSet::new()),
                live_counts: vec![0; writers],
                route_parts: (0..writers).map(|_| None).collect(),
                publish: false,
                want_route: false,
            },
        });
        Self {
            writers,
            total_shards,
            ingest_batch: 256,
            arrivals_since_flush: 0,
            watermark: BoundedOutOfOrderness::new(knobs0.delay),
            // A recovered run's published watermark is the late floor:
            // replays of data it already holds are dropped, keeping the
            // WAL mark discipline intact across restarts.
            drop_frontier: durable_floor,
            released_frontier: durable_floor,
            pending_ts: BinaryHeap::new(),
            ticks: TickSchedule::new(config.tick_interval),
            lanes,
            store,
            durable,
            query,
            shared,
            report: PipelineReport::default(),
            arrivals,
            last_control_commit: Timestamp::MIN,
            inject: None,
            config,
        }
    }

    /// Set how many arrivals the router buffers between epochs (min 1;
    /// default 256). Smaller batches publish stamps with less arrival
    /// lag; larger batches amortise the barrier.
    pub fn with_ingest_batch(mut self, arrivals: usize) -> Self {
        self.ingest_batch = arrivals.max(1);
        self
    }

    /// Number of writer lanes.
    pub fn writers(&self) -> usize {
        self.writers
    }

    /// The archival store (shared with all lane handles).
    pub fn store(&self) -> &SharedTrajectoryStore {
        &self.store
    }

    /// The durable backing store, when durability is configured — for
    /// inspecting the [`mda_store::RecoveryReport`] or the durable
    /// watermark.
    pub fn durable(&self) -> Option<&DurableStore> {
        self.durable.as_deref()
    }

    /// Test seam: make lane `lane` panic just before it arrives at its
    /// `crossing`-th tick boundary (1-based). Exercises the barrier's
    /// abandon path; see `tests/multi_writer.rs`.
    pub fn inject_lane_panic(&mut self, lane: usize, crossing: u64) {
        self.inject = Some((lane, crossing));
    }

    /// Push one received AIS observation (arrival order). Returns the
    /// events finalised by the epoch this arrival completed (usually
    /// empty — epochs run every `ingest_batch` arrivals).
    pub fn push_ais(&mut self, obs: &AisObservation) -> Vec<MaritimeEvent> {
        let _t = StageTimer::new(&mut self.report.ingest);
        self.report.ais_messages += 1;
        match &obs.msg {
            AisMessage::StaticVoyage(sv) => {
                self.report.static_messages += 1;
                if !quality::validate_static(sv).is_clean() {
                    self.report.static_flagged += 1;
                }
                drop(_t);
                Vec::new()
            }
            msg => {
                let Some(fix) = msg.to_fix(obs.t_sent) else {
                    self.report.invalid_messages += 1;
                    drop(_t);
                    return Vec::new();
                };
                drop(_t);
                self.enqueue(fix.t, LaneItem::Ais(fix))
            }
        }
    }

    /// Push one already-decoded AIS position fix (arrival order).
    pub fn push_fix(&mut self, fix: Fix) -> Vec<MaritimeEvent> {
        self.enqueue(fix.t, LaneItem::Ais(fix))
    }

    /// Push a radar plot.
    pub fn push_radar(&mut self, plot: &RadarPlot) -> Vec<MaritimeEvent> {
        self.report.radar_plots += 1;
        self.enqueue(plot.t, LaneItem::Radar(*plot))
    }

    /// Push a VMS report.
    pub fn push_vms(&mut self, report: &VmsReport) -> Vec<MaritimeEvent> {
        self.report.vms_reports += 1;
        self.enqueue(report.t, LaneItem::Vms(*report))
    }

    /// Which lane an item belongs to. Identity-bearing items go by
    /// vessel shard (ownership); anonymous radar plots have no shard,
    /// so any deterministic function of their content will do — they
    /// only feed the owning lane's fuser.
    fn route(&self, item: &LaneItem) -> usize {
        match item {
            LaneItem::Ais(fix) => vessel_shard(fix.id, self.total_shards) % self.writers,
            LaneItem::Vms(v) => vessel_shard(v.id, self.total_shards) % self.writers,
            LaneItem::Radar(plot) => {
                let mut h = plot.t.millis() as u64;
                h ^= plot.pos.lat.to_bits().rotate_left(17);
                h ^= plot.pos.lon.to_bits().rotate_left(43);
                (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.writers
            }
        }
    }

    fn enqueue(&mut self, t: Timestamp, item: LaneItem) -> Vec<MaritimeEvent> {
        // Same observation rule as the single writer: every AIS
        // arrival — accepted or about to drop late — keyed by its
        // *store* shard (writer-count invariant; lane indices are not).
        // Radar/VMS are not observed: radar routing depends on the
        // writer layout.
        if let (Some(w), LaneItem::Ais(fix)) = (self.arrivals.as_mut(), &item) {
            w.observe(t, vessel_shard(fix.id, self.total_shards));
        }
        let lane = self.route(&item);
        {
            let _t = StageTimer::new(&mut self.report.reorder);
            // Same acceptance rule as the single writer, which releases
            // its buffer at every arrival: at or behind the running
            // watermark frontier means late.
            if t <= self.drop_frontier && self.drop_frontier != Timestamp::MIN {
                self.report.dropped_late += 1;
                self.watermark.observe(t);
            } else {
                let wm = self.watermark.observe(t);
                self.drop_frontier = self.drop_frontier.max(wm);
                self.pending_ts.push(Reverse(t));
                let accepted = self.lanes[lane].reorder.push(t, item);
                debug_assert!(accepted, "router accepted an item its lane rejected");
            }
        }
        self.arrivals_since_flush += 1;
        if self.arrivals_since_flush >= self.ingest_batch {
            self.flush()
        } else {
            Vec::new()
        }
    }

    /// Run one epoch to the current watermark and return the events it
    /// finalised.
    fn flush(&mut self) -> Vec<MaritimeEvent> {
        self.arrivals_since_flush = 0;
        let wm = self.watermark.current();
        self.run_epoch(wm, false)
    }

    /// Pop the mirror heap up to `wm` and fire the tick schedule with
    /// the released stream, exactly as the single writer's interleaved
    /// releases would.
    fn due_boundaries(&mut self, wm: Timestamp, draining: bool) -> (Vec<Timestamp>, bool) {
        let mut any_released = false;
        let mut boundaries = Vec::new();
        while self.pending_ts.peek().is_some_and(|r| r.0 <= wm) {
            let Reverse(t) = self.pending_ts.pop().expect("peeked");
            any_released = true;
            while let Some(b) = self.ticks.before_observation(t) {
                boundaries.push(b);
            }
        }
        while let Some(b) = self.ticks.at_watermark(wm) {
            boundaries.push(b);
        }
        // End-of-stream: one trailing sweep at the final (unaligned)
        // watermark, like the single writer's drain.
        if draining
            && self.ticks.anchored()
            && wm > self.ticks.last_boundary()
            && boundaries.last() != Some(&wm)
        {
            boundaries.push(wm);
        }
        (boundaries, any_released)
    }

    /// Frontier-clocked knob commit at the epoch start, before any
    /// lane runs. The single writer's `commit_control`, on the epoch
    /// schedule: epochs fire every `ingest_batch` arrivals — a
    /// writer-count-invariant schedule — and the arrival frontier,
    /// the hot backlog and the emitted count at an epoch start are
    /// all pure functions of the event-time stream, so the committed
    /// trajectory is identical at any writer count. Clocking commits
    /// off the watermark instead would self-throttle: widening the
    /// delay by Δ stalls the watermark (and the leader's next
    /// boundary) for exactly Δ of frontier time, blacking out control
    /// precisely while lateness is ramping.
    fn commit_control(&mut self) {
        let Some(window) = self.arrivals.as_mut() else {
            return;
        };
        let Some(frontier) = self.watermark.frontier() else {
            return;
        };
        let tick = self.config.tick_interval.max(1);
        let aligned = Timestamp(frontier.millis().div_euclid(tick) * tick);
        if aligned <= self.last_control_commit {
            return;
        }
        let knobs = {
            let mut s = lock(&self.shared);
            let emitted = s.emitted;
            let Some(ctl) = s.control.as_mut() else {
                return;
            };
            ctl.absorb(window);
            let knobs = ctl.commit(aligned, self.store.hot_len() as u64, emitted);
            s.seals.set_every(knobs.seal_every);
            knobs
        };
        self.last_control_commit = aligned;
        self.query.set_event_capacity(knobs.ring_capacity);
        // The delay knob is applied here, on the router thread — the
        // watermark's owner. The watermark floor keeps it monotone
        // even when the delay contracts.
        self.watermark.set_max_delay(knobs.delay);
    }

    fn run_epoch(&mut self, wm: Timestamp, draining: bool) -> Vec<MaritimeEvent> {
        self.commit_control();
        let (boundaries, any_released) = self.due_boundaries(wm, draining);
        if boundaries.is_empty() && !any_released {
            self.released_frontier = self.released_frontier.max(wm);
            return Vec::new();
        }
        {
            let mut s = lock(&self.shared);
            s.has_readers = Arc::strong_count(&self.query) > 1;
        }
        let shared = &self.shared;
        let store = &self.store;
        let durable = self.durable.as_deref();
        let query: &QueryShared = &self.query;
        let config = &self.config;
        let total_shards = self.total_shards;
        let inject = self.inject;
        let boundaries = &boundaries[..];
        run_lanes(&mut self.lanes, move |w, lane, barrier| {
            let released = {
                let _t = StageTimer::new(&mut lane.metrics.reorder);
                lane.reorder.release(wm)
            };
            let mut cursor = 0usize;
            for &b in boundaries {
                let end = cursor + released[cursor..].partition_point(|(t, _)| *t <= b);
                process_interval(lane, &released[cursor..end], shared, durable, config);
                cursor = end;
                {
                    let mut s = lock(shared);
                    for (shard, idx) in lane.engine.index_clones() {
                        s.scratch.indexes[shard] = Some(idx);
                    }
                }
                lane.boundaries_crossed += 1;
                if inject == Some((w, lane.boundaries_crossed)) {
                    panic!("injected lane fault");
                }
                // Phase 1: the leader merges interval events and builds
                // the fleet view while every other lane stays parked.
                if barrier.wait() == LaneRole::Leader {
                    let mut s = lock(shared);
                    let events = merge_deposits(&mut s.scratch.batch_events);
                    s.emit(events, query);
                    let indexes: Vec<LiveIndex> = (0..total_shards)
                        .map(|shard| s.scratch.indexes[shard].take().unwrap_or_default())
                        .collect();
                    s.scratch.fleet = Some(Arc::new(FleetIndex::snapshot(&indexes)));
                    s.scratch.publish = s.has_readers && b > s.last_published;
                    s.scratch.want_route = false;
                    if s.scratch.publish {
                        s.ticks_since_refresh += 1;
                        let cadence = config.query.predictor_refresh_ticks.max(1);
                        if s.draining || s.ticks_since_refresh >= cadence {
                            s.scratch.want_route = true;
                            s.ticks_since_refresh = 0;
                        }
                    }
                    drop(s);
                    barrier.release();
                }
                let (fleet, want_route) = {
                    let s = lock(shared);
                    let fleet = Arc::clone(s.scratch.fleet.as_ref().expect("leader built fleet"));
                    (fleet, s.scratch.want_route)
                };
                let (per_shard, gone) = {
                    let _t = StageTimer::new(&mut lane.metrics.events);
                    lane.engine.sweep(b, &fleet)
                };
                // Dead vessels must not pin lane compressors (the
                // single writer's `drop_evicted_state`).
                for id in &gone {
                    lane.compressors.remove(id);
                }
                {
                    let mut s = lock(shared);
                    for (shard, events) in per_shard {
                        s.scratch.tick_events[shard] = events;
                    }
                    s.scratch.gone[w] = gone;
                    s.scratch.live_counts[w] = lane.engine.live_count();
                    if want_route {
                        s.scratch.route_parts[w] = Some(lane.route_part.clone());
                    }
                }
                // Phase 2: the leader merges sweep results, seals and
                // publishes the stamp `b`, all lanes parked.
                if barrier.wait() == LaneRole::Leader {
                    let mut s = lock(shared);
                    let events = merge_deposits(&mut s.scratch.tick_events);
                    s.emit(events, query);
                    let mut union = HashSet::new();
                    let mut total_gone = 0usize;
                    for g in s.scratch.gone.iter_mut() {
                        total_gone += g.len();
                        union.extend(g.drain(..));
                    }
                    s.evicted += total_gone as u64;
                    s.scratch.gone_all = Arc::new(union);
                    s.live = s.scratch.live_counts.iter().sum::<usize>() as u64;
                    if let Some(cut) = s.seals.due(b) {
                        // Durable seals persist the segments and rotate
                        // the WAL; every other lane is parked at the
                        // barrier, so the store is append-quiescent.
                        match durable {
                            Some(d) => {
                                d.seal_before(cut).expect("persist seal sweep");
                            }
                            None => {
                                store.seal_before(cut);
                            }
                        }
                        s.seal_sweeps += 1;
                    }
                    // Record the durability boundary whether or not a
                    // snapshot is published: every lane has processed
                    // (and logged) exactly its data with `t <= b`.
                    if let Some(d) = durable {
                        d.mark(b).expect("record durability mark");
                    }
                    if s.scratch.publish {
                        s.last_published = b;
                        if s.scratch.want_route {
                            let mut net = RouteNetwork::new(config.bounds, config.model_cell_deg);
                            for part in s.scratch.route_parts.iter_mut() {
                                if let Some(part) = part.take() {
                                    net.merge_from(&part);
                                }
                            }
                            s.published_route = Arc::new(RouteNetPredictor::new(net));
                        }
                        let snap = store.snapshot(Some(&s.store_snapshot));
                        s.store_snapshot = snap.clone();
                        let snapshot = SystemSnapshot::new(
                            b,
                            snap,
                            Arc::clone(&s.published_route),
                            s.live,
                            s.emitted,
                        );
                        query.publish(snapshot);
                    }
                    drop(s);
                    barrier.release();
                }
                let gone_all = Arc::clone(&lock(shared).scratch.gone_all);
                lane.engine.evict_pairs(&gone_all);
                lane.fuser.sweep(b);
            }
            // Tail interval: released data past the last boundary.
            process_interval(lane, &released[cursor..], shared, durable, config);
            if barrier.wait() == LaneRole::Leader {
                let mut s = lock(shared);
                let events = merge_deposits(&mut s.scratch.batch_events);
                s.emit(events, query);
                drop(s);
                barrier.release();
            }
        });
        self.released_frontier = self.released_frontier.max(wm);
        std::mem::take(&mut lock(&self.shared).out)
    }

    /// Publish a catch-up snapshot at `wm` from the router thread
    /// (lanes idle): the single writer's off-grid `publish`, with the
    /// lane route slices merged inline.
    fn publish_inline(&mut self, wm: Timestamp) {
        if Arc::strong_count(&self.query) == 1 {
            return;
        }
        let mut s = lock(&self.shared);
        if wm <= s.last_published {
            return;
        }
        s.last_published = wm;
        s.ticks_since_refresh += 1;
        let cadence = self.config.query.predictor_refresh_ticks.max(1);
        if s.draining || s.ticks_since_refresh >= cadence {
            let mut net = RouteNetwork::new(self.config.bounds, self.config.model_cell_deg);
            for lane in &self.lanes {
                net.merge_from(&lane.route_part);
            }
            s.published_route = Arc::new(RouteNetPredictor::new(net));
            s.ticks_since_refresh = 0;
        }
        let snap = self.store.snapshot(Some(&s.store_snapshot));
        s.store_snapshot = snap.clone();
        let snapshot =
            SystemSnapshot::new(wm, snap, Arc::clone(&s.published_route), s.live, s.emitted);
        self.query.publish(snapshot);
    }

    /// Drain everything buffered (end of stream); returns the remaining
    /// events. Terminal like the single writer's `finish`: later
    /// arrivals are dropped as late.
    pub fn finish(&mut self) -> Vec<MaritimeEvent> {
        // The *current* delay, not the configured one — adaptive
        // control may have retuned it.
        let now = self.watermark.current().saturating_add(self.watermark.max_delay());
        self.drop_frontier = Timestamp::MAX;
        lock(&self.shared).draining = true;
        let events = self.run_epoch(now, true);
        // End-of-stream publication (dedupes against a trailing tick).
        self.publish_inline(now);
        lock(&self.shared).draining = false;
        self.arrivals_since_flush = 0;
        events
    }

    /// Run a whole simulated scenario (AIS + radar + VMS merged by
    /// arrival time). Returns all recognised events.
    pub fn run_scenario(&mut self, sim: &SimOutput) -> Vec<MaritimeEvent> {
        enum Arrival<'a> {
            Ais(&'a AisObservation),
            Radar(&'a RadarPlot),
            Vms(&'a VmsReport),
        }
        let mut merged: Vec<(Timestamp, Arrival)> =
            Vec::with_capacity(sim.ais.len() + sim.radar.len() + sim.vms.len());
        merged.extend(sim.ais.iter().map(|o| (o.t_received, Arrival::Ais(o))));
        merged.extend(sim.radar.iter().map(|p| (p.t, Arrival::Radar(p))));
        merged.extend(sim.vms.iter().map(|v| (v.t, Arrival::Vms(v))));
        merged.sort_by_key(|(t, _)| *t);

        let mut events = Vec::new();
        for (_, item) in merged {
            match item {
                Arrival::Ais(o) => events.extend(self.push_ais(o)),
                Arrival::Radar(p) => events.extend(self.push_radar(p)),
                Arrival::Vms(v) => events.extend(self.push_vms(v)),
            }
        }
        events.extend(self.finish());
        events
    }

    /// A cloneable, thread-safe read front-end over this pipeline —
    /// same contract as the single writer's `query_service`. A new
    /// handle is caught up to the released frontier (the stamp at
    /// which every accepted observation has been processed).
    pub fn query_service(&mut self) -> QueryService {
        let service = QueryService::new(Arc::clone(&self.query));
        self.publish_inline(self.released_frontier);
        service
    }

    /// Aggregate report: router counters plus shared gauges plus the
    /// per-lane stage timings summed across lanes. Counters and gauges
    /// are writer-count invariant; timing sums are not (they add busy
    /// time across lanes).
    pub fn report(&self) -> PipelineReport {
        let mut r = self.report.clone();
        {
            let s = lock(&self.shared);
            r.events_emitted = s.emitted;
            r.evicted_vessels = s.evicted;
            r.live_vessels = s.live;
            r.seal_sweeps = s.seal_sweeps;
            r.record_detectors(&s.detector_counts);
            if let Some(ctl) = &s.control {
                r.record_control(ctl.gauges(), ctl.knobs());
            }
        }
        let stats = match &self.durable {
            Some(d) => d.tier_stats(),
            None => self.store.tier_stats(),
        };
        r.record_tiers(&stats);
        for lane in &self.lanes {
            r.reorder.absorb(&lane.metrics.reorder);
            r.fusion.absorb(&lane.metrics.fusion);
            r.events.absorb(&lane.metrics.events);
            r.synopses.absorb(&lane.metrics.synopses);
            r.analytics.absorb(&lane.metrics.analytics);
            r.storage.absorb(&lane.metrics.storage);
        }
        r
    }

    /// The adaptive controller's committed knob trajectory —
    /// `(boundary, knobs)` per commit, in boundary order. Empty for a
    /// pipeline running static knobs. Identical arrival streams produce
    /// identical traces at any writer count: every controller input is
    /// a writer-count-invariant function of the event-time stream.
    pub fn control_trace(&self) -> Vec<(Timestamp, Knobs)> {
        lock(&self.shared).control.as_ref().map_or_else(Vec::new, |c| c.trace().to_vec())
    }
}

/// Process one lane's released items up to a boundary: fuse, recognise,
/// compress, archive, learn — the single writer's `process_released` +
/// `process_fix_batch` restricted to the lane's shards. Per-shard
/// detector events are deposited into the epoch scratch.
fn process_interval(
    lane: &mut WriterLane,
    items: &[(Timestamp, LaneItem)],
    shared: &Mutex<SharedState>,
    durable: Option<&DurableStore>,
    config: &PipelineConfig,
) {
    let mut batch: Vec<Fix> = Vec::new();
    for (_, item) in items {
        match item {
            LaneItem::Ais(fix) => batch.push(*fix),
            LaneItem::Radar(plot) => {
                flush_fix_batch(lane, &mut batch, shared, durable, config);
                let _t = StageTimer::new(&mut lane.metrics.fusion);
                lane.fuser.ingest(&SensorReport {
                    kind: SensorKind::Radar,
                    t: plot.t,
                    pos: plot.pos,
                    claimed_id: None,
                    sog_kn: None,
                    cog_deg: None,
                    accuracy_m: None,
                });
            }
            LaneItem::Vms(v) => {
                flush_fix_batch(lane, &mut batch, shared, durable, config);
                let _t = StageTimer::new(&mut lane.metrics.fusion);
                lane.fuser.ingest(&SensorReport {
                    kind: SensorKind::Vms,
                    t: v.t,
                    pos: v.pos,
                    claimed_id: Some(v.id),
                    sog_kn: None,
                    cog_deg: None,
                    accuracy_m: None,
                });
            }
        }
    }
    flush_fix_batch(lane, &mut batch, shared, durable, config);
}

/// One canonical fix batch through a lane's stages.
fn flush_fix_batch(
    lane: &mut WriterLane,
    batch: &mut Vec<Fix>,
    shared: &Mutex<SharedState>,
    durable: Option<&DurableStore>,
    config: &PipelineConfig,
) {
    if batch.is_empty() {
        return;
    }
    let mut fixes = std::mem::take(batch);
    // Same canonical content order as the single writer's batches: a
    // lane subset sorted by the same total order yields the same
    // per-shard subsequences a global sort would.
    canonical_sort(&mut fixes);
    {
        let _t = StageTimer::new(&mut lane.metrics.fusion);
        for fix in &fixes {
            lane.fuser.ingest(&SensorReport::from_fix(SensorKind::AisTerrestrial, fix));
        }
    }
    let per_shard = {
        let _t = StageTimer::new(&mut lane.metrics.events);
        lane.engine.observe_sorted(&fixes)
    };
    let mut kept_batch: Vec<Fix> = Vec::new();
    for fix in fixes {
        let kept = {
            let _t = StageTimer::new(&mut lane.metrics.synopses);
            lane.compressors
                .entry(fix.id)
                .or_insert_with(|| ThresholdCompressor::new(config.synopsis))
                .observe(fix)
        };
        {
            let _t = StageTimer::new(&mut lane.metrics.analytics);
            lane.route_part.learn(&fix);
        }
        if let Some(kept) = kept {
            kept_batch.push(kept);
        }
    }
    // Batched store append: one writer-lock acquisition per touched
    // shard and one amortised per-vessel merge, instead of a per-fix
    // lock + sorted insert.
    if !kept_batch.is_empty() {
        let _t = StageTimer::new(&mut lane.metrics.storage);
        lane.store.append_batch(kept_batch.iter().copied());
    }
    // One WAL record per lane batch, before the lane reaches the next
    // barrier: the leader's mark for any boundary covering these fixes
    // fires behind that barrier, so the log never trails a durable
    // mark. (The WAL writer serializes concurrent lanes internally.)
    if let Some(d) = durable {
        let _t = StageTimer::new(&mut lane.metrics.storage);
        d.log_batch(&kept_batch).expect("write-ahead-log lane batch");
    }
    if per_shard.iter().any(|(_, events)| !events.is_empty()) {
        let mut s = lock(shared);
        for (shard, events) in per_shard {
            s.scratch.batch_events[shard].extend(events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::{BoundingBox, Position};

    fn bounds() -> BoundingBox {
        BoundingBox::new(42.0, 3.0, 44.0, 6.5)
    }

    /// A small mixed fleet with enough structure to light up several
    /// detectors and the seal schedule.
    fn drive(pipeline: &mut MultiWriterPipeline) -> Vec<MaritimeEvent> {
        let mut events = Vec::new();
        for i in 0..240i64 {
            let t = Timestamp::from_mins(i);
            for v in 1..=12u32 {
                // Every 4th vessel goes dark after 2 h.
                if v % 4 == 0 && i >= 120 {
                    continue;
                }
                let lat = 42.3 + 0.12 * f64::from(v);
                let pos = Position::new(lat, 4.0 + 0.004 * i as f64);
                events.extend(pipeline.push_fix(Fix::new(v, t, pos, 11.0, 90.0)));
            }
        }
        events.extend(pipeline.finish());
        events
    }

    #[test]
    fn writer_count_is_clamped_to_shards() {
        let config = PipelineConfig::regional(bounds());
        let shards = config.store_shards;
        let p = MultiWriterPipeline::new(config, 64);
        assert_eq!(p.writers(), shards);
        let p = MultiWriterPipeline::new(PipelineConfig::regional(bounds()), 0);
        assert_eq!(p.writers(), 1);
    }

    #[test]
    fn single_and_multi_writer_reports_agree() {
        let mut one =
            MultiWriterPipeline::new(PipelineConfig::regional(bounds()), 1).with_ingest_batch(64);
        let mut four =
            MultiWriterPipeline::new(PipelineConfig::regional(bounds()), 4).with_ingest_batch(64);
        let e1 = drive(&mut one);
        let e4 = drive(&mut four);
        assert_eq!(e1, e4, "event streams must be writer-count invariant");
        let (r1, r4) = (one.report(), four.report());
        assert_eq!(r1.events_emitted, r4.events_emitted);
        assert!(r1.events_emitted > 0, "scenario should emit events");
        assert_eq!(r1.detector_counts, r4.detector_counts);
        assert_eq!(r1.live_vessels, r4.live_vessels);
        assert_eq!(r1.evicted_vessels, r4.evicted_vessels);
        assert!(r1.evicted_vessels > 0, "dark vessels should age out");
        assert_eq!(r1.seal_sweeps, r4.seal_sweeps);
        assert!(r1.seal_sweeps > 0, "4 h of data crosses seal boundaries");
        assert_eq!(r1.hot_fixes, r4.hot_fixes);
        assert_eq!(r1.cold_fixes, r4.cold_fixes);
        assert_eq!(r1.cold_segments, r4.cold_segments);
        assert_eq!(r1.dropped_late, r4.dropped_late);
        assert_eq!(r1.ais_messages, r4.ais_messages);
        // Stage timings aggregate across lanes: every stage that ran
        // shows up with calls.
        assert!(r4.events.calls > 0 && r4.synopses.calls > 0 && r4.storage.calls > 0);
    }

    #[test]
    fn archives_match_across_writer_counts() {
        let mut one =
            MultiWriterPipeline::new(PipelineConfig::regional(bounds()), 1).with_ingest_batch(32);
        let mut eight =
            MultiWriterPipeline::new(PipelineConfig::regional(bounds()), 8).with_ingest_batch(32);
        drive(&mut one);
        drive(&mut eight);
        assert_eq!(one.store().len(), eight.store().len());
        for v in 1..=12u32 {
            assert_eq!(
                one.store().trajectory(v),
                eight.store().trajectory(v),
                "vessel {v} archive must be writer-count invariant"
            );
        }
    }

    #[test]
    fn late_arrivals_drop_like_the_single_writer() {
        let mut p =
            MultiWriterPipeline::new(PipelineConfig::regional(bounds()), 2).with_ingest_batch(8);
        let delay = p.config.watermark_delay;
        for i in 0..60i64 {
            p.push_fix(Fix::new(1, Timestamp::from_mins(i), Position::new(43.0, 5.0), 9.0, 90.0));
        }
        // Far behind the watermark: must be counted, not processed.
        let stale = Timestamp::from_mins(59).saturating_add(-delay - 1);
        p.push_fix(Fix::new(2, stale, Position::new(43.0, 5.0), 9.0, 90.0));
        p.finish();
        assert_eq!(p.report().dropped_late, 1);
        assert!(p.store().trajectory(2).is_none(), "late vessel never archived");
    }

    #[test]
    fn adaptive_knob_trajectory_is_writer_count_invariant() {
        let traces: Vec<_> = [1usize, 2, 4, 8]
            .iter()
            .map(|&w| {
                let mut p = MultiWriterPipeline::new(PipelineConfig::adaptive(bounds()), w)
                    .with_ingest_batch(32);
                drive(&mut p);
                p.control_trace()
            })
            .collect();
        assert!(!traces[0].is_empty(), "the scenario must commit knob moves");
        for (i, t) in traces.iter().enumerate().skip(1) {
            assert_eq!(
                &traces[0],
                t,
                "knob trajectory at {} writers diverged from 1 writer",
                [1, 2, 4, 8][i]
            );
        }
        // Events, archive and reports stay writer-count invariant with
        // the controller retuning live knobs mid-run.
        let mut one =
            MultiWriterPipeline::new(PipelineConfig::adaptive(bounds()), 1).with_ingest_batch(32);
        let mut eight =
            MultiWriterPipeline::new(PipelineConfig::adaptive(bounds()), 8).with_ingest_batch(32);
        let e1 = drive(&mut one);
        let e8 = drive(&mut eight);
        assert_eq!(e1, e8, "adaptive event streams must be writer-count invariant");
        assert_eq!(one.store().len(), eight.store().len());
        let (r1, r8) = (one.report(), eight.report());
        assert_eq!(r1.seal_sweeps, r8.seal_sweeps);
        assert_eq!(r1.control, r8.control);
        assert!(r1.control.is_some(), "adaptive run must record control status");
    }

    #[test]
    fn catch_up_publication_stamps_the_released_frontier() {
        let mut p =
            MultiWriterPipeline::new(PipelineConfig::regional(bounds()), 4).with_ingest_batch(16);
        for i in 0..120i64 {
            for v in 1..=4u32 {
                let pos = Position::new(42.5 + 0.2 * f64::from(v), 5.0 + 0.002 * i as f64);
                p.push_fix(Fix::new(v, Timestamp::from_mins(i), pos, 10.0, 90.0));
            }
        }
        // Handle created mid-stream: stamped at the released frontier,
        // where snapshot contents are complete.
        let service = p.query_service();
        let stamp = service.watermark();
        assert_eq!(stamp, p.released_frontier);
        let snap = service.snapshot();
        for v in 1..=4u32 {
            if let Some(traj) = snap.trajectory(v).value {
                assert!(traj.iter().all(|f| f.t <= stamp), "no future data behind the stamp");
            }
        }
        p.finish();
        assert!(service.watermark() > stamp, "finish publishes the final stamp");
    }
}
