//! Pipeline-level kill-and-recover: a pipeline built over a data
//! directory that holds a crashed run's state comes back at the exact
//! pre-crash published watermark, with the archive answering queries
//! exactly as the crashed pipeline's readers saw them at that stamp —
//! for the single-writer pipeline, the multi-writer pipeline, and
//! across the two (the on-disk format is pipeline-agnostic).

use mda_core::multi::MultiWriterPipeline;
use mda_core::{MaritimePipeline, PipelineConfig};
use mda_geo::{BoundingBox, Fix, Position, Timestamp};
use std::path::PathBuf;

fn bounds() -> BoundingBox {
    BoundingBox::new(42.0, 3.0, 44.0, 6.5)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mda-pipe-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn fleet_fix(v: u32, minute: i64) -> Fix {
    Fix::new(
        v,
        Timestamp::from_mins(minute),
        Position::new(42.3 + 0.15 * f64::from(v), 3.5 + 0.004 * minute as f64),
        10.0 + f64::from(v),
        90.0,
    )
}

/// Push a 4 h fleet (12 vessels, one fix a minute) — long enough to
/// cross several seal sweeps under the regional retention defaults.
fn drive_single(p: &mut MaritimePipeline, minutes: std::ops::Range<i64>) {
    for minute in minutes {
        for v in 1..=12u32 {
            p.push_fix(fleet_fix(v, minute));
        }
    }
}

fn drive_multi(p: &mut MultiWriterPipeline, minutes: std::ops::Range<i64>) {
    for minute in minutes {
        for v in 1..=12u32 {
            p.push_fix(fleet_fix(v, minute));
        }
    }
}

/// Oracle answers at the durable watermark: per-vessel trajectories and
/// a window query, filtered to `t <= wm` (what a reader of the stamp-
/// `wm` snapshot could observe).
fn oracle_at(store: &mda_store::SharedTrajectoryStore, wm: Timestamp) -> (Vec<Vec<Fix>>, Vec<Fix>) {
    let trajs = (1..=12)
        .map(|v| {
            let mut t = store.trajectory(v).unwrap_or_default();
            t.retain(|f| f.t <= wm);
            t
        })
        .collect();
    let window =
        store.window(&BoundingBox::new(42.0, 3.0, 43.5, 5.0), Timestamp::from_mins(10), wm);
    (trajs, window)
}

#[test]
fn single_writer_recovers_to_the_pre_crash_stamp() {
    let dir = tmp_dir("single");
    let config = PipelineConfig::regional(bounds()).with_durability(&dir);
    let mut p = MaritimePipeline::new(config.clone());
    let svc = p.query_service();
    drive_single(&mut p, 0..240);
    // No finish(): the pipeline "crashes" with the reorder buffer and
    // the post-watermark tail unpublished.
    let wm = p.durable().expect("durability configured").watermark();
    assert!(wm > Timestamp::MIN, "the run must have marked boundaries");
    assert_eq!(svc.watermark(), wm, "published stamp and durable mark agree");
    assert!(p.report().seal_sweeps > 0, "4 h must cross seal sweeps");
    assert!(p.tier_stats().disk_bytes > 0, "segments + WAL on disk");
    let (oracle_trajs, oracle_window) = oracle_at(p.store(), wm);
    drop(p);

    let mut back = MaritimePipeline::new(config);
    let recovery = back.durable().unwrap().recovery().clone();
    assert_eq!(recovery.watermark, wm, "exact pre-crash published watermark");
    assert!(recovery.segments > 0, "sealed segments came back from disk");
    assert_eq!(recovery.dropped_segments, 0);
    // A fresh reader of the recovered pipeline is stamped at the
    // recovered watermark before any new data arrives.
    let svc = back.query_service();
    assert_eq!(svc.watermark(), wm);
    let (trajs, window) = oracle_at(back.store(), wm);
    assert_eq!(trajs, oracle_trajs, "recovered archive equals the oracle at the stamp");
    assert_eq!(window, oracle_window);

    // Replays of already-durable data are dropped as late; new data
    // past the watermark is accepted and stamps continue monotonically.
    back.push_fix(fleet_fix(1, 0));
    assert_eq!(back.report().dropped_late, 1);
    drive_single(&mut back, 240..300);
    back.finish();
    assert!(svc.watermark() > wm, "stamps continue past the recovered watermark");
    assert!(back.durable().unwrap().watermark() > wm);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multi_writer_recovers_to_the_pre_crash_stamp() {
    let dir = tmp_dir("multi");
    let config = PipelineConfig::regional(bounds()).with_durability(&dir);
    let mut p = MultiWriterPipeline::new(config.clone(), 4).with_ingest_batch(64);
    let svc = p.query_service();
    drive_multi(&mut p, 0..240);
    let wm = p.durable().expect("durability configured").watermark();
    assert!(wm > Timestamp::MIN);
    assert_eq!(svc.watermark(), wm, "published stamp and durable mark agree");
    assert!(p.report().seal_sweeps > 0);
    assert!(p.report().disk_bytes > 0, "report carries real on-disk bytes");
    let (oracle_trajs, oracle_window) = oracle_at(p.store(), wm);
    drop(p);

    let mut back = MultiWriterPipeline::new(config, 4).with_ingest_batch(64);
    assert_eq!(back.durable().unwrap().recovery().watermark, wm);
    let svc = back.query_service();
    assert_eq!(svc.watermark(), wm);
    let (trajs, window) = oracle_at(back.store(), wm);
    assert_eq!(trajs, oracle_trajs);
    assert_eq!(window, oracle_window);

    drive_multi(&mut back, 240..300);
    back.finish();
    assert!(svc.watermark() > wm);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn data_directories_are_pipeline_agnostic() {
    // Crash a single-writer run, recover it with a 4-lane multi-writer
    // (and vice versa): the durable format carries the archive, not the
    // pipeline shape.
    let dir = tmp_dir("agnostic");
    let config = PipelineConfig::regional(bounds()).with_durability(&dir);
    let mut single = MaritimePipeline::new(config.clone());
    drive_single(&mut single, 0..240);
    let wm = single.durable().unwrap().watermark();
    let (oracle_trajs, _) = oracle_at(single.store(), wm);
    drop(single);

    let multi = MultiWriterPipeline::new(config.clone(), 4);
    assert_eq!(multi.durable().unwrap().recovery().watermark, wm);
    let (trajs, _) = oracle_at(multi.store(), wm);
    assert_eq!(trajs, oracle_trajs);
    drop(multi);

    let single = MaritimePipeline::new(config);
    assert_eq!(single.durable().unwrap().recovery().watermark, wm);
    let (trajs, _) = oracle_at(single.store(), wm);
    assert_eq!(trajs, oracle_trajs);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_recovers_to_the_previous_mark() {
    let dir = tmp_dir("torn");
    let config = PipelineConfig::regional(bounds()).with_durability(&dir);
    let mut p = MaritimePipeline::new(config.clone());
    drive_single(&mut p, 0..180);
    let wm = p.durable().unwrap().watermark();
    drop(p);

    // Chop bytes off the live WAL generation: a crash mid-append.
    let manifest = mda_store::Manifest::read(dir.as_path()).unwrap().unwrap();
    let wal_path = dir.join(format!("wal-{}.log", manifest.wal_gen));
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();

    let back = MaritimePipeline::new(config);
    let recovery = back.durable().unwrap().recovery().clone();
    assert!(recovery.wal_torn, "the torn tail must be detected");
    assert!(recovery.watermark <= wm, "never recover past what was durable");
    assert!(recovery.watermark > Timestamp::MIN, "earlier marks survive the tear");
    // Every recovered fix is at or behind the recovered watermark.
    for v in 1..=12u32 {
        if let Some(traj) = back.store().trajectory(v) {
            assert!(traj.iter().all(|f| f.t <= recovery.watermark));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
