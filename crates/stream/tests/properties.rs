//! Property tests for the streaming substrate.

use mda_geo::Timestamp;
use mda_stream::reorder::ReorderBuffer;
use mda_stream::runner::{run_partitioned, run_shard_affine};
use mda_stream::watermark::BoundedOutOfOrderness;
use mda_stream::window::{SessionWindows, SlidingWindows, TumblingWindows};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// Watermarks are monotone non-decreasing under arbitrary input.
    #[test]
    fn watermark_monotone(
        times in prop::collection::vec(-1_000_000i64..1_000_000, 1..200),
        delay in 0i64..60_000,
    ) {
        let mut w = BoundedOutOfOrderness::new(delay);
        let mut last = Timestamp::MIN;
        for t in times {
            let wm = w.observe(Timestamp(t));
            prop_assert!(wm >= last, "watermark regressed");
            last = wm;
        }
    }

    /// The reorder buffer emits in event-time order regardless of input
    /// order, and everything pushed before any release is emitted.
    #[test]
    fn reorder_emits_sorted(
        times in prop::collection::vec(0i64..100_000, 0..200),
        wm_step in 1i64..20_000,
    ) {
        let mut buffer = ReorderBuffer::new();
        let mut watermark = BoundedOutOfOrderness::new(5_000);
        let mut emitted: Vec<i64> = Vec::new();
        let mut accepted = 0usize;
        let mut wm;
        for (i, t) in times.iter().enumerate() {
            if buffer.push(Timestamp(*t), i) {
                accepted += 1;
            }
            wm = watermark.observe(Timestamp(*t));
            if i as i64 % wm_step == 0 {
                emitted.extend(buffer.release(wm).into_iter().map(|(ts, _)| ts.0));
            }
        }
        emitted.extend(buffer.drain_all().into_iter().map(|(ts, _)| ts.0));
        let mut sorted = emitted.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&emitted, &sorted, "out-of-order emission");
        prop_assert_eq!(emitted.len(), accepted);
    }

    /// Tumbling windows partition time: every instant is in exactly the
    /// window that `assign` returns, and boundaries line up.
    #[test]
    fn tumbling_partitions(t in -1_000_000i64..1_000_000, width in 1i64..100_000) {
        let w = TumblingWindows::new(width).assign(Timestamp(t));
        prop_assert!(w.contains(Timestamp(t)));
        prop_assert_eq!(w.len(), width);
        prop_assert_eq!(w.start.0.rem_euclid(width), 0);
    }

    /// Sliding windows: `assign` returns exactly the epoch-aligned
    /// windows containing the instant.
    #[test]
    fn sliding_covers(t in 0i64..1_000_000, width in 1i64..50_000, slide in 1i64..50_000) {
        let s = SlidingWindows::new(width, slide);
        let ws = s.assign(Timestamp(t));
        prop_assert!(!ws.is_empty() || width < slide);
        for w in &ws {
            prop_assert!(w.contains(Timestamp(t)));
            prop_assert_eq!(w.start.0.rem_euclid(slide), 0);
        }
        // Oracle: valid starts are the multiples of `slide` in
        // (t - width, t].
        let earliest = (t - width + 1).max(0).next_multiple_of_custom(slide);
        let latest = (t / slide) * slide;
        let expected = if earliest > latest { 0 } else { (latest - earliest) / slide + 1 };
        // Only check for t >= width to keep the oracle clear of
        // negative-time alignment subtleties.
        if t >= width {
            prop_assert_eq!(ws.len() as i64, expected, "width={} slide={} t={}", width, slide, t);
        }
    }

    /// `run_partitioned` loses no elements and preserves per-key input
    /// order, for arbitrary key distributions and 1..=8 workers.
    #[test]
    fn run_partitioned_no_loss_per_key_order(
        keys in prop::collection::vec(0u32..24, 0..300),
        workers in 1usize..=8,
    ) {
        // Tag each element with its global input sequence number.
        let items: Vec<(u32, usize)> =
            keys.iter().enumerate().map(|(seq, k)| (*k, seq)).collect();
        let out: Vec<(u32, usize)> =
            run_partitioned(items.clone(), workers, |it| it.0, || |it: (u32, usize)| vec![it]);

        // No loss, no duplication (multiset equality).
        prop_assert_eq!(out.len(), items.len());
        let mut got = out.clone();
        let mut want = items;
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);

        // Per-key order: each key's sequence numbers appear ascending.
        let mut per_key: HashMap<u32, Vec<usize>> = HashMap::new();
        for (k, seq) in out {
            per_key.entry(k).or_default().push(seq);
        }
        for (k, seqs) in per_key {
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&seqs, &sorted, "key {} processed out of order", k);
        }
    }

    /// `run_shard_affine` has the same no-loss / per-shard-order
    /// contract as `run_partitioned`, for arbitrary shard maps and
    /// worker counts.
    #[test]
    fn run_shard_affine_no_loss_per_shard_order(
        shards_of in prop::collection::vec(0usize..13, 0..300),
        workers in 1usize..=8,
    ) {
        let shards = 13usize;
        let items: Vec<(usize, usize)> =
            shards_of.iter().enumerate().map(|(seq, s)| (*s, seq)).collect();
        let out: Vec<(usize, usize)> = run_shard_affine(
            items.clone(),
            workers,
            shards,
            |it| it.0,
            || |batch: Vec<(usize, usize)>| batch,
        );

        prop_assert_eq!(out.len(), items.len());
        let mut got = out.clone();
        let mut want = items;
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);

        let mut per_shard: HashMap<usize, Vec<usize>> = HashMap::new();
        for (s, seq) in out {
            per_shard.entry(s).or_default().push(seq);
        }
        for (s, seqs) in per_shard {
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&seqs, &sorted, "shard {} processed out of order", s);
        }
    }

    /// Session windows close only after the gap elapses.
    #[test]
    fn sessions_respect_gap(
        deltas in prop::collection::vec(1i64..30_000, 1..50),
        gap in 1_000i64..20_000,
    ) {
        let mut s: SessionWindows<u8> = SessionWindows::new(gap);
        let mut t = 0i64;
        for d in deltas {
            let closed = s.observe(0, Timestamp(t + d));
            if let Some(w) = closed {
                // A closed session means the jump exceeded the gap.
                prop_assert!(Timestamp(t + d) > w.end);
            }
            t += d;
        }
        prop_assert_eq!(s.open_count(), 1);
    }
}

/// Helper: smallest multiple of `m` that is >= self.
trait NextMultiple {
    fn next_multiple_of_custom(self, m: i64) -> i64;
}

impl NextMultiple for i64 {
    fn next_multiple_of_custom(self, m: i64) -> i64 {
        let r = self.rem_euclid(m);
        if r == 0 {
            self
        } else {
            self + (m - r)
        }
    }
}
