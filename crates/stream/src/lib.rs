//! In-situ stream processing substrate (paper §2.1–§2.3).
//!
//! The paper argues that general streaming engines (Storm, Spark
//! Streaming, Flink) lack the spatio-temporal primitives that moving-
//! object data needs. This crate provides a compact, single-process
//! substrate with exactly those primitives:
//!
//! - **Event time & watermarks** ([`watermark`]) — bounded out-of-
//!   orderness watermark generation, the basis of deterministic
//!   processing of delayed satellite AIS batches.
//! - **Reordering** ([`reorder`]) — buffer that releases elements in
//!   event-time order once the watermark passes them.
//! - **Windows** ([`window`]) — tumbling, sliding and session window
//!   assignment plus keyed window aggregation driven by watermarks.
//! - **Cross-stream joins** ([`join`]) — keyed interval joins between
//!   two streams (e.g. AIS positions ⋈ weather cells), the "cross-
//!   streaming data integration" of §2.2.
//! - **Operators & pipelines** ([`pipeline`]) — push-based operator
//!   chaining with per-stage instrumentation, used by `mda-core` to wire
//!   the Figure-2 architecture.
//! - **Parallel execution** ([`runner`]) — hash-partitioned worker pool
//!   over crossbeam channels, the stand-in for a distributed cluster.
//! - **Barrier protocol** ([`barrier`]) — leader-electing, panic-safe
//!   tick-boundary barrier for multi-writer shard-affine ingest.
//! - **Adaptive control** ([`control`]) — deterministic fast/slow-EMA
//!   controller turning event-time observables (lateness, shard skew,
//!   seal backlog, event rate) into clamped reorder-delay, seal-cadence
//!   and ring-capacity knob moves at aligned tick boundaries.
//!
//! ## Example
//!
//! ```
//! use mda_geo::Timestamp;
//! use mda_stream::{BoundedOutOfOrderness, ReorderBuffer};
//!
//! let mut wm = BoundedOutOfOrderness::new(1_000);
//! let mut buf = ReorderBuffer::new();
//! for t in [3_000i64, 1_000, 2_000] {
//!     buf.push(Timestamp(t), t);
//!     wm.observe(Timestamp(t));
//! }
//! // Watermark = max seen - delay; everything at or before it comes out sorted.
//! let released: Vec<i64> = buf.release(wm.current()).into_iter().map(|(t, _)| t.0).collect();
//! assert_eq!(released, vec![1_000, 2_000]);
//! ```

pub mod barrier;
pub mod control;
pub mod join;
pub mod pipeline;
pub mod reorder;
pub mod runner;
pub mod watermark;
pub mod window;

pub use barrier::{run_lanes, LaneRole, TickBarrier};
pub use control::{AdaptiveController, ArrivalWindow, ControlConfig, ControlGauges, Knobs};
pub use join::IntervalJoin;
pub use pipeline::{Pipeline, Stage};
pub use reorder::ReorderBuffer;
pub use watermark::{BoundedOutOfOrderness, SealSchedule};
pub use window::{KeyedWindowAggregate, SessionWindows, SlidingWindows, TumblingWindows};
