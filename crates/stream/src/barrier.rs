//! Tick-boundary barrier protocol for multi-writer shard-affine ingest.
//!
//! N writer lanes each own a disjoint shard set end-to-end; the only
//! cross-shard points left (fleet-index merge, snapshot publication)
//! happen at aligned tick boundaries. [`TickBarrier`] turns each
//! boundary into an explicit quiesce-merge-resume protocol:
//!
//! 1. every lane deposits its per-shard contribution and calls
//!    [`TickBarrier::wait`];
//! 2. the **leader** (the last lane to arrive) runs the serialized
//!    merge/publish step while every follower stays parked;
//! 3. the leader calls [`TickBarrier::release`] and all lanes resume.
//!
//! The barrier is generation-counted and reusable, so one barrier
//! serves every boundary of a run. It is panic-safe the same way
//! [`run_with_readers`](crate::runner::run_with_readers) is: a lane
//! that unwinds mid-protocol [abandons](TickBarrier::abandon) the
//! barrier, waking every parked sibling into a panic instead of a
//! deadlocked [`std::thread::scope`] join. [`run_lanes`] packages the
//! spawn/guard/join choreography.

use std::sync::{Condvar, Mutex, PoisonError};
use std::thread;

/// Panic message used when a lane finds the barrier abandoned. Kept as
/// a constant so [`run_lanes`] can prefer re-raising the *original*
/// panic over the secondary ones it provokes in sibling lanes.
const ABANDONED: &str = "tick barrier abandoned by a panicking writer lane";

/// What a lane is, for the phase it just entered, after
/// [`TickBarrier::wait`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneRole {
    /// Last to arrive: run the serialized merge step, then call
    /// [`TickBarrier::release`]. Exactly one lane per phase.
    Leader,
    /// Parked until the leader released the phase; resume lane-local
    /// work.
    Follower,
}

#[derive(Debug)]
struct BarrierState {
    arrived: usize,
    generation: u64,
    /// A leader has been elected for the current phase and has not yet
    /// released it.
    leader_pending: bool,
    broken: bool,
}

/// A reusable, leader-electing, poisonable barrier over a fixed number
/// of writer lanes. See the [module docs](self) for the protocol.
#[derive(Debug)]
pub struct TickBarrier {
    state: Mutex<BarrierState>,
    cvar: Condvar,
    parties: usize,
}

impl TickBarrier {
    /// Barrier over `parties` lanes (`parties >= 1`).
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "a barrier needs at least one lane");
        Self {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                leader_pending: false,
                broken: false,
            }),
            cvar: Condvar::new(),
            parties,
        }
    }

    /// Number of lanes the barrier synchronizes.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Arrive at the phase boundary. The last lane to arrive returns
    /// [`LaneRole::Leader`] *while every other lane stays parked*; the
    /// leader must call [`TickBarrier::release`] to let them through.
    ///
    /// # Panics
    ///
    /// Panics (with a fixed message) if the barrier was
    /// [abandoned](TickBarrier::abandon) — the lane should unwind so
    /// its scope can observe the original failure instead of
    /// deadlocking.
    pub fn wait(&self) -> LaneRole {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if s.broken {
            drop(s);
            panic!("{ABANDONED}");
        }
        debug_assert!(!s.leader_pending, "wait() re-entered while a leader phase is open");
        s.arrived += 1;
        if s.arrived == self.parties {
            s.leader_pending = true;
            return LaneRole::Leader;
        }
        let gen = s.generation;
        while s.generation == gen && !s.broken {
            s = self.cvar.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        // A generation bump doubles as the all-clear: if the break
        // happened in a *later* phase this lane already got through.
        if s.broken && s.generation == gen {
            drop(s);
            panic!("{ABANDONED}");
        }
        LaneRole::Follower
    }

    /// Close the current phase (leader only): reset arrivals, bump the
    /// generation and wake every parked follower.
    pub fn release(&self) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if s.broken {
            return;
        }
        debug_assert!(s.leader_pending, "release() without a pending leader");
        s.arrived = 0;
        s.leader_pending = false;
        s.generation = s.generation.wrapping_add(1);
        drop(s);
        self.cvar.notify_all();
    }

    /// Poison the barrier: every parked lane (and every future
    /// [`TickBarrier::wait`]) panics instead of waiting forever. Called
    /// by [`run_lanes`]'s per-lane guard when a lane unwinds, mirroring
    /// the `StopOnDrop` release in
    /// [`run_with_readers`](crate::runner::run_with_readers).
    pub fn abandon(&self) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        s.broken = true;
        drop(s);
        self.cvar.notify_all();
    }

    /// True once a lane abandoned the barrier.
    pub fn is_broken(&self) -> bool {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).broken
    }
}

/// Abandons the barrier on drop unless disarmed — the lane-side half of
/// the panic-safety contract (dropped during unwind ⇒ siblings wake).
struct AbandonOnDrop<'a> {
    barrier: &'a TickBarrier,
    armed: bool,
}

impl Drop for AbandonOnDrop<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.barrier.abandon();
        }
    }
}

/// True if a panic payload is the barrier's own secondary
/// "abandoned" panic rather than the original failure.
fn is_abandon_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<&str>().is_some_and(|s| *s == ABANDONED)
        || payload.downcast_ref::<String>().is_some_and(|s| s == ABANDONED)
}

/// Run one scoped thread per lane, each sharing a [`TickBarrier`] over
/// `lanes.len()` parties, and join them all. `f` receives the lane
/// index, exclusive access to that lane's state, and the barrier;
/// results come back in lane order.
///
/// If any lane panics, the barrier is abandoned (no deadlocked scope),
/// every other lane unwinds at its next `wait`, and the *original*
/// panic is re-raised after all lanes have been joined.
pub fn run_lanes<T, R>(
    lanes: &mut [T],
    f: impl Fn(usize, &mut T, &TickBarrier) -> R + Sync,
) -> Vec<R>
where
    T: Send,
    R: Send,
{
    if lanes.is_empty() {
        return Vec::new();
    }
    let barrier = TickBarrier::new(lanes.len());
    let results: Vec<thread::Result<R>> = thread::scope(|scope| {
        let barrier = &barrier;
        let f = &f;
        let handles: Vec<_> = lanes
            .iter_mut()
            .enumerate()
            .map(|(w, lane)| {
                scope.spawn(move || {
                    let mut guard = AbandonOnDrop { barrier, armed: true };
                    let out = f(w, lane, barrier);
                    guard.armed = false;
                    out
                })
            })
            .collect();
        // Join (not propagate) so every lane finishes before any panic
        // resurfaces — the scope must never be left waiting on a lane
        // parked at an abandoned barrier.
        handles.into_iter().map(|h| h.join()).collect()
    });
    let mut original = None;
    let mut secondary = None;
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(p) if is_abandon_payload(p.as_ref()) => {
                secondary.get_or_insert(p);
            }
            Err(p) => {
                original.get_or_insert(p);
            }
        }
    }
    if let Some(p) = original.or(secondary) {
        std::panic::resume_unwind(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    #[test]
    fn single_party_is_always_leader() {
        let b = TickBarrier::new(1);
        for _ in 0..3 {
            assert_eq!(b.wait(), LaneRole::Leader);
            b.release();
        }
    }

    #[test]
    fn one_leader_per_phase_across_generations() {
        const LANES: usize = 4;
        const ROUNDS: usize = 25;
        let leader_runs = AtomicU64::new(0);
        let serialized = AtomicBool::new(false);
        let mut states = vec![(); LANES];
        let totals = run_lanes(&mut states, |_w, _s, barrier| {
            let mut led = 0u64;
            for _ in 0..ROUNDS {
                match barrier.wait() {
                    LaneRole::Leader => {
                        // No two leader sections may overlap.
                        assert!(!serialized.swap(true, Ordering::SeqCst));
                        leader_runs.fetch_add(1, Ordering::SeqCst);
                        led += 1;
                        assert!(serialized.swap(false, Ordering::SeqCst));
                        barrier.release();
                    }
                    LaneRole::Follower => {}
                }
            }
            led
        });
        assert_eq!(leader_runs.load(Ordering::SeqCst), ROUNDS as u64);
        assert_eq!(totals.iter().sum::<u64>(), ROUNDS as u64);
    }

    #[test]
    fn followers_stay_parked_until_release() {
        // The leader holds the phase open while it mutates shared
        // state; a follower observing the mutation before its wait()
        // returned would be a protocol violation.
        let checkpoint = AtomicU64::new(0);
        let mut states = vec![(); 3];
        run_lanes(&mut states, |_w, _s, barrier| {
            for round in 1..=10u64 {
                match barrier.wait() {
                    LaneRole::Leader => {
                        checkpoint.store(round, Ordering::SeqCst);
                        barrier.release();
                    }
                    LaneRole::Follower => {
                        // By the time a follower resumes, the leader's
                        // serialized write is complete and visible.
                        assert_eq!(checkpoint.load(Ordering::SeqCst), round);
                    }
                }
            }
        });
    }

    #[test]
    fn panicking_lane_releases_parked_siblings() {
        let mut states = vec![(); 4];
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_lanes(&mut states, |w, _s, barrier| {
                for round in 0..5 {
                    if w == 2 && round == 3 {
                        panic!("injected lane fault");
                    }
                    if barrier.wait() == LaneRole::Leader {
                        barrier.release();
                    }
                }
            });
        }));
        // The test *finishing* is the real assertion (no deadlock);
        // the propagated payload must be the injected one, not the
        // secondary abandoned-barrier panic.
        let payload = result.expect_err("lane panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "injected lane fault");
    }

    #[test]
    fn panicking_leader_releases_parked_followers() {
        let mut states = vec![(); 3];
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_lanes(&mut states, |_w, _s, barrier| {
                for round in 0..4 {
                    if barrier.wait() == LaneRole::Leader {
                        if round == 2 {
                            panic!("leader died mid-merge");
                        }
                        barrier.release();
                    }
                }
            });
        }));
        let payload = result.expect_err("leader panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "leader died mid-merge");
    }

    #[test]
    fn lanes_inside_run_with_readers_release_readers_on_panic() {
        // The composed shape the multi-writer pipeline uses: reader
        // loops poll while writer lanes run. A lane panic must release
        // both the barrier (siblings) and the reader flag.
        use crate::runner::run_with_readers;
        let polls = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_with_readers(
                || {
                    let mut states = vec![(); 3];
                    run_lanes(&mut states, |w, _s, barrier| {
                        for round in 0..6 {
                            if w == 1 && round == 4 {
                                panic!("lane fault under readers");
                            }
                            if barrier.wait() == LaneRole::Leader {
                                barrier.release();
                            }
                        }
                    });
                },
                2,
                |_r, running| {
                    while running.load(Ordering::Acquire) {
                        polls.fetch_add(1, Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                },
            );
        }));
        assert!(result.is_err(), "writer-side panic must surface");
        assert!(polls.load(Ordering::Relaxed) > 0, "readers ran before release");
    }

    #[test]
    fn empty_and_single_lane_run() {
        let mut none: Vec<u32> = Vec::new();
        assert!(run_lanes(&mut none, |_, _, _| 1).is_empty());
        let mut one = vec![10u32];
        let out = run_lanes(&mut one, |w, s, barrier| {
            assert_eq!(barrier.wait(), LaneRole::Leader);
            barrier.release();
            *s + w as u32
        });
        assert_eq!(out, vec![10]);
    }
}
