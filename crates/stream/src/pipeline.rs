//! Push-based operator pipelines with per-stage instrumentation.
//!
//! `mda-core` wires the Figure-2 architecture as a [`Pipeline`] of
//! [`Stage`]s. Each stage maps one input element to zero or more outputs
//! and may react to watermarks (flushing windows, closing sessions).
//! Instrumentation counts elements and cumulative processing time per
//! stage — the numbers reported in the E2 experiment.

use mda_geo::Timestamp;
use std::time::Instant;

/// A processing stage from `I` to `O`.
pub trait Stage<I, O> {
    /// Process one element, pushing outputs into `out`.
    fn on_element(&mut self, t: Timestamp, value: I, out: &mut Vec<(Timestamp, O)>);

    /// React to a watermark advance (default: nothing).
    fn on_watermark(&mut self, _watermark: Timestamp, _out: &mut Vec<(Timestamp, O)>) {}

    /// Flush any remaining state at end of stream (default: nothing).
    fn on_flush(&mut self, _out: &mut Vec<(Timestamp, O)>) {}
}

/// A stateless stage from a closure producing zero or more outputs.
pub struct FlatMapStage<F> {
    f: F,
}

impl<F> FlatMapStage<F> {
    /// Wrap a closure `(t, value, &mut out)` as a stage.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<I, O, F> Stage<I, O> for FlatMapStage<F>
where
    F: FnMut(Timestamp, I, &mut Vec<(Timestamp, O)>),
{
    fn on_element(&mut self, t: Timestamp, value: I, out: &mut Vec<(Timestamp, O)>) {
        (self.f)(t, value, out)
    }
}

/// Runtime counters of one pipeline stage.
#[derive(Debug, Clone, Default)]
pub struct StageMetrics {
    /// Stage label.
    pub name: String,
    /// Elements received.
    pub input_count: u64,
    /// Elements emitted.
    pub output_count: u64,
    /// Cumulative processing time in nanoseconds.
    pub busy_nanos: u128,
}

impl StageMetrics {
    /// Throughput in elements per second of busy time.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.busy_nanos == 0 {
            return 0.0;
        }
        self.input_count as f64 / (self.busy_nanos as f64 / 1e9)
    }

    /// Output/input ratio (selectivity).
    pub fn selectivity(&self) -> f64 {
        if self.input_count == 0 {
            return 0.0;
        }
        self.output_count as f64 / self.input_count as f64
    }
}

/// A linear pipeline over a uniform element type `T`.
///
/// Heterogeneous pipelines are built by composing two typed pipelines or
/// using enums; the integrated `mda-core` pipeline uses a dedicated event
/// type for exactly that reason.
pub struct Pipeline<T> {
    stages: Vec<(Box<dyn Stage<T, T> + Send>, StageMetrics)>,
}

impl<T> Default for Pipeline<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Pipeline<T> {
    /// New empty pipeline (identity).
    pub fn new() -> Self {
        Self { stages: Vec::new() }
    }

    /// Append a stage with a label for metrics.
    pub fn add_stage(mut self, name: &str, stage: impl Stage<T, T> + Send + 'static) -> Self {
        self.stages
            .push((Box::new(stage), StageMetrics { name: name.to_string(), ..Default::default() }));
        self
    }

    /// Push one element through all stages; returns the surviving
    /// outputs of the final stage.
    pub fn push(&mut self, t: Timestamp, value: T) -> Vec<(Timestamp, T)> {
        let mut current = vec![(t, value)];
        let mut next = Vec::new();
        for (stage, metrics) in &mut self.stages {
            // lint:allow(wall-clock): busy-time metric only; stage
            // logic sees only event timestamps.
            let start = Instant::now();
            for (t, v) in current.drain(..) {
                metrics.input_count += 1;
                stage.on_element(t, v, &mut next);
            }
            metrics.output_count += next.len() as u64;
            metrics.busy_nanos += start.elapsed().as_nanos();
            std::mem::swap(&mut current, &mut next);
        }
        current
    }

    /// Propagate a watermark through all stages, collecting flushed
    /// outputs of the final stage.
    pub fn watermark(&mut self, wm: Timestamp) -> Vec<(Timestamp, T)> {
        let mut current: Vec<(Timestamp, T)> = Vec::new();
        let mut next = Vec::new();
        for (stage, metrics) in &mut self.stages {
            // lint:allow(wall-clock): busy-time metric only; stage
            // logic sees only event timestamps.
            let start = Instant::now();
            for (t, v) in current.drain(..) {
                metrics.input_count += 1;
                stage.on_element(t, v, &mut next);
            }
            stage.on_watermark(wm, &mut next);
            metrics.output_count += next.len() as u64;
            metrics.busy_nanos += start.elapsed().as_nanos();
            std::mem::swap(&mut current, &mut next);
        }
        current
    }

    /// Flush all stages at end of stream.
    pub fn flush(&mut self) -> Vec<(Timestamp, T)> {
        let mut current: Vec<(Timestamp, T)> = Vec::new();
        let mut next = Vec::new();
        for (stage, metrics) in &mut self.stages {
            for (t, v) in current.drain(..) {
                metrics.input_count += 1;
                stage.on_element(t, v, &mut next);
            }
            stage.on_flush(&mut next);
            metrics.output_count += next.len() as u64;
            std::mem::swap(&mut current, &mut next);
        }
        current
    }

    /// Metrics snapshot for all stages, in pipeline order.
    pub fn metrics(&self) -> Vec<StageMetrics> {
        self.stages.iter().map(|(_, m)| m.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl Stage<i64, i64> for Doubler {
        fn on_element(&mut self, t: Timestamp, v: i64, out: &mut Vec<(Timestamp, i64)>) {
            out.push((t, v * 2));
        }
    }

    struct PositiveFilter;
    impl Stage<i64, i64> for PositiveFilter {
        fn on_element(&mut self, t: Timestamp, v: i64, out: &mut Vec<(Timestamp, i64)>) {
            if v > 0 {
                out.push((t, v));
            }
        }
    }

    /// Buffers everything until flush (tests on_flush plumbing).
    struct BufferAll {
        held: Vec<(Timestamp, i64)>,
    }
    impl Stage<i64, i64> for BufferAll {
        fn on_element(&mut self, t: Timestamp, v: i64, _out: &mut Vec<(Timestamp, i64)>) {
            self.held.push((t, v));
        }
        fn on_flush(&mut self, out: &mut Vec<(Timestamp, i64)>) {
            out.append(&mut self.held);
        }
    }

    #[test]
    fn chained_stages() {
        let mut p =
            Pipeline::new().add_stage("filter", PositiveFilter).add_stage("double", Doubler);
        assert_eq!(p.push(Timestamp(1), 5), vec![(Timestamp(1), 10)]);
        assert!(p.push(Timestamp(2), -5).is_empty());
    }

    #[test]
    fn metrics_track_counts_and_selectivity() {
        let mut p = Pipeline::new().add_stage("filter", PositiveFilter);
        for v in [-1i64, 2, -3, 4, 5] {
            p.push(Timestamp(0), v);
        }
        let m = &p.metrics()[0];
        assert_eq!(m.input_count, 5);
        assert_eq!(m.output_count, 3);
        assert!((m.selectivity() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn flush_releases_buffered_elements() {
        let mut p = Pipeline::new()
            .add_stage("buffer", BufferAll { held: Vec::new() })
            .add_stage("double", Doubler);
        assert!(p.push(Timestamp(1), 1).is_empty());
        assert!(p.push(Timestamp(2), 2).is_empty());
        let out = p.flush();
        assert_eq!(out, vec![(Timestamp(1), 2), (Timestamp(2), 4)]);
    }

    #[test]
    fn flat_map_stage_from_closure() {
        let mut p = Pipeline::new().add_stage(
            "dup",
            FlatMapStage::new(|t, v: i64, out: &mut Vec<(Timestamp, i64)>| {
                out.push((t, v));
                out.push((t, v + 1));
            }),
        );
        let out = p.push(Timestamp(0), 10);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].1, 11);
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut p: Pipeline<i64> = Pipeline::new();
        assert_eq!(p.push(Timestamp(9), 42), vec![(Timestamp(9), 42)]);
    }
}
