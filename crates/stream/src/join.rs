//! Keyed interval joins between two streams.
//!
//! The integration layer joins vessel positions with contextual streams
//! (weather cells, zone occupancy, secondary sensors) on a shared key
//! within a time band: left element at `tl` pairs with right elements at
//! `tr` with `|tl - tr| <= bound`. State is evicted by watermark, so
//! memory stays proportional to disorder, not stream length.

use mda_geo::{DurationMs, Timestamp};
use std::collections::HashMap;
use std::hash::Hash;

/// A streaming interval join on key `K` between lefts `L` and rights `R`.
#[derive(Debug)]
pub struct IntervalJoin<K, L, R> {
    bound: DurationMs,
    lefts: HashMap<K, Vec<(Timestamp, L)>>,
    rights: HashMap<K, Vec<(Timestamp, R)>>,
}

impl<K: Eq + Hash + Clone, L: Clone, R: Clone> IntervalJoin<K, L, R> {
    /// Create a join with time band `bound` (milliseconds, inclusive).
    pub fn new(bound: DurationMs) -> Self {
        assert!(bound >= 0);
        Self { bound, lefts: HashMap::new(), rights: HashMap::new() }
    }

    /// Push a left element; returns all matches with buffered rights.
    pub fn push_left(
        &mut self,
        key: K,
        t: Timestamp,
        value: L,
    ) -> Vec<(Timestamp, L, Timestamp, R)> {
        let mut out = Vec::new();
        if let Some(rs) = self.rights.get(&key) {
            for (tr, r) in rs {
                if (t - *tr).abs() <= self.bound {
                    out.push((t, value.clone(), *tr, r.clone()));
                }
            }
        }
        self.lefts.entry(key).or_default().push((t, value));
        out
    }

    /// Push a right element; returns all matches with buffered lefts.
    pub fn push_right(
        &mut self,
        key: K,
        t: Timestamp,
        value: R,
    ) -> Vec<(Timestamp, L, Timestamp, R)> {
        let mut out = Vec::new();
        if let Some(ls) = self.lefts.get(&key) {
            for (tl, l) in ls {
                if (t - *tl).abs() <= self.bound {
                    out.push((*tl, l.clone(), t, value.clone()));
                }
            }
        }
        self.rights.entry(key).or_default().push((t, value));
        out
    }

    /// Evict state older than `watermark - bound`; such elements can no
    /// longer match anything on time.
    pub fn advance(&mut self, watermark: Timestamp) {
        let horizon = watermark - self.bound;
        self.lefts.retain(|_, v| {
            v.retain(|(t, _)| *t >= horizon);
            !v.is_empty()
        });
        self.rights.retain(|_, v| {
            v.retain(|(t, _)| *t >= horizon);
            !v.is_empty()
        });
    }

    /// Buffered state size `(lefts, rights)`.
    pub fn state_size(&self) -> (usize, usize) {
        (self.lefts.values().map(Vec::len).sum(), self.rights.values().map(Vec::len).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::SECOND;

    #[test]
    fn matches_within_band() {
        let mut j: IntervalJoin<u32, &str, &str> = IntervalJoin::new(5 * SECOND);
        assert!(j.push_left(1, Timestamp::from_secs(10), "L").is_empty());
        let m = j.push_right(1, Timestamp::from_secs(13), "R");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1, "L");
        assert_eq!(m[0].3, "R");
    }

    #[test]
    fn no_match_outside_band_or_key() {
        let mut j: IntervalJoin<u32, &str, &str> = IntervalJoin::new(5 * SECOND);
        j.push_left(1, Timestamp::from_secs(10), "L");
        assert!(j.push_right(1, Timestamp::from_secs(16), "late").is_empty());
        assert!(j.push_right(2, Timestamp::from_secs(10), "other key").is_empty());
    }

    #[test]
    fn band_is_inclusive_and_symmetric() {
        let mut j: IntervalJoin<u32, u8, u8> = IntervalJoin::new(5 * SECOND);
        j.push_right(1, Timestamp::from_secs(10), 1);
        let m = j.push_left(1, Timestamp::from_secs(15), 2);
        assert_eq!(m.len(), 1, "exactly at the bound matches");
        let m2 = j.push_left(1, Timestamp::from_secs(5), 3);
        assert_eq!(m2.len(), 1, "left can be earlier than right");
    }

    #[test]
    fn one_to_many_matches() {
        let mut j: IntervalJoin<u32, u8, u8> = IntervalJoin::new(10 * SECOND);
        for s in [1, 2, 3] {
            j.push_right(1, Timestamp::from_secs(s), s as u8);
        }
        let m = j.push_left(1, Timestamp::from_secs(2), 9);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn eviction_bounds_state() {
        let mut j: IntervalJoin<u32, u8, u8> = IntervalJoin::new(5 * SECOND);
        for s in 0..100 {
            j.push_left(1, Timestamp::from_secs(s), 0);
        }
        j.advance(Timestamp::from_secs(100));
        let (l, _) = j.state_size();
        assert!(l <= 6, "state after eviction: {l}");
        // Evicted elements no longer match.
        assert!(j.push_right(1, Timestamp::from_secs(50), 0).is_empty());
        // Recent ones still do.
        assert!(!j.push_right(1, Timestamp::from_secs(98), 0).is_empty());
    }
}
