//! Window assignment and keyed window aggregation.
//!
//! Tumbling and sliding windows are aligned to the epoch; session windows
//! merge on a per-key inactivity gap. [`KeyedWindowAggregate`] folds
//! elements into per-(key, window) accumulators and emits results when
//! the watermark passes the window end — the same contract as the big
//! streaming engines, without the cluster.

use mda_geo::{DurationMs, Timestamp};
use std::collections::HashMap;
use std::hash::Hash;

/// A half-open time window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Window {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl Window {
    /// True if `t` falls inside the window.
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Window length in milliseconds.
    pub fn len(&self) -> DurationMs {
        self.end - self.start
    }

    /// True for degenerate (zero-width) windows.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Epoch-aligned tumbling windows of fixed width.
#[derive(Debug, Clone, Copy)]
pub struct TumblingWindows {
    /// Window width in milliseconds.
    pub width: DurationMs,
}

impl TumblingWindows {
    /// Create an assigner; `width` must be positive.
    pub fn new(width: DurationMs) -> Self {
        assert!(width > 0);
        Self { width }
    }

    /// The single window containing `t`.
    pub fn assign(&self, t: Timestamp) -> Window {
        let start = t.window_start(self.width);
        Window { start, end: start + self.width }
    }
}

/// Epoch-aligned sliding windows of fixed width and slide.
#[derive(Debug, Clone, Copy)]
pub struct SlidingWindows {
    /// Window width in milliseconds.
    pub width: DurationMs,
    /// Slide step in milliseconds (`<= width` for overlapping windows).
    pub slide: DurationMs,
}

impl SlidingWindows {
    /// Create an assigner; both parameters must be positive.
    pub fn new(width: DurationMs, slide: DurationMs) -> Self {
        assert!(width > 0 && slide > 0);
        Self { width, slide }
    }

    /// All windows containing `t`, earliest first. With `slide > width`
    /// (sampling windows) an instant may belong to no window at all.
    pub fn assign(&self, t: Timestamp) -> Vec<Window> {
        // Valid starts are the multiples of `slide` in (t - width, t].
        let earliest = {
            let x = t.0 - self.width + 1;
            let r = x.rem_euclid(self.slide);
            if r == 0 {
                x
            } else {
                x + (self.slide - r)
            }
        };
        let latest = t.0.div_euclid(self.slide) * self.slide;
        let mut out = Vec::with_capacity((self.width / self.slide) as usize + 1);
        let mut start = earliest;
        while start <= latest {
            out.push(Window { start: Timestamp(start), end: Timestamp(start + self.width) });
            start += self.slide;
        }
        out
    }
}

/// Per-key session windows with an inactivity gap.
///
/// Feeding timestamps per key merges any element within `gap` of an open
/// session into it; a quieter period closes the session. Used for e.g.
/// port-call episodes.
#[derive(Debug)]
pub struct SessionWindows<K> {
    gap: DurationMs,
    open: HashMap<K, Window>,
}

impl<K: Eq + Hash + Clone> SessionWindows<K> {
    /// Create a session assigner with the given inactivity `gap`.
    pub fn new(gap: DurationMs) -> Self {
        assert!(gap > 0);
        Self { gap, open: HashMap::new() }
    }

    /// Observe an element; returns the session that *closed*, if this
    /// element started a new one.
    pub fn observe(&mut self, key: K, t: Timestamp) -> Option<Window> {
        match self.open.get_mut(&key) {
            Some(w) if t <= w.end => {
                // Extend the open session.
                if t + self.gap > w.end {
                    w.end = t + self.gap;
                }
                if t < w.start {
                    w.start = t;
                }
                None
            }
            Some(w) => {
                let closed = *w;
                *w = Window { start: t, end: t + self.gap };
                Some(closed)
            }
            None => {
                self.open.insert(key, Window { start: t, end: t + self.gap });
                None
            }
        }
    }

    /// Close and return all sessions whose gap has expired at `now`.
    pub fn expire(&mut self, now: Timestamp) -> Vec<(K, Window)> {
        let mut closed = Vec::new();
        self.open.retain(|k, w| {
            if w.end <= now {
                closed.push((k.clone(), *w));
                false
            } else {
                true
            }
        });
        closed
    }

    /// Number of currently open sessions.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }
}

/// Keyed tumbling-window aggregation driven by watermarks.
///
/// `A` is the accumulator; `fold` merges one element into it. Results
/// are emitted by [`KeyedWindowAggregate::advance`] once the watermark
/// passes a window's end.
pub struct KeyedWindowAggregate<K, V, A> {
    windows: TumblingWindows,
    init: InitFn<A>,
    fold: FoldFn<A, V>,
    state: HashMap<(K, Timestamp), A>,
}

/// Boxed accumulator initialiser stored by [`KeyedWindowAggregate`].
type InitFn<A> = Box<dyn Fn() -> A + Send>;
/// Boxed element folder stored by [`KeyedWindowAggregate`].
type FoldFn<A, V> = Box<dyn Fn(&mut A, V) + Send>;

impl<K: Eq + Hash + Clone, V, A> KeyedWindowAggregate<K, V, A> {
    /// Create an aggregate over tumbling windows of `width` ms.
    pub fn new(
        width: DurationMs,
        init: impl Fn() -> A + Send + 'static,
        fold: impl Fn(&mut A, V) + Send + 'static,
    ) -> Self {
        Self {
            windows: TumblingWindows::new(width),
            init: Box::new(init),
            fold: Box::new(fold),
            state: HashMap::new(),
        }
    }

    /// Add an element to its window's accumulator.
    pub fn add(&mut self, key: K, t: Timestamp, value: V) {
        let w = self.windows.assign(t);
        let acc = self.state.entry((key, w.start)).or_insert_with(&self.init);
        (self.fold)(acc, value);
    }

    /// Emit all `(key, window, accumulator)` whose window closed at or
    /// before `watermark`, sorted by window start then key insertion
    /// order is unspecified.
    pub fn advance(&mut self, watermark: Timestamp) -> Vec<(K, Window, A)> {
        let width = self.windows.width;
        let mut out = Vec::new();
        let closed: Vec<(K, Timestamp)> =
            self.state.keys().filter(|(_, start)| *start + width <= watermark).cloned().collect();
        for key in closed {
            let acc = self.state.remove(&key).expect("key just listed");
            let w = Window { start: key.1, end: key.1 + width };
            out.push((key.0, w, acc));
        }
        out.sort_by_key(|(_, w, _)| w.start);
        out
    }

    /// Number of open (key, window) accumulators.
    pub fn open_count(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::{MINUTE, SECOND};

    #[test]
    fn tumbling_assignment() {
        let t = TumblingWindows::new(MINUTE);
        let w = t.assign(Timestamp(90_000));
        assert_eq!(w.start, Timestamp(60_000));
        assert_eq!(w.end, Timestamp(120_000));
        assert!(w.contains(Timestamp(90_000)));
        assert!(!w.contains(w.end));
        assert_eq!(w.len(), MINUTE);
    }

    #[test]
    fn sliding_assignment_overlap() {
        let s = SlidingWindows::new(MINUTE, 20 * SECOND);
        let ws = s.assign(Timestamp(70_000));
        // Windows of width 60 s sliding by 20 s containing t=70 s:
        // starts 20, 40, 60.
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].start, Timestamp(20_000));
        assert_eq!(ws[2].start, Timestamp(60_000));
        for w in ws {
            assert!(w.contains(Timestamp(70_000)));
        }
    }

    #[test]
    fn sliding_equal_width_and_slide_is_tumbling() {
        let s = SlidingWindows::new(MINUTE, MINUTE);
        let ws = s.assign(Timestamp(59_999));
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].start, Timestamp(0));
    }

    #[test]
    fn session_merge_and_close() {
        let mut s: SessionWindows<u32> = SessionWindows::new(10 * SECOND);
        assert!(s.observe(1, Timestamp(0)).is_none());
        assert!(s.observe(1, Timestamp(5_000)).is_none()); // merged
                                                           // 30 s later: previous session closes, a new one opens.
        let closed = s.observe(1, Timestamp(35_000)).expect("session closed");
        assert_eq!(closed.start, Timestamp(0));
        assert_eq!(closed.end, Timestamp(15_000));
        assert_eq!(s.open_count(), 1);
    }

    #[test]
    fn session_expiry() {
        let mut s: SessionWindows<&str> = SessionWindows::new(10 * SECOND);
        s.observe("a", Timestamp(0));
        s.observe("b", Timestamp(8_000));
        let expired = s.expire(Timestamp(12_000));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].0, "a");
        assert_eq!(s.open_count(), 1);
    }

    #[test]
    fn keyed_aggregate_counts_per_window() {
        let mut agg: KeyedWindowAggregate<u32, (), u32> =
            KeyedWindowAggregate::new(MINUTE, || 0, |acc, _| *acc += 1);
        for i in 0..10 {
            agg.add(7, Timestamp(i * 10_000), ());
        }
        // t = 0..90 s covers windows [0,60) with 6 and [60,120) with 4.
        let closed = agg.advance(Timestamp(60_000));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].2, 6);
        assert_eq!(agg.open_count(), 1);
        let rest = agg.advance(Timestamp(1_000_000));
        assert_eq!(rest[0].2, 4);
    }

    #[test]
    fn keyed_aggregate_separates_keys() {
        let mut agg: KeyedWindowAggregate<&str, f64, f64> =
            KeyedWindowAggregate::new(MINUTE, || 0.0, |acc, v| *acc += v);
        agg.add("a", Timestamp(0), 1.5);
        agg.add("b", Timestamp(0), 2.5);
        agg.add("a", Timestamp(30_000), 1.0);
        let mut closed = agg.advance(Timestamp(60_000));
        closed.sort_by_key(|(k, _, _)| *k);
        assert_eq!(closed.len(), 2);
        assert_eq!((closed[0].0, closed[0].2), ("a", 2.5));
        assert_eq!((closed[1].0, closed[1].2), ("b", 2.5));
    }
}
