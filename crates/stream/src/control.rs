//! Deterministic EMA-driven adaptive control of the streaming hot path.
//!
//! A fixed reorder delay, seal cadence and event-ring capacity are
//! tuned for one arrival regime; real AIS feeds swing between
//! terrestrial trickle (seconds of disorder) and satellite dumps
//! (half-hour-late batches, port-hotspot skew). The
//! [`AdaptiveController`] closes the loop: it watches **event-time
//! observables only** — the observed lateness distribution, per-shard
//! arrival skew, hot-tier seal backlog and the recognised-event rate —
//! smooths each through a fast/slow EMA pair, and moves three knobs
//! between configured clamp bounds:
//!
//! - **reorder delay** — headroom over the smoothed lateness level,
//!   quantized to [`ControlConfig::delay_step`];
//! - **seal cadence** — the base cadence divided by the arrival burst
//!   ratio (fast EMA over slow EMA), so bursts seal the hot tier more
//!   eagerly and quiet regimes stop thrashing the shard locks;
//! - **event-ring capacity** — headroom over the smoothed events-per-
//!   boundary rate, rounded up to a power of two.
//!
//! ## Determinism discipline
//!
//! The controller is a **pure function of the observation stream**: no
//! wall clock, no randomness, no load feedback. Observations are event
//! times and shard ids — identical for every writer/shard/reader count
//! — and knob moves commit only at aligned tick boundaries of the
//! **arrival frontier**, so the knob trajectory is bit-for-bit
//! reproducible and invariant under the writer count. EMA arithmetic
//! is plain IEEE-754 `f64` in a fixed evaluation order.
//!
//! The frontier — never the watermark — is the commit clock: a
//! watermark-clocked schedule self-throttles, because widening the
//! delay by Δ holds the watermark (and the next watermark-aligned
//! boundary) still for exactly Δ of frontier time, blacking out
//! control precisely while lateness is ramping. The frontier is the
//! one event-time clock that cannot stall under the controller's own
//! knob moves.

use mda_geo::{DurationMs, Timestamp};

/// A fast/slow exponential-moving-average pair over one observable.
///
/// The fast EMA reacts to bursts; the slow EMA tracks the regime; the
/// controller sizes knobs off [`EmaPair::level`] (their maximum) so a
/// burst widens tolerances immediately while decay back is gradual.
///
/// ```
/// use mda_stream::control::EmaPair;
///
/// let mut ema = EmaPair::new(0.5, 0.05);
/// ema.observe(100.0);
/// assert_eq!(ema.level(), 100.0, "first observation seeds both EMAs");
/// ema.observe(0.0);
/// assert!(ema.fast() < ema.slow(), "fast EMA decays quicker");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EmaPair {
    fast_alpha: f64,
    slow_alpha: f64,
    fast: f64,
    slow: f64,
    seeded: bool,
}

impl EmaPair {
    /// A pair with the given smoothing factors (each in `(0, 1]`).
    pub fn new(fast_alpha: f64, slow_alpha: f64) -> Self {
        assert!(fast_alpha > 0.0 && fast_alpha <= 1.0, "fast alpha in (0,1]");
        assert!(slow_alpha > 0.0 && slow_alpha <= 1.0, "slow alpha in (0,1]");
        Self { fast_alpha, slow_alpha, fast: 0.0, slow: 0.0, seeded: false }
    }

    /// Fold one observation in. The first observation seeds both EMAs
    /// exactly (no cold-start bias toward zero).
    pub fn observe(&mut self, x: f64) {
        if self.seeded {
            self.fast += self.fast_alpha * (x - self.fast);
            self.slow += self.slow_alpha * (x - self.slow);
        } else {
            self.fast = x;
            self.slow = x;
            self.seeded = true;
        }
    }

    /// The burst-tracking (fast) EMA.
    pub fn fast(&self) -> f64 {
        self.fast
    }

    /// The regime-tracking (slow) EMA.
    pub fn slow(&self) -> f64 {
        self.slow
    }

    /// The level knobs are sized off: `max(fast, slow)` — react to
    /// bursts instantly, relax back at the slow constant.
    pub fn level(&self) -> f64 {
        self.fast.max(self.slow)
    }

    /// The burst ratio `fast / slow` (1.0 until seeded or while the
    /// slow EMA is zero).
    pub fn burst_ratio(&self) -> f64 {
        if self.seeded && self.slow > 0.0 {
            self.fast / self.slow
        } else {
            1.0
        }
    }
}

/// Clamp bounds and gains of the [`AdaptiveController`].
#[derive(Debug, Clone, Copy)]
pub struct ControlConfig {
    /// Reorder-delay clamp `(min, max)`, ms of event time.
    pub delay_bounds: (DurationMs, DurationMs),
    /// Reorder-delay quantization step, ms (knob moves are multiples).
    pub delay_step: DurationMs,
    /// Headroom multiplier over the smoothed lateness level.
    pub delay_headroom: f64,
    /// Seal-cadence clamp `(min, max)`, ms of event time.
    pub seal_bounds: (DurationMs, DurationMs),
    /// Seal cadence at burst ratio 1.0 (steady state), ms.
    pub seal_base: DurationMs,
    /// Seal-cadence quantization step, ms.
    pub seal_step: DurationMs,
    /// Event-ring capacity clamp `(min, max)`, events.
    pub ring_bounds: (usize, usize),
    /// Headroom multiplier over the smoothed events-per-boundary rate.
    pub ring_headroom: f64,
    /// Fast EMA smoothing factor, `(0, 1]`.
    pub fast_alpha: f64,
    /// Slow EMA smoothing factor, `(0, 1]`.
    pub slow_alpha: f64,
}

impl Default for ControlConfig {
    fn default() -> Self {
        use mda_geo::time::MINUTE;
        Self {
            delay_bounds: (10 * MINUTE, 70 * MINUTE),
            delay_step: MINUTE,
            delay_headroom: 1.25,
            seal_bounds: (10 * MINUTE, 60 * MINUTE),
            seal_base: 30 * MINUTE,
            seal_step: MINUTE,
            ring_bounds: (1_024, 1 << 20),
            ring_headroom: 8.0,
            fast_alpha: 0.25,
            slow_alpha: 0.05,
        }
    }
}

impl ControlConfig {
    fn validate(&self) {
        assert!(
            0 < self.delay_bounds.0 && self.delay_bounds.0 <= self.delay_bounds.1,
            "delay bounds ordered and positive"
        );
        assert!(self.delay_step > 0, "delay step positive");
        assert!(self.delay_headroom >= 1.0, "delay headroom covers the observed lateness");
        assert!(
            0 < self.seal_bounds.0 && self.seal_bounds.0 <= self.seal_bounds.1,
            "seal bounds ordered and positive"
        );
        assert!(self.seal_step > 0, "seal step positive");
        assert!(self.seal_base > 0, "seal base positive");
        assert!(
            0 < self.ring_bounds.0 && self.ring_bounds.0 <= self.ring_bounds.1,
            "ring bounds ordered and positive"
        );
        assert!(self.ring_headroom > 0.0, "ring headroom positive");
        assert!(self.fast_alpha > 0.0 && self.fast_alpha <= 1.0, "fast alpha in (0,1]");
        assert!(self.slow_alpha > 0.0 && self.slow_alpha <= 1.0, "slow alpha in (0,1]");
    }
}

/// The controller's three outputs, always inside the configured clamp
/// bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Knobs {
    /// Reorder-buffer / watermark disorder tolerance, ms.
    pub delay: DurationMs,
    /// Seal-schedule cadence, ms of event time between hot→cold sweeps.
    pub seal_every: DurationMs,
    /// Bounded event-ring capacity, events.
    pub ring_capacity: usize,
}

/// Smoothed observable levels, for reports and dashboards.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ControlGauges {
    /// Fast-EMA observed lateness, ms.
    pub lateness_fast_ms: f64,
    /// Slow-EMA observed lateness, ms.
    pub lateness_slow_ms: f64,
    /// Fast-EMA per-shard arrival skew (1.0 = perfectly even).
    pub skew_fast: f64,
    /// Slow-EMA per-shard arrival skew.
    pub skew_slow: f64,
    /// Fast-EMA arrivals per commit boundary.
    pub rate_fast: f64,
    /// Slow-EMA arrivals per commit boundary.
    pub rate_slow: f64,
    /// Fast-EMA recognised events per commit boundary.
    pub events_fast: f64,
    /// Slow-EMA recognised events per commit boundary.
    pub events_slow: f64,
    /// Hot-tier fix count at the last commit (seal backlog).
    pub hot_backlog: u64,
    /// Knob commits so far.
    pub commits: u64,
}

/// Arrival-side observation accumulator.
///
/// Lives on whichever thread accepts arrivals (the single-writer ingest
/// loop, the multi-writer router) so the per-arrival path never takes a
/// lock: lateness EMAs update in place, per-shard counts accumulate,
/// and [`AdaptiveController::absorb`] drains the window into the
/// committing side at a deterministic point (a tick boundary or an
/// epoch start).
#[derive(Debug, Clone)]
pub struct ArrivalWindow {
    max_seen: Option<Timestamp>,
    lateness: EmaPair,
    shard_counts: Vec<u64>,
    arrivals: u64,
}

impl ArrivalWindow {
    /// A window over `shards` routing shards (the *store* shard count,
    /// which is writer-count invariant — never the lane count).
    pub fn new(shards: usize, fast_alpha: f64, slow_alpha: f64) -> Self {
        Self {
            max_seen: None,
            lateness: EmaPair::new(fast_alpha, slow_alpha),
            shard_counts: vec![0; shards.max(1)],
            arrivals: 0,
        }
    }

    /// Observe one identity-bearing arrival: its event time (lateness
    /// versus the running maximum) and its owning shard.
    pub fn observe(&mut self, t: Timestamp, shard: usize) {
        let late_ms = match self.max_seen {
            Some(m) if t < m => (m - t) as f64,
            _ => {
                self.max_seen = Some(match self.max_seen {
                    Some(m) => m.max(t),
                    None => t,
                });
                0.0
            }
        };
        self.lateness.observe(late_ms);
        let slot = shard % self.shard_counts.len();
        self.shard_counts[slot] += 1;
        self.arrivals += 1;
    }

    /// Arrivals accumulated since the last absorb.
    pub fn pending(&self) -> u64 {
        self.arrivals
    }
}

/// The knob-committing side: smooths absorbed observations and turns
/// them into clamped [`Knobs`] at aligned tick boundaries.
///
/// ```
/// use mda_geo::time::MINUTE;
/// use mda_geo::Timestamp;
/// use mda_stream::control::{AdaptiveController, ArrivalWindow, ControlConfig, Knobs};
///
/// let cfg = ControlConfig::default();
/// let initial = Knobs { delay: 40 * MINUTE, seal_every: 30 * MINUTE, ring_capacity: 65_536 };
/// let mut ctl = AdaptiveController::new(cfg, initial);
/// let mut window = ArrivalWindow::new(8, cfg.fast_alpha, cfg.slow_alpha);
/// // A near-in-order trickle: the delay knob contracts toward its floor.
/// for i in 0..500i64 {
///     window.observe(Timestamp::from_secs(i), (i % 8) as usize);
/// }
/// ctl.absorb(&mut window);
/// let knobs = ctl.commit(Timestamp::from_secs(500), 0, 0);
/// assert_eq!(knobs.delay, cfg.delay_bounds.0);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    cfg: ControlConfig,
    lateness: EmaPair,
    skew: EmaPair,
    rate: EmaPair,
    events: EmaPair,
    /// Counts drained from the arrival window, awaiting the next commit.
    pending_counts: Vec<u64>,
    pending_arrivals: u64,
    last_emitted: u64,
    hot_backlog: u64,
    commits: u64,
    knobs: Knobs,
    trace: Vec<(Timestamp, Knobs)>,
}

impl AdaptiveController {
    /// A controller starting from `initial` knob values (clamped into
    /// the configured bounds).
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent [`ControlConfig`] (unordered bounds,
    /// zero steps, out-of-range alphas).
    pub fn new(cfg: ControlConfig, initial: Knobs) -> Self {
        cfg.validate();
        let knobs = Knobs {
            delay: initial.delay.clamp(cfg.delay_bounds.0, cfg.delay_bounds.1),
            seal_every: initial.seal_every.clamp(cfg.seal_bounds.0, cfg.seal_bounds.1),
            ring_capacity: initial.ring_capacity.clamp(cfg.ring_bounds.0, cfg.ring_bounds.1),
        };
        Self {
            cfg,
            lateness: EmaPair::new(cfg.fast_alpha, cfg.slow_alpha),
            skew: EmaPair::new(cfg.fast_alpha, cfg.slow_alpha),
            rate: EmaPair::new(cfg.fast_alpha, cfg.slow_alpha),
            events: EmaPair::new(cfg.fast_alpha, cfg.slow_alpha),
            pending_counts: Vec::new(),
            pending_arrivals: 0,
            last_emitted: 0,
            hot_backlog: 0,
            commits: 0,
            knobs,
            trace: Vec::new(),
        }
    }

    /// The configuration this controller clamps against.
    pub fn config(&self) -> &ControlConfig {
        &self.cfg
    }

    /// Drain an [`ArrivalWindow`] into the committing side: the
    /// lateness EMA pair is adopted wholesale (it already smooths per
    /// arrival) and the per-shard counts accumulate until the next
    /// commit. Call at a deterministic point only — a tick boundary or
    /// an epoch start — never on arrival jitter.
    pub fn absorb(&mut self, window: &mut ArrivalWindow) {
        self.lateness = window.lateness;
        if self.pending_counts.len() != window.shard_counts.len() {
            self.pending_counts = vec![0; window.shard_counts.len()];
        }
        for (acc, c) in self.pending_counts.iter_mut().zip(&mut window.shard_counts) {
            *acc += std::mem::take(c);
        }
        self.pending_arrivals += std::mem::take(&mut window.arrivals);
    }

    /// Commit the knobs for aligned tick boundary `boundary`.
    ///
    /// `hot_backlog` is the hot-tier fix count at the boundary (the
    /// seal backlog gauge) and `emitted_total` the cumulative
    /// recognised-event count — both pure functions of the event-time
    /// stream up to the boundary, so feeding them keeps the controller
    /// deterministic.
    pub fn commit(&mut self, boundary: Timestamp, hot_backlog: u64, emitted_total: u64) -> Knobs {
        // Per-shard skew and arrival rate of the window since the last
        // commit (skipped when nothing arrived: an empty boundary holds
        // the regime rather than observing a phantom perfectly-even 0).
        if self.pending_arrivals > 0 {
            let busiest = *self.pending_counts.iter().max().expect("non-empty counts");
            let shards = self.pending_counts.len() as f64;
            self.skew.observe(busiest as f64 * shards / self.pending_arrivals as f64);
            self.rate.observe(self.pending_arrivals as f64);
            self.pending_counts.iter_mut().for_each(|c| *c = 0);
            self.pending_arrivals = 0;
        }
        let emitted = emitted_total.saturating_sub(self.last_emitted);
        self.last_emitted = emitted_total;
        self.events.observe(emitted as f64);
        self.hot_backlog = hot_backlog;
        self.commits += 1;

        // Delay: headroom over the smoothed lateness level, rounded up
        // to the step so the knob moves in coarse, cache-friendly jumps.
        let want = (self.cfg.delay_headroom * self.lateness.level()).ceil() as DurationMs;
        let delay = quantize_up(want, self.cfg.delay_step)
            .clamp(self.cfg.delay_bounds.0, self.cfg.delay_bounds.1);

        // Seal cadence: bursts (fast arrival EMA over slow) shrink the
        // cadence so the hot tier rotates before it bloats; skewed
        // arrivals concentrate the backlog on few shards, so skew
        // tightens it further.
        let pressure = (self.rate.burst_ratio() * self.skew.level().max(1.0)).max(1e-9);
        let want = (self.cfg.seal_base as f64 / pressure).ceil() as DurationMs;
        let seal_every = quantize_up(want, self.cfg.seal_step)
            .clamp(self.cfg.seal_bounds.0, self.cfg.seal_bounds.1);

        // Ring capacity: headroom over the smoothed events-per-boundary
        // rate, next power of two (ring reallocation is rare and cheap).
        let want = (self.cfg.ring_headroom * self.events.level()).ceil();
        let want = if want >= usize::MAX as f64 { usize::MAX } else { want as usize };
        let ring_capacity = want
            .max(1)
            .checked_next_power_of_two()
            .unwrap_or(usize::MAX)
            .clamp(self.cfg.ring_bounds.0, self.cfg.ring_bounds.1);

        self.knobs = Knobs { delay, seal_every, ring_capacity };
        self.trace.push((boundary, self.knobs));
        self.knobs
    }

    /// The knobs as of the last commit (the initial values before one).
    pub fn knobs(&self) -> Knobs {
        self.knobs
    }

    /// Smoothed observable levels for reporting.
    pub fn gauges(&self) -> ControlGauges {
        ControlGauges {
            lateness_fast_ms: self.lateness.fast(),
            lateness_slow_ms: self.lateness.slow(),
            skew_fast: self.skew.fast(),
            skew_slow: self.skew.slow(),
            rate_fast: self.rate.fast(),
            rate_slow: self.rate.slow(),
            events_fast: self.events.fast(),
            events_slow: self.events.slow(),
            hot_backlog: self.hot_backlog,
            commits: self.commits,
        }
    }

    /// Every committed `(boundary, knobs)` pair in commit order — the
    /// knob trajectory the determinism batteries compare bit-for-bit.
    pub fn trace(&self) -> &[(Timestamp, Knobs)] {
        &self.trace
    }
}

/// Round `x` up to the next multiple of `step` (`step > 0`).
fn quantize_up(x: DurationMs, step: DurationMs) -> DurationMs {
    if x <= 0 {
        return step;
    }
    match x % step {
        0 => x,
        r => x + (step - r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::{MINUTE, SECOND};

    fn controller() -> (AdaptiveController, ArrivalWindow) {
        let cfg = ControlConfig::default();
        let initial = Knobs { delay: 40 * MINUTE, seal_every: 30 * MINUTE, ring_capacity: 65_536 };
        (
            AdaptiveController::new(cfg, initial),
            ArrivalWindow::new(8, cfg.fast_alpha, cfg.slow_alpha),
        )
    }

    #[test]
    fn quantize_rounds_up_to_step() {
        assert_eq!(quantize_up(0, MINUTE), MINUTE);
        assert_eq!(quantize_up(1, MINUTE), MINUTE);
        assert_eq!(quantize_up(MINUTE, MINUTE), MINUTE);
        assert_eq!(quantize_up(MINUTE + 1, MINUTE), 2 * MINUTE);
    }

    #[test]
    fn initial_knobs_are_clamped() {
        let cfg = ControlConfig::default();
        let ctl = AdaptiveController::new(
            cfg,
            Knobs { delay: 0, seal_every: i64::MAX, ring_capacity: 0 },
        );
        assert_eq!(ctl.knobs().delay, cfg.delay_bounds.0);
        assert_eq!(ctl.knobs().seal_every, cfg.seal_bounds.1);
        assert_eq!(ctl.knobs().ring_capacity, cfg.ring_bounds.0);
    }

    #[test]
    fn ordered_stream_contracts_delay_to_floor() {
        let (mut ctl, mut window) = controller();
        for i in 0..2_000i64 {
            window.observe(Timestamp::from_secs(i), (i % 8) as usize);
        }
        ctl.absorb(&mut window);
        let knobs = ctl.commit(Timestamp::from_mins(34), 0, 0);
        assert_eq!(knobs.delay, ctl.config().delay_bounds.0, "in-order stream needs no slack");
    }

    #[test]
    fn late_batches_widen_delay_with_headroom() {
        let (mut ctl, mut window) = controller();
        // A satellite dump: every arrival ~30 min behind the frontier.
        window.observe(Timestamp::from_mins(60), 0);
        for i in 0..500i64 {
            window.observe(Timestamp::from_mins(30) + (i % 60) * SECOND, (i % 8) as usize);
        }
        ctl.absorb(&mut window);
        let knobs = ctl.commit(Timestamp::from_mins(61), 0, 0);
        assert!(
            knobs.delay >= 30 * MINUTE,
            "delay {} must cover the ~30 min observed lateness",
            knobs.delay
        );
        assert!(knobs.delay <= ctl.config().delay_bounds.1);
        assert_eq!(knobs.delay % ctl.config().delay_step, 0, "quantized");
    }

    #[test]
    fn bursts_tighten_seal_cadence() {
        let (mut ctl, mut window) = controller();
        // Establish a quiet regime...
        for b in 0..20i64 {
            for i in 0..10i64 {
                window.observe(Timestamp::from_mins(b) + i * SECOND, (i % 8) as usize);
            }
            ctl.absorb(&mut window);
            ctl.commit(Timestamp::from_mins(b + 1), 0, 0);
        }
        let steady = ctl.knobs().seal_every;
        // ...then a 50× burst concentrated on one shard.
        for _ in 0..5_000 {
            window.observe(Timestamp::from_mins(21), 3);
        }
        ctl.absorb(&mut window);
        let bursty = ctl.commit(Timestamp::from_mins(22), 0, 0).seal_every;
        assert!(bursty < steady, "burst must tighten sealing: {bursty} !< {steady}");
        assert!(bursty >= ctl.config().seal_bounds.0);
    }

    #[test]
    fn ring_capacity_tracks_event_rate() {
        let (mut ctl, _) = controller();
        let mut emitted = 0u64;
        for b in 0..30i64 {
            emitted += 20_000;
            ctl.commit(Timestamp::from_mins(b), 0, emitted);
        }
        let knobs = ctl.knobs();
        assert!(knobs.ring_capacity >= 131_072, "20k events/boundary × 8 headroom, pow2");
        assert!(
            knobs.ring_capacity.is_power_of_two()
                || knobs.ring_capacity == ctl.config().ring_bounds.1
        );
        // Quiet again: capacity relaxes only at the slow constant.
        for b in 30..40i64 {
            ctl.commit(Timestamp::from_mins(b), 0, emitted);
        }
        assert!(ctl.knobs().ring_capacity >= ctl.config().ring_bounds.0);
    }

    #[test]
    fn knob_trajectory_is_a_pure_function_of_observations() {
        let run = || {
            let (mut ctl, mut window) = controller();
            for b in 0..50i64 {
                for i in 0..40i64 {
                    // Mildly disordered arrivals.
                    let t = Timestamp::from_mins(b) + ((i * 37) % 60) * SECOND - (i % 5) * MINUTE;
                    window.observe(t, ((i * 13) % 8) as usize);
                }
                ctl.absorb(&mut window);
                ctl.commit(Timestamp::from_mins(b + 1), (b * 100) as u64, (b * 17) as u64);
            }
            ctl.trace().to_vec()
        };
        assert_eq!(run(), run(), "identical streams must yield identical knob trajectories");
    }

    #[test]
    fn absorb_splits_do_not_change_counts() {
        // Absorbing every arrival vs once per batch must leave the same
        // pending state (the lateness EMA is per-arrival either way).
        let cfg = ControlConfig::default();
        let initial = Knobs { delay: 40 * MINUTE, seal_every: 30 * MINUTE, ring_capacity: 1 << 16 };
        let mut a = AdaptiveController::new(cfg, initial);
        let mut b = AdaptiveController::new(cfg, initial);
        let mut wa = ArrivalWindow::new(4, cfg.fast_alpha, cfg.slow_alpha);
        let mut wb = ArrivalWindow::new(4, cfg.fast_alpha, cfg.slow_alpha);
        for i in 0..100i64 {
            wa.observe(Timestamp::from_secs(i * 3 % 71), (i % 4) as usize);
            wb.observe(Timestamp::from_secs(i * 3 % 71), (i % 4) as usize);
            a.absorb(&mut wa);
        }
        b.absorb(&mut wb);
        assert_eq!(
            a.commit(Timestamp::from_mins(5), 7, 9),
            b.commit(Timestamp::from_mins(5), 7, 9),
            "absorb granularity must not affect the committed knobs"
        );
    }
}
