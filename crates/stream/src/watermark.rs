//! Watermark generation for event-time processing.
//!
//! Satellite AIS arrives in delayed batches (the paper's "multi-level
//! processing issues"); terrestrial AIS arrives almost in order. A
//! watermark is the runtime's statement "no element older than W will
//! arrive"; downstream operators use it to close windows and release
//! reordered output deterministically.

use mda_geo::{DurationMs, Timestamp};

/// Bounded out-of-orderness watermark generator.
///
/// The watermark trails the maximum observed event time by a fixed
/// `max_delay`. Elements older than the current watermark are *late*.
#[derive(Debug, Clone)]
pub struct BoundedOutOfOrderness {
    max_delay: DurationMs,
    max_seen: Option<Timestamp>,
    late: u64,
}

impl BoundedOutOfOrderness {
    /// Create a generator tolerating up to `max_delay` of disorder.
    pub fn new(max_delay: DurationMs) -> Self {
        assert!(max_delay >= 0, "delay must be non-negative");
        Self { max_delay, max_seen: None, late: 0 }
    }

    /// Observe an element timestamp; returns the new watermark.
    ///
    /// The watermark is monotone: a late element never moves it backwards.
    pub fn observe(&mut self, t: Timestamp) -> Timestamp {
        match self.max_seen {
            Some(m) if t <= m => {
                if t < self.current() {
                    self.late += 1;
                }
            }
            _ => self.max_seen = Some(t),
        }
        self.current()
    }

    /// The current watermark (`Timestamp::MIN` before any element).
    pub fn current(&self) -> Timestamp {
        match self.max_seen {
            Some(m) => m - self.max_delay,
            None => Timestamp::MIN,
        }
    }

    /// True if an element with timestamp `t` would be late right now.
    pub fn is_late(&self, t: Timestamp) -> bool {
        t < self.current()
    }

    /// Number of late elements observed so far (a data-quality signal
    /// surfaced in the operator picture).
    pub fn late_count(&self) -> u64 {
        self.late
    }

    /// The configured disorder tolerance.
    pub fn max_delay(&self) -> DurationMs {
        self.max_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::SECOND;

    #[test]
    fn starts_at_minimum() {
        let w = BoundedOutOfOrderness::new(5 * SECOND);
        assert_eq!(w.current(), Timestamp::MIN);
    }

    #[test]
    fn trails_max_by_delay() {
        let mut w = BoundedOutOfOrderness::new(5 * SECOND);
        w.observe(Timestamp::from_secs(100));
        assert_eq!(w.current(), Timestamp::from_secs(95));
        w.observe(Timestamp::from_secs(200));
        assert_eq!(w.current(), Timestamp::from_secs(195));
    }

    #[test]
    fn monotone_under_disorder() {
        let mut w = BoundedOutOfOrderness::new(5 * SECOND);
        w.observe(Timestamp::from_secs(100));
        let before = w.current();
        w.observe(Timestamp::from_secs(50)); // very late element
        assert_eq!(w.current(), before, "watermark never regresses");
    }

    #[test]
    fn counts_late_elements() {
        let mut w = BoundedOutOfOrderness::new(5 * SECOND);
        w.observe(Timestamp::from_secs(100));
        w.observe(Timestamp::from_secs(97)); // within tolerance: not late
        assert_eq!(w.late_count(), 0);
        w.observe(Timestamp::from_secs(80)); // older than watermark: late
        assert_eq!(w.late_count(), 1);
    }

    #[test]
    fn zero_delay_is_strictly_ordered() {
        let mut w = BoundedOutOfOrderness::new(0);
        w.observe(Timestamp::from_secs(10));
        assert!(w.is_late(Timestamp::from_secs(9)));
        assert!(!w.is_late(Timestamp::from_secs(10)));
    }
}
