//! Watermark generation for event-time processing.
//!
//! Satellite AIS arrives in delayed batches (the paper's "multi-level
//! processing issues"); terrestrial AIS arrives almost in order. A
//! watermark is the runtime's statement "no element older than W will
//! arrive"; downstream operators use it to close windows and release
//! reordered output deterministically.

use mda_geo::{DurationMs, Timestamp};

/// Bounded out-of-orderness watermark generator.
///
/// The watermark trails the maximum observed event time by a fixed
/// `max_delay`. Elements older than the current watermark are *late*.
#[derive(Debug, Clone)]
pub struct BoundedOutOfOrderness {
    max_delay: DurationMs,
    max_seen: Option<Timestamp>,
    late: u64,
    /// Monotonicity floor: raising `max_delay` at runtime must not pull
    /// the watermark backwards, so delay changes record the watermark
    /// reached so far and `current()` never reports below it.
    floor: Timestamp,
}

impl BoundedOutOfOrderness {
    /// Create a generator tolerating up to `max_delay` of disorder.
    pub fn new(max_delay: DurationMs) -> Self {
        assert!(max_delay >= 0, "delay must be non-negative");
        Self { max_delay, max_seen: None, late: 0, floor: Timestamp::MIN }
    }

    /// Retune the disorder tolerance at runtime (the adaptive
    /// controller's delay knob). The watermark stays monotone across
    /// the change: a *larger* delay holds the watermark at its current
    /// value until the event-time frontier catches up, a *smaller*
    /// delay advances it immediately.
    pub fn set_max_delay(&mut self, max_delay: DurationMs) {
        assert!(max_delay >= 0, "delay must be non-negative");
        self.floor = self.floor.max(self.current());
        self.max_delay = max_delay;
    }

    /// Observe an element timestamp; returns the new watermark.
    ///
    /// The watermark is monotone: a late element never moves it backwards.
    pub fn observe(&mut self, t: Timestamp) -> Timestamp {
        match self.max_seen {
            Some(m) if t <= m => {
                if t < self.current() {
                    self.late += 1;
                }
            }
            _ => self.max_seen = Some(t),
        }
        self.current()
    }

    /// The event-time frontier: the maximum timestamp observed so far
    /// (`None` before any element).
    ///
    /// Unlike [`Self::current`] the frontier never stalls when the
    /// delay is retuned, which makes it the clock adaptive control
    /// must commit against: a watermark-clocked commit schedule
    /// self-throttles, because widening the delay by Δ holds the
    /// watermark — and therefore the next watermark-aligned boundary —
    /// still for exactly Δ of frontier time, opening a control
    /// blackout precisely while lateness is ramping.
    pub fn frontier(&self) -> Option<Timestamp> {
        self.max_seen
    }

    /// The current watermark (`Timestamp::MIN` before any element).
    pub fn current(&self) -> Timestamp {
        match self.max_seen {
            Some(m) => (m - self.max_delay).max(self.floor),
            None => Timestamp::MIN,
        }
    }

    /// True if an element with timestamp `t` would be late right now.
    pub fn is_late(&self, t: Timestamp) -> bool {
        t < self.current()
    }

    /// Number of late elements observed so far (a data-quality signal
    /// surfaced in the operator picture).
    pub fn late_count(&self) -> u64 {
        self.late
    }

    /// The configured disorder tolerance.
    pub fn max_delay(&self) -> DurationMs {
        self.max_delay
    }
}

/// Turns watermark advance into hot→cold seal points.
///
/// The archive's retention policy wants fixes older than
/// `watermark − hot_horizon` rotated into sealed cold segments, but
/// sealing on *every* watermark tick would thrash the shard locks.
/// The schedule quantizes the seal cut to `every`-aligned boundaries
/// and fires once per boundary crossed, so the sequence of seal points
/// is a pure function of the event-time stream — identical runs seal
/// identically, regardless of arrival jitter or tick cadence.
///
/// ```
/// use mda_geo::time::MINUTE;
/// use mda_geo::Timestamp;
/// use mda_stream::watermark::SealSchedule;
///
/// let mut seals = SealSchedule::new(30 * MINUTE, 60 * MINUTE);
/// assert_eq!(seals.due(Timestamp::from_mins(70)), Some(Timestamp::from_mins(0)));
/// assert_eq!(seals.due(Timestamp::from_mins(95)), Some(Timestamp::from_mins(30)));
/// assert_eq!(seals.due(Timestamp::from_mins(100)), None); // same boundary: already fired
/// assert_eq!(seals.due(Timestamp::from_mins(125)), Some(Timestamp::from_mins(60)));
/// ```
#[derive(Debug, Clone)]
pub struct SealSchedule {
    every: DurationMs,
    hot_horizon: DurationMs,
    last: Option<Timestamp>,
}

impl SealSchedule {
    /// A schedule firing at most once per `every` of event time,
    /// keeping at least `hot_horizon` of history hot.
    pub fn new(every: DurationMs, hot_horizon: DurationMs) -> Self {
        assert!(every > 0, "seal cadence must be positive");
        assert!(hot_horizon >= 0, "hot horizon must be non-negative");
        Self { every, hot_horizon, last: None }
    }

    /// Retune the cadence at runtime (the adaptive controller's seal
    /// knob). Cuts stay monotone — [`SealSchedule::due`] still refuses
    /// any cut at or behind the last one handed out, whatever the new
    /// alignment grid produces.
    pub fn set_every(&mut self, every: DurationMs) {
        assert!(every > 0, "seal cadence must be positive");
        self.every = every;
    }

    /// The current cadence.
    pub fn every(&self) -> DurationMs {
        self.every
    }

    /// Observe the current watermark; returns `Some(cut)` when a new
    /// aligned seal point became final (fixes older than `cut` may be
    /// sealed), `None` otherwise. Monotone: cuts never regress.
    pub fn due(&mut self, watermark: Timestamp) -> Option<Timestamp> {
        if watermark == Timestamp::MIN {
            return None;
        }
        // Negative epoch cuts are legal: scenarios may start before
        // the epoch, and `window_start` floors correctly there.
        let cut = (watermark - self.hot_horizon).window_start(self.every);
        match self.last {
            Some(prev) if cut <= prev => None,
            _ => {
                self.last = Some(cut);
                Some(cut)
            }
        }
    }

    /// The last seal point handed out.
    pub fn last(&self) -> Option<Timestamp> {
        self.last
    }
}

/// The canonical event-time tick discipline for watermark-driven live
/// checks (sweeps, evictions).
///
/// Boundaries are aligned to a fixed interval, anchored one boundary
/// before the stream's first observation, and a boundary `T` fires
/// after exactly the observations with `t <= T`:
///
/// - while walking released observations in event-time order, drain
///   [`TickSchedule::before_observation`] before processing each one —
///   boundaries strictly before its timestamp fire first;
/// - once a release is exhausted, drain [`TickSchedule::at_watermark`]
///   — boundaries at or before the aligned watermark are complete
///   (nothing at or before them can still be accepted) and fire now.
///
/// Both the pipeline and the event-engine benches drive ticks through
/// this one type, so the tick placement — and therefore everything
/// derived from it (dark-vessel sweeps, pairwise sampling, TTL
/// eviction) — is a single pure function of the event-time stream:
/// arrival jitter within the watermark delay cannot move a tick
/// relative to the data it sees.
///
/// ```
/// use mda_geo::time::MINUTE;
/// use mda_geo::Timestamp;
/// use mda_stream::watermark::TickSchedule;
///
/// let mut ticks = TickSchedule::new(MINUTE);
/// // First observation at t=90s anchors the grid; the boundary at
/// // t=60s (covering the — empty — prefix before it) fires first.
/// assert_eq!(ticks.before_observation(Timestamp::from_secs(90)), Some(Timestamp::from_secs(60)));
/// assert_eq!(ticks.before_observation(Timestamp::from_secs(90)), None);
/// // A fix at t=150s first flushes the boundary at t=120s.
/// assert_eq!(
///     ticks.before_observation(Timestamp::from_secs(150)),
///     Some(Timestamp::from_secs(120)),
/// );
/// assert_eq!(ticks.before_observation(Timestamp::from_secs(150)), None);
/// // The watermark completes boundaries no more data can precede.
/// assert_eq!(ticks.at_watermark(Timestamp::from_secs(185)), Some(Timestamp::from_secs(180)));
/// assert_eq!(ticks.at_watermark(Timestamp::from_secs(185)), None);
/// ```
#[derive(Debug, Clone)]
pub struct TickSchedule {
    every: DurationMs,
    last: Timestamp,
}

impl TickSchedule {
    /// A schedule firing every `every` of event time.
    pub fn new(every: DurationMs) -> Self {
        assert!(every > 0, "tick interval must be positive");
        Self { every, last: Timestamp::MIN }
    }

    /// Next boundary due strictly before observation time `t` (an
    /// observation at exactly a boundary belongs *before* that
    /// boundary's tick). Anchors the grid on the first observation.
    /// Call in a loop until `None` before processing the observation.
    pub fn before_observation(&mut self, t: Timestamp) -> Option<Timestamp> {
        if self.last == Timestamp::MIN {
            self.last = t.window_start(self.every) - self.every;
        }
        let next = self.last + self.every;
        if next < t {
            self.last = next;
            Some(next)
        } else {
            None
        }
    }

    /// Next boundary due at watermark `wm`: at most `wm` aligned down.
    /// Returns `None` until the grid is anchored by an observation.
    /// Call in a loop until `None` after a release is exhausted.
    pub fn at_watermark(&mut self, wm: Timestamp) -> Option<Timestamp> {
        if self.last == Timestamp::MIN || wm == Timestamp::MIN {
            return None;
        }
        let next = self.last + self.every;
        if next <= wm.window_start(self.every) {
            self.last = next;
            Some(next)
        } else {
            None
        }
    }

    /// True once the first observation anchored the grid.
    pub fn anchored(&self) -> bool {
        self.last != Timestamp::MIN
    }

    /// The newest boundary handed out (the grid anchor before any
    /// fires).
    pub fn last_boundary(&self) -> Timestamp {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::{MINUTE, SECOND};

    #[test]
    fn starts_at_minimum() {
        let w = BoundedOutOfOrderness::new(5 * SECOND);
        assert_eq!(w.current(), Timestamp::MIN);
    }

    #[test]
    fn seal_schedule_is_monotone_and_aligned() {
        let mut s = SealSchedule::new(10 * MINUTE, 60 * MINUTE);
        assert_eq!(s.due(Timestamp::MIN), None, "no data, no seal");
        let mut last = Timestamp::MIN;
        for m in 0..300 {
            if let Some(cut) = s.due(Timestamp::from_mins(m)) {
                assert!(cut > last, "cut regressed");
                assert_eq!(cut.millis() % (10 * MINUTE), 0, "cut not aligned");
                assert!(cut <= Timestamp::from_mins(m) - 60 * MINUTE + 10 * MINUTE);
                last = cut;
            }
        }
        assert_eq!(s.last(), Some(last));
    }

    #[test]
    fn tick_schedule_fires_each_boundary_once_in_order() {
        let mut s = TickSchedule::new(MINUTE);
        assert!(!s.anchored());
        assert_eq!(s.at_watermark(Timestamp::from_mins(10)), None, "unanchored: no ticks");
        // Observations at minutes 0.5, 3.2: boundary 0 covers the
        // empty prefix; 1, 2, 3 fire before the second observation.
        assert_eq!(s.before_observation(Timestamp(30_000)), Some(Timestamp::from_mins(0)));
        assert_eq!(s.before_observation(Timestamp(30_000)), None);
        assert!(s.anchored());
        let mut fired = Vec::new();
        while let Some(b) = s.before_observation(Timestamp(192_000)) {
            fired.push(b.millis() / MINUTE);
        }
        assert_eq!(fired, vec![1, 2, 3]);
        // Watermark at 4.5 min completes boundary 4 only.
        assert_eq!(s.at_watermark(Timestamp(270_000)), Some(Timestamp::from_mins(4)));
        assert_eq!(s.at_watermark(Timestamp(270_000)), None);
        assert_eq!(s.last_boundary(), Timestamp::from_mins(4));
    }

    #[test]
    fn tick_schedule_boundary_observation_goes_first() {
        // An observation exactly on a boundary is covered by that
        // boundary's tick: the tick waits for the observation and then
        // fires via the watermark path.
        let mut s = TickSchedule::new(MINUTE);
        assert_eq!(s.before_observation(Timestamp::from_mins(1)), None, "aligned first fix");
        assert_eq!(s.before_observation(Timestamp::from_mins(2)), Some(Timestamp::from_mins(1)));
        assert_eq!(s.before_observation(Timestamp::from_mins(2)), None, "boundary 2 waits");
        assert_eq!(s.at_watermark(Timestamp::from_mins(2)), Some(Timestamp::from_mins(2)));
    }

    #[test]
    fn seal_schedule_handles_negative_epochs() {
        let mut s = SealSchedule::new(10 * MINUTE, 0);
        // A watermark before the epoch still aligns downward correctly.
        assert_eq!(s.due(Timestamp::from_mins(-25)), Some(Timestamp::from_mins(-30)));
        assert_eq!(s.due(Timestamp::from_mins(-21)), None);
        assert_eq!(s.due(Timestamp::from_mins(5)), Some(Timestamp::from_mins(0)));
    }

    #[test]
    fn trails_max_by_delay() {
        let mut w = BoundedOutOfOrderness::new(5 * SECOND);
        w.observe(Timestamp::from_secs(100));
        assert_eq!(w.current(), Timestamp::from_secs(95));
        w.observe(Timestamp::from_secs(200));
        assert_eq!(w.current(), Timestamp::from_secs(195));
    }

    #[test]
    fn monotone_under_disorder() {
        let mut w = BoundedOutOfOrderness::new(5 * SECOND);
        w.observe(Timestamp::from_secs(100));
        let before = w.current();
        w.observe(Timestamp::from_secs(50)); // very late element
        assert_eq!(w.current(), before, "watermark never regresses");
    }

    #[test]
    fn counts_late_elements() {
        let mut w = BoundedOutOfOrderness::new(5 * SECOND);
        w.observe(Timestamp::from_secs(100));
        w.observe(Timestamp::from_secs(97)); // within tolerance: not late
        assert_eq!(w.late_count(), 0);
        w.observe(Timestamp::from_secs(80)); // older than watermark: late
        assert_eq!(w.late_count(), 1);
    }

    #[test]
    fn raising_delay_never_regresses_watermark() {
        let mut w = BoundedOutOfOrderness::new(5 * SECOND);
        w.observe(Timestamp::from_secs(100));
        assert_eq!(w.current(), Timestamp::from_secs(95));
        // Widening the tolerance holds the watermark...
        w.set_max_delay(60 * SECOND);
        assert_eq!(w.current(), Timestamp::from_secs(95), "floored at the reached watermark");
        // ...until the frontier catches up past the new lag.
        w.observe(Timestamp::from_secs(150));
        assert_eq!(w.current(), Timestamp::from_secs(95), "150 - 60 < floor");
        w.observe(Timestamp::from_secs(200));
        assert_eq!(w.current(), Timestamp::from_secs(140));
        // Shrinking the tolerance advances immediately.
        w.set_max_delay(10 * SECOND);
        assert_eq!(w.current(), Timestamp::from_secs(190));
        assert_eq!(w.max_delay(), 10 * SECOND);
    }

    #[test]
    fn seal_cadence_retune_keeps_cuts_monotone() {
        let mut s = SealSchedule::new(30 * MINUTE, 0);
        assert_eq!(s.due(Timestamp::from_mins(65)), Some(Timestamp::from_mins(60)));
        // A coarser grid whose aligned cut would regress is refused.
        s.set_every(50 * MINUTE);
        assert_eq!(s.every(), 50 * MINUTE);
        assert_eq!(s.due(Timestamp::from_mins(70)), None, "cut 50 < last 60");
        assert_eq!(s.due(Timestamp::from_mins(101)), Some(Timestamp::from_mins(100)));
        // A finer grid fires at the next fine boundary past the last cut.
        s.set_every(10 * MINUTE);
        assert_eq!(s.due(Timestamp::from_mins(111)), Some(Timestamp::from_mins(110)));
    }

    #[test]
    fn zero_delay_is_strictly_ordered() {
        let mut w = BoundedOutOfOrderness::new(0);
        w.observe(Timestamp::from_secs(10));
        assert!(w.is_late(Timestamp::from_secs(9)));
        assert!(!w.is_late(Timestamp::from_secs(10)));
    }
}
