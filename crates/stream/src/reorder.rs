//! Event-time reordering buffer.
//!
//! Buffers out-of-order elements and releases them in event-time order
//! once the watermark guarantees completeness. This is the first stage of
//! the ingest pipeline: everything downstream (synopses, event automata)
//! can then assume per-key monotone time.

use mda_geo::Timestamp;
use std::collections::BTreeMap;

/// A reordering buffer over `(Timestamp, T)` elements.
#[derive(Debug)]
pub struct ReorderBuffer<T> {
    pending: BTreeMap<Timestamp, Vec<T>>,
    len: usize,
    dropped_late: u64,
    released_watermark: Timestamp,
}

impl<T> Default for ReorderBuffer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ReorderBuffer<T> {
    /// New empty buffer.
    pub fn new() -> Self {
        Self {
            pending: BTreeMap::new(),
            len: 0,
            dropped_late: 0,
            released_watermark: Timestamp::MIN,
        }
    }

    /// Number of buffered elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Elements dropped because they arrived behind an already-released
    /// watermark.
    pub fn dropped_late(&self) -> u64 {
        self.dropped_late
    }

    /// Insert an element. Returns `false` (and drops it) if its time is
    /// at or before the last released watermark — it can no longer be
    /// emitted in order.
    pub fn push(&mut self, t: Timestamp, value: T) -> bool {
        if t <= self.released_watermark && self.released_watermark != Timestamp::MIN {
            self.dropped_late += 1;
            return false;
        }
        self.pending.entry(t).or_default().push(value);
        self.len += 1;
        true
    }

    /// Release all elements with `t <= watermark`, in event-time order.
    pub fn release(&mut self, watermark: Timestamp) -> Vec<(Timestamp, T)> {
        if watermark < self.released_watermark {
            return Vec::new();
        }
        self.released_watermark = watermark;
        let mut out = Vec::new();
        let keep = self.pending.split_off(&watermark.saturating_add(1));
        for (t, values) in std::mem::replace(&mut self.pending, keep) {
            for v in values {
                out.push((t, v));
            }
        }
        self.len -= out.len();
        out
    }

    /// Release everything regardless of watermark (end of stream).
    pub fn drain_all(&mut self) -> Vec<(Timestamp, T)> {
        self.release(Timestamp::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_in_order() {
        let mut b = ReorderBuffer::new();
        b.push(Timestamp(30), "c");
        b.push(Timestamp(10), "a");
        b.push(Timestamp(20), "b");
        let out = b.release(Timestamp(25));
        assert_eq!(out, vec![(Timestamp(10), "a"), (Timestamp(20), "b")]);
        assert_eq!(b.len(), 1);
        let rest = b.drain_all();
        assert_eq!(rest, vec![(Timestamp(30), "c")]);
        assert!(b.is_empty());
    }

    #[test]
    fn equal_timestamps_all_released() {
        let mut b = ReorderBuffer::new();
        b.push(Timestamp(10), 1);
        b.push(Timestamp(10), 2);
        b.push(Timestamp(10), 3);
        let out = b.release(Timestamp(10));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn drops_elements_behind_released_watermark() {
        let mut b = ReorderBuffer::new();
        b.push(Timestamp(10), "a");
        b.release(Timestamp(15));
        assert!(!b.push(Timestamp(12), "too late"));
        assert_eq!(b.dropped_late(), 1);
        // Strictly after the watermark is fine.
        assert!(b.push(Timestamp(16), "ok"));
    }

    #[test]
    fn watermark_regression_is_ignored() {
        let mut b = ReorderBuffer::new();
        b.push(Timestamp(10), 1);
        b.push(Timestamp(20), 2);
        b.release(Timestamp(15));
        let out = b.release(Timestamp(5)); // regressed watermark
        assert!(out.is_empty());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn interleaved_push_release_preserves_global_order() {
        let mut b = ReorderBuffer::new();
        let mut emitted = Vec::new();
        // Simulated disordered arrivals in three bursts.
        for (t, wm) in [(5i64, 0i64), (3, 0), (9, 4), (7, 6), (12, 8), (11, 10), (15, 20)] {
            b.push(Timestamp(t), t);
            for (ts, _) in b.release(Timestamp(wm)) {
                emitted.push(ts.0);
            }
        }
        for (ts, _) in b.drain_all() {
            emitted.push(ts.0);
        }
        let mut sorted = emitted.clone();
        sorted.sort_unstable();
        assert_eq!(emitted, sorted, "released order must be event-time order");
        assert_eq!(emitted.len(), 7);
    }
}
