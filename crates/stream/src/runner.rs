//! Hash-partitioned parallel execution over crossbeam channels.
//!
//! The distributed streaming engines the paper surveys shard keyed state
//! across workers. [`run_partitioned`] reproduces that execution model in
//! one process: elements are routed to workers by key hash, each worker
//! owns its shard's state, and outputs are gathered in completion order.
//! It is the execution substrate for the throughput experiments.

use crossbeam::channel;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::thread;

/// Route `items` to `workers` shards by key hash; each worker folds its
/// shard with `make_worker()` (a fresh stateful closure per shard) and
/// the per-shard outputs are concatenated (shard order, then input
/// order within a shard).
///
/// `key_of` extracts the partition key; all elements of one key are
/// processed by the same worker in input order — the invariant keyed
/// operators rely on.
pub fn run_partitioned<T, K, O, F>(
    items: Vec<T>,
    workers: usize,
    key_of: impl Fn(&T) -> K,
    make_worker: impl Fn() -> F,
) -> Vec<O>
where
    T: Send,
    K: Hash,
    O: Send,
    F: FnMut(T) -> Vec<O> + Send,
{
    assert!(workers > 0);
    let (senders, receivers): (Vec<_>, Vec<_>) =
        (0..workers).map(|_| channel::unbounded::<T>()).unzip();

    // Route by key hash before spawning so senders can be dropped,
    // closing the channels.
    for item in items {
        let mut h = DefaultHasher::new();
        key_of(&item).hash(&mut h);
        let shard = (h.finish() as usize) % workers;
        senders[shard].send(item).expect("receiver alive");
    }
    drop(senders);

    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for rx in receivers {
            let mut work = make_worker();
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                for item in rx {
                    out.extend(work(item));
                }
                out
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("worker panicked"));
        }
        all
    })
}

/// Group `items` into per-shard batches, preserving input order within
/// each shard.
///
/// This is the dispatch half of shard-affine execution, shared by the
/// ingest runner below and by the sharded event engine's
/// `observe_batch` (which feeds each detector shard's run under one
/// borrow). The returned vector always has exactly `shards` entries;
/// shards that received nothing are empty.
///
/// `shard_of` must return values in `0..shards`.
pub fn partition_by_shard<T>(
    items: Vec<T>,
    shards: usize,
    shard_of: impl Fn(&T) -> usize,
) -> Vec<Vec<T>> {
    assert!(shards > 0);
    let cap = items.len() / shards + 1;
    let mut per_shard: Vec<Vec<T>> = (0..shards).map(|_| Vec::with_capacity(cap)).collect();
    for item in items {
        let s = shard_of(&item);
        assert!(s < shards, "shard_of returned {s} for {shards} shards");
        per_shard[s].push(item);
    }
    per_shard
}

/// Route `items` to workers by an *explicit* shard index rather than a
/// key hash, so routing can line up with a sharded state store: worker
/// `w` exclusively owns shards `{s : s % workers == w}`, and therefore
/// two workers never touch the same store shard — shard-affine ingest
/// never contends on shard locks.
///
/// Items are pre-grouped per shard ([`partition_by_shard`]; input order
/// preserved within a shard) and each worker's closure is invoked once
/// per non-empty owned shard with that shard's whole batch, lowest
/// shard index first — the natural shape for batch-ingest APIs.
/// Outputs are concatenated in worker order, then the worker's
/// shard-visit order.
///
/// `shard_of` must return values in `0..shards`.
pub fn run_shard_affine<T, O, F>(
    items: Vec<T>,
    workers: usize,
    shards: usize,
    shard_of: impl Fn(&T) -> usize,
    make_worker: impl Fn() -> F,
) -> Vec<O>
where
    T: Send,
    O: Send,
    F: FnMut(Vec<T>) -> Vec<O> + Send,
{
    let make_indexed = |_w: usize| {
        let mut work = make_worker();
        move |_s: usize, batch: Vec<T>| work(batch)
    };
    run_shard_affine_indexed(items, workers, shards, shard_of, make_indexed)
}

/// [`run_shard_affine`], but the worker closure also receives the shard
/// index of each batch (and `make_worker` the worker index), so workers
/// that own *stateful shard slots* — a sharded event engine, per-shard
/// metrics — can address the right slot without re-deriving the hash.
pub fn run_shard_affine_indexed<T, O, F>(
    items: Vec<T>,
    workers: usize,
    shards: usize,
    shard_of: impl Fn(&T) -> usize,
    make_worker: impl Fn(usize) -> F,
) -> Vec<O>
where
    T: Send,
    O: Send,
    F: FnMut(usize, Vec<T>) -> Vec<O> + Send,
{
    assert!(workers > 0);
    let per_shard = partition_by_shard(items, shards, shard_of);
    // Hand each worker its owned shards' batches (shard index ascending).
    let mut per_worker: Vec<Vec<(usize, Vec<T>)>> = (0..workers).map(|_| Vec::new()).collect();
    for (s, batch) in per_shard.into_iter().enumerate() {
        if !batch.is_empty() {
            per_worker[s % workers].push((s, batch));
        }
    }
    thread::scope(|scope| {
        let handles: Vec<_> = per_worker
            .into_iter()
            .enumerate()
            .map(|(w, batches)| {
                let mut work = make_worker(w);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for (s, batch) in batches {
                        out.extend(work(s, batch));
                    }
                    out
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("worker panicked"));
        }
        all
    })
}

/// Convenience: parallel map over chunks without keying (round-robin
/// partitioning), preserving no particular order.
pub fn run_unordered<T, O>(items: Vec<T>, workers: usize, f: impl Fn(T) -> O + Sync) -> Vec<O>
where
    T: Send,
    O: Send,
{
    assert!(workers > 0);
    let chunk = items.len().div_ceil(workers).max(1);
    let chunks: Vec<Vec<T>> = {
        let mut cs = Vec::new();
        let mut it = items.into_iter();
        loop {
            let c: Vec<T> = it.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            cs.push(c);
        }
        cs
    };
    thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        let mut out = Vec::new();
        for h in handles {
            out.extend(h.join().expect("worker panicked"));
        }
        out
    })
}

/// Run one writer to completion while `readers` concurrent reader
/// loops poll shared state — the query-vs-ingest execution shape of a
/// serving layer (1 ingest thread × N `QueryService` readers).
///
/// `writer` runs once on its own thread. Each reader closure receives
/// its index and an `ingest_running` flag; it should loop while the
/// flag is `true` (issuing queries against whatever shared handle it
/// captured) and may take one final look after the flag drops — the
/// flag flips *after* the writer returns, so a last iteration observes
/// the writer's final published state. Returns the writer's output and
/// every reader's, in reader-index order.
///
/// ```
/// use mda_stream::runner::run_with_readers;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let counter = AtomicU64::new(0);
/// let (total, reads) = run_with_readers(
///     || {
///         for _ in 0..1_000 {
///             counter.fetch_add(1, Ordering::Relaxed);
///         }
///         counter.load(Ordering::Relaxed)
///     },
///     2,
///     |_reader, running| {
///         let mut last = 0;
///         while running.load(Ordering::Acquire) {
///             last = counter.load(Ordering::Relaxed);
///         }
///         last
///     },
/// );
/// assert_eq!(total, 1_000);
/// assert_eq!(reads.len(), 2);
/// ```
pub fn run_with_readers<W, R>(
    writer: impl FnOnce() -> W + Send,
    readers: usize,
    reader: impl Fn(usize, &std::sync::atomic::AtomicBool) -> R + Sync,
) -> (W, Vec<R>)
where
    W: Send,
    R: Send,
{
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Clears the flag on drop, so a panicking writer still releases
    /// the readers (otherwise `thread::scope` would join the spinning
    /// reader loops forever and the panic would never surface).
    struct StopOnDrop<'a>(&'a AtomicBool);
    impl Drop for StopOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(false, Ordering::Release);
        }
    }

    let running = AtomicBool::new(true);
    thread::scope(|scope| {
        let running = &running;
        let reader = &reader;
        let reader_handles: Vec<_> =
            (0..readers).map(|i| scope.spawn(move || reader(i, running))).collect();
        let wrote = {
            let _stop = StopOnDrop(running);
            writer()
        };
        let read = reader_handles.into_iter().map(|h| h.join().expect("reader panicked")).collect();
        (wrote, read)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn partitioned_preserves_per_key_order() {
        // Elements (key, seq); worker records the order it sees.
        let items: Vec<(u32, u32)> =
            (0..50).flat_map(|seq| (0..8u32).map(move |k| (k, seq))).collect();
        let out: Vec<(u32, u32)> =
            run_partitioned(items, 4, |item| item.0, || |item: (u32, u32)| vec![item]);
        let mut per_key: HashMap<u32, Vec<u32>> = HashMap::new();
        for (k, seq) in out {
            per_key.entry(k).or_default().push(seq);
        }
        assert_eq!(per_key.len(), 8);
        for (k, seqs) in per_key {
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_eq!(seqs, sorted, "key {k} processed out of order");
            assert_eq!(seqs.len(), 50);
        }
    }

    #[test]
    fn partitioned_stateful_workers() {
        // Running count per shard: outputs (key, running_total_in_shard).
        let items: Vec<u32> = (0..100).map(|i| i % 10).collect();
        let out: Vec<(u32, usize)> = run_partitioned(
            items,
            3,
            |k| *k,
            || {
                let mut count = 0usize;
                move |k: u32| {
                    count += 1;
                    vec![(k, count)]
                }
            },
        );
        assert_eq!(out.len(), 100);
        // Total processed across shards is exactly the input size.
        let max_counts: usize = {
            let mut per_last: HashMap<u32, usize> = HashMap::new();
            for (k, c) in &out {
                per_last.insert(*k, (*c).max(*per_last.get(k).unwrap_or(&0)));
            }
            // Each key appears 10 times; shard counts cover all of them.
            per_last.values().sum()
        };
        assert!(max_counts >= 30, "stateful counters advanced");
    }

    #[test]
    fn single_worker_is_sequential() {
        let items = vec![3u32, 1, 2];
        let out: Vec<u32> = run_partitioned(items, 1, |_| 0u8, || |v: u32| vec![v]);
        assert_eq!(out, vec![3, 1, 2]);
    }

    #[test]
    fn shard_affine_covers_all_shards_in_order() {
        // 10 shards over 3 workers; items round-robin over shards.
        let items: Vec<(usize, u32)> = (0..200u32).map(|seq| ((seq as usize) % 10, seq)).collect();
        let out: Vec<(usize, u32)> = run_shard_affine(
            items.clone(),
            3,
            10,
            |item| item.0,
            || |batch: Vec<(usize, u32)>| batch,
        );
        assert_eq!(out.len(), 200);
        // Per-shard input order is preserved.
        let mut per_shard: HashMap<usize, Vec<u32>> = HashMap::new();
        for (s, seq) in out {
            per_shard.entry(s).or_default().push(seq);
        }
        assert_eq!(per_shard.len(), 10);
        for (s, seqs) in per_shard {
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_eq!(seqs, sorted, "shard {s} out of order");
        }
    }

    #[test]
    fn shard_affine_worker_owns_disjoint_shards() {
        // Each worker records which shards it saw; ownership must be
        // disjoint (that is the no-contention property).
        let items: Vec<usize> = (0..64).map(|i| i % 8).collect();
        let out: Vec<(usize, std::thread::ThreadId)> = run_shard_affine(
            items,
            4,
            8,
            |s| *s,
            || |batch: Vec<usize>| vec![(batch[0], std::thread::current().id())],
        );
        let mut owner: HashMap<usize, std::thread::ThreadId> = HashMap::new();
        let mut threads: HashMap<std::thread::ThreadId, Vec<usize>> = HashMap::new();
        for (shard, tid) in out {
            assert!(owner.insert(shard, tid).is_none(), "shard visited twice");
            threads.entry(tid).or_default().push(shard);
        }
        assert_eq!(owner.len(), 8);
        for (_, shards) in threads {
            for s in &shards {
                assert_eq!(s % 4, shards[0] % 4, "worker crossed its shard class");
            }
        }
    }

    #[test]
    fn partition_by_shard_groups_in_order() {
        let items: Vec<u32> = (0..40).collect();
        let parts = partition_by_shard(items, 4, |v| (*v as usize) % 4);
        assert_eq!(parts.len(), 4);
        for (s, batch) in parts.iter().enumerate() {
            assert_eq!(batch.len(), 10);
            assert!(batch.windows(2).all(|w| w[0] < w[1]), "shard {s} lost input order");
            assert!(batch.iter().all(|v| (*v as usize) % 4 == s));
        }
        // Empty shards are still present.
        let sparse = partition_by_shard(vec![0u32], 3, |_| 2);
        assert_eq!(sparse.iter().map(Vec::len).collect::<Vec<_>>(), vec![0, 0, 1]);
    }

    #[test]
    fn shard_affine_indexed_reports_true_shard() {
        let items: Vec<usize> = (0..60).map(|i| i % 6).collect();
        let out: Vec<(usize, usize)> = run_shard_affine_indexed(
            items,
            3,
            6,
            |s| *s,
            |_w| |shard: usize, batch: Vec<usize>| vec![(shard, batch.len())],
        );
        let mut seen: Vec<(usize, usize)> = out;
        seen.sort_unstable();
        assert_eq!(seen, (0..6).map(|s| (s, 10)).collect::<Vec<_>>());
    }

    #[test]
    fn unordered_map_computes_all() {
        let items: Vec<u64> = (0..1000).collect();
        let mut out = run_unordered(items, 8, |v| v * 2);
        out.sort_unstable();
        assert_eq!(out.len(), 1000);
        assert_eq!(out[999], 1998);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = run_partitioned(Vec::<u32>::new(), 4, |v| *v, || |v: u32| vec![v]);
        assert!(out.is_empty());
        let out2: Vec<u32> = run_unordered(Vec::<u32>::new(), 4, |v| v);
        assert!(out2.is_empty());
    }
}
