//! Hash-partitioned parallel execution over crossbeam channels.
//!
//! The distributed streaming engines the paper surveys shard keyed state
//! across workers. [`run_partitioned`] reproduces that execution model in
//! one process: elements are routed to workers by key hash, each worker
//! owns its shard's state, and outputs are gathered in completion order.
//! It is the execution substrate for the throughput experiments.

use crossbeam::channel;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::thread;

/// Route `items` to `workers` shards by key hash; each worker folds its
/// shard with `make_worker()` (a fresh stateful closure per shard) and
/// the per-shard outputs are concatenated (shard order, then input
/// order within a shard).
///
/// `key_of` extracts the partition key; all elements of one key are
/// processed by the same worker in input order — the invariant keyed
/// operators rely on.
pub fn run_partitioned<T, K, O, F>(
    items: Vec<T>,
    workers: usize,
    key_of: impl Fn(&T) -> K,
    make_worker: impl Fn() -> F,
) -> Vec<O>
where
    T: Send,
    K: Hash,
    O: Send,
    F: FnMut(T) -> Vec<O> + Send,
{
    assert!(workers > 0);
    let (senders, receivers): (Vec<_>, Vec<_>) =
        (0..workers).map(|_| channel::unbounded::<T>()).unzip();

    // Route by key hash before spawning so senders can be dropped,
    // closing the channels.
    for item in items {
        let mut h = DefaultHasher::new();
        key_of(&item).hash(&mut h);
        let shard = (h.finish() as usize) % workers;
        senders[shard].send(item).expect("receiver alive");
    }
    drop(senders);

    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for rx in receivers {
            let mut work = make_worker();
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                for item in rx {
                    out.extend(work(item));
                }
                out
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("worker panicked"));
        }
        all
    })
}

/// Convenience: parallel map over chunks without keying (round-robin
/// partitioning), preserving no particular order.
pub fn run_unordered<T, O>(items: Vec<T>, workers: usize, f: impl Fn(T) -> O + Sync) -> Vec<O>
where
    T: Send,
    O: Send,
{
    assert!(workers > 0);
    let chunk = items.len().div_ceil(workers).max(1);
    let chunks: Vec<Vec<T>> = {
        let mut cs = Vec::new();
        let mut it = items.into_iter();
        loop {
            let c: Vec<T> = it.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            cs.push(c);
        }
        cs
    };
    thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        let mut out = Vec::new();
        for h in handles {
            out.extend(h.join().expect("worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn partitioned_preserves_per_key_order() {
        // Elements (key, seq); worker records the order it sees.
        let items: Vec<(u32, u32)> =
            (0..50).flat_map(|seq| (0..8u32).map(move |k| (k, seq))).collect();
        let out: Vec<(u32, u32)> =
            run_partitioned(items, 4, |item| item.0, || |item: (u32, u32)| vec![item]);
        let mut per_key: HashMap<u32, Vec<u32>> = HashMap::new();
        for (k, seq) in out {
            per_key.entry(k).or_default().push(seq);
        }
        assert_eq!(per_key.len(), 8);
        for (k, seqs) in per_key {
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_eq!(seqs, sorted, "key {k} processed out of order");
            assert_eq!(seqs.len(), 50);
        }
    }

    #[test]
    fn partitioned_stateful_workers() {
        // Running count per shard: outputs (key, running_total_in_shard).
        let items: Vec<u32> = (0..100).map(|i| i % 10).collect();
        let out: Vec<(u32, usize)> = run_partitioned(
            items,
            3,
            |k| *k,
            || {
                let mut count = 0usize;
                move |k: u32| {
                    count += 1;
                    vec![(k, count)]
                }
            },
        );
        assert_eq!(out.len(), 100);
        // Total processed across shards is exactly the input size.
        let max_counts: usize = {
            let mut per_last: HashMap<u32, usize> = HashMap::new();
            for (k, c) in &out {
                per_last.insert(*k, (*c).max(*per_last.get(k).unwrap_or(&0)));
            }
            // Each key appears 10 times; shard counts cover all of them.
            per_last.values().sum()
        };
        assert!(max_counts >= 30, "stateful counters advanced");
    }

    #[test]
    fn single_worker_is_sequential() {
        let items = vec![3u32, 1, 2];
        let out: Vec<u32> = run_partitioned(items, 1, |_| 0u8, || |v: u32| vec![v]);
        assert_eq!(out, vec![3, 1, 2]);
    }

    #[test]
    fn unordered_map_computes_all() {
        let items: Vec<u64> = (0..1000).collect();
        let mut out = run_unordered(items, 8, |v| v * 2);
        out.sort_unstable();
        assert_eq!(out.len(), 1000);
        assert_eq!(out[999], 1998);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = run_partitioned(Vec::<u32>::new(), 4, |v| *v, || |v: u32| vec![v]);
        assert!(out.is_empty());
        let out2: Vec<u32> = run_unordered(Vec::<u32>::new(), 4, |v| v);
        assert!(out2.is_empty());
    }
}
