//! Network serving front over the [`mda_core::QueryService`]: wire
//! protocol, filtered subscription fan-out, and a watermark-keyed
//! answer cache.
//!
//! The datAcron architecture's consumers — operator consoles, alert
//! routers, downstream analytics — do not live in the ingest process.
//! This crate is the boundary: a framed, CRC-checked wire protocol
//! ([`wire`], [`frame`]) carrying every stamped answer the query layer
//! can produce, served over real TCP ([`tcp`]) or an in-process duplex
//! pipe ([`transport::pipe`]) by the same transport-generic code path.
//!
//! ## Design
//!
//! - **Sessions, not threads, are the unit of fan-out.** A
//!   subscription session ([`session`]) is a cursor into the event
//!   ring, a pushed-down [`mda_events::ring::EventFilter`], and a
//!   bounded queue — plain data pumped centrally, so one core sustains
//!   tens of thousands of concurrent filtered subscribers (experiment
//!   c15).
//! - **Slow consumers are evicted, never waited on.** Queues drop
//!   oldest beyond capacity with exact per-session accounting; crossing
//!   the drop bound evicts the session. Ingest and healthy sessions
//!   never block on a stalled peer.
//! - **The answer cache is correct by construction.** Watermarks key
//!   immutable snapshots published at most once, so
//!   `(watermark, request)` determines the answer bytes for all time
//!   ([`cache`]); hits are byte-identical to recomputation.
//! - **Decode is total.** Frame and wire decoding never panic on
//!   arbitrary bytes (lint rule L2 covers both modules; the corruption
//!   battery in `tests/corruption.rs` flips and truncates every frame
//!   shape).
//!
//! ## A round trip
//!
//! ```
//! use mda_core::{MaritimePipeline, PipelineConfig};
//! use mda_geo::{BoundingBox, Fix, Position, Timestamp};
//! use mda_serve::client::ServeClient;
//! use mda_serve::server::{ServeConfig, ServeCore};
//! use mda_serve::wire::{Request, Response};
//! use std::sync::atomic::AtomicBool;
//! use std::sync::Arc;
//!
//! let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
//! let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
//! let service = pipeline.query_service();
//! for i in 0..60i64 {
//!     let pos = Position::new(43.0, 5.0 + 0.002 * i as f64);
//!     pipeline.push_fix(Fix::new(1, Timestamp::from_mins(i), pos, 10.0, 90.0));
//! }
//! pipeline.finish();
//!
//! // Serve over an in-process pipe (same loop real TCP runs).
//! let core = Arc::new(ServeCore::new(service.clone(), ServeConfig::default()));
//! let shutdown = Arc::new(AtomicBool::new(false));
//! let (pipe_end, conn) = mda_serve::conn::spawn_pipe_connection(core, Arc::clone(&shutdown));
//! let mut client = ServeClient::new(pipe_end);
//!
//! let answer = client.request(&Request::Latest { id: 1 }).unwrap();
//! let Response::Latest(stamped) = answer else { panic!("wrong answer shape") };
//! assert_eq!(stamped.value, service.latest(1).value, "wire answer equals the in-process oracle");
//! drop(client); // closing the client ends the connection thread
//! conn.join().unwrap();
//! ```

pub mod cache;
pub mod client;
pub mod conn;
pub mod frame;
pub mod server;
pub mod session;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use cache::{AnswerCache, CacheStats};
pub use client::{ClientError, ServeClient};
pub use conn::{serve_connection, spawn_pipe_connection, ConnExit};
pub use server::{ServeConfig, ServeCore};
pub use session::{RegistryStats, SessionConfig, SessionRegistry};
pub use tcp::{serve_tcp, TcpServer};
pub use transport::{pipe, PipeEnd, TcpTransport, Transport};
pub use wire::{
    decode_request, decode_response, encode_request, encode_response, EventBatch, Request,
    Response, WireError,
};
