//! A blocking client over any [`Transport`]: framed requests in,
//! framed answers out, with pushed subscription traffic buffered so a
//! request's answer and a push never get confused.
//!
//! The server may interleave pushed [`Response::Events`] /
//! [`Response::Evicted`] frames between a request and its answer.
//! [`ServeClient::request`] parks those in an internal queue and
//! returns the first *non-push* frame; [`ServeClient::next_push`]
//! surfaces the queue (reading more from the wire if asked to wait).

use crate::frame::{read_frame, write_frame, FrameStatus};
use crate::transport::Transport;
use crate::wire::{decode_response, encode_request, Request, Response, WireError};
use mda_events::ring::EventFilter;
use std::collections::VecDeque;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed or the peer closed the stream.
    Io(std::io::Error),
    /// The server sent bytes that fail frame CRC or wire decode — the
    /// stream is unusable past this point.
    Corrupt(WireError),
    /// No answer arrived within the client's wait budget.
    TimedOut,
    /// The server answered with [`Response::Error`] (or an answer of
    /// an unexpected shape).
    Refused(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Corrupt(e) => write!(f, "corrupt server stream: {e}"),
            ClientError::TimedOut => write!(f, "timed out waiting for answer"),
            ClientError::Refused(msg) => write!(f, "server refused: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking request/subscribe client.
#[derive(Debug)]
pub struct ServeClient<T> {
    transport: T,
    inbuf: Vec<u8>,
    parsed: usize,
    pushed: VecDeque<Response>,
    /// Most read polls (each [`crate::transport::READ_POLL`] long) one
    /// call waits for an answer before giving up.
    max_waits: usize,
}

impl<T: Transport> ServeClient<T> {
    /// A client over a connected transport.
    pub fn new(transport: T) -> Self {
        Self { transport, inbuf: Vec::new(), parsed: 0, pushed: VecDeque::new(), max_waits: 500 }
    }

    /// Send one request and return its answer. Pushed event frames
    /// that arrive first are buffered for [`ServeClient::next_push`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut frame = Vec::new();
        write_frame(&mut frame, &encode_request(request));
        self.transport.send(&frame)?;
        let mut waits = 0usize;
        loop {
            if let Some(response) = self.read_frame_budgeted(&mut waits)? {
                match response {
                    Response::Events(_) | Response::Evicted { .. } => {
                        self.pushed.push_back(response)
                    }
                    answer => return Ok(answer),
                }
            }
        }
    }

    /// The next pushed [`Response::Events`] or [`Response::Evicted`]
    /// frame. With `wait` false, only already-received frames are
    /// returned (`Ok(None)` when there are none); with `wait` true the
    /// wire is read until a push arrives or the wait budget runs out.
    pub fn next_push(&mut self, wait: bool) -> Result<Option<Response>, ClientError> {
        if let Some(push) = self.pushed.pop_front() {
            return Ok(Some(push));
        }
        if !wait {
            // One non-blocking-ish sweep to pick up anything queued.
            let mut waits = self.max_waits; // budget exhausted → single poll
            match self.read_frame_budgeted(&mut waits) {
                Ok(Some(response)) => return Ok(Some(response)),
                Ok(None) | Err(ClientError::TimedOut) => return Ok(None),
                Err(e) => return Err(e),
            }
        }
        let mut waits = 0usize;
        loop {
            if let Some(response) = self.read_frame_budgeted(&mut waits)? {
                return Ok(Some(response));
            }
        }
    }

    /// Open a subscription; returns `(session, start cursor)`.
    pub fn subscribe(
        &mut self,
        filter: EventFilter,
        resume_at: Option<u64>,
    ) -> Result<(u64, u64), ClientError> {
        match self.request(&Request::Subscribe { filter, resume_at })? {
            Response::Subscribed { session, cursor } => Ok((session, cursor)),
            Response::Error { message } => Err(ClientError::Refused(message)),
            other => Err(ClientError::Refused(format!("unexpected answer {other:?}"))),
        }
    }

    /// Close a subscription.
    pub fn unsubscribe(&mut self, session: u64) -> Result<(), ClientError> {
        self.request(&Request::Unsubscribe { session })?;
        Ok(())
    }

    /// Read and decode at most one frame, charging timeouts against
    /// `waits`. `Ok(None)` means "nothing complete yet".
    fn read_frame_budgeted(&mut self, waits: &mut usize) -> Result<Option<Response>, ClientError> {
        loop {
            match read_frame(&self.inbuf, &mut self.parsed) {
                FrameStatus::Ready(payload) => {
                    let response = decode_response(payload).map_err(ClientError::Corrupt)?;
                    if self.parsed > 0 {
                        self.inbuf.drain(..self.parsed);
                        self.parsed = 0;
                    }
                    return Ok(Some(response));
                }
                FrameStatus::Corrupt => return Err(ClientError::Corrupt(WireError::Malformed)),
                FrameStatus::Incomplete => {}
            }
            let mut scratch = [0u8; 4096];
            match self.transport.read_some(&mut scratch)? {
                Some(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the stream",
                    )))
                }
                Some(n) => self.inbuf.extend_from_slice(&scratch[..n]),
                None => {
                    *waits += 1;
                    if *waits >= self.max_waits {
                        return Err(ClientError::TimedOut);
                    }
                    return Ok(None);
                }
            }
        }
    }
}
