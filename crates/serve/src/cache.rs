//! The watermark-keyed answer cache.
//!
//! Correctness rests on two published invariants of the core:
//! snapshots are immutable, and a given watermark is published **at
//! most once** (stamps never regress, and one tick boundary produces
//! one snapshot). An answer is a pure function of
//! `(request, snapshot)`, so `(watermark, request bytes)` keys exactly
//! one answer for all time — entries never need invalidation, only
//! eviction for space.
//!
//! The cache stores *encoded response payloads*, not decoded values:
//! a hit is the byte-for-byte payload a recomputation would produce
//! (wire encoding is deterministic), which `tests/serve_oracle.rs`
//! verifies against a cache-disabled server.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// A cache key: the watermark the answer was computed at plus the
/// encoded request.
type Key = (i64, Vec<u8>);

/// Hit/miss/eviction gauges of one [`AnswerCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to recomputation.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evicted: u64,
}

/// A bounded FIFO cache of encoded answers keyed by
/// `(watermark, request bytes)`.
///
/// FIFO (not LRU) is deliberate: the watermark advances monotonically,
/// so old entries age out in insertion order anyway — tracking recency
/// would buy nothing for a strictly forward-moving key space.
#[derive(Debug, Default)]
pub struct AnswerCache {
    map: HashMap<Key, Vec<u8>>,
    order: VecDeque<Key>,
    capacity: usize,
    stats: CacheStats,
}

impl AnswerCache {
    /// A cache holding at most `capacity` answers (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self { map: HashMap::new(), order: VecDeque::new(), capacity, stats: CacheStats::default() }
    }

    /// Look up the encoded answer for `request` at `watermark`.
    pub fn get(&mut self, watermark: i64, request: &[u8]) -> Option<Vec<u8>> {
        // Borrow-free probe: build the key once only on insert.
        let found = self.map.get(&(watermark, request.to_vec())).cloned();
        match found {
            Some(bytes) => {
                self.stats.hits += 1;
                Some(bytes)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert the encoded answer for `request` at `watermark`,
    /// evicting the oldest entries if over capacity.
    pub fn put(&mut self, watermark: i64, request: &[u8], answer: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        let key = (watermark, request.to_vec());
        if let Entry::Vacant(slot) = self.map.entry(key.clone()) {
            slot.insert(answer);
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                    self.stats.evicted += 1;
                }
            }
        }
    }

    /// Current gauges.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_are_the_inserted_bytes() {
        let mut cache = AnswerCache::new(8);
        assert_eq!(cache.get(5, b"req"), None);
        cache.put(5, b"req", vec![1, 2, 3]);
        assert_eq!(cache.get(5, b"req"), Some(vec![1, 2, 3]));
        // Same request at a different watermark is a different answer.
        assert_eq!(cache.get(6, b"req"), None);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 2, evicted: 0 });
    }

    #[test]
    fn fifo_eviction_bounds_residency() {
        let mut cache = AnswerCache::new(2);
        cache.put(1, b"a", vec![1]);
        cache.put(1, b"b", vec![2]);
        cache.put(2, b"a", vec![3]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(1, b"a"), None, "oldest entry evicted");
        assert_eq!(cache.get(2, b"a"), Some(vec![3]));
        assert_eq!(cache.stats().evicted, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = AnswerCache::new(0);
        cache.put(1, b"a", vec![1]);
        assert!(cache.is_empty());
        assert_eq!(cache.get(1, b"a"), None);
    }

    #[test]
    fn duplicate_puts_keep_the_first_answer() {
        // A given (watermark, request) has exactly one correct answer;
        // a racing second computation must not churn the FIFO order.
        let mut cache = AnswerCache::new(2);
        cache.put(1, b"a", vec![1]);
        cache.put(1, b"a", vec![9]);
        assert_eq!(cache.get(1, b"a"), Some(vec![1]));
    }
}
