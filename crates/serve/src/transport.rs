//! Byte transports under the framed protocol: a trait small enough to
//! implement over anything, an in-process duplex pipe for tests and
//! benches, and the TCP adapter.
//!
//! The trait's one non-obvious choice is **timed reads**:
//! [`Transport::read_some`] returns `Ok(None)` on timeout rather than
//! blocking forever. Connection loops interleave "read the next
//! request" with "drain subscription queues", so a reader that parked
//! indefinitely would stall event push for its sessions.

use std::collections::VecDeque;
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How long one [`Transport::read_some`] call waits before reporting
/// "no bytes yet".
pub const READ_POLL: Duration = Duration::from_millis(20);

/// A bidirectional byte stream carrying framed payloads.
pub trait Transport {
    /// Queue bytes to the peer. `Err` means the peer is gone.
    fn send(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Read some bytes into `buf`: `Ok(Some(n))` for `n > 0` bytes,
    /// `Ok(Some(0))` for end-of-stream (peer closed), `Ok(None)` when
    /// nothing arrived within the poll interval.
    fn read_some(&mut self, buf: &mut [u8]) -> io::Result<Option<usize>>;
}

// ---------------------------------------------------------------------------
// In-process duplex pipe.

/// One direction of a pipe: a byte queue plus a closed flag.
///
/// Uses `std::sync` primitives rather than `parking_lot` because the
/// reader parks on a [`Condvar`] with a timeout.
#[derive(Debug, Default)]
struct Lane {
    state: Mutex<LaneState>,
    readable: Condvar,
}

#[derive(Debug, Default)]
struct LaneState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Lane {
    fn push(&self, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe peer closed"));
        }
        state.buf.extend(bytes);
        self.readable.notify_all();
        Ok(())
    }

    fn pull(&self, out: &mut [u8], wait: Duration) -> io::Result<Option<usize>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.buf.is_empty() && !state.closed {
            let (next, _timeout) =
                self.readable.wait_timeout(state, wait).unwrap_or_else(|e| e.into_inner());
            state = next;
        }
        if state.buf.is_empty() {
            return if state.closed { Ok(Some(0)) } else { Ok(None) };
        }
        let n = state.buf.len().min(out.len());
        for slot in out.iter_mut().take(n) {
            // The queue holds ≥ n bytes; `pop_front` cannot fail here,
            // but stay total anyway.
            *slot = state.buf.pop_front().unwrap_or_default();
        }
        Ok(Some(n))
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        self.readable.notify_all();
    }
}

/// One end of an in-process duplex byte pipe.
///
/// Dropping an end closes **both** directions, so the peer observes
/// end-of-stream on read and `BrokenPipe` on send — the same teardown
/// shape a TCP reset gives, which is what the fault-injection tests
/// lean on.
#[derive(Debug)]
pub struct PipeEnd {
    /// The lane this end reads from.
    rx: Arc<Lane>,
    /// The lane this end writes to.
    tx: Arc<Lane>,
}

/// A connected pair of pipe ends (client half, server half).
pub fn pipe() -> (PipeEnd, PipeEnd) {
    let a = Arc::new(Lane::default());
    let b = Arc::new(Lane::default());
    (PipeEnd { rx: Arc::clone(&a), tx: Arc::clone(&b) }, PipeEnd { rx: b, tx: a })
}

impl Transport for PipeEnd {
    fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.tx.push(bytes)
    }

    fn read_some(&mut self, buf: &mut [u8]) -> io::Result<Option<usize>> {
        self.rx.pull(buf, READ_POLL)
    }
}

impl Drop for PipeEnd {
    fn drop(&mut self) {
        self.rx.close();
        self.tx.close();
    }
}

// ---------------------------------------------------------------------------
// TCP adapter.

/// [`Transport`] over a `std::net::TcpStream` with a poll-interval
/// read timeout.
#[derive(Debug)]
pub struct TcpTransport {
    stream: std::net::TcpStream,
}

impl TcpTransport {
    /// Wrap a connected stream, configuring the read timeout and
    /// disabling Nagle (answer frames are small and latency-bound).
    pub fn new(stream: std::net::TcpStream) -> io::Result<Self> {
        stream.set_read_timeout(Some(READ_POLL))?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.stream.write_all(bytes)
    }

    fn read_some(&mut self, buf: &mut [u8]) -> io::Result<Option<usize>> {
        use std::io::Read;
        match self.stream.read(buf) {
            Ok(n) => Ok(Some(n)),
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_carries_bytes_both_ways() {
        let (mut client, mut server) = pipe();
        client.send(b"ping").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(server.read_some(&mut buf).unwrap(), Some(4));
        assert_eq!(&buf[..4], b"ping");
        server.send(b"pong!").unwrap();
        assert_eq!(client.read_some(&mut buf).unwrap(), Some(5));
        assert_eq!(&buf[..5], b"pong!");
        // Nothing queued: a read times out as None, not EOF.
        assert_eq!(client.read_some(&mut buf).unwrap(), None);
    }

    #[test]
    fn dropping_one_end_tears_down_both_directions() {
        let (mut client, server) = pipe();
        drop(server);
        assert!(client.send(b"x").is_err(), "send into a dropped peer fails");
        let mut buf = [0u8; 4];
        assert_eq!(client.read_some(&mut buf).unwrap(), Some(0), "EOF, not hang");
    }

    #[test]
    fn short_reads_drain_the_queue_in_order() {
        let (mut client, mut server) = pipe();
        client.send(&(0..=99u8).collect::<Vec<_>>()).unwrap();
        let mut seen = Vec::new();
        let mut buf = [0u8; 7];
        while seen.len() < 100 {
            match server.read_some(&mut buf).unwrap() {
                Some(n) if n > 0 => seen.extend_from_slice(&buf[..n]),
                _ => break,
            }
        }
        assert_eq!(seen, (0..=99u8).collect::<Vec<_>>());
    }
}
