//! The per-connection serving loop, shared by every transport.
//!
//! One connection interleaves two duties per iteration:
//!
//! 1. **Requests** — read bytes, extract complete frames, answer each
//!    through [`ServeCore::handle`]. A corrupt frame (CRC mismatch or
//!    oversized length) ends the connection: a byte stream cannot be
//!    resynchronised past it.
//! 2. **Push** — drain every subscription session opened *on this
//!    connection* and push non-empty event batches (and eviction
//!    notices) to the peer.
//!
//! Teardown is unconditional: whether the peer closed cleanly, died
//! mid-frame, or the server is shutting down, every session the
//! connection owns is closed so the registry cannot leak. The
//! fault-injection battery kills connections at arbitrary byte
//! boundaries and asserts the server keeps serving others.

use crate::frame::{read_frame, write_frame, FrameStatus};
use crate::server::ServeCore;
use crate::transport::Transport;
use crate::wire::{decode_request, encode_response, Request, Response};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Why a connection loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnExit {
    /// The peer closed the stream (or the transport errored).
    PeerGone,
    /// The peer sent an unrecoverable frame (CRC mismatch / oversized
    /// length).
    CorruptFrame,
    /// The server's shutdown flag was raised.
    Shutdown,
}

/// Serve one connection until the peer goes away, corrupts the stream,
/// or `shutdown` is raised. Sessions opened on the connection are
/// closed on every exit path.
pub fn serve_connection<T: Transport>(
    core: &ServeCore,
    transport: &mut T,
    shutdown: &AtomicBool,
) -> ConnExit {
    let mut inbuf: Vec<u8> = Vec::new();
    let mut parsed = 0usize;
    let mut scratch = [0u8; 4096];
    let mut owned: Vec<u64> = Vec::new();
    let exit = loop {
        if shutdown.load(Ordering::Relaxed) {
            break ConnExit::Shutdown;
        }
        // 1. Requests.
        let eof = match transport.read_some(&mut scratch) {
            Ok(Some(0)) => true,
            Ok(Some(n)) => {
                inbuf.extend_from_slice(&scratch[..n]);
                false
            }
            Ok(None) => false,
            Err(_) => break ConnExit::PeerGone,
        };
        let mut corrupt = false;
        loop {
            match read_frame(&inbuf, &mut parsed) {
                FrameStatus::Ready(payload) => {
                    let response = match decode_request(payload) {
                        Ok(request) => {
                            let response = core.handle(&request);
                            track_sessions(&request, &response, &mut owned);
                            response
                        }
                        Err(err) => Response::Error { message: format!("bad request: {err}") },
                    };
                    let mut frame = Vec::new();
                    write_frame(&mut frame, &encode_response(&response));
                    if transport.send(&frame).is_err() {
                        break;
                    }
                }
                FrameStatus::Incomplete => break,
                FrameStatus::Corrupt => {
                    corrupt = true;
                    break;
                }
            }
        }
        if corrupt {
            break ConnExit::CorruptFrame;
        }
        // Reclaim consumed bytes once parsing has moved past them.
        if parsed > 0 {
            inbuf.drain(..parsed);
            parsed = 0;
        }
        // 2. Push.
        let mut gone = false;
        owned.retain(|&session| match core.drain_session(session) {
            Some(Ok(batch)) => {
                if batch.events.is_empty() {
                    return true;
                }
                let mut frame = Vec::new();
                write_frame(&mut frame, &encode_response(&Response::Events(batch)));
                if transport.send(&frame).is_err() {
                    gone = true;
                }
                !gone
            }
            Some(Err(dropped)) => {
                let notice = Response::Evicted { session, dropped };
                let mut frame = Vec::new();
                write_frame(&mut frame, &encode_response(&notice));
                if transport.send(&frame).is_err() {
                    gone = true;
                }
                false
            }
            None => false,
        });
        if gone || eof {
            break ConnExit::PeerGone;
        }
    };
    for session in owned {
        core.close_session(session);
    }
    exit
}

/// Keep the connection's owned-session list in sync with the
/// subscribe/unsubscribe traffic that flowed through it.
fn track_sessions(request: &Request, response: &Response, owned: &mut Vec<u64>) {
    match (request, response) {
        (Request::Subscribe { .. }, Response::Subscribed { session, .. }) => {
            owned.push(*session);
        }
        (Request::Unsubscribe { session }, Response::Unsubscribed { .. }) => {
            owned.retain(|s| s != session);
        }
        _ => {}
    }
}

/// Spawn a server-side connection thread over an in-process pipe,
/// returning the client end. The thread exits when the client end is
/// dropped or `shutdown` is raised.
pub fn spawn_pipe_connection(
    core: Arc<ServeCore>,
    shutdown: Arc<AtomicBool>,
) -> (crate::transport::PipeEnd, std::thread::JoinHandle<ConnExit>) {
    let (client_end, mut server_end) = crate::transport::pipe();
    let handle = std::thread::spawn(move || serve_connection(&core, &mut server_end, &shutdown));
    (client_end, handle)
}
