//! The transport-independent server core: decode a request, answer it
//! against the [`QueryService`], encode the response — plus the
//! subscription pump that fans events out to every session.
//!
//! One [`ServeCore`] is shared (via `Arc`) by every connection of
//! every transport. It owns no threads; transports call
//! [`ServeCore::handle_bytes`] per request and some driver calls
//! [`ServeCore::pump`] after ingest ticks (or on a cadence).
//!
//! ## Lock discipline (lint rule L5)
//!
//! The core holds three locks — answer cache, session registry, and
//! (inside `QueryService`) the event ring — and never more than one at
//! a time. The pump is three phases: snapshot cursors under the
//! registry lock, poll the ring under the ring lock, apply results
//! under the registry lock again. A slow consumer can therefore never
//! wedge ingest: nothing the pump does blocks on a socket, and nothing
//! holding the ring lock waits on the registry.

use crate::cache::{AnswerCache, CacheStats};
use crate::session::{RegistryStats, SessionConfig, SessionRegistry};
use crate::wire::{decode_request, encode_request, encode_response, Request, Response};
use mda_core::QueryService;
use mda_events::ring::EventCursor;
use parking_lot::Mutex;

/// Serving knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Answer-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Session admission bounds.
    pub session: SessionConfig,
    /// Most events delivered per [`Request::PollSession`] batch or
    /// push-mode pump drain.
    pub batch_size: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { cache_capacity: 1024, session: SessionConfig::default(), batch_size: 256 }
    }
}

/// The shared server state. Cheap to share (`Arc<ServeCore>`); all
/// methods take `&self`.
pub struct ServeCore {
    service: QueryService,
    cache: Mutex<AnswerCache>,
    sessions: Mutex<SessionRegistry>,
    config: ServeConfig,
}

impl ServeCore {
    /// A server core over a query service.
    pub fn new(service: QueryService, config: ServeConfig) -> Self {
        Self {
            service,
            cache: Mutex::new(AnswerCache::new(config.cache_capacity)),
            sessions: Mutex::new(SessionRegistry::new(config.session)),
            config,
        }
    }

    /// The underlying query service (the in-process oracle the wire
    /// answers are tested against).
    pub fn service(&self) -> &QueryService {
        &self.service
    }

    /// Handle one framed request payload, returning the encoded
    /// response payload. Never panics: undecodable requests get an
    /// encoded [`Response::Error`].
    pub fn handle_bytes(&self, payload: &[u8]) -> Vec<u8> {
        match decode_request(payload) {
            Ok(request) => self.answer_bytes(&request, payload),
            Err(err) => {
                encode_response(&Response::Error { message: format!("bad request: {err}") })
            }
        }
    }

    /// Handle one decoded request (in-process callers; encodes the
    /// request itself for the cache key).
    pub fn handle(&self, request: &Request) -> Response {
        let bytes = self.answer_bytes(request, &encode_request(request));
        // The payload was produced by `encode_response`, so this decode
        // cannot fail; the fallback keeps the path total anyway.
        crate::wire::decode_response(&bytes)
            .unwrap_or(Response::Error { message: "internal: answer did not decode".to_owned() })
    }

    /// Answer a request, serving cacheable queries from the
    /// watermark-keyed cache. `request_bytes` must be the canonical
    /// encoding of `request` (it is the cache key).
    fn answer_bytes(&self, request: &Request, request_bytes: &[u8]) -> Vec<u8> {
        if !request.cacheable() {
            return encode_response(&self.session_op(request));
        }
        // Pin one snapshot: its watermark keys the cache, and on a miss
        // the answer is computed against that same snapshot, so the
        // cached bytes are exactly what this watermark always answers.
        let snap = self.service.snapshot();
        let watermark = snap.watermark().0;
        // Each cache touch is a self-contained block: the guard never
        // outlives the probe or the insert (lock-order rule L5).
        let hit = { self.cache.lock().get(watermark, request_bytes) };
        if let Some(hit) = hit {
            return hit;
        }
        let answer = encode_response(&answer_on(&snap, request));
        self.cache.lock().put(watermark, request_bytes, answer.clone());
        answer
    }

    /// Session operations (stateful; never cached).
    fn session_op(&self, request: &Request) -> Response {
        match request {
            Request::Subscribe { filter, resume_at } => {
                let cursor = match resume_at {
                    Some(at) => *at,
                    None => self.service.live_cursor().next_seq(),
                };
                match self.sessions.lock().subscribe(filter.clone(), cursor) {
                    Some(session) => Response::Subscribed { session, cursor },
                    None => {
                        Response::Error { message: "subscription refused: at capacity".to_owned() }
                    }
                }
            }
            Request::PollSession { session } => {
                let mut sessions = self.sessions.lock();
                if let Some(dropped) = sessions.take_eviction(*session) {
                    return Response::Evicted { session: *session, dropped };
                }
                match sessions.drain(*session, self.config.batch_size) {
                    Some(batch) => Response::Events(batch),
                    None => Response::Error { message: format!("unknown session {session}") },
                }
            }
            Request::Unsubscribe { session } => {
                if self.sessions.lock().unsubscribe(*session) {
                    Response::Unsubscribed { session: *session }
                } else {
                    Response::Error { message: format!("unknown session {session}") }
                }
            }
            // `cacheable()` routed every query away from here.
            _ => Response::Error { message: "internal: query routed to session path".to_owned() },
        }
    }

    /// Fan new events out to every session's queue. Three phases so no
    /// two locks are ever held together (see the module docs); safe to
    /// call from any thread, on any cadence.
    ///
    /// Returns the number of sessions pumped.
    pub fn pump(&self) -> usize {
        // Phase 1 is a self-contained block: the registry guard is
        // gone before the ring lock in phase 2 (lock-order rule L5).
        let cursors = { self.sessions.lock().pump_cursors() };
        if cursors.is_empty() {
            return 0;
        }
        let pumped = cursors.len();
        let polls: Vec<_> = self.service.with_event_ring(|ring| {
            cursors
                .iter()
                .map(|pc| {
                    (
                        pc.session,
                        ring.poll_shared_filtered(EventCursor::at_seq(pc.cursor), Some(&pc.filter)),
                    )
                })
                .collect()
        });
        let mut sessions = self.sessions.lock();
        for (session, poll) in polls {
            sessions.apply(session, poll);
        }
        pumped
    }

    /// Drain up to `batch_size` events for one session (push-mode
    /// transports call this per connection loop). `Some(Err(dropped))`
    /// is a pending eviction notice; `None` means the session is
    /// unknown.
    pub fn drain_session(&self, session: u64) -> Option<Result<crate::wire::EventBatch, u64>> {
        let mut sessions = self.sessions.lock();
        if let Some(dropped) = sessions.take_eviction(session) {
            return Some(Err(dropped));
        }
        sessions.drain(session, self.config.batch_size).map(Ok)
    }

    /// Close a session (connection teardown).
    pub fn close_session(&self, session: u64) {
        self.sessions.lock().unsubscribe(session);
    }

    /// Whether a session is live (not evicted, not closed).
    pub fn session_live(&self, session: u64) -> bool {
        self.sessions.lock().is_live(session)
    }

    /// Answer-cache gauges.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().stats()
    }

    /// Session-registry gauges.
    pub fn session_stats(&self) -> RegistryStats {
        self.sessions.lock().stats()
    }

    /// The serving knobs this core runs with.
    pub fn config(&self) -> ServeConfig {
        self.config
    }
}

impl std::fmt::Debug for ServeCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeCore")
            .field("cache", &self.cache_stats())
            .field("sessions", &self.session_stats())
            .finish()
    }
}

/// Compute the uncached answer to a query against one pinned snapshot.
fn answer_on(snap: &mda_core::SystemSnapshot, request: &Request) -> Response {
    match request {
        Request::Watermark => Response::Watermark { watermark: snap.watermark() },
        Request::Latest { id } => Response::Latest(snap.latest(*id)),
        Request::PositionAt { id, t } => Response::PositionAt(snap.position_at(*id, *t)),
        Request::Trajectory { id } => Response::Trajectory(snap.trajectory(*id)),
        Request::Window { area, from, to } => Response::Window(snap.window(area, *from, *to)),
        Request::Knn { query, t, k } => Response::Knn(snap.knn(*query, *t, *k)),
        Request::Fleet => {
            Response::Fleet(mda_core::Stamped { watermark: snap.watermark(), value: snap.fleet() })
        }
        Request::WhereAt { id, t } => Response::WhereAt(snap.where_at(*id, *t)),
        Request::Eta { id, dest } => Response::Eta(snap.eta(*id, *dest)),
        // Unreachable by construction (`cacheable()` gates this path),
        // but kept total.
        _ => Response::Error { message: "internal: session op routed to query path".to_owned() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_core::{MaritimePipeline, PipelineConfig};
    use mda_events::ring::EventFilter;
    use mda_geo::{BoundingBox, Fix, Position, Timestamp};

    fn pipeline_with_data() -> MaritimePipeline {
        let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
        let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
        // Vessels 8 and 9 report once then go silent → gap events for
        // both once the watermark sails past the silence threshold.
        pipeline.push_fix(Fix::new(
            8,
            Timestamp::from_mins(0),
            Position::new(43.2, 4.2),
            10.0,
            90.0,
        ));
        pipeline.push_fix(Fix::new(
            9,
            Timestamp::from_mins(0),
            Position::new(43.0, 4.0),
            10.0,
            90.0,
        ));
        for i in 0..120i64 {
            for v in 1..=3u32 {
                let pos = Position::new(42.5 + 0.1 * f64::from(v), 5.0 + 0.002 * i as f64);
                pipeline.push_fix(Fix::new(v, Timestamp::from_mins(i), pos, 10.0, 90.0));
            }
        }
        pipeline
    }

    #[test]
    fn cache_hits_are_byte_identical_to_recomputation() {
        let mut pipeline = pipeline_with_data();
        pipeline.finish();
        let cached = ServeCore::new(pipeline.query_service(), ServeConfig::default());
        let uncached = ServeCore::new(
            pipeline.query_service(),
            ServeConfig { cache_capacity: 0, ..ServeConfig::default() },
        );
        let req = encode_request(&Request::Trajectory { id: 2 });
        let cold = cached.handle_bytes(&req);
        let warm = cached.handle_bytes(&req);
        let oracle = uncached.handle_bytes(&req);
        assert_eq!(cold, warm);
        assert_eq!(warm, oracle);
        let stats = cached.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn bad_request_bytes_answer_an_error_frame() {
        let mut pipeline = pipeline_with_data();
        pipeline.finish();
        let core = ServeCore::new(pipeline.query_service(), ServeConfig::default());
        let resp = crate::wire::decode_response(&core.handle_bytes(&[0xFF, 0x00, 0x01])).unwrap();
        assert!(matches!(resp, Response::Error { .. }));
    }

    #[test]
    fn subscribe_pump_poll_delivers_filtered_events() {
        let mut pipeline = pipeline_with_data();
        let core = ServeCore::new(pipeline.query_service(), ServeConfig::default());
        let Response::Subscribed { session, .. } = core.handle(&Request::Subscribe {
            filter: EventFilter::for_vessels([9]),
            resume_at: Some(0),
        }) else {
            panic!("subscribe failed")
        };
        pipeline.finish();
        core.pump();
        let Response::Events(batch) = core.handle(&Request::PollSession { session }) else {
            panic!("poll failed")
        };
        assert!(!batch.events.is_empty(), "gap events for the silent vessel");
        assert!(batch.events.iter().all(|(_, e)| e.vessel == 9));
        assert!(batch.filtered > 0, "other vessels' events were filtered, not delivered");
        let Response::Unsubscribed { .. } = core.handle(&Request::Unsubscribe { session }) else {
            panic!("unsubscribe failed")
        };
        assert!(matches!(core.handle(&Request::PollSession { session }), Response::Error { .. }));
    }
}
