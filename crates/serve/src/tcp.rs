//! Real-socket serving: a `std::net` TCP listener front over a
//! [`ServeCore`], one thread per connection plus one pump thread.
//!
//! Thread-per-connection is the right shape here because connections
//! are *not* the unit of scale — **sessions** are. One connection can
//! own thousands of subscription sessions (they are plain data pumped
//! centrally, see [`crate::session`]); the thread exists only to move
//! bytes for its socket. The c15 experiment runs 10k sessions over a
//! handful of connections on one CPU.

use crate::conn::serve_connection;
use crate::server::ServeCore;
use crate::transport::{TcpTransport, READ_POLL};
use std::io;
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A running TCP server: address, shutdown flag, thread handles.
#[derive(Debug)]
pub struct TcpServer {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    core: Arc<ServeCore>,
    accept_thread: Option<JoinHandle<()>>,
    pump_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TcpServer {
    /// The address the listener actually bound (pass port 0 to get an
    /// ephemeral one).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The serving core (for stats and in-process queries).
    pub fn core(&self) -> &Arc<ServeCore> {
        &self.core
    }

    /// Raise the shutdown flag and join every thread. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.pump_thread.take() {
            let _ = t.join();
        }
        let threads = {
            let mut guard = self.conn_threads.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` and serve `core` over TCP until
/// [`TcpServer::shutdown`].
///
/// Spawns the accept loop and a pump thread that fans events out to
/// subscription sessions every poll interval. Connection threads are
/// spawned per accepted socket and joined at shutdown; a connection
/// that dies mid-frame takes down nothing but itself.
pub fn serve_tcp(core: Arc<ServeCore>, addr: impl ToSocketAddrs) -> io::Result<TcpServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_thread = {
        let core = Arc::clone(&core);
        let shutdown = Arc::clone(&shutdown);
        let conn_threads = Arc::clone(&conn_threads);
        std::thread::spawn(move || {
            while !shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let core = Arc::clone(&core);
                        let shutdown = Arc::clone(&shutdown);
                        let handle = std::thread::spawn(move || {
                            if let Ok(mut transport) = TcpTransport::new(stream) {
                                serve_connection(&core, &mut transport, &shutdown);
                            }
                        });
                        conn_threads.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(READ_POLL);
                    }
                    Err(_) => break,
                }
            }
        })
    };

    let pump_thread = {
        let core = Arc::clone(&core);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            while !shutdown.load(Ordering::Relaxed) {
                core.pump();
                std::thread::sleep(READ_POLL);
            }
        })
    };

    Ok(TcpServer {
        addr: local,
        shutdown,
        core,
        accept_thread: Some(accept_thread),
        pump_thread: Some(pump_thread),
        conn_threads,
    })
}
