//! Subscription sessions: per-consumer cursors, pushed-down filters,
//! bounded send queues, and slow-consumer eviction.
//!
//! A session is **plain data** — a cursor into the event ring, an
//! `Arc`'d filter, and a bounded queue of matching events — pumped by
//! the server core, never a thread. That is what lets one core pump
//! tens of thousands of concurrent subscribers: fan-out cost is
//! O(sessions × new events) of filter checks and `Arc` bumps per pump,
//! with no per-subscriber stacks or wakeups.
//!
//! ## Loss accounting
//!
//! Three counters, three distinct meanings, all cumulative per session
//! and reported in every [`EventBatch`](crate::wire::EventBatch):
//!
//! - `missed` — events that aged out of ring retention before the
//!   session's cursor reached them. Real loss; whether they matched
//!   the filter is unknowable.
//! - `filtered` — events examined and excluded by the filter. Not a
//!   loss; reported so `cursor = delivered + dropped + queued +
//!   filtered + missed` closes exactly.
//! - `dropped` — events that *matched* but were pushed out of the
//!   bounded queue because the consumer lagged. The queue drops
//!   oldest-first (a lagging consumer wants fresh state more than
//!   stale history), and a session whose cumulative drops cross
//!   [`SessionConfig::evict_after_dropped`] is evicted entirely.

use crate::wire::EventBatch;
use mda_events::ring::{EventFilter, FilteredPoll};
use mda_events::MaritimeEvent;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Admission-control knobs of a [`SessionRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Most matching events queued per session; beyond this the oldest
    /// queued event is dropped (and counted).
    pub queue_capacity: usize,
    /// Cumulative drops at which a session is evicted as a slow
    /// consumer.
    pub evict_after_dropped: u64,
    /// Most concurrent sessions; subscriptions beyond this are
    /// refused.
    pub max_sessions: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self { queue_capacity: 256, evict_after_dropped: 1024, max_sessions: 65_536 }
    }
}

/// One subscriber: cursor, filter, bounded queue, loss counters.
#[derive(Debug)]
struct Session {
    filter: Arc<EventFilter>,
    /// Next ring sequence this session has not yet examined.
    cursor: u64,
    queue: VecDeque<(u64, Arc<MaritimeEvent>)>,
    dropped: u64,
    missed: u64,
    filtered: u64,
}

/// A snapshot of one session's pump inputs, taken under the registry
/// lock and consumed against the ring *outside* it.
#[derive(Debug, Clone)]
pub struct PumpCursor {
    /// The session.
    pub session: u64,
    /// Its next unexamined ring sequence.
    pub cursor: u64,
    /// Its filter (shared, not cloned).
    pub filter: Arc<EventFilter>,
}

/// Registry gauges, for admission reporting and the c15 experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Sessions currently live.
    pub live: usize,
    /// Sessions evicted as slow consumers over the registry lifetime.
    pub evicted: u64,
    /// Matching events dropped from bounded queues over the registry
    /// lifetime (including evicted sessions').
    pub dropped: u64,
    /// Subscriptions refused at the `max_sessions` admission bound.
    pub refused: u64,
}

/// All live sessions plus pending eviction notices.
///
/// The registry is pure bookkeeping behind one mutex; the pump
/// discipline (snapshot cursors → poll ring → apply) keeps the ring
/// lock and the registry lock from ever being held together.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    sessions: BTreeMap<u64, Session>,
    /// Evicted sessions awaiting notice delivery: session → lifetime
    /// drops.
    evictions: BTreeMap<u64, u64>,
    next_id: u64,
    config: SessionConfig,
    stats: RegistryStats,
}

impl SessionRegistry {
    /// An empty registry with the given admission bounds.
    pub fn new(config: SessionConfig) -> Self {
        Self { config, ..Self::default() }
    }

    /// Open a session at `cursor` with `filter`. `None` when the
    /// registry is at its admission bound.
    pub fn subscribe(&mut self, filter: EventFilter, cursor: u64) -> Option<u64> {
        if self.sessions.len() >= self.config.max_sessions {
            self.stats.refused += 1;
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.sessions.insert(
            id,
            Session {
                filter: Arc::new(filter),
                cursor,
                queue: VecDeque::new(),
                dropped: 0,
                missed: 0,
                filtered: 0,
            },
        );
        self.stats.live = self.sessions.len();
        Some(id)
    }

    /// Close a session. `true` if it existed (live or pending
    /// eviction notice).
    pub fn unsubscribe(&mut self, session: u64) -> bool {
        let known =
            self.sessions.remove(&session).is_some() || self.evictions.remove(&session).is_some();
        self.stats.live = self.sessions.len();
        known
    }

    /// Phase 1 of the pump: snapshot every live session's cursor and
    /// filter. Cheap (`Arc` bumps), so the registry lock is held only
    /// briefly and never together with the ring lock.
    pub fn pump_cursors(&self) -> Vec<PumpCursor> {
        self.sessions
            .iter()
            .map(|(&session, s)| PumpCursor {
                session,
                cursor: s.cursor,
                filter: Arc::clone(&s.filter),
            })
            .collect()
    }

    /// Phase 3 of the pump: fold one session's poll result into its
    /// queue, dropping oldest beyond capacity and evicting the session
    /// once cumulative drops cross the bound. Polls for sessions that
    /// unsubscribed between phases are discarded silently.
    pub fn apply(&mut self, session: u64, poll: FilteredPoll) {
        let Some(s) = self.sessions.get_mut(&session) else { return };
        s.cursor = poll.cursor.next_seq();
        s.missed += poll.missed;
        s.filtered += poll.filtered;
        for entry in poll.events {
            s.queue.push_back(entry);
            if s.queue.len() > self.config.queue_capacity {
                s.queue.pop_front();
                s.dropped += 1;
                self.stats.dropped += 1;
            }
        }
        if s.dropped >= self.config.evict_after_dropped {
            let dropped = s.dropped;
            self.sessions.remove(&session);
            self.evictions.insert(session, dropped);
            self.stats.evicted += 1;
            self.stats.live = self.sessions.len();
        }
    }

    /// Drain up to `max` queued events as one batch, with the
    /// session's cumulative loss counters. `None` for unknown
    /// sessions (check [`SessionRegistry::take_eviction`] first).
    pub fn drain(&mut self, session: u64, max: usize) -> Option<EventBatch> {
        let s = self.sessions.get_mut(&session)?;
        let take = s.queue.len().min(max);
        let events = s.queue.drain(..take).map(|(seq, e)| (seq, (*e).clone())).collect();
        Some(EventBatch {
            session,
            events,
            missed: s.missed,
            filtered: s.filtered,
            dropped: s.dropped,
        })
    }

    /// Take the pending eviction notice for `session`, if any: its
    /// lifetime drop count. The notice is delivered at most once.
    pub fn take_eviction(&mut self, session: u64) -> Option<u64> {
        self.evictions.remove(&session)
    }

    /// Sessions with a pending eviction notice.
    pub fn pending_evictions(&self) -> Vec<u64> {
        self.evictions.keys().copied().collect()
    }

    /// Whether a session is currently live.
    pub fn is_live(&self, session: u64) -> bool {
        self.sessions.contains_key(&session)
    }

    /// Queued events of one live session.
    pub fn queue_len(&self, session: u64) -> Option<usize> {
        self.sessions.get(&session).map(|s| s.queue.len())
    }

    /// Registry gauges.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }

    /// The configured admission bounds.
    pub fn config(&self) -> SessionConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_events::ring::{EventCursor, EventRing};
    use mda_events::{EventKind, MaritimeEvent};
    use mda_geo::{Position, Timestamp};

    fn event(vessel: u32, t: i64) -> MaritimeEvent {
        MaritimeEvent {
            t: Timestamp::from_mins(t),
            vessel,
            pos: Position::new(43.0, 5.0),
            kind: EventKind::GapStart,
        }
    }

    fn pump(registry: &mut SessionRegistry, ring: &EventRing) {
        for pc in registry.pump_cursors() {
            let poll = ring.poll_shared_filtered(EventCursor::at_seq(pc.cursor), Some(&pc.filter));
            registry.apply(pc.session, poll);
        }
    }

    #[test]
    fn queue_bound_drops_oldest_and_counts_exactly() {
        let mut ring = EventRing::new(1024);
        let mut registry = SessionRegistry::new(SessionConfig {
            queue_capacity: 4,
            evict_after_dropped: u64::MAX,
            max_sessions: 16,
        });
        let id = registry.subscribe(EventFilter::for_vessels([1]), 0).unwrap();
        // 10 matching + 5 non-matching events.
        ring.extend((0..10).map(|i| event(1, i)));
        ring.extend((0..5).map(|i| event(2, i)));
        pump(&mut registry, &ring);
        let batch = registry.drain(id, usize::MAX).unwrap();
        assert_eq!(batch.dropped, 6, "10 matched, 4 fit: exactly 6 dropped");
        assert_eq!(batch.filtered, 5);
        assert_eq!(batch.missed, 0);
        assert_eq!(batch.events.len(), 4);
        // Drop-oldest: the survivors are the 4 freshest (seqs 6..=9).
        assert_eq!(batch.events.first().unwrap().0, 6);
        assert_eq!(batch.events.last().unwrap().0, 9);
    }

    #[test]
    fn slow_consumer_is_evicted_with_exact_drop_count() {
        let mut ring = EventRing::new(4096);
        let mut registry = SessionRegistry::new(SessionConfig {
            queue_capacity: 8,
            evict_after_dropped: 20,
            max_sessions: 16,
        });
        let stalled = registry.subscribe(EventFilter::all(), 0).unwrap();
        let healthy = registry.subscribe(EventFilter::all(), 0).unwrap();
        for round in 0..5 {
            ring.extend((0..8).map(|i| event(3, round * 8 + i)));
            pump(&mut registry, &ring);
            // The healthy consumer drains every pump; the stalled one never does.
            let batch = registry.drain(healthy, usize::MAX).unwrap();
            assert_eq!(batch.events.len(), 8);
            assert_eq!(batch.dropped, 0, "draining consumer never drops");
        }
        // Stalled: 8 new events displace the 8 queued every round after
        // the first, so drops run 0, 8, 16, 24 — crossing the bound of
        // 20 on the fourth round.
        assert!(!registry.is_live(stalled));
        assert_eq!(registry.take_eviction(stalled), Some(24));
        assert_eq!(registry.take_eviction(stalled), None, "notice delivered once");
        assert!(registry.is_live(healthy), "eviction is per-session");
        assert_eq!(registry.stats().evicted, 1);
    }

    #[test]
    fn admission_bound_refuses_not_breaks() {
        let mut registry = SessionRegistry::new(SessionConfig {
            queue_capacity: 4,
            evict_after_dropped: 8,
            max_sessions: 2,
        });
        assert!(registry.subscribe(EventFilter::all(), 0).is_some());
        assert!(registry.subscribe(EventFilter::all(), 0).is_some());
        assert!(registry.subscribe(EventFilter::all(), 0).is_none());
        assert_eq!(registry.stats().refused, 1);
        // An eviction or unsubscribe frees a slot.
        registry.unsubscribe(0);
        assert!(registry.subscribe(EventFilter::all(), 0).is_some());
    }

    #[test]
    fn accounting_closes_against_the_cursor() {
        // cursor = delivered + queued + dropped + filtered + missed,
        // whatever interleaving of appends and pumps produced it.
        let mut ring = EventRing::new(16);
        let mut registry = SessionRegistry::new(SessionConfig {
            queue_capacity: 8,
            evict_after_dropped: u64::MAX,
            max_sessions: 4,
        });
        let id = registry.subscribe(EventFilter::for_vessels([1]), 0).unwrap();
        let mut delivered = 0u64;
        for round in 0..6 {
            ring.extend((0..7).map(|i| event(if i % 2 == 0 { 1 } else { 2 }, round * 7 + i)));
            pump(&mut registry, &ring);
            if round % 2 == 0 {
                delivered += registry.drain(id, usize::MAX).unwrap().events.len() as u64;
            }
        }
        let batch = registry.drain(id, usize::MAX).unwrap();
        delivered += batch.events.len() as u64;
        let cursor = registry.pump_cursors().first().unwrap().cursor;
        assert_eq!(cursor, 42, "all appended events examined or missed");
        // Queue is empty after the final drain, so nothing is in flight.
        assert_eq!(registry.queue_len(id), Some(0));
        assert_eq!(delivered + batch.dropped + batch.filtered + batch.missed, cursor);
    }
}
