//! Length-prefixed, CRC-checked frames over a byte *stream* — the
//! durable tier's framing discipline (`mda-store::frame`) adapted to
//! sockets.
//!
//! A frame is `[u32 payload len][u32 CRC-32 of payload][payload]`, all
//! little-endian — byte-compatible with the on-disk frames of the
//! durable tier. The stream reader differs from the disk reader in one
//! way: a buffer that ends mid-frame is **[`FrameStatus::Incomplete`]**
//! (more bytes may still arrive on the socket), not a torn tail, while
//! a checksum mismatch or an oversized length prefix is
//! **[`FrameStatus::Corrupt`]** — the stream cannot be resynchronised
//! and the connection must be dropped.
//!
//! This module is part of the registered `panic-free-decode` surface
//! (lint rule L2): every path through [`read_frame`] is total over
//! arbitrary socket bytes.

/// Hard upper bound on one frame's payload (4 MiB). A length prefix
/// beyond this is treated as corruption rather than an allocation
/// request — socket bytes must never size our memory.
pub const MAX_FRAME_LEN: usize = 4 << 20;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
static CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        // lint:allow(panic-free-decode): i < 256 is the loop bound and
        // the table length; this is a const-eval table build, not a
        // byte-dependent decode.
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes` — identical to the durable tier's.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        // lint:allow(panic-free-decode): the index is masked to 0xFF
        // and CRC_TABLE has 256 entries.
        c = (c >> 8) ^ CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize];
    }
    !c
}

/// Append one frame (length, CRC, payload) to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Outcome of reading one frame from a stream buffer position.
#[derive(Debug)]
pub enum FrameStatus<'a> {
    /// A complete frame with a matching checksum; the cursor advanced
    /// past it.
    Ready(&'a [u8]),
    /// The buffer ends mid-frame — wait for more bytes; the cursor is
    /// unmoved.
    Incomplete,
    /// The bytes at the cursor cannot be a frame (oversized length or
    /// checksum mismatch). A byte stream cannot resync past this;
    /// close the connection. The cursor is unmoved.
    Corrupt,
}

/// Read the frame at `*at`, advancing the cursor past it on success.
/// Never allocates and never panics, whatever the bytes.
pub fn read_frame<'a>(buf: &'a [u8], at: &mut usize) -> FrameStatus<'a> {
    let Some(header) = buf.get(*at..).filter(|r| r.len() >= 8) else {
        return FrameStatus::Incomplete;
    };
    let (Some(len4), Some(crc4)) = (
        header.get(..4).and_then(|s| s.first_chunk::<4>()),
        header.get(4..8).and_then(|s| s.first_chunk::<4>()),
    ) else {
        return FrameStatus::Incomplete;
    };
    let len = u32::from_le_bytes(*len4) as usize;
    let crc = u32::from_le_bytes(*crc4);
    if len > MAX_FRAME_LEN {
        return FrameStatus::Corrupt;
    }
    let Some(start) = at.checked_add(8) else { return FrameStatus::Corrupt };
    let Some(end) = start.checked_add(len) else { return FrameStatus::Corrupt };
    let Some(payload) = buf.get(start..end) else { return FrameStatus::Incomplete };
    if crc32(payload) != crc {
        return FrameStatus::Corrupt;
    }
    *at = end;
    FrameStatus::Ready(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_durable_tier() {
        // The classic check value for CRC-32/IEEE — the same constant
        // `mda-store::frame` asserts, so the disciplines cannot drift.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_and_prefixes_are_incomplete() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello");
        write_frame(&mut buf, b"");
        let mut at = 0;
        assert!(matches!(read_frame(&buf, &mut at), FrameStatus::Ready(b"hello")));
        assert!(matches!(read_frame(&buf, &mut at), FrameStatus::Ready(b"")));
        assert!(matches!(read_frame(&buf, &mut at), FrameStatus::Incomplete));
        // Every strict prefix of the stream ends Incomplete (never
        // Corrupt: a cut can only truncate, not corrupt).
        for cut in 0..buf.len() {
            let mut at = 0;
            loop {
                match read_frame(&buf[..cut], &mut at) {
                    FrameStatus::Ready(_) => continue,
                    FrameStatus::Incomplete => break,
                    FrameStatus::Corrupt => panic!("truncation misread as corruption at {cut}"),
                }
            }
        }
    }

    #[test]
    fn corruption_is_detected_and_cursor_unmoved() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0xAB; 100]);
        // Payload flip → CRC mismatch.
        let mut bad = buf.clone();
        bad[20] ^= 0x01;
        let mut at = 0;
        assert!(matches!(read_frame(&bad, &mut at), FrameStatus::Corrupt));
        assert_eq!(at, 0);
        // Oversized length prefix → Corrupt, not an allocation attempt.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        huge.extend_from_slice(&[0u8; 12]);
        assert!(matches!(read_frame(&huge, &mut 0), FrameStatus::Corrupt));
    }
}
