//! The serving wire vocabulary: every request a client can put on the
//! wire and every answer the server sends back, with total (panic-free)
//! encode/decode in the varint/zigzag dialect of `mda-geo::codec`.
//!
//! ## Encoding discipline
//!
//! - unsigned integers are LEB128 varints ([`mda_geo::codec::write_varint`]);
//! - signed integers (timestamps, durations) are zigzag-mapped varints;
//! - `f64` is its IEEE bit pattern, 8 bytes little-endian — encode is a
//!   bijection on bit patterns, so answers round-trip *byte-identical*,
//!   which the watermark-keyed answer cache depends on;
//! - `Option<T>` is a `0`/`1` byte then the payload;
//! - sequences and strings are a varint length then the elements, with
//!   the length validated against the bytes actually remaining before
//!   any allocation — wire bytes never size our memory.
//!
//! Encoding is deterministic (set-valued filter fields are
//! `BTreeSet`s), so equal values encode to equal bytes.
//!
//! This module is part of the registered `panic-free-decode` surface
//! (lint rule L2): [`decode_request`] and [`decode_response`] are total
//! over arbitrary bytes — corrupt input is a [`WireError`], never a
//! panic and never an allocation proportional to a length prefix.

use mda_core::{FleetSummary, PredictedPosition, Stamped};
use mda_events::ring::EventFilter;
use mda_events::{EventKind, MaritimeEvent};
use mda_forecast::eta::EtaEstimate;
use mda_geo::codec::{read_varint, unzigzag, write_varint, zigzag};
use mda_geo::{BoundingBox, Fix, Position, Timestamp, VesselId};
use mda_store::{KnnResult, TierStats};
use std::collections::BTreeSet;

/// Upper bound on one decoded string (zone names, event labels, error
/// messages). Anything longer is [`WireError::Malformed`].
pub const MAX_WIRE_STR: usize = 1024;

/// Why a wire payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the value did.
    Truncated,
    /// A tag byte named no known request/response/event variant.
    UnknownTag(u8),
    /// A field was structurally invalid (length prefix larger than the
    /// remaining bytes, non-UTF-8 string, unknown predictor name, …).
    Malformed,
    /// The value decoded but bytes were left over — one payload is
    /// exactly one value.
    Trailing,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::UnknownTag(t) => write!(f, "unknown wire tag {t}"),
            WireError::Malformed => write!(f, "malformed wire field"),
            WireError::Trailing => write!(f, "trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Fallible reader.

/// Cursor over a payload; every read is bounds-checked.
struct Rd<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.at)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.at).ok_or(WireError::Truncated)?;
        self.at += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        read_varint(self.buf, &mut self.at).ok_or(WireError::Truncated)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.u64()?).map_err(|_| WireError::Malformed)
    }

    fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Malformed)
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(unzigzag(self.u64()?))
    }

    fn ts(&mut self) -> Result<Timestamp, WireError> {
        Ok(Timestamp(self.i64()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        let end = self.at.checked_add(8).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.at..end).ok_or(WireError::Truncated)?;
        let arr = bytes.first_chunk::<8>().ok_or(WireError::Truncated)?;
        self.at = end;
        Ok(f64::from_bits(u64::from_le_bytes(*arr)))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed),
        }
    }

    /// A sequence length, validated against the bytes remaining: every
    /// element occupies at least `min_elem` bytes, so a prefix claiming
    /// more elements than could possibly follow is malformed — checked
    /// *before* any allocation.
    fn seq_len(&mut self, min_elem: usize) -> Result<usize, WireError> {
        let len = self.usize()?;
        if len > self.remaining() / min_elem.max(1) {
            return Err(WireError::Malformed);
        }
        Ok(len)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.seq_len(1)?;
        if len > MAX_WIRE_STR {
            return Err(WireError::Malformed);
        }
        let end = self.at.checked_add(len).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.at..end).ok_or(WireError::Truncated)?;
        let s = std::str::from_utf8(bytes).map_err(|_| WireError::Malformed)?;
        self.at = end;
        Ok(s.to_owned())
    }

    fn option<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, WireError>,
    ) -> Result<Option<T>, WireError> {
        if self.bool()? {
            Ok(Some(read(self)?))
        } else {
            Ok(None)
        }
    }

    fn done(&self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Trailing)
        }
    }
}

// ---------------------------------------------------------------------------
// Writer helpers (infallible; `Vec` grows).

fn put_u64(out: &mut Vec<u8>, v: u64) {
    write_varint(out, v);
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    write_varint(out, zigzag(v));
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt<T>(out: &mut Vec<u8>, v: &Option<T>, write: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        Some(v) => {
            out.push(1);
            write(out, v);
        }
        None => out.push(0),
    }
}

fn put_pos(out: &mut Vec<u8>, p: &Position) {
    put_f64(out, p.lat);
    put_f64(out, p.lon);
}

fn read_pos(rd: &mut Rd<'_>) -> Result<Position, WireError> {
    Ok(Position::new(rd.f64()?, rd.f64()?))
}

fn put_fix(out: &mut Vec<u8>, fix: &Fix) {
    put_u64(out, u64::from(fix.id));
    put_i64(out, fix.t.0);
    put_pos(out, &fix.pos);
    put_f64(out, fix.sog_kn);
    put_f64(out, fix.cog_deg);
}

/// Minimum encoded size of one [`Fix`]: two 1-byte varints + four f64s.
const MIN_FIX: usize = 34;

fn read_fix(rd: &mut Rd<'_>) -> Result<Fix, WireError> {
    Ok(Fix {
        id: rd.u32()?,
        t: rd.ts()?,
        pos: read_pos(rd)?,
        sog_kn: rd.f64()?,
        cog_deg: rd.f64()?,
    })
}

// ---------------------------------------------------------------------------
// Event filters and events.

fn put_filter(out: &mut Vec<u8>, f: &EventFilter) {
    put_opt(out, &f.vessels, |out, set| {
        put_u64(out, set.len() as u64);
        for &id in set {
            put_u64(out, u64::from(id));
        }
    });
    put_opt(out, &f.kinds, |out, set| {
        put_u64(out, set.len() as u64);
        for label in set {
            put_str(out, label);
        }
    });
    put_opt(out, &f.zone, |out, zone| put_str(out, zone));
}

fn read_filter(rd: &mut Rd<'_>) -> Result<EventFilter, WireError> {
    let vessels = rd.option(|rd| {
        let len = rd.seq_len(1)?;
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(rd.u32()?);
        }
        Ok::<BTreeSet<VesselId>, WireError>(set)
    })?;
    let kinds = rd.option(|rd| {
        let len = rd.seq_len(2)?;
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(rd.string()?);
        }
        Ok::<BTreeSet<String>, WireError>(set)
    })?;
    let zone = rd.option(|rd| rd.string())?;
    Ok(EventFilter { vessels, kinds, zone })
}

fn put_event(out: &mut Vec<u8>, e: &MaritimeEvent) {
    put_i64(out, e.t.0);
    put_u64(out, u64::from(e.vessel));
    put_pos(out, &e.pos);
    match &e.kind {
        EventKind::GapStart => out.push(0),
        EventKind::GapEnd { minutes } => {
            out.push(1);
            put_f64(out, *minutes);
        }
        EventKind::KinematicSpoofing { implied_speed_kn } => {
            out.push(2);
            put_f64(out, *implied_speed_kn);
        }
        EventKind::IdentityConflict { separation_km } => {
            out.push(3);
            put_f64(out, *separation_km);
        }
        EventKind::ZoneEntry { zone } => {
            out.push(4);
            put_str(out, zone);
        }
        EventKind::ZoneExit { zone, dwell_min } => {
            out.push(5);
            put_str(out, zone);
            put_f64(out, *dwell_min);
        }
        EventKind::IllegalFishing { zone } => {
            out.push(6);
            put_str(out, zone);
        }
        EventKind::Loitering { radius_m, minutes } => {
            out.push(7);
            put_f64(out, *radius_m);
            put_f64(out, *minutes);
        }
        EventKind::Rendezvous { other, distance_m, minutes } => {
            out.push(8);
            put_u64(out, u64::from(*other));
            put_f64(out, *distance_m);
            put_f64(out, *minutes);
        }
        EventKind::CollisionRisk { other, dcpa_m, tcpa_s } => {
            out.push(9);
            put_u64(out, u64::from(*other));
            put_f64(out, *dcpa_m);
            put_f64(out, *tcpa_s);
        }
    }
}

fn read_event(rd: &mut Rd<'_>) -> Result<MaritimeEvent, WireError> {
    let t = rd.ts()?;
    let vessel = rd.u32()?;
    let pos = read_pos(rd)?;
    let kind = match rd.u8()? {
        0 => EventKind::GapStart,
        1 => EventKind::GapEnd { minutes: rd.f64()? },
        2 => EventKind::KinematicSpoofing { implied_speed_kn: rd.f64()? },
        3 => EventKind::IdentityConflict { separation_km: rd.f64()? },
        4 => EventKind::ZoneEntry { zone: rd.string()? },
        5 => EventKind::ZoneExit { zone: rd.string()?, dwell_min: rd.f64()? },
        6 => EventKind::IllegalFishing { zone: rd.string()? },
        7 => EventKind::Loitering { radius_m: rd.f64()?, minutes: rd.f64()? },
        8 => EventKind::Rendezvous { other: rd.u32()?, distance_m: rd.f64()?, minutes: rd.f64()? },
        9 => EventKind::CollisionRisk { other: rd.u32()?, dcpa_m: rd.f64()?, tcpa_s: rd.f64()? },
        tag => return Err(WireError::UnknownTag(tag)),
    };
    Ok(MaritimeEvent { t, vessel, pos, kind })
}

// ---------------------------------------------------------------------------
// Requests.

/// Everything a client can ask over the wire.
///
/// Tags 1–9 are the stateless query vocabulary (mirroring
/// [`mda_core::QueryService`] method-for-method); 10–12 manage
/// subscription sessions.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The current published watermark.
    Watermark,
    /// Freshest archived fix of a vessel.
    Latest {
        /// The vessel.
        id: VesselId,
    },
    /// Interpolated archived position at an instant.
    PositionAt {
        /// The vessel.
        id: VesselId,
        /// The instant.
        t: Timestamp,
    },
    /// Full archived trajectory of a vessel.
    Trajectory {
        /// The vessel.
        id: VesselId,
    },
    /// All archived fixes in a spatio-temporal window.
    Window {
        /// Spatial bounds.
        area: BoundingBox,
        /// Start of the time range (inclusive).
        from: Timestamp,
        /// End of the time range (inclusive).
        to: Timestamp,
    },
    /// k nearest vessels to a point at an instant.
    Knn {
        /// The query point.
        query: Position,
        /// The instant.
        t: Timestamp,
        /// How many neighbours.
        k: usize,
    },
    /// Live-fleet summary.
    Fleet,
    /// Where is (or will be) a vessel at an instant.
    WhereAt {
        /// The vessel.
        id: VesselId,
        /// The instant (future instants route through the forecast layer).
        t: Timestamp,
    },
    /// Estimated time of arrival at a destination.
    Eta {
        /// The vessel.
        id: VesselId,
        /// The destination.
        dest: Position,
    },
    /// Open a subscription session with a pushed-down event filter.
    Subscribe {
        /// Which events this session wants.
        filter: EventFilter,
        /// Resume from this ring sequence number (a reconnecting
        /// client passes `last seen seq + 1`); `None` starts live,
        /// following only events recognised after the subscribe.
        resume_at: Option<u64>,
    },
    /// Drain a session's queued events (pull-mode transports).
    PollSession {
        /// The session to drain.
        session: u64,
    },
    /// Close a subscription session.
    Unsubscribe {
        /// The session to close.
        session: u64,
    },
}

impl Request {
    /// Whether the answer to this request is a pure function of the
    /// snapshot watermark — i.e. whether the answer cache may serve it.
    /// Session operations are stateful and never cached.
    pub fn cacheable(&self) -> bool {
        !matches!(
            self,
            Request::Subscribe { .. } | Request::PollSession { .. } | Request::Unsubscribe { .. }
        )
    }
}

/// Encode a request to its wire payload (to be framed by
/// [`crate::frame::write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Watermark => out.push(1),
        Request::Latest { id } => {
            out.push(2);
            put_u64(&mut out, u64::from(*id));
        }
        Request::PositionAt { id, t } => {
            out.push(3);
            put_u64(&mut out, u64::from(*id));
            put_i64(&mut out, t.0);
        }
        Request::Trajectory { id } => {
            out.push(4);
            put_u64(&mut out, u64::from(*id));
        }
        Request::Window { area, from, to } => {
            out.push(5);
            put_f64(&mut out, area.min_lat);
            put_f64(&mut out, area.min_lon);
            put_f64(&mut out, area.max_lat);
            put_f64(&mut out, area.max_lon);
            put_i64(&mut out, from.0);
            put_i64(&mut out, to.0);
        }
        Request::Knn { query, t, k } => {
            out.push(6);
            put_pos(&mut out, query);
            put_i64(&mut out, t.0);
            put_u64(&mut out, *k as u64);
        }
        Request::Fleet => out.push(7),
        Request::WhereAt { id, t } => {
            out.push(8);
            put_u64(&mut out, u64::from(*id));
            put_i64(&mut out, t.0);
        }
        Request::Eta { id, dest } => {
            out.push(9);
            put_u64(&mut out, u64::from(*id));
            put_pos(&mut out, dest);
        }
        Request::Subscribe { filter, resume_at } => {
            out.push(10);
            put_filter(&mut out, filter);
            put_opt(&mut out, resume_at, |out, at| put_u64(out, *at));
        }
        Request::PollSession { session } => {
            out.push(11);
            put_u64(&mut out, *session);
        }
        Request::Unsubscribe { session } => {
            out.push(12);
            put_u64(&mut out, *session);
        }
    }
    out
}

/// Decode one request payload. Total over arbitrary bytes; strict —
/// trailing bytes are an error.
pub fn decode_request(buf: &[u8]) -> Result<Request, WireError> {
    let mut rd = Rd::new(buf);
    let req = match rd.u8()? {
        1 => Request::Watermark,
        2 => Request::Latest { id: rd.u32()? },
        3 => Request::PositionAt { id: rd.u32()?, t: rd.ts()? },
        4 => Request::Trajectory { id: rd.u32()? },
        5 => {
            let (min_lat, min_lon) = (rd.f64()?, rd.f64()?);
            let (max_lat, max_lon) = (rd.f64()?, rd.f64()?);
            Request::Window {
                area: BoundingBox { min_lat, min_lon, max_lat, max_lon },
                from: rd.ts()?,
                to: rd.ts()?,
            }
        }
        6 => Request::Knn { query: read_pos(&mut rd)?, t: rd.ts()?, k: rd.usize()? },
        7 => Request::Fleet,
        8 => Request::WhereAt { id: rd.u32()?, t: rd.ts()? },
        9 => Request::Eta { id: rd.u32()?, dest: read_pos(&mut rd)? },
        10 => Request::Subscribe {
            filter: read_filter(&mut rd)?,
            resume_at: rd.option(|rd| rd.u64())?,
        },
        11 => Request::PollSession { session: rd.u64()? },
        12 => Request::Unsubscribe { session: rd.u64()? },
        tag => return Err(WireError::UnknownTag(tag)),
    };
    rd.done()?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Responses.

/// One batch of events pushed (or pulled) to a subscription session.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventBatch {
    /// The session this batch belongs to.
    pub session: u64,
    /// `(ring sequence, event)` pairs, oldest first. The client's
    /// resume cursor after this batch is `last seq + 1`.
    pub events: Vec<(u64, MaritimeEvent)>,
    /// Events that aged out of server retention before this session
    /// saw them — real loss; whether they matched is unknowable.
    pub missed: u64,
    /// Events examined and excluded by the session's filter — not a
    /// loss, reported so accounting closes.
    pub filtered: u64,
    /// Matching events dropped from this session's bounded send queue
    /// because the consumer lagged (cumulative for the session).
    pub dropped: u64,
}

/// Everything the server can put on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The current published watermark.
    Watermark {
        /// Event-time watermark of the published snapshot.
        watermark: Timestamp,
    },
    /// Answer to [`Request::Latest`].
    Latest(Stamped<Option<Fix>>),
    /// Answer to [`Request::PositionAt`].
    PositionAt(Stamped<Option<Position>>),
    /// Answer to [`Request::Trajectory`].
    Trajectory(Stamped<Option<Vec<Fix>>>),
    /// Answer to [`Request::Window`].
    Window(Stamped<Vec<Fix>>),
    /// Answer to [`Request::Knn`].
    Knn(Stamped<Vec<KnnResult>>),
    /// Answer to [`Request::Fleet`].
    Fleet(Stamped<FleetSummary>),
    /// Answer to [`Request::WhereAt`].
    WhereAt(Stamped<Option<PredictedPosition>>),
    /// Answer to [`Request::Eta`].
    Eta(Stamped<Option<EtaEstimate>>),
    /// A subscription session opened.
    Subscribed {
        /// Server-assigned session id.
        session: u64,
        /// The ring sequence the session starts from.
        cursor: u64,
    },
    /// Events for a session.
    Events(EventBatch),
    /// The session was evicted as a slow consumer; it no longer exists
    /// server-side. A client may re-subscribe with `resume_at`.
    Evicted {
        /// The evicted session.
        session: u64,
        /// Matching events dropped from its queue over its lifetime.
        dropped: u64,
    },
    /// A session closed by request.
    Unsubscribed {
        /// The closed session.
        session: u64,
    },
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

fn put_stamp(out: &mut Vec<u8>, watermark: Timestamp) {
    put_i64(out, watermark.0);
}

fn put_predicted(out: &mut Vec<u8>, p: &PredictedPosition) {
    put_pos(out, &p.pos);
    put_str(out, p.predictor);
}

fn read_predicted(rd: &mut Rd<'_>) -> Result<PredictedPosition, WireError> {
    let pos = read_pos(rd)?;
    // The wire carries the predictor name; decode maps it back onto the
    // workspace's static predictor names so the round trip is exact.
    let predictor = match rd.string()?.as_str() {
        "archive" => "archive",
        "route-network" => "route-network",
        "dead-reckoning" => "dead-reckoning",
        "constant-turn" => "constant-turn",
        _ => return Err(WireError::Malformed),
    };
    Ok(PredictedPosition { pos, predictor })
}

fn put_tiers(out: &mut Vec<u8>, t: &TierStats) {
    put_u64(out, t.hot_fixes as u64);
    put_u64(out, t.cold_fixes as u64);
    put_u64(out, t.hot_bytes as u64);
    put_u64(out, t.cold_bytes as u64);
    put_u64(out, t.cold_segments as u64);
    put_u64(out, t.disk_bytes as u64);
}

fn read_tiers(rd: &mut Rd<'_>) -> Result<TierStats, WireError> {
    Ok(TierStats {
        hot_fixes: rd.usize()?,
        cold_fixes: rd.usize()?,
        hot_bytes: rd.usize()?,
        cold_bytes: rd.usize()?,
        cold_segments: rd.usize()?,
        disk_bytes: rd.usize()?,
    })
}

/// Encode a response to its wire payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Watermark { watermark } => {
            out.push(128);
            put_stamp(&mut out, *watermark);
        }
        Response::Latest(s) => {
            out.push(129);
            put_stamp(&mut out, s.watermark);
            put_opt(&mut out, &s.value, put_fix);
        }
        Response::PositionAt(s) => {
            out.push(130);
            put_stamp(&mut out, s.watermark);
            put_opt(&mut out, &s.value, put_pos);
        }
        Response::Trajectory(s) => {
            out.push(131);
            put_stamp(&mut out, s.watermark);
            put_opt(&mut out, &s.value, |out, fixes| {
                put_u64(out, fixes.len() as u64);
                for fix in fixes {
                    put_fix(out, fix);
                }
            });
        }
        Response::Window(s) => {
            out.push(132);
            put_stamp(&mut out, s.watermark);
            put_u64(&mut out, s.value.len() as u64);
            for fix in &s.value {
                put_fix(&mut out, fix);
            }
        }
        Response::Knn(s) => {
            out.push(133);
            put_stamp(&mut out, s.watermark);
            put_u64(&mut out, s.value.len() as u64);
            for hit in &s.value {
                put_u64(&mut out, u64::from(hit.id));
                put_pos(&mut out, &hit.pos);
                put_f64(&mut out, hit.dist_m);
            }
        }
        Response::Fleet(s) => {
            out.push(134);
            put_stamp(&mut out, s.watermark);
            put_u64(&mut out, s.value.live_vessels);
            put_u64(&mut out, s.value.archived_vessels as u64);
            put_u64(&mut out, s.value.archived_fixes as u64);
            put_tiers(&mut out, &s.value.tiers);
            put_u64(&mut out, s.value.events_emitted);
        }
        Response::WhereAt(s) => {
            out.push(135);
            put_stamp(&mut out, s.watermark);
            put_opt(&mut out, &s.value, put_predicted);
        }
        Response::Eta(s) => {
            out.push(136);
            put_stamp(&mut out, s.watermark);
            put_opt(&mut out, &s.value, |out, eta| {
                put_opt(out, &eta.direct, |out, ms| put_i64(out, *ms));
                put_opt(out, &eta.via_network, |out, ms| put_i64(out, *ms));
            });
        }
        Response::Subscribed { session, cursor } => {
            out.push(137);
            put_u64(&mut out, *session);
            put_u64(&mut out, *cursor);
        }
        Response::Events(batch) => {
            out.push(138);
            put_u64(&mut out, batch.session);
            put_u64(&mut out, batch.events.len() as u64);
            for (seq, event) in &batch.events {
                put_u64(&mut out, *seq);
                put_event(&mut out, event);
            }
            put_u64(&mut out, batch.missed);
            put_u64(&mut out, batch.filtered);
            put_u64(&mut out, batch.dropped);
        }
        Response::Evicted { session, dropped } => {
            out.push(139);
            put_u64(&mut out, *session);
            put_u64(&mut out, *dropped);
        }
        Response::Unsubscribed { session } => {
            out.push(140);
            put_u64(&mut out, *session);
        }
        Response::Error { message } => {
            out.push(141);
            put_str(&mut out, message);
        }
    }
    out
}

/// Decode one response payload. Total over arbitrary bytes; strict —
/// trailing bytes are an error.
pub fn decode_response(buf: &[u8]) -> Result<Response, WireError> {
    let mut rd = Rd::new(buf);
    let resp = match rd.u8()? {
        128 => Response::Watermark { watermark: rd.ts()? },
        129 => {
            let watermark = rd.ts()?;
            let value = rd.option(|rd| read_fix(rd))?;
            Response::Latest(Stamped { watermark, value })
        }
        130 => {
            let watermark = rd.ts()?;
            let value = rd.option(read_pos)?;
            Response::PositionAt(Stamped { watermark, value })
        }
        131 => {
            let watermark = rd.ts()?;
            let value = rd.option(|rd| {
                let len = rd.seq_len(MIN_FIX)?;
                let mut fixes = Vec::with_capacity(len);
                for _ in 0..len {
                    fixes.push(read_fix(rd)?);
                }
                Ok::<Vec<Fix>, WireError>(fixes)
            })?;
            Response::Trajectory(Stamped { watermark, value })
        }
        132 => {
            let watermark = rd.ts()?;
            let len = rd.seq_len(MIN_FIX)?;
            let mut value = Vec::with_capacity(len);
            for _ in 0..len {
                value.push(read_fix(&mut rd)?);
            }
            Response::Window(Stamped { watermark, value })
        }
        133 => {
            let watermark = rd.ts()?;
            // id varint + two f64 + dist f64 ≥ 25 bytes per hit.
            let len = rd.seq_len(25)?;
            let mut value = Vec::with_capacity(len);
            for _ in 0..len {
                value.push(KnnResult { id: rd.u32()?, pos: read_pos(&mut rd)?, dist_m: rd.f64()? });
            }
            Response::Knn(Stamped { watermark, value })
        }
        134 => {
            let watermark = rd.ts()?;
            let value = FleetSummary {
                live_vessels: rd.u64()?,
                archived_vessels: rd.usize()?,
                archived_fixes: rd.usize()?,
                tiers: read_tiers(&mut rd)?,
                events_emitted: rd.u64()?,
            };
            Response::Fleet(Stamped { watermark, value })
        }
        135 => {
            let watermark = rd.ts()?;
            let value = rd.option(|rd| read_predicted(rd))?;
            Response::WhereAt(Stamped { watermark, value })
        }
        136 => {
            let watermark = rd.ts()?;
            let value = rd.option(|rd| {
                let direct = rd.option(|rd| rd.i64())?;
                let via_network = rd.option(|rd| rd.i64())?;
                Ok::<EtaEstimate, WireError>(EtaEstimate { direct, via_network })
            })?;
            Response::Eta(Stamped { watermark, value })
        }
        137 => Response::Subscribed { session: rd.u64()?, cursor: rd.u64()? },
        138 => {
            let session = rd.u64()?;
            // seq varint + event (ts + vessel + pos + kind tag) ≥ 20.
            let len = rd.seq_len(20)?;
            let mut events = Vec::with_capacity(len);
            for _ in 0..len {
                let seq = rd.u64()?;
                events.push((seq, read_event(&mut rd)?));
            }
            let (missed, filtered, dropped) = (rd.u64()?, rd.u64()?, rd.u64()?);
            Response::Events(EventBatch { session, events, missed, filtered, dropped })
        }
        139 => Response::Evicted { session: rd.u64()?, dropped: rd.u64()? },
        140 => Response::Unsubscribed { session: rd.u64()? },
        141 => Response::Error { message: rd.string()? },
        tag => return Err(WireError::UnknownTag(tag)),
    };
    rd.done()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<Request> {
        vec![
            Request::Watermark,
            Request::Latest { id: 7 },
            Request::PositionAt { id: 9, t: Timestamp::from_mins(30) },
            Request::Trajectory { id: u32::MAX },
            Request::Window {
                area: BoundingBox::new(42.0, 3.0, 44.0, 6.0),
                from: Timestamp(-5),
                to: Timestamp(i64::MAX),
            },
            Request::Knn { query: Position::new(43.0, 5.0), t: Timestamp(0), k: 12 },
            Request::Fleet,
            Request::WhereAt { id: 3, t: Timestamp::from_mins(999) },
            Request::Eta { id: 4, dest: Position::new(-89.9, 179.9) },
            Request::Subscribe { filter: EventFilter::all(), resume_at: None },
            Request::Subscribe {
                filter: EventFilter {
                    vessels: Some([1, 2, 3].into_iter().collect()),
                    kinds: Some(["loitering".to_owned()].into_iter().collect()),
                    zone: Some("natura-west".to_owned()),
                },
                resume_at: Some(u64::MAX),
            },
            Request::PollSession { session: 42 },
            Request::Unsubscribe { session: 0 },
        ]
    }

    fn responses() -> Vec<Response> {
        let fix = Fix::new(8, Timestamp::from_mins(5), Position::new(43.25, 5.125), 12.5, 270.0);
        let stamp = Timestamp::from_mins(60);
        vec![
            Response::Watermark { watermark: Timestamp::MIN },
            Response::Latest(Stamped { watermark: stamp, value: Some(fix) }),
            Response::Latest(Stamped { watermark: stamp, value: None }),
            Response::PositionAt(Stamped { watermark: stamp, value: Some(fix.pos) }),
            Response::Trajectory(Stamped { watermark: stamp, value: Some(vec![fix; 3]) }),
            Response::Trajectory(Stamped { watermark: stamp, value: None }),
            Response::Window(Stamped { watermark: stamp, value: vec![fix; 2] }),
            Response::Knn(Stamped {
                watermark: stamp,
                value: vec![KnnResult { id: 1, pos: fix.pos, dist_m: 1234.5 }],
            }),
            Response::Fleet(Stamped {
                watermark: stamp,
                value: FleetSummary {
                    live_vessels: 10,
                    archived_vessels: 11,
                    archived_fixes: 12_000,
                    tiers: TierStats {
                        hot_fixes: 1,
                        cold_fixes: 2,
                        hot_bytes: 3,
                        cold_bytes: 4,
                        cold_segments: 5,
                        disk_bytes: 6,
                    },
                    events_emitted: 99,
                },
            }),
            Response::WhereAt(Stamped {
                watermark: stamp,
                value: Some(PredictedPosition { pos: fix.pos, predictor: "route-network" }),
            }),
            Response::Eta(Stamped {
                watermark: stamp,
                value: Some(EtaEstimate { direct: Some(3_600_000), via_network: None }),
            }),
            Response::Subscribed { session: 1, cursor: 0 },
            Response::Events(EventBatch {
                session: 1,
                events: vec![
                    (
                        4,
                        MaritimeEvent {
                            t: stamp,
                            vessel: 2,
                            pos: fix.pos,
                            kind: EventKind::ZoneExit { zone: "port".to_owned(), dwell_min: 12.0 },
                        },
                    ),
                    (
                        5,
                        MaritimeEvent {
                            t: stamp,
                            vessel: 3,
                            pos: fix.pos,
                            kind: EventKind::Rendezvous {
                                other: 2,
                                distance_m: 80.0,
                                minutes: 30.0,
                            },
                        },
                    ),
                ],
                missed: 7,
                filtered: 8,
                dropped: 9,
            }),
            Response::Evicted { session: 5, dropped: 100 },
            Response::Unsubscribed { session: 5 },
            Response::Error { message: "unknown session 17".to_owned() },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in requests() {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).as_ref(), Ok(&req), "{req:?}");
            // Determinism: re-encoding the decoded value is byte-identical.
            assert_eq!(encode_request(&decode_request(&bytes).unwrap()), bytes);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in responses() {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).as_ref(), Ok(&resp), "{resp:?}");
            assert_eq!(encode_response(&decode_response(&bytes).unwrap()), bytes);
        }
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        for req in requests() {
            let bytes = encode_request(&req);
            for cut in 0..bytes.len() {
                assert!(decode_request(&bytes[..cut]).is_err(), "{req:?} cut at {cut}");
            }
        }
        for resp in responses() {
            let bytes = encode_response(&resp);
            for cut in 0..bytes.len() {
                assert!(decode_response(&bytes[..cut]).is_err(), "{resp:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn length_prefixes_cannot_size_memory() {
        // A Window response claiming u64::MAX fixes in a 30-byte
        // payload must be rejected before any allocation.
        let mut buf = vec![132u8];
        put_i64(&mut buf, 0);
        put_u64(&mut buf, u64::MAX);
        assert_eq!(decode_response(&buf), Err(WireError::Malformed));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_request(&Request::Fleet);
        bytes.push(0);
        assert_eq!(decode_request(&bytes), Err(WireError::Trailing));
    }

    #[test]
    fn nan_payloads_round_trip_bit_exact() {
        let weird = f64::from_bits(0x7FF8_0000_0000_0001);
        let resp = Response::PositionAt(Stamped {
            watermark: Timestamp(0),
            value: Some(Position::new(weird, f64::NEG_INFINITY)),
        });
        let bytes = encode_response(&resp);
        let back = decode_response(&bytes).unwrap();
        assert_eq!(encode_response(&back), bytes, "bit patterns survive, not just values");
    }
}
