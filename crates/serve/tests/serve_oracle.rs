//! Oracle equivalence: every answer that crosses the wire is
//! *byte-identical* to what the in-process [`QueryService`] answers at
//! the same watermark — cold cache, warm cache, and across a
//! mid-stream reconnect, with ingest running concurrently.
//!
//! "Byte-identical" is checkable because the wire encoding is
//! deterministic and round-trip exact: re-encoding a decoded answer
//! reproduces the payload bytes the server sent, so comparing
//! `encode(wire answer)` with `encode(oracle answer)` compares the
//! actual wire bytes.

use mda_core::{MaritimePipeline, PipelineConfig, QueryService, Stamped};
use mda_events::ring::{EventCursor, EventFilter};
use mda_geo::{BoundingBox, Fix, Position, Timestamp};
use mda_serve::client::ServeClient;
use mda_serve::conn::spawn_pipe_connection;
use mda_serve::server::{ServeConfig, ServeCore};
use mda_serve::session::SessionConfig;
use mda_serve::wire::{encode_response, Request, Response};
use std::sync::atomic::AtomicBool;
use std::sync::{mpsc, Arc};

const BOUNDS: BoundingBox =
    BoundingBox { min_lat: 42.0, min_lon: 3.0, max_lat: 44.0, max_lon: 6.0 };

/// One fix of the steady eastbound fleet.
fn fleet_fix(v: u32, minute: i64) -> Fix {
    Fix::new(
        v,
        Timestamp::from_mins(minute),
        Position::new(42.3 + 0.05 * f64::from(v), 3.5 + 0.004 * minute as f64),
        10.0 + f64::from(v % 7),
        90.0,
    )
}

/// The query battery, exercising every cacheable request shape.
fn battery(watermark: Timestamp) -> Vec<Request> {
    vec![
        Request::Watermark,
        Request::Latest { id: 1 },
        Request::Latest { id: 9999 },
        Request::PositionAt { id: 2, t: Timestamp::from_mins(30) },
        Request::Trajectory { id: 3 },
        Request::Window {
            area: BoundingBox { min_lat: 42.0, min_lon: 3.4, max_lat: 43.0, max_lon: 4.0 },
            from: Timestamp::from_mins(0),
            to: watermark,
        },
        Request::Knn { query: Position::new(42.5, 3.7), t: watermark, k: 5 },
        Request::Fleet,
        Request::WhereAt { id: 1, t: Timestamp::from_mins(10) },
        Request::WhereAt { id: 1, t: watermark + 30 * mda_geo::time::MINUTE },
        Request::Eta { id: 2, dest: Position::new(43.5, 5.5) },
    ]
}

/// What the in-process service answers — the oracle the wire bytes
/// must match exactly.
fn oracle_answer(service: &QueryService, request: &Request) -> Response {
    let snap = service.snapshot();
    match request {
        Request::Watermark => Response::Watermark { watermark: snap.watermark() },
        Request::Latest { id } => Response::Latest(snap.latest(*id)),
        Request::PositionAt { id, t } => Response::PositionAt(snap.position_at(*id, *t)),
        Request::Trajectory { id } => Response::Trajectory(snap.trajectory(*id)),
        Request::Window { area, from, to } => Response::Window(snap.window(area, *from, *to)),
        Request::Knn { query, t, k } => Response::Knn(snap.knn(*query, *t, *k)),
        Request::Fleet => {
            Response::Fleet(Stamped { watermark: snap.watermark(), value: snap.fleet() })
        }
        Request::WhereAt { id, t } => Response::WhereAt(snap.where_at(*id, *t)),
        Request::Eta { id, dest } => Response::Eta(snap.eta(*id, *dest)),
        other => panic!("not a query: {other:?}"),
    }
}

#[test]
fn cold_and_warm_answers_are_byte_identical_to_the_oracle() {
    let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(BOUNDS));
    for minute in 0..90 {
        for v in 1..=6u32 {
            pipeline.push_fix(fleet_fix(v, minute));
        }
    }
    pipeline.finish();
    let service = pipeline.query_service();
    let core = Arc::new(ServeCore::new(service.clone(), ServeConfig::default()));
    let shutdown = Arc::new(AtomicBool::new(false));
    let (end, conn) = spawn_pipe_connection(Arc::clone(&core), Arc::clone(&shutdown));
    let mut client = ServeClient::new(end);

    for request in battery(service.watermark()) {
        let expected = encode_response(&oracle_answer(&service, &request));
        let cold = encode_response(&client.request(&request).expect("cold answer"));
        let warm = encode_response(&client.request(&request).expect("warm answer"));
        assert_eq!(cold, expected, "cold-cache bytes != oracle for {request:?}");
        assert_eq!(warm, expected, "warm-cache bytes != oracle for {request:?}");
    }
    let stats = core.cache_stats();
    assert!(stats.hits >= battery(service.watermark()).len() as u64, "warm pass hit the cache");
    drop(client);
    conn.join().expect("connection thread");
}

#[test]
fn equivalence_holds_under_concurrent_ingest() {
    let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(BOUNDS));
    let service = pipeline.query_service();
    let core = Arc::new(ServeCore::new(service.clone(), ServeConfig::default()));
    let shutdown = Arc::new(AtomicBool::new(false));
    let (end, conn) = spawn_pipe_connection(Arc::clone(&core), Arc::clone(&shutdown));
    let mut client = ServeClient::new(end);

    let (paused_tx, paused_rx) = mpsc::channel::<()>();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();
    let ingest = std::thread::spawn(move || {
        for minute in 0..120 {
            for v in 1..=6u32 {
                pipeline.push_fix(fleet_fix(v, minute));
            }
            if minute == 60 {
                // Hold the watermark still so the main thread can
                // compare wire and oracle at one guaranteed-equal stamp.
                paused_tx.send(()).expect("pause signal");
                resume_rx.recv().expect("resume signal");
            }
        }
        pipeline.finish();
        paused_tx.send(()).expect("final signal");
        pipeline
    });

    // While ingest runs: answers decode and stamps never regress.
    let mut last_stamp = Timestamp::MIN;
    for _ in 0..50 {
        let Response::Watermark { watermark } =
            client.request(&Request::Watermark).expect("watermark answer")
        else {
            panic!("wrong answer shape")
        };
        assert!(watermark >= last_stamp, "stamps regressed under concurrent ingest");
        last_stamp = watermark;
    }

    // Mid-stream pause: watermark frozen, full battery must be
    // byte-identical, twice (cold then cached).
    paused_rx.recv().expect("ingest reached the pause");
    for request in battery(service.watermark()) {
        let expected = encode_response(&oracle_answer(&service, &request));
        for pass in ["cold", "warm"] {
            let got = encode_response(&client.request(&request).expect("mid-stream answer"));
            assert_eq!(got, expected, "{pass} bytes != oracle mid-stream for {request:?}");
        }
    }
    resume_tx.send(()).expect("resume");

    // After ingest finishes: same equivalence at the final watermark.
    paused_rx.recv().expect("ingest finished");
    let pipeline = ingest.join().expect("ingest thread");
    for request in battery(service.watermark()) {
        let expected = encode_response(&oracle_answer(&service, &request));
        let got = encode_response(&client.request(&request).expect("final answer"));
        assert_eq!(got, expected, "final bytes != oracle for {request:?}");
    }
    drop(pipeline);
    drop(client);
    conn.join().expect("connection thread");
}

/// Fleet whose silent vessels generate a long, deterministic event
/// stream: vessels 1..=N report once and go dark; two steady vessels
/// advance the watermark so the gap detector fires for each.
fn event_heavy_pipeline(silent: u32) -> MaritimePipeline {
    let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(BOUNDS));
    for minute in 0..240 {
        for v in [200u32, 201] {
            pipeline.push_fix(fleet_fix(v, minute));
        }
        if minute < i64::from(silent) {
            pipeline.push_fix(Fix::new(
                minute as u32 + 1,
                Timestamp::from_mins(minute),
                Position::new(43.0, 4.0),
                8.0,
                45.0,
            ));
        }
    }
    pipeline.finish();
    pipeline
}

#[test]
fn mid_stream_reconnect_resumes_the_exact_event_stream() {
    let mut pipeline = event_heavy_pipeline(40);
    let service = pipeline.query_service();
    // Small batches force the stream across many frames.
    let config = ServeConfig {
        batch_size: 4,
        session: SessionConfig { queue_capacity: 4096, ..SessionConfig::default() },
        ..ServeConfig::default()
    };
    let core = Arc::new(ServeCore::new(service.clone(), config));
    let shutdown = Arc::new(AtomicBool::new(false));
    let filter = EventFilter::all();

    // The oracle stream: everything retained, with sequence numbers.
    let oracle = service.poll_filtered(EventCursor::default(), &filter);
    assert!(oracle.events.len() >= 20, "need a real stream, got {}", oracle.events.len());

    // Phase 1: subscribe from the start, consume a strict prefix, then
    // kill the connection without unsubscribing.
    let (end, conn) = spawn_pipe_connection(Arc::clone(&core), Arc::clone(&shutdown));
    let mut client = ServeClient::new(end);
    let (_session, cursor) = client.subscribe(filter.clone(), Some(0)).expect("subscribe");
    assert_eq!(cursor, 0);
    core.pump();
    let mut collected: Vec<(u64, mda_events::MaritimeEvent)> = Vec::new();
    while collected.len() < 10 {
        match client.next_push(true).expect("pushed batch") {
            Some(Response::Events(batch)) => collected.extend(batch.events),
            Some(other) => panic!("unexpected push {other:?}"),
            None => {}
        }
    }
    let resume_at = collected.last().expect("collected events").0 + 1;
    drop(client); // killed mid-stream: no unsubscribe, pipe torn down
    conn.join().expect("connection thread exits on teardown");

    // Phase 2: reconnect and resume exactly after the last seen event.
    let (end, conn) = spawn_pipe_connection(Arc::clone(&core), Arc::clone(&shutdown));
    let mut client = ServeClient::new(end);
    let (_session, cursor) = client.subscribe(filter, Some(resume_at)).expect("resubscribe");
    assert_eq!(cursor, resume_at);
    core.pump();
    while collected.len() < oracle.events.len() {
        match client.next_push(true).expect("pushed batch") {
            Some(Response::Events(batch)) => collected.extend(batch.events),
            Some(other) => panic!("unexpected push {other:?}"),
            None => {}
        }
    }
    drop(client);
    conn.join().expect("connection thread");

    // The stitched stream is the oracle stream: no duplicates, no
    // holes, no reordering across the reconnect.
    assert_eq!(collected, oracle.events, "reconnected stream != oracle stream");
}
