//! Wire-decode corruption battery: every frame shape the protocol can
//! carry, in both directions, under single-byte corruption and
//! arbitrary truncation.
//!
//! Three properties, layered like the protocol:
//!
//! 1. **Payload decode is total** — `decode_request`/`decode_response`
//!    on corrupted or truncated payload bytes return an error or a
//!    (possibly different) valid value; they never panic and never
//!    allocate from a hostile length prefix.
//! 2. **The frame layer catches what decode cannot** — CRC-32 detects
//!    every single-byte corruption, so a flipped framed stream never
//!    yields a `Ready` frame with altered bytes: the "silently wrong
//!    answer" a payload-level flip could smuggle through is
//!    structurally unreachable from the socket.
//! 3. **The server is unkillable by request bytes** — `handle_bytes`
//!    on arbitrary corrupted payloads always returns an encodable
//!    answer (worst case `Response::Error`).

use mda_core::{MaritimePipeline, PipelineConfig, Stamped};
use mda_events::ring::EventFilter;
use mda_events::{EventKind, MaritimeEvent};
use mda_forecast::eta::EtaEstimate;
use mda_geo::{BoundingBox, Fix, Position, Timestamp};
use mda_serve::frame::{read_frame, write_frame, FrameStatus};
use mda_serve::server::{ServeConfig, ServeCore};
use mda_serve::wire::{
    decode_request, decode_response, encode_request, encode_response, EventBatch, Request, Response,
};
use mda_store::KnnResult;
use proptest::prelude::*;

const ZONES: [&str; 3] = ["natura-west", "port-approach", "fishing-box"];

/// Every request shape, parameterized by the sampled scalars.
fn request_corpus(id: u32, t_ms: i64, lat: f64, lon: f64, k: usize, zone: usize) -> Vec<Vec<u8>> {
    let t = Timestamp(t_ms);
    let pos = Position::new(lat, lon);
    let zone_name = ZONES[zone % ZONES.len()].to_owned();
    let filter = EventFilter {
        vessels: Some([id, id.wrapping_add(1)].into_iter().collect()),
        kinds: Some(["loitering".to_owned(), "rendezvous".to_owned()].into_iter().collect()),
        zone: Some(zone_name),
    };
    [
        Request::Watermark,
        Request::Latest { id },
        Request::PositionAt { id, t },
        Request::Trajectory { id },
        Request::Window {
            area: BoundingBox {
                min_lat: lat,
                min_lon: lon,
                max_lat: lat + 1.0,
                max_lon: lon + 1.0,
            },
            from: t,
            to: t,
        },
        Request::Knn { query: pos, t, k },
        Request::Fleet,
        Request::WhereAt { id, t },
        Request::Eta { id, dest: pos },
        Request::Subscribe { filter, resume_at: Some(t_ms as u64) },
        Request::PollSession { session: u64::from(id) },
        Request::Unsubscribe { session: u64::from(id) },
    ]
    .iter()
    .map(encode_request)
    .collect()
}

/// Every response shape, parameterized by the sampled scalars.
fn response_corpus(id: u32, t_ms: i64, lat: f64, lon: f64, zone: usize) -> Vec<Vec<u8>> {
    let watermark = Timestamp(t_ms);
    let pos = Position::new(lat, lon);
    let fix = Fix::new(id, watermark, pos, lat.abs() % 40.0, lon.abs() % 360.0);
    let zone_name = ZONES[zone % ZONES.len()].to_owned();
    let events = vec![
        (0u64, MaritimeEvent { t: watermark, vessel: id, pos, kind: EventKind::GapStart }),
        (
            1,
            MaritimeEvent {
                t: watermark,
                vessel: id,
                pos,
                kind: EventKind::ZoneExit { zone: zone_name.clone(), dwell_min: lat.abs() },
            },
        ),
        (
            2,
            MaritimeEvent {
                t: watermark,
                vessel: id,
                pos,
                kind: EventKind::CollisionRisk { other: id ^ 1, dcpa_m: 50.0, tcpa_s: 120.0 },
            },
        ),
    ];
    [
        Response::Watermark { watermark },
        Response::Latest(Stamped { watermark, value: Some(fix) }),
        Response::PositionAt(Stamped { watermark, value: Some(pos) }),
        Response::Trajectory(Stamped { watermark, value: Some(vec![fix; 3]) }),
        Response::Window(Stamped { watermark, value: vec![fix; 2] }),
        Response::Knn(Stamped { watermark, value: vec![KnnResult { id, pos, dist_m: 77.5 }] }),
        Response::WhereAt(Stamped {
            watermark,
            value: Some(mda_core::PredictedPosition { pos, predictor: "route-network" }),
        }),
        Response::Eta(Stamped {
            watermark,
            value: Some(EtaEstimate { direct: Some(t_ms.abs()), via_network: None }),
        }),
        Response::Subscribed { session: u64::from(id), cursor: t_ms as u64 },
        Response::Events(EventBatch {
            session: u64::from(id),
            events,
            missed: 1,
            filtered: 2,
            dropped: 3,
        }),
        Response::Evicted { session: u64::from(id), dropped: 9 },
        Response::Unsubscribed { session: u64::from(id) },
        Response::Error { message: zone_name },
    ]
    .iter()
    .map(encode_response)
    .collect()
}

proptest! {
    /// Property 1, client→server: single-byte corruption of any request
    /// payload decodes to an error or a valid request — never a panic.
    #[test]
    fn flipped_request_payloads_never_panic(
        id in 0u32..u32::MAX,
        t_ms in -1_000_000_000i64..4_000_000_000,
        lat in -89.0f64..89.0,
        lon in -179.0f64..179.0,
        k in 0usize..64,
        zone in 0usize..3,
        which in 0usize..12,
        byte_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let corpus = request_corpus(id, t_ms, lat, lon, k, zone);
        let mut bytes = corpus[which % corpus.len()].clone();
        let at = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        bytes[at] ^= flip;
        if let Ok(req) = decode_request(&bytes) {
            // Whatever it decoded to, it is a well-formed request whose
            // canonical encoding round-trips.
            prop_assert_eq!(decode_request(&encode_request(&req)).as_ref(), Ok(&req));
        }
    }

    /// Property 1, server→client: same for every response payload.
    #[test]
    fn flipped_response_payloads_never_panic(
        id in 0u32..u32::MAX,
        t_ms in -1_000_000_000i64..4_000_000_000,
        lat in -89.0f64..89.0,
        lon in -179.0f64..179.0,
        zone in 0usize..3,
        which in 0usize..13,
        byte_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let corpus = response_corpus(id, t_ms, lat, lon, zone);
        let mut bytes = corpus[which % corpus.len()].clone();
        let at = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        bytes[at] ^= flip;
        if let Ok(resp) = decode_response(&bytes) {
            prop_assert_eq!(decode_response(&encode_response(&resp)).as_ref(), Ok(&resp));
        }
    }

    /// Property 1, truncation: every strict prefix of every payload in
    /// both directions errors cleanly.
    #[test]
    fn truncated_payloads_always_error(
        id in 0u32..u32::MAX,
        t_ms in -1_000_000_000i64..4_000_000_000,
        lat in -89.0f64..89.0,
        lon in -179.0f64..179.0,
        k in 0usize..64,
        zone in 0usize..3,
        cut_frac in 0.0f64..1.0,
    ) {
        for bytes in request_corpus(id, t_ms, lat, lon, k, zone) {
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(decode_request(&bytes[..cut]).is_err());
        }
        for bytes in response_corpus(id, t_ms, lat, lon, zone) {
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(decode_response(&bytes[..cut]).is_err());
        }
    }

    /// Property 2: a single-byte flip anywhere in a *framed* stream is
    /// never silently accepted — the frame either fails (Corrupt, or
    /// Incomplete when the flip inflates the length prefix) or, if
    /// Ready, carries exactly the original payload. CRC-32 detects all
    /// single-byte errors, so "Ready with altered bytes" is unreachable.
    #[test]
    fn flipped_frames_are_never_silently_wrong(
        id in 0u32..u32::MAX,
        t_ms in -1_000_000_000i64..4_000_000_000,
        lat in -89.0f64..89.0,
        lon in -179.0f64..179.0,
        zone in 0usize..3,
        which in 0usize..13,
        byte_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let corpus = response_corpus(id, t_ms, lat, lon, zone);
        let payload = &corpus[which % corpus.len()];
        let mut framed = Vec::new();
        write_frame(&mut framed, payload);
        let at = ((framed.len() - 1) as f64 * byte_frac) as usize;
        framed[at] ^= flip;
        let mut cursor = 0usize;
        match read_frame(&framed, &mut cursor) {
            FrameStatus::Ready(got) => prop_assert_eq!(got, payload.as_slice()),
            FrameStatus::Incomplete | FrameStatus::Corrupt => {}
        }
    }
}

/// Property 3: the server answers arbitrary corrupted request payloads
/// with a decodable response, never a panic — including payloads that
/// decode to structurally valid but nonsensical requests.
#[test]
fn server_survives_corrupted_request_payloads() {
    let bounds = BoundingBox::new(42.0, 3.0, 44.0, 6.0);
    let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(bounds));
    for i in 0..60i64 {
        let pos = Position::new(43.0, 5.0 + 0.002 * i as f64);
        pipeline.push_fix(Fix::new(1, Timestamp::from_mins(i), pos, 10.0, 90.0));
    }
    pipeline.finish();
    let core = ServeCore::new(pipeline.query_service(), ServeConfig::default());
    // Deterministic sweep: every corpus payload, every byte position,
    // three flip patterns.
    for bytes in request_corpus(7, 3_600_000, 43.0, 5.0, 8, 0) {
        for at in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupted = bytes.clone();
                corrupted[at] ^= flip;
                let answer = core.handle_bytes(&corrupted);
                assert!(decode_response(&answer).is_ok(), "server answer must decode");
            }
        }
    }
}
