//! Fault injection: slow consumers and violently killed connections.
//!
//! Two failure families, two guarantees:
//!
//! - **Slow consumer** — a session that never drains is evicted at the
//!   configured drop bound with *exact* dropped-event accounting, and
//!   its stall is invisible to ingest and to healthy sessions.
//! - **Killed connection** — a peer that dies mid-frame (or sends a
//!   corrupt frame) takes down its own connection only: the server
//!   keeps answering other clients byte-for-byte correctly, and the
//!   dead connection's sessions are reaped from the registry.

use mda_core::{MaritimePipeline, PipelineConfig, Stamped};
use mda_events::ring::{EventCursor, EventFilter};
use mda_geo::{BoundingBox, Fix, Position, Timestamp};
use mda_serve::client::ServeClient;
use mda_serve::frame::write_frame;
use mda_serve::server::{ServeConfig, ServeCore};
use mda_serve::session::SessionConfig;
use mda_serve::tcp::serve_tcp;
use mda_serve::transport::TcpTransport;
use mda_serve::wire::{encode_request, encode_response, Request, Response};
use std::io::Write;
use std::sync::Arc;

const BOUNDS: BoundingBox =
    BoundingBox { min_lat: 42.0, min_lon: 3.0, max_lat: 44.0, max_lon: 6.0 };

fn steady_fix(v: u32, minute: i64) -> Fix {
    Fix::new(
        v,
        Timestamp::from_mins(minute),
        Position::new(42.3 + 0.05 * f64::from(v), 3.5 + 0.004 * minute as f64),
        10.0,
        90.0,
    )
}

/// A stalled session is evicted at the drop bound with exactly
/// predictable accounting, while a healthy session sees every event
/// and ingest runs to completion.
#[test]
fn stalled_session_evicted_exactly_while_others_flow() {
    let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(BOUNDS));
    let config = ServeConfig {
        session: SessionConfig { queue_capacity: 8, evict_after_dropped: 20, max_sessions: 64 },
        batch_size: 1024,
        ..ServeConfig::default()
    };
    let core = ServeCore::new(pipeline.query_service(), config);
    let service = pipeline.query_service();

    let Response::Subscribed { session: stalled, .. } =
        core.handle(&Request::Subscribe { filter: EventFilter::all(), resume_at: Some(0) })
    else {
        panic!("subscribe failed")
    };
    let Response::Subscribed { session: healthy, .. } =
        core.handle(&Request::Subscribe { filter: EventFilter::all(), resume_at: Some(0) })
    else {
        panic!("subscribe failed")
    };

    // Ingest minute by minute: two steady vessels advance the
    // watermark, a cohort of one-report vessels goes dark behind them,
    // so gap events accrue round after round. Pump between rounds like
    // a serving loop would; the stalled session never drains.
    let mut healthy_events = 0u64;
    let mut expected_evicted_drops: Option<u64> = None;
    for minute in 0..240 {
        for v in [900u32, 901] {
            pipeline.push_fix(steady_fix(v, minute));
        }
        if minute < 60 {
            pipeline.push_fix(Fix::new(
                minute as u32 + 1,
                Timestamp::from_mins(minute),
                Position::new(43.0, 4.0),
                8.0,
                45.0,
            ));
        }
        core.pump();
        // Exact-accounting oracle: with an all-pass filter and no
        // drains, the stalled queue (capacity 8) has dropped
        // `appended - 8` events; the first pump where that crosses 20
        // freezes the count and evicts.
        let appended = service.with_event_ring(|ring| ring.total_appended());
        if expected_evicted_drops.is_none() && appended >= 28 {
            expected_evicted_drops = Some(appended - 8);
        }
        if let Some(Ok(batch)) = core.drain_session(healthy) {
            healthy_events += batch.events.len() as u64;
            assert_eq!(batch.dropped, 0, "healthy session never drops");
            assert_eq!(batch.missed, 0, "nothing ages out of the default ring here");
        }
    }
    pipeline.finish();
    core.pump();
    if let Some(Ok(batch)) = core.drain_session(healthy) {
        healthy_events += batch.events.len() as u64;
    }

    let total = service.with_event_ring(|ring| ring.total_appended());
    assert!(total >= 28, "scenario must generate enough events, got {total}");
    let expected = expected_evicted_drops.expect("drop bound must have been crossed");

    // The stalled session: evicted, with the exact predicted count.
    assert!(!core.session_live(stalled));
    let Response::Evicted { session, dropped } =
        core.handle(&Request::PollSession { session: stalled })
    else {
        panic!("expected eviction notice")
    };
    assert_eq!(session, stalled);
    assert_eq!(dropped, expected, "dropped-cursor accounting must be exact");
    // Notice consumed: the session is now simply unknown.
    assert!(matches!(
        core.handle(&Request::PollSession { session: stalled }),
        Response::Error { .. }
    ));

    // The healthy session saw the entire stream; ingest finished.
    assert_eq!(healthy_events, total, "healthy session must see every event");
    let stats = core.session_stats();
    assert_eq!(stats.evicted, 1);
    assert_eq!(stats.dropped, dropped, "all drops belong to the stalled session");
}

/// Connections killed mid-frame — or poisoned with a corrupt frame —
/// take down only themselves: the server keeps serving other clients
/// answers byte-identical to the oracle, and the dead connections'
/// sessions are reaped.
#[test]
fn killed_and_corrupt_connections_leave_the_server_serving() {
    let mut pipeline = MaritimePipeline::new(PipelineConfig::regional(BOUNDS));
    for minute in 0..240 {
        for v in [900u32, 901] {
            pipeline.push_fix(steady_fix(v, minute));
        }
        if minute < 20 {
            pipeline.push_fix(Fix::new(
                minute as u32 + 1,
                Timestamp::from_mins(minute),
                Position::new(43.0, 4.0),
                8.0,
                45.0,
            ));
        }
    }
    pipeline.finish();
    let service = pipeline.query_service();
    let core = Arc::new(ServeCore::new(service.clone(), ServeConfig::default()));
    let mut server = serve_tcp(Arc::clone(&core), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    // Victim 1: subscribes (so the registry holds its session), then
    // dies mid-frame — a request frame cut off halfway through.
    {
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        let mut victim = ServeClient::new(TcpTransport::new(stream).expect("transport"));
        victim.subscribe(EventFilter::all(), Some(0)).expect("subscribe");
        assert_eq!(core.session_stats().live, 1);
        // Re-extract the raw stream? Simpler: open a second socket for
        // the torn frame; this client just vanishes without unsubscribe.
        let mut torn = std::net::TcpStream::connect(addr).expect("connect");
        let mut frame = Vec::new();
        write_frame(&mut frame, &encode_request(&Request::Fleet));
        torn.write_all(&frame[..frame.len() / 2]).expect("half a frame");
        // Both sockets drop here: one mid-frame, one mid-session.
    }

    // Victim 2: sends a frame whose CRC cannot match.
    {
        let mut poison = std::net::TcpStream::connect(addr).expect("connect");
        let mut frame = Vec::new();
        write_frame(&mut frame, &encode_request(&Request::Fleet));
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        poison.write_all(&frame).expect("poisoned frame");
    }

    // Survivor: full query battery, byte-identical to the oracle, plus
    // a working subscription fed by the server's own pump thread.
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut client = ServeClient::new(TcpTransport::new(stream).expect("transport"));
    let requests = [
        Request::Watermark,
        Request::Latest { id: 900 },
        Request::Trajectory { id: 5 },
        Request::Fleet,
    ];
    let snap = service.snapshot();
    for request in requests {
        let expected = match &request {
            Request::Watermark => Response::Watermark { watermark: snap.watermark() },
            Request::Latest { id } => Response::Latest(snap.latest(*id)),
            Request::Trajectory { id } => Response::Trajectory(snap.trajectory(*id)),
            Request::Fleet => {
                Response::Fleet(Stamped { watermark: snap.watermark(), value: snap.fleet() })
            }
            other => panic!("not in this battery: {other:?}"),
        };
        let got = client.request(&request).expect("survivor answer");
        assert_eq!(
            encode_response(&got),
            encode_response(&expected),
            "survivor answer != oracle after connection kills"
        );
    }
    let oracle = service.poll_filtered(EventCursor::default(), &EventFilter::all());
    assert!(!oracle.events.is_empty(), "scenario generates events");
    let (_session, _) = client.subscribe(EventFilter::all(), Some(0)).expect("subscribe");
    let mut got = Vec::new();
    while got.len() < oracle.events.len() {
        match client.next_push(true).expect("pushed events") {
            Some(Response::Events(batch)) => got.extend(batch.events),
            Some(other) => panic!("unexpected push {other:?}"),
            None => {}
        }
    }
    assert_eq!(got, oracle.events, "subscription stream survives other connections dying");

    // The victims' sessions were reaped when their connections died
    // (the survivor's is still live). Reaping happens when the victim
    // connection threads observe EOF, so allow their poll interval.
    let mut live = core.session_stats().live;
    for _ in 0..100 {
        if live == 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        live = core.session_stats().live;
    }
    assert_eq!(live, 1, "dead connections' sessions reaped");
    server.shutdown();
}
