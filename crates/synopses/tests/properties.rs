//! Property tests for trajectory synopses.

use mda_geo::distance::{destination, haversine_m};
use mda_geo::units::knots_to_mps;
use mda_geo::{Fix, Position, Timestamp};
use mda_synopses::compress::{compress_trajectory, ThresholdCompressor, ThresholdConfig};
use mda_synopses::critical::{detect_trajectory, SynopsisConfig};
use mda_synopses::douglas::douglas_peucker;
use mda_synopses::error::{compression_ratio, reconstruction_error};
use proptest::prelude::*;

/// A plausible random trajectory: piecewise-constant course/speed legs.
fn arb_trajectory() -> impl Strategy<Value = Vec<Fix>> {
    (
        -60.0f64..60.0,
        -170.0f64..170.0,
        prop::collection::vec((0.0f64..360.0, 2.0f64..20.0, 5usize..40), 1..6),
    )
        .prop_map(|(lat, lon, legs)| {
            let mut fixes = Vec::new();
            let mut pos = Position::new(lat, lon);
            let mut t = Timestamp(0);
            for (cog, sog, steps) in legs {
                for _ in 0..steps {
                    fixes.push(Fix::new(1, t, pos, sog, cog));
                    pos = destination(pos, cog, knots_to_mps(sog) * 30.0);
                    t += 30_000;
                }
            }
            fixes
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The synopsis is a subsequence: every kept fix appears verbatim in
    /// the original, in order.
    #[test]
    fn synopsis_is_a_subsequence(fixes in arb_trajectory(), tol in 20.0f64..500.0) {
        let cfg = ThresholdConfig { tolerance_m: tol, ..Default::default() };
        let kept = compress_trajectory(&fixes, cfg);
        prop_assert!(!kept.is_empty());
        let mut idx = 0usize;
        for k in &kept {
            while idx < fixes.len() && fixes[idx] != *k {
                idx += 1;
            }
            prop_assert!(idx < fixes.len(), "kept fix not found in order");
            idx += 1;
        }
        // First fix always kept.
        prop_assert_eq!(&kept[0], &fixes[0]);
    }

    /// Tighter tolerances keep at least as many fixes.
    #[test]
    fn monotone_in_tolerance(fixes in arb_trajectory()) {
        let loose = compress_trajectory(
            &fixes,
            ThresholdConfig { tolerance_m: 500.0, ..Default::default() },
        );
        let tight = compress_trajectory(
            &fixes,
            ThresholdConfig { tolerance_m: 25.0, ..Default::default() },
        );
        prop_assert!(tight.len() >= loose.len());
        let r_loose = compression_ratio(fixes.len(), loose.len());
        let r_tight = compression_ratio(fixes.len(), tight.len());
        prop_assert!(r_loose >= r_tight - 1e-12);
    }

    /// Streaming counts are consistent with the batch helper.
    #[test]
    fn streaming_matches_batch(fixes in arb_trajectory(), tol in 20.0f64..500.0) {
        let cfg = ThresholdConfig { tolerance_m: tol, ..Default::default() };
        let batch = compress_trajectory(&fixes, cfg);
        let mut c = ThresholdCompressor::new(cfg);
        let streamed: Vec<Fix> = fixes.iter().filter_map(|f| c.observe(*f)).collect();
        prop_assert_eq!(batch, streamed);
        let (seen, kept) = c.counts();
        prop_assert_eq!(seen as usize, fixes.len());
        prop_assert!(kept as usize <= fixes.len());
    }

    /// Douglas–Peucker honours its error bound: every original point is
    /// within tolerance of the simplified polyline.
    #[test]
    fn douglas_peucker_error_bound(fixes in arb_trajectory(), tol in 50.0f64..1_000.0) {
        let kept = douglas_peucker(&fixes, tol);
        prop_assert!(kept.len() >= 2 || fixes.len() < 2);
        for f in &fixes {
            let mut best = f64::INFINITY;
            if kept.len() == 1 {
                best = haversine_m(f.pos, kept[0].pos);
            }
            for w in kept.windows(2) {
                best = best.min(mda_geo::distance::segment_distance_m(f.pos, w[0].pos, w[1].pos));
            }
            prop_assert!(best <= tol + 1.0, "deviation {best} > {tol}");
        }
    }

    /// Reconstruction error of the identity synopsis is ~zero, and error
    /// statistics are internally consistent (mean ≤ rmse ≤ max).
    #[test]
    fn error_stats_consistent(fixes in arb_trajectory(), tol in 20.0f64..500.0) {
        let cfg = ThresholdConfig { tolerance_m: tol, ..Default::default() };
        let kept = compress_trajectory(&fixes, cfg);
        let e = reconstruction_error(&fixes, &kept);
        prop_assert_eq!(e.n, fixes.len());
        prop_assert!(e.mean_m <= e.rmse_m + 1e-9);
        prop_assert!(e.rmse_m <= e.max_m + 1e-9);
        let self_err = reconstruction_error(&fixes, &fixes);
        prop_assert!(self_err.max_m < 1e-3);
    }

    /// Critical points are emitted in time order and never exceed the
    /// input size (plus gap double-emissions).
    #[test]
    fn critical_points_ordered(fixes in arb_trajectory()) {
        let cps = detect_trajectory(&fixes, SynopsisConfig::default());
        prop_assert!(!cps.is_empty());
        for w in cps.windows(2) {
            prop_assert!(w[0].fix.t <= w[1].fix.t);
        }
        prop_assert!(cps.len() <= fixes.len() * 2);
    }
}
