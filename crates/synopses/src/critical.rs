//! Streaming critical-point detection.
//!
//! A vessel trajectory is summarised by the points where its motion
//! *changes*: it starts or stops moving, turns, changes speed, or goes
//! silent. Between critical points, motion is near-linear and can be
//! reconstructed by interpolation. This mirrors the synopses operators of
//! the datAcron stack the paper draws on.

use mda_geo::units::heading_delta;
use mda_geo::{DurationMs, Fix, Timestamp};
use serde::{Deserialize, Serialize};

/// Why a fix was marked critical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CriticalPointKind {
    /// First fix of a (sub)trajectory.
    Start,
    /// Vessel dropped below the stop speed.
    StopBegin,
    /// Vessel resumed way after a stop.
    StopEnd,
    /// Course changed by more than the turn threshold.
    TurningPoint,
    /// Speed changed by more than the speed threshold.
    SpeedChange,
    /// Last fix before a communication gap.
    GapStart,
    /// First fix after a communication gap.
    GapEnd,
}

/// A fix annotated as critical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CriticalPoint {
    /// The annotated fix.
    pub fix: Fix,
    /// Why it is critical.
    pub kind: CriticalPointKind,
}

/// Thresholds steering critical-point detection.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SynopsisConfig {
    /// Below this speed (knots) a vessel is considered stopped.
    pub stop_speed_kn: f64,
    /// Course change (degrees) that makes a turning point.
    pub turn_threshold_deg: f64,
    /// Relative speed change that makes a speed-change point.
    pub speed_change_ratio: f64,
    /// Silence longer than this is a communication gap.
    pub gap_timeout: DurationMs,
}

impl Default for SynopsisConfig {
    fn default() -> Self {
        Self {
            stop_speed_kn: 0.5,
            turn_threshold_deg: 15.0,
            speed_change_ratio: 0.25,
            gap_timeout: 10 * mda_geo::time::MINUTE,
        }
    }
}

/// Streaming per-vessel critical point detector.
///
/// Feed fixes of one vessel in event-time order; emitted critical points
/// reference the input fixes. One detector instance per vessel
/// (`mda-core` keys them by MMSI).
#[derive(Debug, Clone)]
pub struct CriticalPointDetector {
    config: SynopsisConfig,
    last: Option<Fix>,
    /// Course and speed at the last *emitted* critical point, the
    /// reference against which change is measured.
    ref_cog: f64,
    ref_sog: f64,
    stopped: bool,
    total_in: u64,
    total_out: u64,
}

impl CriticalPointDetector {
    /// New detector with the given thresholds.
    pub fn new(config: SynopsisConfig) -> Self {
        Self {
            config,
            last: None,
            ref_cog: 0.0,
            ref_sog: 0.0,
            stopped: false,
            total_in: 0,
            total_out: 0,
        }
    }

    /// Observe the next fix; returns the critical points it produces
    /// (possibly both a `GapStart` for the previous fix and a `GapEnd`
    /// for this one).
    pub fn observe(&mut self, fix: Fix) -> Vec<CriticalPoint> {
        self.total_in += 1;
        let mut out = Vec::new();
        let Some(prev) = self.last else {
            self.emit(&mut out, fix, CriticalPointKind::Start);
            self.stopped = fix.sog_kn < self.config.stop_speed_kn;
            self.last = Some(fix);
            return out;
        };

        // Communication gap: mark both edges.
        if fix.t - prev.t > self.config.gap_timeout {
            self.emit(&mut out, prev, CriticalPointKind::GapStart);
            self.emit(&mut out, fix, CriticalPointKind::GapEnd);
            self.stopped = fix.sog_kn < self.config.stop_speed_kn;
            self.last = Some(fix);
            return out;
        }

        let now_stopped = fix.sog_kn < self.config.stop_speed_kn;
        if now_stopped != self.stopped {
            let kind =
                if now_stopped { CriticalPointKind::StopBegin } else { CriticalPointKind::StopEnd };
            self.emit(&mut out, fix, kind);
            self.stopped = now_stopped;
            self.last = Some(fix);
            return out;
        }

        if !now_stopped {
            if heading_delta(self.ref_cog, fix.cog_deg) > self.config.turn_threshold_deg {
                self.emit(&mut out, fix, CriticalPointKind::TurningPoint);
            } else {
                let base = self.ref_sog.max(self.config.stop_speed_kn);
                if (fix.sog_kn - self.ref_sog).abs() / base > self.config.speed_change_ratio {
                    self.emit(&mut out, fix, CriticalPointKind::SpeedChange);
                }
            }
        }
        self.last = Some(fix);
        out
    }

    fn emit(&mut self, out: &mut Vec<CriticalPoint>, fix: Fix, kind: CriticalPointKind) {
        self.ref_cog = fix.cog_deg;
        self.ref_sog = fix.sog_kn;
        self.total_out += 1;
        out.push(CriticalPoint { fix, kind });
    }

    /// `(fixes seen, critical points emitted)`.
    pub fn counts(&self) -> (u64, u64) {
        (self.total_in, self.total_out)
    }

    /// Time of the last observed fix (for gap monitoring at stream end).
    pub fn last_seen(&self) -> Option<Timestamp> {
        self.last.map(|f| f.t)
    }
}

/// Run a detector over a whole trajectory and collect the synopsis.
pub fn detect_trajectory(fixes: &[Fix], config: SynopsisConfig) -> Vec<CriticalPoint> {
    let mut det = CriticalPointDetector::new(config);
    let mut out = Vec::new();
    for f in fixes {
        out.extend(det.observe(*f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    use mda_geo::Position;

    fn fix(t_min: i64, lat: f64, lon: f64, sog: f64, cog: f64) -> Fix {
        Fix::new(1, Timestamp::from_mins(t_min), Position::new(lat, lon), sog, cog)
    }

    /// Straight steady track: only the start is critical.
    #[test]
    fn steady_track_keeps_only_start() {
        let fixes: Vec<Fix> =
            (0..60).map(|i| fix(i, 43.0 + i as f64 * 0.01, 5.0, 10.0, 0.0)).collect();
        let cps = detect_trajectory(&fixes, SynopsisConfig::default());
        assert_eq!(cps.len(), 1);
        assert_eq!(cps[0].kind, CriticalPointKind::Start);
    }

    #[test]
    fn turn_detected_once() {
        let mut fixes = Vec::new();
        for i in 0..10 {
            fixes.push(fix(i, 43.0 + i as f64 * 0.01, 5.0, 10.0, 0.0));
        }
        for i in 10..20 {
            fixes.push(fix(i, 43.1, 5.0 + (i - 10) as f64 * 0.01, 10.0, 90.0));
        }
        let cps = detect_trajectory(&fixes, SynopsisConfig::default());
        let turns: Vec<_> =
            cps.iter().filter(|c| c.kind == CriticalPointKind::TurningPoint).collect();
        assert_eq!(turns.len(), 1);
        assert_eq!(turns[0].fix.cog_deg, 90.0);
    }

    #[test]
    fn gradual_turn_accumulates_to_threshold() {
        // 2°/min drift: exceeds the 15° threshold relative to the last
        // critical point around minute 8, then again ~8 min later.
        let fixes: Vec<Fix> =
            (0..20).map(|i| fix(i, 43.0, 5.0 + i as f64 * 0.01, 10.0, (i * 2) as f64)).collect();
        let cps = detect_trajectory(&fixes, SynopsisConfig::default());
        let turns = cps.iter().filter(|c| c.kind == CriticalPointKind::TurningPoint).count();
        assert!((1..=3).contains(&turns), "got {turns} turns");
    }

    #[test]
    fn stop_and_resume() {
        let mut fixes = Vec::new();
        for i in 0..5 {
            fixes.push(fix(i, 43.0, 5.0 + i as f64 * 0.01, 10.0, 90.0));
        }
        for i in 5..10 {
            fixes.push(fix(i, 43.0, 5.05, 0.1, 90.0));
        }
        for i in 10..15 {
            fixes.push(fix(i, 43.0, 5.05 + (i - 10) as f64 * 0.01, 10.0, 90.0));
        }
        let cps = detect_trajectory(&fixes, SynopsisConfig::default());
        let kinds: Vec<CriticalPointKind> = cps.iter().map(|c| c.kind).collect();
        assert!(kinds.contains(&CriticalPointKind::StopBegin));
        assert!(kinds.contains(&CriticalPointKind::StopEnd));
        let sb = kinds.iter().position(|k| *k == CriticalPointKind::StopBegin).unwrap();
        let se = kinds.iter().position(|k| *k == CriticalPointKind::StopEnd).unwrap();
        assert!(sb < se);
    }

    #[test]
    fn gap_marks_both_edges() {
        let fixes = vec![
            fix(0, 43.0, 5.0, 10.0, 0.0),
            fix(1, 43.01, 5.0, 10.0, 0.0),
            fix(30, 43.3, 5.0, 10.0, 0.0), // 29-minute silence
            fix(31, 43.31, 5.0, 10.0, 0.0),
        ];
        let cps = detect_trajectory(&fixes, SynopsisConfig::default());
        let kinds: Vec<CriticalPointKind> = cps.iter().map(|c| c.kind).collect();
        assert!(kinds.contains(&CriticalPointKind::GapStart));
        assert!(kinds.contains(&CriticalPointKind::GapEnd));
        // GapStart is the *previous* fix (minute 1).
        let gs = cps.iter().find(|c| c.kind == CriticalPointKind::GapStart).unwrap();
        assert_eq!(gs.fix.t, Timestamp::from_mins(1));
    }

    #[test]
    fn speed_change_detected() {
        let mut fixes = Vec::new();
        for i in 0..5 {
            fixes.push(fix(i, 43.0, 5.0 + i as f64 * 0.01, 10.0, 90.0));
        }
        for i in 5..10 {
            fixes.push(fix(i, 43.0, 5.05 + (i - 5) as f64 * 0.02, 20.0, 90.0));
        }
        let cps = detect_trajectory(&fixes, SynopsisConfig::default());
        assert!(cps.iter().any(|c| c.kind == CriticalPointKind::SpeedChange));
    }

    #[test]
    fn counts_reflect_compression() {
        let fixes: Vec<Fix> =
            (0..100).map(|i| fix(i, 43.0 + i as f64 * 0.005, 5.0, 10.0, 0.0)).collect();
        let mut det = CriticalPointDetector::new(SynopsisConfig::default());
        for f in &fixes {
            det.observe(*f);
        }
        let (inn, out) = det.counts();
        assert_eq!(inn, 100);
        assert!(out <= 2, "steady track should compress to almost nothing, got {out}");
        assert_eq!(det.last_seen(), Some(Timestamp::from_mins(99)));
    }
}
