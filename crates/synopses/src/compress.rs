//! Streaming threshold (dead-reckoning) compression.
//!
//! The compressor keeps a fix only when the position dead-reckoned from
//! the last *kept* fix misses the observed position by more than
//! `tolerance_m` — i.e. it transmits exactly the information the receiver
//! cannot predict. This is the classical online counterpart of
//! Douglas–Peucker and gives a per-point reconstruction error bound equal
//! to the tolerance (at observation times).

use mda_geo::distance::haversine_m;
use mda_geo::{DurationMs, Fix};
use serde::{Deserialize, Serialize};

/// Configuration of the threshold compressor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThresholdConfig {
    /// Maximum allowed dead-reckoning error before a fix is kept.
    pub tolerance_m: f64,
    /// Always keep a fix after this long without keeping one, so gaps in
    /// the synopsis stay bounded even on perfectly straight legs.
    pub max_silence: DurationMs,
}

impl Default for ThresholdConfig {
    fn default() -> Self {
        Self { tolerance_m: 100.0, max_silence: 30 * mda_geo::time::MINUTE }
    }
}

impl ThresholdConfig {
    /// A configuration that keeps every fix (tolerance 0, no keepalive
    /// gap): compression becomes the identity. Used by the archive's
    /// cold tier when sealing must be exactly reversible.
    pub fn lossless() -> Self {
        Self { tolerance_m: 0.0, max_silence: 0 }
    }

    /// True when this configuration discards nothing (for time-ordered
    /// input): with `max_silence <= 0` the keepalive condition
    /// `gap >= max_silence` holds for every fix, so everything is
    /// kept. Tolerance alone does not decide this — a perfectly
    /// predicted fix (error exactly 0) is dropped even at tolerance 0.
    pub fn is_lossless(&self) -> bool {
        self.max_silence <= 0
    }
}

/// Streaming per-vessel threshold compressor.
#[derive(Debug, Clone)]
pub struct ThresholdCompressor {
    config: ThresholdConfig,
    last_kept: Option<Fix>,
    seen: u64,
    kept: u64,
}

impl ThresholdCompressor {
    /// New compressor with the given tolerance.
    pub fn new(config: ThresholdConfig) -> Self {
        Self { config, last_kept: None, seen: 0, kept: 0 }
    }

    /// Observe a fix; returns `Some(fix)` if it must be kept in the
    /// synopsis, `None` if it is predictable within tolerance.
    pub fn observe(&mut self, fix: Fix) -> Option<Fix> {
        self.seen += 1;
        let keep = match self.last_kept {
            None => true,
            Some(ref prev) => {
                let predicted = prev.dead_reckon(fix.t);
                haversine_m(predicted, fix.pos) > self.config.tolerance_m
                    || fix.t - prev.t >= self.config.max_silence
            }
        };
        if keep {
            self.kept += 1;
            self.last_kept = Some(fix);
            Some(fix)
        } else {
            None
        }
    }

    /// `(fixes seen, fixes kept)`.
    pub fn counts(&self) -> (u64, u64) {
        (self.seen, self.kept)
    }

    /// Compression ratio achieved so far: fraction of fixes *discarded*.
    pub fn ratio(&self) -> f64 {
        if self.seen == 0 {
            return 0.0;
        }
        1.0 - self.kept as f64 / self.seen as f64
    }
}

/// Compress a whole trajectory, returning the kept fixes.
pub fn compress_trajectory(fixes: &[Fix], config: ThresholdConfig) -> Vec<Fix> {
    let mut c = ThresholdCompressor::new(config);
    fixes.iter().filter_map(|f| c.observe(*f)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::MINUTE;
    use mda_geo::{Position, Timestamp};

    fn steady_track(n: usize) -> Vec<Fix> {
        // Perfect 10 kn eastbound track where dead-reckoning is exact.
        let start = Fix::new(7, Timestamp::from_mins(0), Position::new(43.0, 5.0), 10.0, 90.0);
        (0..n)
            .map(|i| {
                let t = Timestamp::from_mins(i as i64);
                Fix { t, pos: start.dead_reckon(t), ..start }
            })
            .collect()
    }

    #[test]
    fn straight_track_keeps_only_first() {
        let fixes = steady_track(25);
        let kept = compress_trajectory(&fixes, ThresholdConfig::default());
        assert_eq!(kept.len(), 1, "dead-reckoning predicts everything");
    }

    #[test]
    fn max_silence_forces_keepalives() {
        let fixes = steady_track(100);
        let cfg = ThresholdConfig { tolerance_m: 100.0, max_silence: 10 * MINUTE };
        let kept = compress_trajectory(&fixes, cfg);
        // 100 minutes / 10-minute keepalive => about 10 kept fixes.
        assert!((9..=11).contains(&kept.len()), "kept {}", kept.len());
    }

    #[test]
    fn maneuver_is_kept() {
        let mut fixes = steady_track(10);
        // Vessel turns north at minute 10 and sails on.
        let turn_start = *fixes.last().unwrap();
        let turned = Fix { cog_deg: 0.0, ..turn_start };
        for i in 1..10 {
            let t = Timestamp::from_mins(10 + i);
            fixes.push(Fix { t, pos: turned.dead_reckon(t), ..turned });
        }
        let kept = compress_trajectory(&fixes, ThresholdConfig::default());
        assert!(kept.len() >= 2, "the turn must be kept");
        assert!(kept.len() <= 4, "but the straight legs must not, kept {}", kept.len());
    }

    #[test]
    fn ratio_accounting() {
        let fixes = steady_track(100);
        let mut c = ThresholdCompressor::new(ThresholdConfig::default());
        for f in &fixes {
            c.observe(*f);
        }
        let (seen, kept) = c.counts();
        assert_eq!(seen, 100);
        assert!(c.ratio() > 0.9);
        assert_eq!(kept, (100.0 - c.ratio() * 100.0).round() as u64);
    }

    #[test]
    fn tolerance_zero_keeps_noisy_everything() {
        // With a tiny tolerance and noisy positions everything is kept.
        let mut fixes = steady_track(20);
        for (i, f) in fixes.iter_mut().enumerate() {
            f.pos = Position::new(f.pos.lat + 0.001 * ((i % 2) as f64), f.pos.lon);
        }
        let cfg = ThresholdConfig { tolerance_m: 1.0, max_silence: 60 * MINUTE };
        let kept = compress_trajectory(&fixes, cfg);
        assert!(kept.len() >= 19, "kept {}", kept.len());
    }

    #[test]
    fn lossless_config_keeps_perfectly_predicted_fixes() {
        // Tolerance 0 alone is NOT lossless: an exactly-predicted fix
        // has error 0, which is not > 0. Only the zero keepalive gap
        // forces every fix through.
        let fixes = steady_track(25);
        let kept = compress_trajectory(&fixes, ThresholdConfig::lossless());
        assert_eq!(kept.len(), fixes.len());
        assert!(ThresholdConfig::lossless().is_lossless());
        let zero_tol = ThresholdConfig { tolerance_m: 0.0, max_silence: 30 * MINUTE };
        assert!(!zero_tol.is_lossless(), "tolerance 0 with a keepalive gap still drops fixes");
        assert!(compress_trajectory(&fixes, zero_tol).len() < fixes.len());
    }

    #[test]
    fn empty_input() {
        let kept = compress_trajectory(&[], ThresholdConfig::default());
        assert!(kept.is_empty());
        let c = ThresholdCompressor::new(ThresholdConfig::default());
        assert_eq!(c.ratio(), 0.0);
    }
}
