//! Trajectory synopses: critical points and bounded-error compression
//! (paper §2.1).
//!
//! The paper highlights that state-of-the-art synopses achieve a ~95%
//! compression ratio over AIS vessel traces, and poses the challenge of
//! "high levels of data compression without compromising the accuracy of
//! the prediction / detection components". This crate implements both
//! halves of that trade-off and the instruments to measure it:
//!
//! - [`critical`] — streaming detection of *critical points*: trajectory
//!   start/stop, turns, speed changes, communication gaps. The critical
//!   points *are* the synopsis: everything between them is reconstructed
//!   by interpolation.
//! - [`compress`] — streaming threshold (dead-reckoning) compression: a
//!   fix is kept only when the position predicted from the last kept fix
//!   misses the observed one by more than a tolerance.
//! - [`douglas`] — offline Douglas–Peucker line simplification, the
//!   classical batch baseline the online methods are compared against.
//! - [`error`] — reconstruction error metrics (synchronized Euclidean
//!   distance) and compression accounting, which the C1 experiment
//!   sweeps to regenerate the paper's 95% claim.
//!
//! ## Example
//!
//! ```
//! use mda_geo::{Fix, Position, Timestamp};
//! use mda_synopses::compress::compress_trajectory;
//! use mda_synopses::ThresholdConfig;
//!
//! // A straight constant-speed leg: dead reckoning from the first fix
//! // predicts every later one, so the whole leg compresses to one fix.
//! let start = Fix::new(1, Timestamp::from_secs(0), Position::new(43.0, 5.0), 12.0, 90.0);
//! let fixes: Vec<Fix> = (0..30)
//!     .map(|i| {
//!         let t = Timestamp::from_secs(i * 60);
//!         Fix { t, pos: start.dead_reckon(t), ..start }
//!     })
//!     .collect();
//! let cfg = ThresholdConfig { tolerance_m: 200.0, ..Default::default() };
//! let kept = compress_trajectory(&fixes, cfg);
//! assert_eq!(kept.len(), 1, "a straight leg needs only its first fix");
//! ```

pub mod compress;
pub mod critical;
pub mod douglas;
pub mod error;

pub use compress::{ThresholdCompressor, ThresholdConfig};
pub use critical::{CriticalPoint, CriticalPointDetector, CriticalPointKind, SynopsisConfig};
pub use douglas::douglas_peucker;
pub use error::{compression_ratio, reconstruction_error, ErrorStats};
