//! Offline Douglas–Peucker trajectory simplification.
//!
//! The batch baseline for the C1 experiment: given the whole trajectory,
//! recursively keep the point with the largest deviation from the
//! chord until every point is within `tolerance_m` of the simplified
//! polyline. Distances are great-circle segment distances, so the
//! tolerance is in metres like the online compressor's.

use mda_geo::distance::segment_distance_m;
use mda_geo::Fix;

/// Simplify `fixes` to within `tolerance_m` metres, returning the kept
/// fixes (always includes the first and last).
pub fn douglas_peucker(fixes: &[Fix], tolerance_m: f64) -> Vec<Fix> {
    if fixes.len() <= 2 {
        return fixes.to_vec();
    }
    let mut keep = vec![false; fixes.len()];
    keep[0] = true;
    keep[fixes.len() - 1] = true;
    simplify(fixes, 0, fixes.len() - 1, tolerance_m, &mut keep);
    fixes.iter().zip(keep).filter_map(|(f, k)| if k { Some(*f) } else { None }).collect()
}

fn simplify(fixes: &[Fix], lo: usize, hi: usize, tol: f64, keep: &mut [bool]) {
    if hi <= lo + 1 {
        return;
    }
    let (a, b) = (fixes[lo].pos, fixes[hi].pos);
    let mut worst = lo;
    let mut worst_d = -1.0;
    for (i, f) in fixes.iter().enumerate().take(hi).skip(lo + 1) {
        let d = segment_distance_m(f.pos, a, b);
        if d > worst_d {
            worst_d = d;
            worst = i;
        }
    }
    if worst_d > tol {
        keep[worst] = true;
        simplify(fixes, lo, worst, tol, keep);
        simplify(fixes, worst, hi, tol, keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::{Position, Timestamp};

    fn fix(i: i64, lat: f64, lon: f64) -> Fix {
        Fix::new(1, Timestamp::from_mins(i), Position::new(lat, lon), 10.0, 0.0)
    }

    #[test]
    fn short_inputs_returned_verbatim() {
        assert!(douglas_peucker(&[], 10.0).is_empty());
        let one = vec![fix(0, 43.0, 5.0)];
        assert_eq!(douglas_peucker(&one, 10.0).len(), 1);
        let two = vec![fix(0, 43.0, 5.0), fix(1, 43.1, 5.0)];
        assert_eq!(douglas_peucker(&two, 10.0).len(), 2);
    }

    #[test]
    fn collinear_points_reduce_to_endpoints() {
        let fixes: Vec<Fix> = (0..20).map(|i| fix(i, 43.0, 5.0 + i as f64 * 0.01)).collect();
        let kept = douglas_peucker(&fixes, 50.0);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].t, fixes[0].t);
        assert_eq!(kept[1].t, fixes[19].t);
    }

    #[test]
    fn corner_is_preserved() {
        let mut fixes: Vec<Fix> = (0..10).map(|i| fix(i, 43.0, 5.0 + i as f64 * 0.01)).collect();
        for i in 0..10 {
            fixes.push(fix(10 + i, 43.0 + (i + 1) as f64 * 0.01, 5.09));
        }
        let kept = douglas_peucker(&fixes, 50.0);
        assert_eq!(kept.len(), 3, "endpoints plus the corner");
        // The corner is near (43.0, 5.09).
        assert!((kept[1].pos.lon - 5.09).abs() < 0.011);
    }

    #[test]
    fn error_bound_holds() {
        // Wavy trajectory; after simplification every original point must
        // lie within tolerance of the kept polyline.
        let fixes: Vec<Fix> = (0..100)
            .map(|i| {
                let lon = 5.0 + i as f64 * 0.002;
                let lat = 43.0 + 0.004 * (i as f64 * 0.3).sin();
                fix(i, lat, lon)
            })
            .collect();
        let tol = 120.0;
        let kept = douglas_peucker(&fixes, tol);
        assert!(kept.len() > 2 && kept.len() < 100);
        for f in &fixes {
            let mut best = f64::INFINITY;
            for w in kept.windows(2) {
                best = best.min(segment_distance_m(f.pos, w[0].pos, w[1].pos));
            }
            assert!(best <= tol + 1.0, "point deviates {best} m");
        }
    }

    #[test]
    fn tighter_tolerance_keeps_more() {
        let fixes: Vec<Fix> = (0..100)
            .map(|i| {
                let lon = 5.0 + i as f64 * 0.002;
                let lat = 43.0 + 0.004 * (i as f64 * 0.3).sin();
                fix(i, lat, lon)
            })
            .collect();
        let loose = douglas_peucker(&fixes, 300.0).len();
        let tight = douglas_peucker(&fixes, 30.0).len();
        assert!(tight > loose, "{tight} vs {loose}");
    }
}
