//! Reconstruction error metrics for synopses.
//!
//! The quality axis of the C1 trade-off: reconstruct the trajectory from
//! the synopsis by time interpolation and measure how far each original
//! fix lies from its reconstruction (*synchronized* distance: compared at
//! the same timestamp, not merely to the nearest point of the line).

use mda_geo::distance::haversine_m;
use mda_geo::motion::interpolate_fixes;
use mda_geo::Fix;
use serde::{Deserialize, Serialize};

/// Summary statistics of reconstruction error, in metres.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Number of compared fixes.
    pub n: usize,
    /// Mean error.
    pub mean_m: f64,
    /// Root-mean-square error.
    pub rmse_m: f64,
    /// Maximum error.
    pub max_m: f64,
}

/// Fraction of fixes *removed* by the synopsis (0 = nothing removed,
/// 0.95 = the paper's headline ratio).
pub fn compression_ratio(original: usize, kept: usize) -> f64 {
    if original == 0 {
        return 0.0;
    }
    1.0 - kept as f64 / original as f64
}

/// Synchronized reconstruction error of `synopsis` against `original`.
///
/// For each original fix the reconstructed position at the same
/// timestamp is obtained by interpolating the bracketing synopsis fixes
/// (or clamping to the synopsis ends). Both slices must be sorted by
/// time and belong to the same vessel.
pub fn reconstruction_error(original: &[Fix], synopsis: &[Fix]) -> ErrorStats {
    if original.is_empty() || synopsis.is_empty() {
        return ErrorStats::default();
    }
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut max = 0.0f64;
    let mut j = 0usize;
    for f in original {
        while j + 1 < synopsis.len() && synopsis[j + 1].t <= f.t {
            j += 1;
        }
        let rec = if j + 1 < synopsis.len() && synopsis[j].t <= f.t {
            interpolate_fixes(&synopsis[j], &synopsis[j + 1], f.t)
        } else if f.t < synopsis[j].t {
            // Before the synopsis begins: clamp to its first position.
            synopsis[j].pos
        } else {
            // Past the last kept fix: the synopsis carries velocity, so
            // the faithful reconstruction dead-reckons the tail.
            synopsis[j].dead_reckon(f.t)
        };
        let e = haversine_m(f.pos, rec);
        sum += e;
        sum_sq += e * e;
        max = max.max(e);
    }
    let n = original.len();
    ErrorStats { n, mean_m: sum / n as f64, rmse_m: (sum_sq / n as f64).sqrt(), max_m: max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::{Position, Timestamp};

    fn fix(i: i64, lat: f64, lon: f64) -> Fix {
        Fix::new(1, Timestamp::from_mins(i), Position::new(lat, lon), 10.0, 90.0)
    }

    #[test]
    fn identical_synopsis_has_zero_error() {
        let t: Vec<Fix> = (0..10).map(|i| fix(i, 43.0, 5.0 + i as f64 * 0.01)).collect();
        let e = reconstruction_error(&t, &t);
        assert_eq!(e.n, 10);
        assert!(e.max_m < 1e-6, "max {}", e.max_m);
        assert!(e.mean_m < 1e-6);
    }

    #[test]
    fn endpoints_only_synopsis_of_straight_line_is_near_zero() {
        let t: Vec<Fix> = (0..11).map(|i| fix(i, 43.0, 5.0 + i as f64 * 0.01)).collect();
        let synopsis = vec![t[0], t[10]];
        let e = reconstruction_error(&t, &synopsis);
        assert!(e.max_m < 1.0, "max {}", e.max_m);
    }

    #[test]
    fn detour_produces_expected_error() {
        // Straight baseline, but the original detours north by 0.01° at
        // the midpoint (~1111 m).
        let mut t: Vec<Fix> = (0..11).map(|i| fix(i, 43.0, 5.0 + i as f64 * 0.01)).collect();
        t[5] = fix(5, 43.01, 5.05);
        let synopsis = vec![t[0], t[10]];
        let e = reconstruction_error(&t, &synopsis);
        assert!((e.max_m - 1_111.0).abs() < 20.0, "max {}", e.max_m);
        assert!(e.mean_m < e.max_m);
        assert!(e.rmse_m >= e.mean_m && e.rmse_m <= e.max_m);
    }

    #[test]
    fn times_outside_synopsis_clamp() {
        let t: Vec<Fix> = (0..10).map(|i| fix(i, 43.0, 5.0 + i as f64 * 0.01)).collect();
        // Synopsis covers only minutes 3..6.
        let synopsis = vec![t[3], t[6]];
        let e = reconstruction_error(&t, &synopsis);
        // Fix 0 is clamped to synopsis[0] at lon 5.03 => ~0.03° of lon.
        assert!(e.max_m > 2_000.0);
        assert_eq!(e.n, 10);
    }

    #[test]
    fn ratio_helper() {
        assert_eq!(compression_ratio(100, 5), 0.95);
        assert_eq!(compression_ratio(0, 0), 0.0);
        assert_eq!(compression_ratio(10, 10), 0.0);
    }

    #[test]
    fn empty_inputs() {
        let t: Vec<Fix> = (0..3).map(|i| fix(i, 43.0, 5.0)).collect();
        assert_eq!(reconstruction_error(&[], &t), ErrorStats::default());
        assert_eq!(reconstruction_error(&t, &[]), ErrorStats::default());
    }
}
