//! Property tests: AIS codec and NMEA framing round-trips.
//!
//! Field scales quantise values (1/10 kn, 1/10 000 min), so the invariant
//! tested is *idempotence*: decode(encode(m)) must survive a second
//! encode/decode unchanged, and continuous fields must land within one
//! quantum of the original.

use mda_ais::codec::{decode_payload, encode_payload};
use mda_ais::messages::{
    AisMessage, ClassBPositionReport, NavigationalStatus, PositionReport, ShipType,
    StaticVoyageData,
};
use mda_ais::nmea::{parse_sentence, to_sentences, SentenceAssembler};
use mda_geo::Position;
use proptest::prelude::*;

fn arb_position_report() -> impl Strategy<Value = PositionReport> {
    (
        1u8..=3,
        0u8..=3,
        100_000_000u32..=999_999_999,
        0u8..=15,
        prop::option::of(-700.0f64..700.0),
        prop::option::of(0.0f64..102.2),
        any::<bool>(),
        prop::option::of((-89.9f64..89.9, -179.9f64..179.9)),
        prop::option::of(0.0f64..359.9),
        prop::option::of(0u16..360),
        0u8..=63,
    )
        .prop_map(|(msg_type, repeat, mmsi, status, rot, sog, acc, pos, cog, hdg, sec)| {
            PositionReport {
                msg_type,
                repeat,
                mmsi,
                status: NavigationalStatus::from_raw(status),
                rot_deg_min: rot,
                sog_kn: sog,
                position_accuracy: acc,
                pos: pos.map(|(lat, lon)| Position::new(lat, lon)),
                cog_deg: cog,
                heading_deg: hdg,
                utc_second: sec,
            }
        })
}

fn arb_static() -> impl Strategy<Value = StaticVoyageData> {
    (
        100_000_000u32..=999_999_999,
        0u32..=9_999_999,
        "[A-Z0-9]{0,7}",
        "[A-Z0-9 ]{0,20}",
        0u8..=99,
        (0u16..512, 0u16..512, 0u8..64, 0u8..64),
        (0u8..=12, 0u8..=31, 0u8..=24, 0u8..=60),
        0.0f64..25.5,
        "[A-Z ]{0,20}",
    )
        .prop_map(|(mmsi, imo, callsign, name, ship_type, dims, eta, draught, dest)| {
            StaticVoyageData {
                repeat: 0,
                mmsi,
                imo,
                callsign,
                name: name.trim_end().to_string(),
                ship_type: ShipType::from_raw(ship_type),
                dim_to_bow: dims.0,
                dim_to_stern: dims.1,
                dim_to_port: dims.2,
                dim_to_starboard: dims.3,
                eta_month: eta.0,
                eta_day: eta.1,
                eta_hour: eta.2,
                eta_minute: eta.3,
                draught_m: draught,
                destination: dest.trim_end().to_string(),
            }
        })
}

fn arb_class_b() -> impl Strategy<Value = ClassBPositionReport> {
    (
        100_000_000u32..=999_999_999,
        prop::option::of(0.0f64..102.2),
        any::<bool>(),
        prop::option::of((-89.9f64..89.9, -179.9f64..179.9)),
        prop::option::of(0.0f64..359.9),
        prop::option::of(0u16..360),
        0u8..=63,
    )
        .prop_map(|(mmsi, sog, acc, pos, cog, hdg, sec)| ClassBPositionReport {
            repeat: 0,
            mmsi,
            sog_kn: sog,
            position_accuracy: acc,
            pos: pos.map(|(lat, lon)| Position::new(lat, lon)),
            cog_deg: cog,
            heading_deg: hdg,
            utc_second: sec,
        })
}

proptest! {
    #[test]
    fn position_codec_idempotent(report in arb_position_report()) {
        let msg = AisMessage::Position(report);
        let (bits, _) = encode_payload(&msg);
        prop_assert_eq!(bits.len(), 168);
        let once = decode_payload(&bits).unwrap();
        let (bits2, _) = encode_payload(&once);
        let twice = decode_payload(&bits2).unwrap();
        prop_assert_eq!(&once, &twice);

        // Quantisation error bounds against the original.
        if let (AisMessage::Position(orig), AisMessage::Position(dec)) = (&msg, &once) {
            prop_assert_eq!(orig.mmsi, dec.mmsi);
            prop_assert_eq!(orig.msg_type, dec.msg_type);
            prop_assert_eq!(orig.pos.is_some(), dec.pos.is_some());
            if let (Some(a), Some(b)) = (orig.pos, dec.pos) {
                prop_assert!((a.lat - b.lat).abs() < 1.0 / 600_000.0 + 1e-9);
                prop_assert!((a.lon - b.lon).abs() < 1.0 / 600_000.0 + 1e-9);
            }
            if let (Some(a), Some(b)) = (orig.sog_kn, dec.sog_kn) {
                prop_assert!((a - b).abs() <= 0.05 + 1e-9);
            }
            if let (Some(a), Some(b)) = (orig.cog_deg, dec.cog_deg) {
                prop_assert!((a - b).abs() <= 0.05 + 1e-9);
            }
        }
    }

    #[test]
    fn static_codec_idempotent(data in arb_static()) {
        let msg = AisMessage::StaticVoyage(data);
        let (bits, _) = encode_payload(&msg);
        prop_assert_eq!(bits.len(), 426); // 424 logical bits + 2 pad bits
        let once = decode_payload(&bits).unwrap();
        let (bits2, _) = encode_payload(&once);
        let twice = decode_payload(&bits2).unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn class_b_codec_idempotent(data in arb_class_b()) {
        let msg = AisMessage::ClassBPosition(data);
        let (bits, _) = encode_payload(&msg);
        prop_assert_eq!(bits.len(), 168);
        let once = decode_payload(&bits).unwrap();
        let (bits2, _) = encode_payload(&once);
        let twice = decode_payload(&bits2).unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn nmea_framing_round_trip(report in arb_position_report()) {
        let msg = AisMessage::Position(report);
        let (bits, fill) = encode_payload(&msg);
        let sentences = to_sentences(&bits, fill, 'A', 0);
        let mut asm = SentenceAssembler::new();
        let mut out = None;
        for s in &sentences {
            prop_assert!(s.len() <= 82);
            let parsed = parse_sentence(s).unwrap();
            if let Some(b) = asm.push(parsed).unwrap() {
                out = Some(b);
            }
        }
        prop_assert_eq!(out.unwrap(), bits);
    }

    #[test]
    fn nmea_multifrag_round_trip(data in arb_static()) {
        let msg = AisMessage::StaticVoyage(data);
        let (bits, fill) = encode_payload(&msg);
        let sentences = to_sentences(&bits, fill, 'B', 5);
        prop_assert!(sentences.len() >= 2);
        let mut asm = SentenceAssembler::new();
        let mut out = None;
        for s in &sentences {
            let parsed = parse_sentence(s).unwrap();
            if let Some(b) = asm.push(parsed).unwrap() {
                out = Some(b);
            }
        }
        // The receiver discards the fill padding bits.
        prop_assert_eq!(out.unwrap(), &bits[..bits.len() - fill]);
    }
}
