//! Golden-vector tests: real-world AIVDM sentences with externally
//! documented decodes.
//!
//! The round-trip property tests prove the codec is self-consistent;
//! these vectors prove it implements the *same* bit layout as every
//! other AIS receiver. The sentences and their expected fields are the
//! well-known examples from the public AIVDM/AIVDO protocol
//! documentation, cross-checked against an independent decoder.

use mda_ais::codec::decode_payload;
use mda_ais::messages::{AisMessage, NavigationalStatus, ShipType};
use mda_ais::nmea::{dearmor_payload, parse_sentence, NmeaError, SentenceAssembler};
use mda_ais::sixbit::{char_to_sixbit, sixbit_to_char};

/// Decode a single-fragment sentence end to end.
fn decode_single(line: &str) -> AisMessage {
    let s = parse_sentence(line).expect("valid sentence");
    assert_eq!(s.frag_count, 1);
    let bits = dearmor_payload(&s.payload, s.fill_bits).expect("valid payload");
    decode_payload(&bits).expect("decodable payload")
}

#[test]
fn type1_position_report_golden() {
    // Documented decode: MMSI 477553000, moored, SOG 0.0 kn,
    // 47.582833°N 122.345832°W, COG 51.0°, heading 181°, UTC second 15.
    let msg = decode_single("!AIVDM,1,1,,B,177KQJ5000G?tO`K>RA1wUbN0TKH,0*5C");
    let AisMessage::Position(p) = msg else { panic!("expected position report") };
    assert_eq!(p.msg_type, 1);
    assert_eq!(p.repeat, 0);
    assert_eq!(p.mmsi, 477_553_000);
    assert_eq!(p.status, NavigationalStatus::Moored);
    assert_eq!(p.rot_deg_min, Some(0.0));
    assert_eq!(p.sog_kn, Some(0.0));
    assert!(!p.position_accuracy);
    let pos = p.pos.expect("position available");
    assert!((pos.lat - 47.582_833).abs() < 1e-5, "lat {}", pos.lat);
    assert!((pos.lon - -122.345_832).abs() < 1e-5, "lon {}", pos.lon);
    assert_eq!(p.cog_deg, Some(51.0));
    assert_eq!(p.heading_deg, Some(181));
    assert_eq!(p.utc_second, 15);
}

#[test]
fn type5_static_voyage_multifragment_golden() {
    // The classic two-fragment type 5: MT.MITCHELL, bound for SEATTLE.
    let frags = [
        "!AIVDM,2,1,3,B,55P5TL01VIaAL@7WKO@mBplU@<PDhh000000001S;AJ::4A80?4i@E53,0*3E",
        "!AIVDM,2,2,3,B,1@0000000000000,2*55",
    ];
    let mut asm = SentenceAssembler::new();
    let mut done = None;
    for line in frags {
        let s = parse_sentence(line).expect("valid fragment");
        assert_eq!(s.frag_count, 2);
        assert_eq!(s.message_id, Some(3));
        assert_eq!(s.channel, 'B');
        if let Some(bits) = asm.push(s).expect("assembles") {
            done = Some(bits);
        }
    }
    let bits = done.expect("message completed on the final fragment");
    // 2 fragments × 6 bits/char minus the 2 fill bits = 424 logical bits.
    assert_eq!(bits.len(), 424);
    assert_eq!(asm.pending_count(), 0);

    let AisMessage::StaticVoyage(s) = decode_payload(&bits).expect("decodable") else {
        panic!("expected static voyage data")
    };
    assert_eq!(s.mmsi, 369_190_000);
    assert_eq!(s.imo, 6_710_932);
    assert_eq!(s.callsign, "WDA9674");
    assert_eq!(s.name, "MT.MITCHELL");
    assert_eq!(s.ship_type, ShipType::Other); // raw code 99
    assert_eq!((s.dim_to_bow, s.dim_to_stern), (90, 90));
    assert_eq!((s.dim_to_port, s.dim_to_starboard), (10, 10));
    assert_eq!((s.eta_month, s.eta_day, s.eta_hour, s.eta_minute), (1, 2, 8, 0));
    assert!((s.draught_m - 6.0).abs() < 1e-9);
    assert_eq!(s.destination, "SEATTLE");
}

#[test]
fn type5_fragments_assemble_in_any_order() {
    // A real receiver can see fragment 2 first.
    let frags = [
        "!AIVDM,2,2,3,B,1@0000000000000,2*55",
        "!AIVDM,2,1,3,B,55P5TL01VIaAL@7WKO@mBplU@<PDhh000000001S;AJ::4A80?4i@E53,0*3E",
    ];
    let mut asm = SentenceAssembler::new();
    let mut done = None;
    for line in frags {
        if let Some(bits) = asm.push(parse_sentence(line).unwrap()).unwrap() {
            done = Some(bits);
        }
    }
    let bits = done.expect("out-of-order fragments still assemble");
    let AisMessage::StaticVoyage(s) = decode_payload(&bits).unwrap() else {
        panic!("expected static voyage data")
    };
    assert_eq!(s.name, "MT.MITCHELL");
}

#[test]
fn type18_class_b_golden() {
    // Documented decode: MMSI 338087471, SOG 0.1 kn,
    // 40.684540°N 74.072132°W, COG 79.6°, heading not available.
    let msg = decode_single("!AIVDM,1,1,,A,B52K>;h00Fc>jpUlNV@ikwpUoP06,0*4C");
    let AisMessage::ClassBPosition(b) = msg else { panic!("expected class B report") };
    assert_eq!(b.mmsi, 338_087_471);
    assert_eq!(b.sog_kn, Some(0.1));
    let pos = b.pos.expect("position available");
    assert!((pos.lat - 40.684_540).abs() < 1e-5, "lat {}", pos.lat);
    assert!((pos.lon - -74.072_132).abs() < 1e-5, "lon {}", pos.lon);
    assert_eq!(b.cog_deg, Some(79.6));
    assert_eq!(b.heading_deg, None);
    assert_eq!(b.utc_second, 49);
}

#[test]
fn corrupted_golden_sentence_fails_checksum() {
    // Flip one payload character of the type 1 vector.
    let bad = "!AIVDM,1,1,,B,177KQJ5000G?tO`K>RA1wUbN0TKI,0*5C";
    match parse_sentence(bad) {
        Err(NmeaError::BadChecksum(_, _)) => {}
        other => panic!("expected checksum failure, got {other:?}"),
    }
}

// ---- sixbit armoring edge cases ------------------------------------

#[test]
fn sixbit_armoring_alphabet_edges() {
    // The armoring alphabet has a gap: values 0..=39 map to '0'..='W',
    // values 40..=63 skip 8 code points and map to '`'..='w'.
    let armor_of = |v: u8| {
        let mut c = v + 48;
        if c > 87 {
            c += 8;
        }
        c as char
    };
    assert_eq!(armor_of(0), '0');
    assert_eq!(armor_of(39), 'W'); // last before the gap
    assert_eq!(armor_of(40), '`'); // first after the gap
    assert_eq!(armor_of(63), 'w');
    // 'X'..'_' (88..=95) are inside the gap and must be rejected.
    for c in ['X', 'Y', 'Z', '[', '\\', ']', '^', '_'] {
        let line = format!("AIVDM,1,1,,A,{c},0");
        let cksum = line.bytes().fold(0u8, |a, b| a ^ b);
        let err = parse_sentence(&format!("!{line}*{cksum:02X}"))
            .and_then(|s| dearmor_payload(&s.payload, s.fill_bits));
        assert_eq!(err, Err(NmeaError::BadPayloadChar(c)), "{c} must be rejected");
    }
}

#[test]
fn sixbit_text_alphabet_edges() {
    // Text codes 0..=31 are '@'..='_', codes 32..=63 are ' '..='?'.
    assert_eq!(sixbit_to_char(0), '@');
    assert_eq!(sixbit_to_char(31), '_');
    assert_eq!(sixbit_to_char(32), ' ');
    assert_eq!(sixbit_to_char(63), '?');
    assert_eq!(char_to_sixbit('@'), 0);
    assert_eq!(char_to_sixbit('_'), 31);
    assert_eq!(char_to_sixbit(' '), 32);
    assert_eq!(char_to_sixbit('?'), 63);
    // Out-of-alphabet characters degrade to '@' (the AIS padding char).
    assert_eq!(char_to_sixbit('é'), 0);
    assert_eq!(char_to_sixbit('~'), 0);
    // Lower case upper-cases first.
    assert_eq!(char_to_sixbit('a'), 1);
    assert_eq!(char_to_sixbit('z'), 26);
}

#[test]
fn fill_bits_are_discarded_by_dearmor() {
    // One armored char = 6 bits; with 2 fill bits only 4 remain.
    let bits = dearmor_payload("0", 2).unwrap();
    assert_eq!(bits.len(), 4);
    // All fill: empty payloads survive.
    let empty = dearmor_payload("", 0).unwrap();
    assert!(empty.is_empty());
}
