//! Maritime Mobile Service Identity (MMSI) handling.
//!
//! An MMSI is a nine-digit identity whose leading digits encode the kind
//! of station and — for ships — the flag state (the three-digit Maritime
//! Identification Digits, MID). Identity-fraud detection in the veracity
//! experiments relies on these structural rules.

use serde::{Deserialize, Serialize};

/// A validated-on-demand MMSI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Mmsi(pub u32);

/// Coarse station category derived from the MMSI structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StationKind {
    /// Ordinary ship station (MID at digits 1–3).
    Ship,
    /// Coast station (00 prefix).
    CoastStation,
    /// Group ship station (0 prefix).
    Group,
    /// Search-and-rescue aircraft (111 prefix).
    SarAircraft,
    /// Aids to navigation (99 prefix).
    AidToNavigation,
    /// Craft associated with a parent ship (98 prefix).
    AuxiliaryCraft,
    /// Anything else / malformed.
    Unknown,
}

impl Mmsi {
    /// True if the value has exactly nine digits (i.e. is in
    /// `[100_000_000, 999_999_999]`) or is a structurally valid special
    /// prefix value below that range.
    pub fn is_plausible(&self) -> bool {
        self.0 >= 1_000_000 && self.0 <= 999_999_999
    }

    /// Station category from the leading digits.
    pub fn kind(&self) -> StationKind {
        let v = self.0;
        if !(1_000_000..=999_999_999).contains(&v) {
            return StationKind::Unknown;
        }
        let d9 = format!("{v:09}");
        let b = d9.as_bytes();
        match (b[0], b[1], b[2]) {
            (b'0', b'0', _) => StationKind::CoastStation,
            (b'0', _, _) => StationKind::Group,
            (b'1', b'1', b'1') => StationKind::SarAircraft,
            (b'9', b'9', _) => StationKind::AidToNavigation,
            (b'9', b'8', _) => StationKind::AuxiliaryCraft,
            (b'2'..=b'7', _, _) => StationKind::Ship,
            (b'8', _, _) => StationKind::Ship, // handheld VHF w/ DSC, treat as ship
            _ => StationKind::Unknown,
        }
    }

    /// The three Maritime Identification Digits for ship stations, or
    /// `None` for non-ship stations.
    pub fn mid(&self) -> Option<u16> {
        match self.kind() {
            StationKind::Ship => Some((self.0 / 1_000_000) as u16),
            _ => None,
        }
    }

    /// Flag state name for a handful of common MIDs (sufficient for the
    /// synthetic registries; unknown MIDs return `None`).
    pub fn flag(&self) -> Option<&'static str> {
        let mid = self.mid()?;
        Some(match mid {
            201 => "Albania",
            205 => "Belgium",
            211 | 218 => "Germany",
            219 | 220 => "Denmark",
            224 | 225 => "Spain",
            226..=228 => "France",
            229 | 248 | 249 | 256 => "Malta",
            230 => "Finland",
            231 | 257..=259 => "Norway",
            232..=235 => "United Kingdom",
            236 => "Gibraltar",
            237 | 239..=241 => "Greece",
            244..=246 => "Netherlands",
            247 => "Italy",
            255 | 263 => "Portugal",
            261 => "Poland",
            265 | 266 => "Sweden",
            271 => "Turkey",
            273 => "Russia",
            303 | 338 | 366..=369 => "United States",
            311 => "Bahamas",
            316 => "Canada",
            370..=373 => "Panama",
            354..=357 => "Panama",
            477 => "Hong Kong",
            412..=414 => "China",
            431 | 432 => "Japan",
            440 | 441 => "South Korea",
            533 => "Malaysia",
            563..=566 => "Singapore",
            636 => "Liberia",
            538 => "Marshall Islands",
            _ => return None,
        })
    }
}

impl std::fmt::Display for Mmsi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:09}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plausibility() {
        assert!(Mmsi(227_006_760).is_plausible());
        assert!(!Mmsi(0).is_plausible());
        assert!(!Mmsi(1_000_000_000).is_plausible());
    }

    #[test]
    fn ship_kind_and_mid() {
        let m = Mmsi(227_006_760);
        assert_eq!(m.kind(), StationKind::Ship);
        assert_eq!(m.mid(), Some(227));
        assert_eq!(m.flag(), Some("France"));
    }

    #[test]
    fn special_prefixes() {
        assert_eq!(Mmsi(111_000_123).kind(), StationKind::SarAircraft);
        assert_eq!(Mmsi(992_351_000).kind(), StationKind::AidToNavigation);
        assert_eq!(Mmsi(2_345_678).kind(), StationKind::CoastStation);
        assert_eq!(Mmsi(98_765_432).kind(), StationKind::Group);
        assert_eq!(Mmsi(983_456_789).kind(), StationKind::AuxiliaryCraft);
    }

    #[test]
    fn non_ship_has_no_mid() {
        assert_eq!(Mmsi(992_351_000).mid(), None);
        assert_eq!(Mmsi(992_351_000).flag(), None);
    }

    #[test]
    fn display_pads_to_nine() {
        assert_eq!(Mmsi(2_345_678).to_string(), "002345678");
        assert_eq!(Mmsi(227_006_760).to_string(), "227006760");
    }
}
