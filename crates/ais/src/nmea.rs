//! AIVDM/NMEA 0183 sentence framing.
//!
//! AIS payload bits are armored into printable ASCII and wrapped in
//! `!AIVDM` sentences with an XOR checksum; payloads longer than one
//! sentence (type 5) are split across fragments. [`SentenceAssembler`]
//! reassembles multi-fragment messages from an interleaved feed, as a
//! real receiver must.

use std::collections::HashMap;

/// Maximum payload characters per sentence (keeps sentences within the
/// 82-character NMEA limit).
const MAX_PAYLOAD_CHARS: usize = 60;

/// Errors arising while parsing NMEA sentences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NmeaError {
    /// The sentence does not start with `!AIVDM`/`!AIVDO`.
    NotAivdm,
    /// Wrong number of comma-separated fields.
    BadFieldCount,
    /// Checksum mismatch (got, want).
    BadChecksum(u8, u8),
    /// A numeric field failed to parse.
    BadNumber,
    /// A payload character is outside the armoring alphabet.
    BadPayloadChar(char),
}

impl std::fmt::Display for NmeaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NmeaError::NotAivdm => write!(f, "not an AIVDM sentence"),
            NmeaError::BadFieldCount => write!(f, "wrong AIVDM field count"),
            NmeaError::BadChecksum(g, w) => write!(f, "checksum {g:02X} != {w:02X}"),
            NmeaError::BadNumber => write!(f, "malformed numeric field"),
            NmeaError::BadPayloadChar(c) => write!(f, "invalid payload character {c:?}"),
        }
    }
}

impl std::error::Error for NmeaError {}

/// One parsed AIVDM sentence (a fragment of a message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence {
    /// Total fragments of the message.
    pub frag_count: u8,
    /// 1-based index of this fragment.
    pub frag_index: u8,
    /// Sequential message id linking fragments (empty for single-fragment
    /// messages).
    pub message_id: Option<u8>,
    /// Radio channel (`A` or `B`).
    pub channel: char,
    /// Armored payload characters.
    pub payload: String,
    /// Number of fill bits appended to the final 6-bit group.
    pub fill_bits: u8,
}

/// XOR checksum over the characters between `!` and `*`.
fn checksum(body: &str) -> u8 {
    body.bytes().fold(0, |acc, b| acc ^ b)
}

/// Armor a 6-bit value into its payload character.
fn armor(v: u8) -> char {
    let mut c = v + 48;
    if c > 87 {
        c += 8;
    }
    c as char
}

/// De-armor a payload character into its 6-bit value.
fn dearmor(c: char) -> Result<u8, NmeaError> {
    let v = c as u32;
    if !(48..=119).contains(&v) || (88..=95).contains(&v) {
        return Err(NmeaError::BadPayloadChar(c));
    }
    let mut x = v as u8 - 48;
    if x > 40 {
        x -= 8;
    }
    Ok(x)
}

/// Armor a bit stream (length must be a multiple of 6) into payload
/// characters.
pub fn armor_bits(bits: &[bool]) -> String {
    debug_assert_eq!(bits.len() % 6, 0, "payload bits must be 6-bit aligned");
    bits.chunks(6)
        .map(|chunk| {
            let v = chunk.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8);
            armor(v)
        })
        .collect()
}

/// De-armor payload characters back into bits, dropping `fill_bits`
/// trailing bits.
pub fn dearmor_payload(payload: &str, fill_bits: u8) -> Result<Vec<bool>, NmeaError> {
    let mut bits = Vec::with_capacity(payload.len() * 6);
    for c in payload.chars() {
        let v = dearmor(c)?;
        for i in (0..6).rev() {
            bits.push((v >> i) & 1 == 1);
        }
    }
    bits.truncate(bits.len().saturating_sub(fill_bits as usize));
    Ok(bits)
}

/// Frame payload bits into one or more `!AIVDM` sentences.
///
/// `message_id` is only emitted for multi-fragment messages, per
/// convention.
pub fn to_sentences(bits: &[bool], fill_bits: usize, channel: char, message_id: u8) -> Vec<String> {
    let payload = armor_bits(bits);
    let chunks: Vec<&str> = payload
        .as_bytes()
        .chunks(MAX_PAYLOAD_CHARS)
        .map(|c| std::str::from_utf8(c).expect("ascii payload"))
        .collect();
    let n = chunks.len().max(1);
    let mut out = Vec::with_capacity(n);
    for (i, chunk) in chunks.iter().enumerate() {
        let last = i + 1 == n;
        let fill = if last { fill_bits } else { 0 };
        let seq = if n > 1 { format!("{message_id}") } else { String::new() };
        let body = format!("AIVDM,{n},{},{seq},{channel},{chunk},{fill}", i + 1);
        out.push(format!("!{body}*{:02X}", checksum(&body)));
    }
    out
}

/// Parse one `!AIVDM` sentence, verifying the checksum.
pub fn parse_sentence(line: &str) -> Result<Sentence, NmeaError> {
    let line = line.trim();
    let rest = line.strip_prefix('!').ok_or(NmeaError::NotAivdm)?;
    let (body, cksum) = rest.split_once('*').ok_or(NmeaError::NotAivdm)?;
    let want = u8::from_str_radix(cksum.trim(), 16).map_err(|_| NmeaError::BadNumber)?;
    let got = checksum(body);
    if got != want {
        return Err(NmeaError::BadChecksum(got, want));
    }
    let fields: Vec<&str> = body.split(',').collect();
    if fields.len() != 7 {
        return Err(NmeaError::BadFieldCount);
    }
    if fields[0] != "AIVDM" && fields[0] != "AIVDO" {
        return Err(NmeaError::NotAivdm);
    }
    let frag_count: u8 = fields[1].parse().map_err(|_| NmeaError::BadNumber)?;
    let frag_index: u8 = fields[2].parse().map_err(|_| NmeaError::BadNumber)?;
    let message_id = if fields[3].is_empty() {
        None
    } else {
        Some(fields[3].parse().map_err(|_| NmeaError::BadNumber)?)
    };
    let channel = fields[4].chars().next().unwrap_or('A');
    let fill_bits: u8 = fields[6].parse().map_err(|_| NmeaError::BadNumber)?;
    Ok(Sentence {
        frag_count,
        frag_index,
        message_id,
        channel,
        payload: fields[5].to_string(),
        fill_bits,
    })
}

/// Reassembles multi-fragment messages from an interleaved sentence feed.
#[derive(Debug, Default)]
pub struct SentenceAssembler {
    pending: HashMap<(Option<u8>, char), Vec<Option<Sentence>>>,
}

impl SentenceAssembler {
    /// New assembler with no pending fragments.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one sentence; returns the full payload bits when a message
    /// completes.
    pub fn push(&mut self, s: Sentence) -> Result<Option<Vec<bool>>, NmeaError> {
        if s.frag_count <= 1 {
            return Ok(Some(dearmor_payload(&s.payload, s.fill_bits)?));
        }
        let key = (s.message_id, s.channel);
        let slot = self.pending.entry(key).or_insert_with(|| vec![None; s.frag_count as usize]);
        if slot.len() != s.frag_count as usize {
            // Conflicting fragment count: restart with the new one.
            *slot = vec![None; s.frag_count as usize];
        }
        let idx = (s.frag_index as usize).saturating_sub(1).min(slot.len() - 1);
        slot[idx] = Some(s);
        if slot.iter().all(Option::is_some) {
            let parts = self.pending.remove(&key).expect("just inserted");
            let mut bits = Vec::new();
            for part in parts.into_iter().flatten() {
                bits.extend(dearmor_payload(&part.payload, part.fill_bits)?);
            }
            return Ok(Some(bits));
        }
        Ok(None)
    }

    /// Number of messages awaiting fragments.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_payload, encode_payload};
    use crate::messages::{
        AisMessage, NavigationalStatus, PositionReport, ShipType, StaticVoyageData,
    };
    use mda_geo::Position;

    fn position_msg() -> AisMessage {
        AisMessage::Position(PositionReport {
            msg_type: 1,
            repeat: 0,
            mmsi: 227_006_760,
            status: NavigationalStatus::UnderWayUsingEngine,
            rot_deg_min: Some(-2.0),
            sog_kn: Some(10.1),
            position_accuracy: true,
            pos: Some(Position::new(49.4759, 0.1313)),
            cog_deg: Some(36.7),
            heading_deg: Some(38),
            utc_second: 15,
        })
    }

    fn static_msg() -> AisMessage {
        AisMessage::StaticVoyage(StaticVoyageData {
            repeat: 0,
            mmsi: 227_006_760,
            imo: 9_074_729,
            callsign: "FQHI".into(),
            name: "MN TOUCAN".into(),
            ship_type: ShipType::Cargo,
            dim_to_bow: 120,
            dim_to_stern: 34,
            dim_to_port: 10,
            dim_to_starboard: 12,
            eta_month: 6,
            eta_day: 14,
            eta_hour: 10,
            eta_minute: 30,
            draught_m: 7.4,
            destination: "MARSEILLE".into(),
        })
    }

    #[test]
    fn armor_dearmor_round_trip_all_values() {
        for v in 0..64u8 {
            assert_eq!(dearmor(armor(v)).unwrap(), v);
        }
    }

    #[test]
    fn dearmor_rejects_out_of_alphabet() {
        assert!(dearmor(' ').is_err());
        assert!(dearmor('X').is_err()); // 88 is in the forbidden gap
        assert!(dearmor('~').is_err());
    }

    #[test]
    fn single_sentence_round_trip() {
        let msg = position_msg();
        let (bits, fill) = encode_payload(&msg);
        let sentences = to_sentences(&bits, fill, 'A', 0);
        assert_eq!(sentences.len(), 1);
        assert!(sentences[0].starts_with("!AIVDM,1,1,,A,"));

        let parsed = parse_sentence(&sentences[0]).unwrap();
        let back = dearmor_payload(&parsed.payload, parsed.fill_bits).unwrap();
        assert_eq!(back, bits);
        let decoded = decode_payload(&back).unwrap();
        assert_eq!(decoded.mmsi(), 227_006_760);
    }

    #[test]
    fn multi_fragment_round_trip() {
        let msg = static_msg();
        let (bits, fill) = encode_payload(&msg);
        let sentences = to_sentences(&bits, fill, 'B', 3);
        assert!(sentences.len() >= 2, "type 5 must fragment");

        let mut asm = SentenceAssembler::new();
        let mut result = None;
        for s in &sentences {
            let parsed = parse_sentence(s).unwrap();
            if let Some(bits) = asm.push(parsed).unwrap() {
                result = Some(bits);
            }
        }
        let back = result.expect("message completed");
        // The receiver discards the `fill` padding bits.
        assert_eq!(back, bits[..bits.len() - fill]);
        match decode_payload(&back).unwrap() {
            AisMessage::StaticVoyage(s) => assert_eq!(s.name, "MN TOUCAN"),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn assembler_handles_interleaved_messages() {
        let (bits_a, fill_a) = encode_payload(&static_msg());
        let mut other = static_msg();
        if let AisMessage::StaticVoyage(s) = &mut other {
            s.mmsi = 228_000_111;
            s.name = "OTHER SHIP".into();
        }
        let (bits_b, fill_b) = encode_payload(&other);
        let sa = to_sentences(&bits_a, fill_a, 'A', 1);
        let sb = to_sentences(&bits_b, fill_b, 'A', 2);

        let mut asm = SentenceAssembler::new();
        // Interleave: a1 b1 a2 b2 ...
        let mut done = Vec::new();
        for pair in sa.iter().zip(sb.iter()) {
            for s in [pair.0, pair.1] {
                if let Some(bits) = asm.push(parse_sentence(s).unwrap()).unwrap() {
                    done.push(decode_payload(&bits).unwrap().mmsi());
                }
            }
        }
        assert_eq!(done.len(), 2);
        assert!(done.contains(&227_006_760));
        assert!(done.contains(&228_000_111));
        assert_eq!(asm.pending_count(), 0);
    }

    #[test]
    fn checksum_detects_corruption() {
        let msg = position_msg();
        let (bits, fill) = encode_payload(&msg);
        let mut sentence = to_sentences(&bits, fill, 'A', 0).remove(0);
        // Flip one payload character.
        let idx = 20;
        let mut chars: Vec<char> = sentence.chars().collect();
        chars[idx] = if chars[idx] == '0' { '1' } else { '0' };
        sentence = chars.into_iter().collect();
        match parse_sentence(&sentence) {
            Err(NmeaError::BadChecksum(_, _)) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(parse_sentence("$GPGGA,foo*00"), Err(NmeaError::NotAivdm));
        assert!(parse_sentence("!AIVDM,1,1,,A*33").is_err());
        assert!(parse_sentence("garbage").is_err());
    }

    #[test]
    fn sentences_respect_nmea_length() {
        let (bits, fill) = encode_payload(&static_msg());
        for s in to_sentences(&bits, fill, 'A', 0) {
            assert!(s.len() <= 82, "sentence too long: {} chars", s.len());
        }
    }
}
