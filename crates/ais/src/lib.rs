//! AIS (Automatic Identification System) data model and wire codec.
//!
//! Implements the parts of ITU-R M.1371 that maritime analytics pipelines
//! actually consume:
//!
//! - [`messages`] — typed message structs: class-A position reports
//!   (types 1/2/3), static & voyage data (type 5), class-B position
//!   reports (type 18) and the enclosing [`messages::AisMessage`] enum.
//! - [`sixbit`] — the 6-bit payload bit-level reader/writer including the
//!   AIS 6-bit ASCII character set.
//! - [`codec`] — message ↔ payload bit encoding/decoding with the exact
//!   field scales of the standard (1/10 000 min positions, 1/10 kn SOG…).
//! - [`nmea`] — AIVDM sentence framing: payload armoring, checksums and
//!   multi-fragment assembly.
//! - [`mmsi`] — MMSI validation and flag-state (MID) extraction.
//! - [`quality`] — per-message static validation used by the veracity
//!   experiments (the paper reports ~5% of static transmissions carry
//!   errors; the checks here are what detects them).
//!
//! The codec is round-trip tested (struct → payload → struct) both with
//! unit vectors and property tests, so the simulator can emit real AIVDM
//! sentences and the pipeline can ingest them as a real receiver would.

pub mod codec;
pub mod messages;
pub mod mmsi;
pub mod nmea;
pub mod quality;
pub mod sixbit;

pub use codec::{decode_payload, encode_payload, CodecError};
pub use messages::{
    AisMessage, ClassBPositionReport, NavigationalStatus, PositionReport, ShipType,
    StaticVoyageData,
};
pub use mmsi::Mmsi;
pub use nmea::{parse_sentence, to_sentences, NmeaError, SentenceAssembler};
