//! AIS (Automatic Identification System) data model and wire codec.
//!
//! Implements the parts of ITU-R M.1371 that maritime analytics pipelines
//! actually consume:
//!
//! - [`messages`] — typed message structs: class-A position reports
//!   (types 1/2/3), static & voyage data (type 5), class-B position
//!   reports (type 18) and the enclosing [`messages::AisMessage`] enum.
//! - [`sixbit`] — the 6-bit payload bit-level reader/writer including the
//!   AIS 6-bit ASCII character set.
//! - [`codec`] — message ↔ payload bit encoding/decoding with the exact
//!   field scales of the standard (1/10 000 min positions, 1/10 kn SOG…).
//! - [`nmea`] — AIVDM sentence framing: payload armoring, checksums and
//!   multi-fragment assembly.
//! - [`mmsi`] — MMSI validation and flag-state (MID) extraction.
//! - [`quality`] — per-message static validation used by the veracity
//!   experiments (the paper reports ~5% of static transmissions carry
//!   errors; the checks here are what detects them).
//!
//! The codec is round-trip tested (struct → payload → struct) both with
//! unit vectors and property tests, so the simulator can emit real AIVDM
//! sentences and the pipeline can ingest them as a real receiver would.
//!
//! ## Example
//!
//! ```
//! use mda_ais::{decode_payload, encode_payload, AisMessage, NavigationalStatus, PositionReport};
//! use mda_geo::Position;
//!
//! let report = PositionReport {
//!     msg_type: 1,
//!     repeat: 0,
//!     mmsi: 227_000_001,
//!     status: NavigationalStatus::from_raw(0),
//!     rot_deg_min: None,
//!     sog_kn: Some(12.3),
//!     position_accuracy: true,
//!     pos: Some(Position::new(43.29, 5.37)),
//!     cog_deg: Some(87.0),
//!     heading_deg: Some(86),
//!     utc_second: 11,
//! };
//! let (bits, _fill) = encode_payload(&AisMessage::Position(report));
//! assert_eq!(bits.len(), 168);
//! match decode_payload(&bits).unwrap() {
//!     AisMessage::Position(p) => assert_eq!(p.mmsi, 227_000_001),
//!     other => panic!("decoded wrong variant: {other:?}"),
//! }
//! ```

pub mod codec;
pub mod messages;
pub mod mmsi;
pub mod nmea;
pub mod quality;
pub mod sixbit;

pub use codec::{decode_payload, encode_payload, CodecError};
pub use messages::{
    AisMessage, ClassBPositionReport, NavigationalStatus, PositionReport, ShipType,
    StaticVoyageData,
};
pub use mmsi::Mmsi;
pub use nmea::{parse_sentence, to_sentences, NmeaError, SentenceAssembler};
