//! Static, single-message quality validation.
//!
//! The paper quotes that roughly 5% of AIS *static* transmissions carry
//! errors of some kind. These checks detect exactly those per-message
//! defects (structural MMSI problems, invalid IMO check digits,
//! impossible kinematics, malformed ETAs). Cross-message consistency
//! (identity fraud, kinematic spoofing) needs history and lives in
//! `mda-events::veracity`.

use crate::messages::{AisMessage, ClassBPositionReport, PositionReport, StaticVoyageData};
use crate::mmsi::{Mmsi, StationKind};
use serde::{Deserialize, Serialize};

/// A specific defect found in one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QualityIssue {
    /// MMSI is not a structurally plausible station identity.
    ImplausibleMmsi,
    /// MMSI is not a ship station but the message claims ship movement.
    NonShipStation,
    /// Position fields carry the "not available" sentinel.
    MissingPosition,
    /// Reported speed exceeds what any surface vessel can do (>80 kn).
    ImpossibleSpeed,
    /// Course over ground missing while the vessel reports way.
    MissingCourseUnderWay,
    /// IMO number fails its check-digit test (or is absent).
    BadImoCheckDigit,
    /// Ship name is empty.
    EmptyName,
    /// Declared dimensions are all zero.
    ZeroDimensions,
    /// ETA fields are out of calendar range.
    InvalidEta,
    /// Draught of zero on a ship that declares cargo/tanker type.
    SuspiciousDraught,
    /// Destination field is empty (an "obscured destination" per the
    /// paper's veracity discussion).
    EmptyDestination,
}

/// Validation result for one message.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QualityReport {
    /// All issues found (empty means clean).
    pub issues: Vec<QualityIssue>,
}

impl QualityReport {
    /// True when no defect was found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// True when a specific issue was flagged.
    pub fn has(&self, issue: QualityIssue) -> bool {
        self.issues.contains(&issue)
    }
}

/// Verify an IMO ship identification number's check digit.
///
/// The first six digits are weighted 7,6,5,4,3,2; the weighted sum modulo
/// 10 must equal the seventh digit.
pub fn imo_check_digit_valid(imo: u32) -> bool {
    if !(1_000_000..=9_999_999).contains(&imo) {
        return false;
    }
    let digits: Vec<u32> = (0..7).rev().map(|i| (imo / 10u32.pow(i)) % 10).collect();
    let sum: u32 = digits[..6].iter().zip([7u32, 6, 5, 4, 3, 2]).map(|(d, w)| d * w).sum();
    sum % 10 == digits[6]
}

/// Produce a valid IMO number from a 6-digit stem by appending the
/// correct check digit (used by the simulator to mint plausible fleets).
pub fn imo_from_stem(stem: u32) -> u32 {
    let stem = stem % 1_000_000;
    let digits: Vec<u32> = (0..6).rev().map(|i| (stem / 10u32.pow(i)) % 10).collect();
    let sum: u32 = digits.iter().zip([7u32, 6, 5, 4, 3, 2]).map(|(d, w)| d * w).sum();
    stem * 10 + sum % 10
}

/// Validate any message.
pub fn validate(msg: &AisMessage) -> QualityReport {
    match msg {
        AisMessage::Position(m) => validate_position(m),
        AisMessage::StaticVoyage(m) => validate_static(m),
        AisMessage::ClassBPosition(m) => validate_class_b(m),
    }
}

/// Validate a class-A position report.
pub fn validate_position(m: &PositionReport) -> QualityReport {
    let mut issues = Vec::new();
    check_mmsi(m.mmsi, &mut issues);
    if m.pos.is_none() {
        issues.push(QualityIssue::MissingPosition);
    }
    if let Some(sog) = m.sog_kn {
        if sog > 80.0 {
            issues.push(QualityIssue::ImpossibleSpeed);
        }
        if sog > 0.5 && m.cog_deg.is_none() {
            issues.push(QualityIssue::MissingCourseUnderWay);
        }
    }
    QualityReport { issues }
}

/// Validate a class-B position report.
pub fn validate_class_b(m: &ClassBPositionReport) -> QualityReport {
    let mut issues = Vec::new();
    check_mmsi(m.mmsi, &mut issues);
    if m.pos.is_none() {
        issues.push(QualityIssue::MissingPosition);
    }
    if let Some(sog) = m.sog_kn {
        if sog > 80.0 {
            issues.push(QualityIssue::ImpossibleSpeed);
        }
    }
    QualityReport { issues }
}

/// Validate a static & voyage data message.
pub fn validate_static(m: &StaticVoyageData) -> QualityReport {
    let mut issues = Vec::new();
    check_mmsi(m.mmsi, &mut issues);
    if !imo_check_digit_valid(m.imo) {
        issues.push(QualityIssue::BadImoCheckDigit);
    }
    if m.name.trim().is_empty() {
        issues.push(QualityIssue::EmptyName);
    }
    if m.dim_to_bow == 0 && m.dim_to_stern == 0 && m.dim_to_port == 0 && m.dim_to_starboard == 0 {
        issues.push(QualityIssue::ZeroDimensions);
    }
    if m.eta_month > 12 || m.eta_day > 31 || m.eta_hour > 24 || m.eta_minute > 60 {
        issues.push(QualityIssue::InvalidEta);
    }
    if m.draught_m == 0.0
        && matches!(
            m.ship_type,
            crate::messages::ShipType::Cargo | crate::messages::ShipType::Tanker
        )
    {
        issues.push(QualityIssue::SuspiciousDraught);
    }
    if m.destination.trim().is_empty() {
        issues.push(QualityIssue::EmptyDestination);
    }
    QualityReport { issues }
}

fn check_mmsi(mmsi: u32, issues: &mut Vec<QualityIssue>) {
    let m = Mmsi(mmsi);
    if !m.is_plausible() {
        issues.push(QualityIssue::ImplausibleMmsi);
    } else if !matches!(m.kind(), StationKind::Ship) {
        issues.push(QualityIssue::NonShipStation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{NavigationalStatus, ShipType};
    use mda_geo::Position;

    fn clean_static() -> StaticVoyageData {
        StaticVoyageData {
            repeat: 0,
            mmsi: 227_006_760,
            imo: imo_from_stem(907_472),
            callsign: "FQHI".into(),
            name: "MN TOUCAN".into(),
            ship_type: ShipType::Cargo,
            dim_to_bow: 120,
            dim_to_stern: 34,
            dim_to_port: 10,
            dim_to_starboard: 12,
            eta_month: 6,
            eta_day: 14,
            eta_hour: 10,
            eta_minute: 30,
            draught_m: 7.4,
            destination: "MARSEILLE".into(),
        }
    }

    fn clean_position() -> PositionReport {
        PositionReport {
            msg_type: 1,
            repeat: 0,
            mmsi: 227_006_760,
            status: NavigationalStatus::UnderWayUsingEngine,
            rot_deg_min: None,
            sog_kn: Some(12.0),
            position_accuracy: true,
            pos: Some(Position::new(43.0, 5.0)),
            cog_deg: Some(100.0),
            heading_deg: Some(101),
            utc_second: 9,
        }
    }

    #[test]
    fn imo_check_digit_known_values() {
        // 9074729 is the real IMO of a vessel; its check digit is valid.
        assert!(imo_check_digit_valid(9_074_729));
        assert!(!imo_check_digit_valid(9_074_728));
        assert!(!imo_check_digit_valid(0));
        assert!(!imo_check_digit_valid(123));
    }

    #[test]
    fn imo_from_stem_always_valid() {
        for stem in [0u32, 1, 907_472, 999_999, 123_456] {
            assert!(
                imo_check_digit_valid(imo_from_stem(stem).max(1_000_000)) || stem < 100_000,
                "stem {stem}"
            );
        }
        assert!(imo_check_digit_valid(imo_from_stem(907_472)));
    }

    #[test]
    fn clean_messages_pass() {
        assert!(validate_static(&clean_static()).is_clean());
        assert!(validate_position(&clean_position()).is_clean());
    }

    #[test]
    fn bad_mmsi_flagged() {
        let mut p = clean_position();
        p.mmsi = 42;
        assert!(validate_position(&p).has(QualityIssue::ImplausibleMmsi));
        p.mmsi = 992_000_001; // aid to navigation
        assert!(validate_position(&p).has(QualityIssue::NonShipStation));
    }

    #[test]
    fn impossible_speed_flagged() {
        let mut p = clean_position();
        p.sog_kn = Some(95.0);
        assert!(validate_position(&p).has(QualityIssue::ImpossibleSpeed));
    }

    #[test]
    fn missing_course_under_way_flagged() {
        let mut p = clean_position();
        p.cog_deg = None;
        assert!(validate_position(&p).has(QualityIssue::MissingCourseUnderWay));
        // But a stationary vessel may omit COG.
        p.sog_kn = Some(0.0);
        assert!(!validate_position(&p).has(QualityIssue::MissingCourseUnderWay));
    }

    #[test]
    fn static_defects_flagged() {
        let mut s = clean_static();
        s.imo = 9_074_728;
        s.name = "  ".into();
        s.destination = String::new();
        s.eta_month = 13;
        let r = validate_static(&s);
        assert!(r.has(QualityIssue::BadImoCheckDigit));
        assert!(r.has(QualityIssue::EmptyName));
        assert!(r.has(QualityIssue::EmptyDestination));
        assert!(r.has(QualityIssue::InvalidEta));
    }

    #[test]
    fn zero_dimensions_and_draught() {
        let mut s = clean_static();
        s.dim_to_bow = 0;
        s.dim_to_stern = 0;
        s.dim_to_port = 0;
        s.dim_to_starboard = 0;
        s.draught_m = 0.0;
        let r = validate_static(&s);
        assert!(r.has(QualityIssue::ZeroDimensions));
        assert!(r.has(QualityIssue::SuspiciousDraught));
    }

    #[test]
    fn validate_dispatches_over_enum() {
        let msg = AisMessage::StaticVoyage(clean_static());
        assert!(validate(&msg).is_clean());
    }
}
