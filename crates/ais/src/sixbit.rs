//! Bit-level reader/writer for AIS 6-bit payloads.
//!
//! AIS payloads are bit streams grouped into 6-bit symbols which are then
//! "armored" into printable ASCII for NMEA transport. [`BitWriter`] and
//! [`BitReader`] operate on the raw bit stream; armoring lives in
//! [`crate::nmea`].

/// Append-only bit buffer (MSB-first within the stream).
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bits: Vec<bool>,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True if no bits have been written.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Write the low `width` bits of `value`, most significant first.
    pub fn put_u32(&mut self, value: u32, width: usize) {
        assert!(width <= 32);
        for i in (0..width).rev() {
            self.bits.push((value >> i) & 1 == 1);
        }
    }

    /// Write a signed value in two's complement over `width` bits.
    pub fn put_i32(&mut self, value: i32, width: usize) {
        self.put_u32(value as u32, width);
    }

    /// Write a string as AIS 6-bit ASCII, padded with `@` (0) to exactly
    /// `chars` characters. Lower-case input is upper-cased; characters
    /// outside the 6-bit set become `@`.
    pub fn put_string(&mut self, s: &str, chars: usize) {
        let mut written = 0;
        for c in s.chars().take(chars) {
            self.put_u32(char_to_sixbit(c) as u32, 6);
            written += 1;
        }
        for _ in written..chars {
            self.put_u32(0, 6); // '@' padding
        }
    }

    /// Finish, padding with zero bits so the length is a multiple of 6,
    /// and return (bits, fill_bits_added).
    pub fn finish(mut self) -> (Vec<bool>, usize) {
        let fill = (6 - self.bits.len() % 6) % 6;
        for _ in 0..fill {
            self.bits.push(false);
        }
        (self.bits, fill)
    }
}

/// Sequential reader over a bit stream.
#[derive(Debug)]
pub struct BitReader<'a> {
    bits: &'a [bool],
    cursor: usize,
}

/// Error returned when a read runs past the end of the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

impl std::fmt::Display for OutOfBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "payload too short")
    }
}

impl std::error::Error for OutOfBits {}

impl<'a> BitReader<'a> {
    /// Read from the start of `bits`.
    pub fn new(bits: &'a [bool]) -> Self {
        Self { bits, cursor: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.cursor
    }

    /// Read `width` bits as an unsigned value.
    pub fn take_u32(&mut self, width: usize) -> Result<u32, OutOfBits> {
        assert!(width <= 32);
        if self.remaining() < width {
            return Err(OutOfBits);
        }
        let mut v = 0u32;
        for _ in 0..width {
            v = (v << 1) | (self.bits[self.cursor] as u32);
            self.cursor += 1;
        }
        Ok(v)
    }

    /// Read `width` bits as a signed (two's complement) value.
    pub fn take_i32(&mut self, width: usize) -> Result<i32, OutOfBits> {
        let raw = self.take_u32(width)?;
        let shift = 32 - width;
        Ok(((raw << shift) as i32) >> shift)
    }

    /// Read `chars` 6-bit characters as a trimmed string (`@` and
    /// trailing spaces removed).
    pub fn take_string(&mut self, chars: usize) -> Result<String, OutOfBits> {
        let mut s = String::with_capacity(chars);
        for _ in 0..chars {
            let v = self.take_u32(6)? as u8;
            s.push(sixbit_to_char(v));
        }
        // '@' marks unused positions; also trim trailing spaces.
        let trimmed = s.trim_end_matches(['@', ' ']).to_string();
        Ok(trimmed)
    }

    /// Skip `width` bits.
    pub fn skip(&mut self, width: usize) -> Result<(), OutOfBits> {
        if self.remaining() < width {
            return Err(OutOfBits);
        }
        self.cursor += width;
        Ok(())
    }
}

/// Map a character to its AIS 6-bit code. Valid input is `@A–Z[\]^_`
/// (codes 0–31) and space through `?` (codes 32–63); everything else
/// (including lower case after upper-casing fails) maps to 0 (`@`).
pub fn char_to_sixbit(c: char) -> u8 {
    let c = c.to_ascii_uppercase();
    let v = c as u32;
    match v {
        64..=95 => (v - 64) as u8, // '@'..'_' -> 0..31
        32..=63 => v as u8,        // ' '..'?' -> 32..63
        _ => 0,
    }
}

/// Map an AIS 6-bit code back to its character.
pub fn sixbit_to_char(v: u8) -> char {
    let v = v & 0x3f;
    if v < 32 {
        (v + 64) as char
    } else {
        v as char
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_round_trip() {
        let mut w = BitWriter::new();
        w.put_u32(6, 6);
        w.put_u32(0x3ffff, 18);
        w.put_u32(0, 3);
        w.put_u32(5, 3);
        let (bits, fill) = w.finish();
        assert_eq!(fill, 0);
        assert_eq!(bits.len(), 30);
        let mut r = BitReader::new(&bits);
        assert_eq!(r.take_u32(6).unwrap(), 6);
        assert_eq!(r.take_u32(18).unwrap(), 0x3ffff);
        assert_eq!(r.take_u32(3).unwrap(), 0);
        assert_eq!(r.take_u32(3).unwrap(), 5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn i32_round_trip_negative() {
        let mut w = BitWriter::new();
        w.put_i32(-1, 8);
        w.put_i32(-12345, 28);
        w.put_i32(12345, 28);
        let (bits, _) = w.finish();
        let mut r = BitReader::new(&bits);
        assert_eq!(r.take_i32(8).unwrap(), -1);
        assert_eq!(r.take_i32(28).unwrap(), -12345);
        assert_eq!(r.take_i32(28).unwrap(), 12345);
    }

    #[test]
    fn string_round_trip_and_padding() {
        let mut w = BitWriter::new();
        w.put_string("MN TOUCAN", 20);
        let (bits, _) = w.finish();
        assert_eq!(bits.len(), 120);
        let mut r = BitReader::new(&bits);
        assert_eq!(r.take_string(20).unwrap(), "MN TOUCAN");
    }

    #[test]
    fn string_is_uppercased_and_truncated() {
        let mut w = BitWriter::new();
        w.put_string("marseille-fos port", 9);
        let (bits, _) = w.finish();
        let mut r = BitReader::new(&bits);
        assert_eq!(r.take_string(9).unwrap(), "MARSEILLE");
    }

    #[test]
    fn char_mapping_table() {
        assert_eq!(char_to_sixbit('@'), 0);
        assert_eq!(char_to_sixbit('A'), 1);
        assert_eq!(char_to_sixbit('Z'), 26);
        assert_eq!(char_to_sixbit(' '), 32);
        assert_eq!(char_to_sixbit('?'), 63);
        assert_eq!(char_to_sixbit('0'), 48);
        for v in 0..64u8 {
            assert_eq!(char_to_sixbit(sixbit_to_char(v)), v);
        }
    }

    #[test]
    fn finish_pads_to_multiple_of_six() {
        let mut w = BitWriter::new();
        w.put_u32(1, 4);
        let (bits, fill) = w.finish();
        assert_eq!(fill, 2);
        assert_eq!(bits.len(), 6);
    }

    #[test]
    fn reader_overrun_errors() {
        let bits = vec![true; 5];
        let mut r = BitReader::new(&bits);
        assert!(r.take_u32(6).is_err());
        assert!(r.take_u32(5).is_ok());
        assert!(r.take_u32(1).is_err());
    }

    #[test]
    fn skip_advances() {
        let bits = vec![false, true, false, true];
        let mut r = BitReader::new(&bits);
        r.skip(2).unwrap();
        assert_eq!(r.take_u32(2).unwrap(), 0b01);
        assert!(r.skip(1).is_err());
    }
}
