//! Typed AIS messages.
//!
//! The structs mirror the decoded semantics of ITU-R M.1371 messages with
//! "not available" sentinels mapped to `Option`. Positions use
//! [`mda_geo::Position`]; raw field scales live only in [`crate::codec`].

use mda_geo::{Position, Timestamp};
use serde::{Deserialize, Serialize};

/// Navigational status field of class-A position reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NavigationalStatus {
    /// Under way using engine.
    UnderWayUsingEngine,
    /// At anchor.
    AtAnchor,
    /// Not under command.
    NotUnderCommand,
    /// Restricted manoeuvrability.
    RestrictedManoeuvrability,
    /// Constrained by her draught.
    ConstrainedByDraught,
    /// Moored.
    Moored,
    /// Aground.
    Aground,
    /// Engaged in fishing.
    EngagedInFishing,
    /// Under way sailing.
    UnderWaySailing,
    /// Reserved / future use (raw value kept).
    Reserved(u8),
    /// Not defined (default, value 15).
    NotDefined,
}

impl NavigationalStatus {
    /// Decode the 4-bit field.
    pub fn from_raw(v: u8) -> Self {
        match v {
            0 => Self::UnderWayUsingEngine,
            1 => Self::AtAnchor,
            2 => Self::NotUnderCommand,
            3 => Self::RestrictedManoeuvrability,
            4 => Self::ConstrainedByDraught,
            5 => Self::Moored,
            6 => Self::Aground,
            7 => Self::EngagedInFishing,
            8 => Self::UnderWaySailing,
            15 => Self::NotDefined,
            v => Self::Reserved(v & 0x0f),
        }
    }

    /// Encode back to the 4-bit field.
    pub fn to_raw(self) -> u8 {
        match self {
            Self::UnderWayUsingEngine => 0,
            Self::AtAnchor => 1,
            Self::NotUnderCommand => 2,
            Self::RestrictedManoeuvrability => 3,
            Self::ConstrainedByDraught => 4,
            Self::Moored => 5,
            Self::Aground => 6,
            Self::EngagedInFishing => 7,
            Self::UnderWaySailing => 8,
            Self::Reserved(v) => v,
            Self::NotDefined => 15,
        }
    }

    /// True if the status implies the vessel is stationary.
    pub fn is_stationary(&self) -> bool {
        matches!(self, Self::AtAnchor | Self::Moored | Self::Aground)
    }
}

/// Coarse ship type (decoded from the 8-bit type-of-ship-and-cargo field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShipType {
    /// 30 — fishing vessel.
    Fishing,
    /// 31–32 — towing.
    Towing,
    /// 36 — sailing vessel.
    Sailing,
    /// 37 — pleasure craft.
    Pleasure,
    /// 40–49 — high-speed craft.
    HighSpeedCraft,
    /// 50 — pilot vessel.
    Pilot,
    /// 51 — search and rescue.
    SearchAndRescue,
    /// 52 — tug.
    Tug,
    /// 55 — law enforcement.
    LawEnforcement,
    /// 60–69 — passenger ship.
    Passenger,
    /// 70–79 — cargo ship.
    Cargo,
    /// 80–89 — tanker.
    Tanker,
    /// 90–99 — other.
    Other,
    /// 0 or unknown code.
    Unspecified,
}

impl ShipType {
    /// Decode the 8-bit raw code.
    pub fn from_raw(v: u8) -> Self {
        match v {
            30 => Self::Fishing,
            31 | 32 => Self::Towing,
            36 => Self::Sailing,
            37 => Self::Pleasure,
            40..=49 => Self::HighSpeedCraft,
            50 => Self::Pilot,
            51 => Self::SearchAndRescue,
            52 => Self::Tug,
            55 => Self::LawEnforcement,
            60..=69 => Self::Passenger,
            70..=79 => Self::Cargo,
            80..=89 => Self::Tanker,
            90..=99 => Self::Other,
            _ => Self::Unspecified,
        }
    }

    /// Canonical raw code for encoding (first code of the range).
    pub fn to_raw(self) -> u8 {
        match self {
            Self::Fishing => 30,
            Self::Towing => 31,
            Self::Sailing => 36,
            Self::Pleasure => 37,
            Self::HighSpeedCraft => 40,
            Self::Pilot => 50,
            Self::SearchAndRescue => 51,
            Self::Tug => 52,
            Self::LawEnforcement => 55,
            Self::Passenger => 60,
            Self::Cargo => 70,
            Self::Tanker => 80,
            Self::Other => 90,
            Self::Unspecified => 0,
        }
    }
}

/// Class-A position report (message types 1, 2 and 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PositionReport {
    /// Message type (1, 2 or 3) — preserved for round-tripping.
    pub msg_type: u8,
    /// Repeat indicator (0–3).
    pub repeat: u8,
    /// Source MMSI.
    pub mmsi: u32,
    /// Navigational status.
    pub status: NavigationalStatus,
    /// Rate of turn in degrees/minute; `None` when not available.
    pub rot_deg_min: Option<f64>,
    /// Speed over ground in knots; `None` when not available (raw 1023).
    pub sog_kn: Option<f64>,
    /// High position accuracy flag (<10 m when true — the paper quotes
    /// ~10 m GPS accuracy for AIS).
    pub position_accuracy: bool,
    /// Position; `None` when lat/lon carry the "not available" sentinels.
    pub pos: Option<Position>,
    /// Course over ground in degrees; `None` when not available (3600).
    pub cog_deg: Option<f64>,
    /// True heading in degrees; `None` when not available (511).
    pub heading_deg: Option<u16>,
    /// UTC second of the report (0–59); 60+ are special codes.
    pub utc_second: u8,
}

/// Static and voyage-related data (message type 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticVoyageData {
    /// Repeat indicator.
    pub repeat: u8,
    /// Source MMSI.
    pub mmsi: u32,
    /// IMO ship identification number (0 = not available).
    pub imo: u32,
    /// Radio call sign (up to 7 six-bit characters, trimmed).
    pub callsign: String,
    /// Ship name (up to 20 six-bit characters, trimmed).
    pub name: String,
    /// Ship and cargo type.
    pub ship_type: ShipType,
    /// Distance from reference point to bow, metres.
    pub dim_to_bow: u16,
    /// Distance to stern, metres.
    pub dim_to_stern: u16,
    /// Distance to port side, metres.
    pub dim_to_port: u8,
    /// Distance to starboard side, metres.
    pub dim_to_starboard: u8,
    /// ETA month (1–12, 0 = n/a).
    pub eta_month: u8,
    /// ETA day (1–31, 0 = n/a).
    pub eta_day: u8,
    /// ETA hour (0–23, 24 = n/a).
    pub eta_hour: u8,
    /// ETA minute (0–59, 60 = n/a).
    pub eta_minute: u8,
    /// Maximum present static draught in metres.
    pub draught_m: f64,
    /// Destination (up to 20 six-bit characters, trimmed).
    pub destination: String,
}

impl StaticVoyageData {
    /// Overall length in metres from the dimension fields.
    pub fn length_m(&self) -> u16 {
        self.dim_to_bow + self.dim_to_stern
    }

    /// Overall beam in metres from the dimension fields.
    pub fn beam_m(&self) -> u16 {
        self.dim_to_port as u16 + self.dim_to_starboard as u16
    }
}

/// Class-B position report (message type 18).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassBPositionReport {
    /// Repeat indicator.
    pub repeat: u8,
    /// Source MMSI.
    pub mmsi: u32,
    /// Speed over ground in knots; `None` when not available.
    pub sog_kn: Option<f64>,
    /// High position accuracy flag.
    pub position_accuracy: bool,
    /// Position; `None` when not available.
    pub pos: Option<Position>,
    /// Course over ground in degrees; `None` when not available.
    pub cog_deg: Option<f64>,
    /// True heading; `None` when not available.
    pub heading_deg: Option<u16>,
    /// UTC second of the report.
    pub utc_second: u8,
}

/// Any decoded AIS message the workspace understands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AisMessage {
    /// Types 1/2/3.
    Position(PositionReport),
    /// Type 5.
    StaticVoyage(StaticVoyageData),
    /// Type 18.
    ClassBPosition(ClassBPositionReport),
}

impl AisMessage {
    /// The source MMSI of any message.
    pub fn mmsi(&self) -> u32 {
        match self {
            AisMessage::Position(m) => m.mmsi,
            AisMessage::StaticVoyage(m) => m.mmsi,
            AisMessage::ClassBPosition(m) => m.mmsi,
        }
    }

    /// The wire message type.
    pub fn msg_type(&self) -> u8 {
        match self {
            AisMessage::Position(m) => m.msg_type,
            AisMessage::StaticVoyage(_) => 5,
            AisMessage::ClassBPosition(_) => 18,
        }
    }

    /// Extract a kinematic fix if this message carries a usable position.
    /// `t` is the receiver timestamp to attach.
    pub fn to_fix(&self, t: Timestamp) -> Option<mda_geo::Fix> {
        match self {
            AisMessage::Position(m) => {
                let pos = m.pos?;
                Some(mda_geo::Fix::new(
                    m.mmsi,
                    t,
                    pos,
                    m.sog_kn.unwrap_or(0.0),
                    m.cog_deg.unwrap_or(0.0),
                ))
            }
            AisMessage::ClassBPosition(m) => {
                let pos = m.pos?;
                Some(mda_geo::Fix::new(
                    m.mmsi,
                    t,
                    pos,
                    m.sog_kn.unwrap_or(0.0),
                    m.cog_deg.unwrap_or(0.0),
                ))
            }
            AisMessage::StaticVoyage(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nav_status_round_trip() {
        for raw in 0..=15u8 {
            assert_eq!(NavigationalStatus::from_raw(raw).to_raw(), raw);
        }
    }

    #[test]
    fn nav_status_stationary() {
        assert!(NavigationalStatus::Moored.is_stationary());
        assert!(NavigationalStatus::AtAnchor.is_stationary());
        assert!(!NavigationalStatus::UnderWayUsingEngine.is_stationary());
    }

    #[test]
    fn ship_type_ranges() {
        assert_eq!(ShipType::from_raw(74), ShipType::Cargo);
        assert_eq!(ShipType::from_raw(83), ShipType::Tanker);
        assert_eq!(ShipType::from_raw(30), ShipType::Fishing);
        assert_eq!(ShipType::from_raw(0), ShipType::Unspecified);
        assert_eq!(ShipType::from_raw(255), ShipType::Unspecified);
    }

    #[test]
    fn ship_type_round_trip_canonical() {
        for t in [
            ShipType::Fishing,
            ShipType::Cargo,
            ShipType::Tanker,
            ShipType::Passenger,
            ShipType::Tug,
        ] {
            assert_eq!(ShipType::from_raw(t.to_raw()), t);
        }
    }

    #[test]
    fn static_dimensions() {
        let s = StaticVoyageData {
            repeat: 0,
            mmsi: 227_006_760,
            imo: 9_074_729,
            callsign: "FQHI".into(),
            name: "MN TOUCAN".into(),
            ship_type: ShipType::Cargo,
            dim_to_bow: 120,
            dim_to_stern: 34,
            dim_to_port: 10,
            dim_to_starboard: 12,
            eta_month: 6,
            eta_day: 14,
            eta_hour: 10,
            eta_minute: 30,
            draught_m: 7.4,
            destination: "MARSEILLE".into(),
        };
        assert_eq!(s.length_m(), 154);
        assert_eq!(s.beam_m(), 22);
    }

    #[test]
    fn to_fix_requires_position() {
        let m = AisMessage::Position(PositionReport {
            msg_type: 1,
            repeat: 0,
            mmsi: 227_000_001,
            status: NavigationalStatus::UnderWayUsingEngine,
            rot_deg_min: None,
            sog_kn: Some(11.5),
            position_accuracy: true,
            pos: Some(Position::new(43.1, 5.2)),
            cog_deg: Some(180.0),
            heading_deg: Some(181),
            utc_second: 30,
        });
        let f = m.to_fix(Timestamp::from_secs(100)).unwrap();
        assert_eq!(f.id, 227_000_001);
        assert_eq!(f.sog_kn, 11.5);

        let no_pos = AisMessage::Position(PositionReport {
            pos: None,
            ..match m {
                AisMessage::Position(p) => p,
                _ => unreachable!(),
            }
        });
        assert!(no_pos.to_fix(Timestamp::from_secs(100)).is_none());
    }
}
