//! Encoding and decoding of AIS messages to/from the 6-bit payload
//! bit stream, with the exact field widths and scales of ITU-R M.1371.

use crate::messages::{
    AisMessage, ClassBPositionReport, NavigationalStatus, PositionReport, ShipType,
    StaticVoyageData,
};
use crate::sixbit::{BitReader, BitWriter, OutOfBits};
use mda_geo::Position;

/// Errors arising while decoding a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The message type is not one this library implements.
    UnsupportedType(u8),
    /// The payload ended before all mandatory fields were read.
    Truncated,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnsupportedType(t) => write!(f, "unsupported AIS message type {t}"),
            CodecError::Truncated => write!(f, "truncated AIS payload"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<OutOfBits> for CodecError {
    fn from(_: OutOfBits) -> Self {
        CodecError::Truncated
    }
}

// ---- field scales ----------------------------------------------------

const LON_NA_RAW: i32 = 181 * 600_000; // 0x6791AC0
const LAT_NA_RAW: i32 = 91 * 600_000;
const SOG_NA_RAW: u32 = 1023;
const COG_NA_RAW: u32 = 3600;
const HDG_NA_RAW: u32 = 511;
const ROT_NA_RAW: i32 = -128;

fn encode_lon(lon: Option<f64>) -> i32 {
    match lon {
        Some(l) => (l * 600_000.0).round() as i32,
        None => LON_NA_RAW,
    }
}

fn encode_lat(lat: Option<f64>) -> i32 {
    match lat {
        Some(l) => (l * 600_000.0).round() as i32,
        None => LAT_NA_RAW,
    }
}

fn decode_pos(lon_raw: i32, lat_raw: i32) -> Option<Position> {
    if lon_raw == LON_NA_RAW || lat_raw == LAT_NA_RAW {
        return None;
    }
    Position::checked(lat_raw as f64 / 600_000.0, lon_raw as f64 / 600_000.0)
}

fn encode_sog(sog: Option<f64>) -> u32 {
    match sog {
        Some(s) => ((s * 10.0).round() as u32).min(1022),
        None => SOG_NA_RAW,
    }
}

fn decode_sog(raw: u32) -> Option<f64> {
    if raw == SOG_NA_RAW {
        None
    } else {
        Some(raw as f64 / 10.0)
    }
}

fn encode_cog(cog: Option<f64>) -> u32 {
    match cog {
        Some(c) => ((c.rem_euclid(360.0) * 10.0).round() as u32).min(3599),
        None => COG_NA_RAW,
    }
}

fn decode_cog(raw: u32) -> Option<f64> {
    if raw >= COG_NA_RAW {
        None
    } else {
        Some(raw as f64 / 10.0)
    }
}

fn encode_heading(h: Option<u16>) -> u32 {
    match h {
        Some(h) => (h % 360) as u32,
        None => HDG_NA_RAW,
    }
}

fn decode_heading(raw: u32) -> Option<u16> {
    if raw == HDG_NA_RAW {
        None
    } else {
        Some(raw as u16)
    }
}

/// AIS rate-of-turn coding: `raw = 4.733 * sqrt(|rot|) * sign(rot)`.
fn encode_rot(rot: Option<f64>) -> i32 {
    match rot {
        Some(r) => {
            let coded = 4.733 * r.abs().sqrt();
            let v = coded.round().min(126.0) as i32;
            if r < 0.0 {
                -v
            } else {
                v
            }
        }
        None => ROT_NA_RAW,
    }
}

fn decode_rot(raw: i32) -> Option<f64> {
    if raw == ROT_NA_RAW {
        return None;
    }
    let v = raw as f64 / 4.733;
    Some(v * v * raw.signum() as f64)
}

// ---- encoding --------------------------------------------------------

/// Encode a message into payload bits; returns `(bits, fill_bits)`.
pub fn encode_payload(msg: &AisMessage) -> (Vec<bool>, usize) {
    let mut w = BitWriter::new();
    match msg {
        AisMessage::Position(m) => encode_position(&mut w, m),
        AisMessage::StaticVoyage(m) => encode_static(&mut w, m),
        AisMessage::ClassBPosition(m) => encode_class_b(&mut w, m),
    }
    w.finish()
}

fn encode_position(w: &mut BitWriter, m: &PositionReport) {
    w.put_u32(m.msg_type as u32, 6);
    w.put_u32(m.repeat as u32, 2);
    w.put_u32(m.mmsi, 30);
    w.put_u32(m.status.to_raw() as u32, 4);
    w.put_i32(encode_rot(m.rot_deg_min), 8);
    w.put_u32(encode_sog(m.sog_kn), 10);
    w.put_u32(m.position_accuracy as u32, 1);
    w.put_i32(encode_lon(m.pos.map(|p| p.lon)), 28);
    w.put_i32(encode_lat(m.pos.map(|p| p.lat)), 27);
    w.put_u32(encode_cog(m.cog_deg), 12);
    w.put_u32(encode_heading(m.heading_deg), 9);
    w.put_u32(m.utc_second as u32, 6);
    w.put_u32(0, 2); // manoeuvre indicator: not available
    w.put_u32(0, 3); // spare
    w.put_u32(0, 1); // RAIM
    w.put_u32(0, 19); // radio status
}

fn encode_static(w: &mut BitWriter, m: &StaticVoyageData) {
    w.put_u32(5, 6);
    w.put_u32(m.repeat as u32, 2);
    w.put_u32(m.mmsi, 30);
    w.put_u32(0, 2); // AIS version
    w.put_u32(m.imo, 30);
    w.put_string(&m.callsign, 7);
    w.put_string(&m.name, 20);
    w.put_u32(m.ship_type.to_raw() as u32, 8);
    w.put_u32(m.dim_to_bow as u32, 9);
    w.put_u32(m.dim_to_stern as u32, 9);
    w.put_u32(m.dim_to_port as u32, 6);
    w.put_u32(m.dim_to_starboard as u32, 6);
    w.put_u32(1, 4); // EPFD: GPS
    w.put_u32(m.eta_month as u32, 4);
    w.put_u32(m.eta_day as u32, 5);
    w.put_u32(m.eta_hour as u32, 5);
    w.put_u32(m.eta_minute as u32, 6);
    w.put_u32(((m.draught_m * 10.0).round() as u32).min(255), 8);
    w.put_string(&m.destination, 20);
    w.put_u32(0, 1); // DTE
    w.put_u32(0, 1); // spare
}

fn encode_class_b(w: &mut BitWriter, m: &ClassBPositionReport) {
    w.put_u32(18, 6);
    w.put_u32(m.repeat as u32, 2);
    w.put_u32(m.mmsi, 30);
    w.put_u32(0, 8); // reserved
    w.put_u32(encode_sog(m.sog_kn), 10);
    w.put_u32(m.position_accuracy as u32, 1);
    w.put_i32(encode_lon(m.pos.map(|p| p.lon)), 28);
    w.put_i32(encode_lat(m.pos.map(|p| p.lat)), 27);
    w.put_u32(encode_cog(m.cog_deg), 12);
    w.put_u32(encode_heading(m.heading_deg), 9);
    w.put_u32(m.utc_second as u32, 6);
    w.put_u32(0, 2); // reserved
    w.put_u32(1, 1); // CS unit
    w.put_u32(0, 1); // display
    w.put_u32(0, 1); // DSC
    w.put_u32(0, 1); // band
    w.put_u32(0, 1); // message 22
    w.put_u32(0, 1); // assigned
    w.put_u32(0, 1); // RAIM
    w.put_u32(0, 20); // radio status
}

// ---- decoding --------------------------------------------------------

/// Decode payload bits into a typed message.
pub fn decode_payload(bits: &[bool]) -> Result<AisMessage, CodecError> {
    let mut r = BitReader::new(bits);
    let msg_type = r.take_u32(6)? as u8;
    match msg_type {
        1..=3 => decode_position(&mut r, msg_type),
        5 => decode_static(&mut r),
        18 => decode_class_b(&mut r),
        t => Err(CodecError::UnsupportedType(t)),
    }
}

fn decode_position(r: &mut BitReader, msg_type: u8) -> Result<AisMessage, CodecError> {
    let repeat = r.take_u32(2)? as u8;
    let mmsi = r.take_u32(30)?;
    let status = NavigationalStatus::from_raw(r.take_u32(4)? as u8);
    let rot = decode_rot(r.take_i32(8)?);
    let sog = decode_sog(r.take_u32(10)?);
    let accuracy = r.take_u32(1)? == 1;
    let lon_raw = r.take_i32(28)?;
    let lat_raw = r.take_i32(27)?;
    let cog = decode_cog(r.take_u32(12)?);
    let heading = decode_heading(r.take_u32(9)?);
    let utc_second = r.take_u32(6)? as u8;
    // manoeuvre(2) + spare(3) + RAIM(1) + radio(19) are not modelled.
    Ok(AisMessage::Position(PositionReport {
        msg_type,
        repeat,
        mmsi,
        status,
        rot_deg_min: rot,
        sog_kn: sog,
        position_accuracy: accuracy,
        pos: decode_pos(lon_raw, lat_raw),
        cog_deg: cog,
        heading_deg: heading,
        utc_second,
    }))
}

fn decode_static(r: &mut BitReader) -> Result<AisMessage, CodecError> {
    let repeat = r.take_u32(2)? as u8;
    let mmsi = r.take_u32(30)?;
    r.skip(2)?; // AIS version
    let imo = r.take_u32(30)?;
    let callsign = r.take_string(7)?;
    let name = r.take_string(20)?;
    let ship_type = ShipType::from_raw(r.take_u32(8)? as u8);
    let dim_to_bow = r.take_u32(9)? as u16;
    let dim_to_stern = r.take_u32(9)? as u16;
    let dim_to_port = r.take_u32(6)? as u8;
    let dim_to_starboard = r.take_u32(6)? as u8;
    r.skip(4)?; // EPFD
    let eta_month = r.take_u32(4)? as u8;
    let eta_day = r.take_u32(5)? as u8;
    let eta_hour = r.take_u32(5)? as u8;
    let eta_minute = r.take_u32(6)? as u8;
    let draught_m = r.take_u32(8)? as f64 / 10.0;
    let destination = r.take_string(20)?;
    Ok(AisMessage::StaticVoyage(StaticVoyageData {
        repeat,
        mmsi,
        imo,
        callsign,
        name,
        ship_type,
        dim_to_bow,
        dim_to_stern,
        dim_to_port,
        dim_to_starboard,
        eta_month,
        eta_day,
        eta_hour,
        eta_minute,
        draught_m,
        destination,
    }))
}

fn decode_class_b(r: &mut BitReader) -> Result<AisMessage, CodecError> {
    let repeat = r.take_u32(2)? as u8;
    let mmsi = r.take_u32(30)?;
    r.skip(8)?;
    let sog = decode_sog(r.take_u32(10)?);
    let accuracy = r.take_u32(1)? == 1;
    let lon_raw = r.take_i32(28)?;
    let lat_raw = r.take_i32(27)?;
    let cog = decode_cog(r.take_u32(12)?);
    let heading = decode_heading(r.take_u32(9)?);
    let utc_second = r.take_u32(6)? as u8;
    Ok(AisMessage::ClassBPosition(ClassBPositionReport {
        repeat,
        mmsi,
        sog_kn: sog,
        position_accuracy: accuracy,
        pos: decode_pos(lon_raw, lat_raw),
        cog_deg: cog,
        heading_deg: heading,
        utc_second,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_position() -> AisMessage {
        AisMessage::Position(PositionReport {
            msg_type: 1,
            repeat: 0,
            mmsi: 227_006_760,
            status: NavigationalStatus::UnderWayUsingEngine,
            rot_deg_min: None,
            sog_kn: Some(12.3),
            position_accuracy: true,
            pos: Some(Position::new(43.2965, 5.3698)),
            cog_deg: Some(211.9),
            heading_deg: Some(210),
            utc_second: 40,
        })
    }

    fn sample_static() -> AisMessage {
        AisMessage::StaticVoyage(StaticVoyageData {
            repeat: 0,
            mmsi: 227_006_760,
            imo: 9_074_729,
            callsign: "FQHI".into(),
            name: "MN TOUCAN".into(),
            ship_type: ShipType::Cargo,
            dim_to_bow: 120,
            dim_to_stern: 34,
            dim_to_port: 10,
            dim_to_starboard: 12,
            eta_month: 6,
            eta_day: 14,
            eta_hour: 10,
            eta_minute: 30,
            draught_m: 7.4,
            destination: "MARSEILLE".into(),
        })
    }

    #[test]
    fn position_round_trip() {
        let msg = sample_position();
        let (bits, fill) = encode_payload(&msg);
        assert_eq!(bits.len(), 168);
        assert_eq!(fill, 0);
        let decoded = decode_payload(&bits).unwrap();
        match (&msg, &decoded) {
            (AisMessage::Position(a), AisMessage::Position(b)) => {
                assert_eq!(a.mmsi, b.mmsi);
                assert_eq!(a.msg_type, b.msg_type);
                assert_eq!(a.status, b.status);
                assert_eq!(a.sog_kn, b.sog_kn);
                assert_eq!(a.cog_deg, b.cog_deg);
                assert_eq!(a.heading_deg, b.heading_deg);
                let (pa, pb) = (a.pos.unwrap(), b.pos.unwrap());
                assert!((pa.lat - pb.lat).abs() < 1e-5);
                assert!((pa.lon - pb.lon).abs() < 1e-5);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn position_not_available_sentinels() {
        let msg = AisMessage::Position(PositionReport {
            msg_type: 3,
            repeat: 1,
            mmsi: 538_000_001,
            status: NavigationalStatus::NotDefined,
            rot_deg_min: None,
            sog_kn: None,
            position_accuracy: false,
            pos: None,
            cog_deg: None,
            heading_deg: None,
            utc_second: 60,
        });
        let (bits, _) = encode_payload(&msg);
        let decoded = decode_payload(&bits).unwrap();
        match decoded {
            AisMessage::Position(p) => {
                assert!(p.pos.is_none());
                assert!(p.sog_kn.is_none());
                assert!(p.cog_deg.is_none());
                assert!(p.heading_deg.is_none());
                assert!(p.rot_deg_min.is_none());
                assert_eq!(p.msg_type, 3);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn static_round_trip() {
        let msg = sample_static();
        let (bits, fill) = encode_payload(&msg);
        // 424 logical bits padded to the next 6-bit boundary.
        assert_eq!(bits.len(), 426);
        assert_eq!(fill, 2);
        let decoded = decode_payload(&bits).unwrap();
        match (&msg, &decoded) {
            (AisMessage::StaticVoyage(a), AisMessage::StaticVoyage(b)) => {
                assert_eq!(a.mmsi, b.mmsi);
                assert_eq!(a.imo, b.imo);
                assert_eq!(a.callsign, b.callsign);
                assert_eq!(a.name, b.name);
                assert_eq!(a.ship_type, b.ship_type);
                assert_eq!(a.length_m(), b.length_m());
                assert_eq!(a.destination, b.destination);
                assert!((a.draught_m - b.draught_m).abs() < 0.05);
                assert_eq!((a.eta_month, a.eta_day), (b.eta_month, b.eta_day));
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn class_b_round_trip() {
        let msg = AisMessage::ClassBPosition(ClassBPositionReport {
            repeat: 0,
            mmsi: 338_123_456,
            sog_kn: Some(6.4),
            position_accuracy: false,
            pos: Some(Position::new(-33.8523, 151.2108)),
            cog_deg: Some(355.0),
            heading_deg: None,
            utc_second: 12,
        });
        let (bits, _) = encode_payload(&msg);
        assert_eq!(bits.len(), 168);
        let decoded = decode_payload(&bits).unwrap();
        match decoded {
            AisMessage::ClassBPosition(b) => {
                assert_eq!(b.mmsi, 338_123_456);
                assert_eq!(b.sog_kn, Some(6.4));
                let p = b.pos.unwrap();
                assert!((p.lat - -33.8523).abs() < 1e-5);
                assert!((p.lon - 151.2108).abs() < 1e-5);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn rot_coding() {
        assert_eq!(encode_rot(None), -128);
        assert_eq!(decode_rot(-128), None);
        // 10 deg/min -> raw 15 -> ~10.04 deg/min.
        let raw = encode_rot(Some(10.0));
        let back = decode_rot(raw).unwrap();
        assert!((back - 10.0).abs() < 1.0, "{back}");
        let raw_neg = encode_rot(Some(-10.0));
        assert_eq!(raw_neg, -raw);
        assert!(decode_rot(raw_neg).unwrap() < 0.0);
    }

    #[test]
    fn unsupported_type_rejected() {
        let mut w = BitWriter::new();
        w.put_u32(9, 6); // SAR aircraft report — not implemented
        w.put_u32(0, 30);
        let (bits, _) = w.finish();
        assert_eq!(decode_payload(&bits), Err(CodecError::UnsupportedType(9)));
    }

    #[test]
    fn truncated_payload_rejected() {
        let msg = sample_position();
        let (bits, _) = encode_payload(&msg);
        assert_eq!(decode_payload(&bits[..100]), Err(CodecError::Truncated));
    }

    #[test]
    fn sog_saturates_at_fast_limit() {
        assert_eq!(encode_sog(Some(150.0)), 1022);
        assert_eq!(decode_sog(1022), Some(102.2));
    }
}
