//! Bounded event-log retention with cursor-based subscriptions.
//!
//! Recognised events are transient: the engine emits them once and the
//! caller decides what to keep. A serving layer needs more — several
//! independent consumers, each reading at its own pace, none able to
//! block ingest. The [`EventRing`] provides that: a bounded,
//! sequence-numbered log of the most recent events, polled with
//! [`EventRing::poll_since`] cursors. Every appended event gets a
//! monotonically increasing sequence number; when the ring is full the
//! oldest events are dropped and a lagging consumer's next poll reports
//! exactly how many it missed instead of silently skipping them.
//!
//! The ring itself is single-writer plain data — the serving layer
//! wraps it in its own lock and readers never mutate it (polling is
//! `&self`; the cursor lives with the consumer). Events are stored
//! behind `Arc`s so a consumer that must hold that lock while polling
//! can take the cheap pointer-clone path ([`EventRing::poll_shared`])
//! and deep-copy outside the critical section — even a cold-start
//! consumer replaying the whole retention blocks the writer only for
//! O(returned) pointer copies, not O(returned) event clones.

use crate::event::MaritimeEvent;
use std::collections::VecDeque;
use std::sync::Arc;

/// A consumer's position in the event log: the sequence number of the
/// next event it has not seen. Obtained from [`EventRing::poll_since`]
/// (or `EventCursor::default()` to start from the oldest retained
/// event) and passed back on the next poll.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventCursor(u64);

impl EventCursor {
    /// The sequence number of the next unseen event.
    pub fn next_seq(&self) -> u64 {
        self.0
    }
}

/// What one [`EventRing::poll_since`] returned.
#[derive(Debug, Clone, Default)]
pub struct EventPoll {
    /// Events since the cursor, oldest first (emission order).
    pub events: Vec<MaritimeEvent>,
    /// Pass this cursor to the next poll.
    pub cursor: EventCursor,
    /// Events that aged out of the ring before this consumer polled
    /// them (0 for a consumer keeping up with retention).
    pub missed: u64,
}

/// The cheap-path poll result of [`EventRing::poll_shared`]: events as
/// shared pointers, for consumers that poll under a lock and
/// materialize afterwards.
#[derive(Debug, Clone, Default)]
pub struct SharedEventPoll {
    /// Events since the cursor, oldest first, `Arc`-shared with the
    /// ring.
    pub events: Vec<Arc<MaritimeEvent>>,
    /// Pass this cursor to the next poll.
    pub cursor: EventCursor,
    /// Events that aged out of the ring before this consumer polled
    /// them.
    pub missed: u64,
}

impl SharedEventPoll {
    /// Deep-copy into an owned [`EventPoll`] (do this *outside* any
    /// lock guarding the ring).
    pub fn materialize(self) -> EventPoll {
        EventPoll {
            events: self.events.iter().map(|e| (**e).clone()).collect(),
            cursor: self.cursor,
            missed: self.missed,
        }
    }
}

/// A bounded, sequence-numbered ring of recognised events.
///
/// ```
/// use mda_events::event::{EventKind, MaritimeEvent};
/// use mda_events::ring::{EventCursor, EventRing};
/// use mda_geo::{Position, Timestamp};
///
/// let mut ring = EventRing::new(2);
/// let ev = |v: u32| MaritimeEvent {
///     t: Timestamp::from_mins(v as i64),
///     vessel: v,
///     pos: Position::new(43.0, 5.0),
///     kind: EventKind::GapStart,
/// };
/// ring.extend([ev(1), ev(2)]);
/// let poll = ring.poll_since(EventCursor::default());
/// assert_eq!(poll.events.len(), 2);
/// assert_eq!(poll.missed, 0);
/// // Capacity 2: a third event evicts the oldest; a stale consumer is
/// // told what it lost.
/// ring.extend([ev(3)]);
/// let late = ring.poll_since(EventCursor::default());
/// assert_eq!(late.missed, 1);
/// assert_eq!(late.events[0].vessel, 2);
/// // The returned cursor resumes exactly where the last poll stopped.
/// assert!(ring.poll_since(poll.cursor).events.len() == 1);
/// ```
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: VecDeque<Arc<MaritimeEvent>>,
    /// Sequence number of `buf[0]`.
    first_seq: u64,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring retaining at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { buf: VecDeque::with_capacity(capacity), first_seq: 0, capacity, dropped: 0 }
    }

    /// Append events in emission order, evicting the oldest beyond
    /// capacity.
    pub fn extend(&mut self, events: impl IntoIterator<Item = MaritimeEvent>) {
        for e in events {
            if self.buf.len() == self.capacity {
                self.buf.pop_front();
                self.first_seq += 1;
                self.dropped += 1;
            }
            self.buf.push_back(Arc::new(e));
        }
    }

    /// Events retained right now.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resize the retention at runtime (clamped to at least 1). Growing
    /// keeps everything; shrinking evicts the oldest events beyond the
    /// new capacity, counted in [`EventRing::dropped`] like any other
    /// eviction, so lagging cursors still learn exactly what they
    /// missed.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.buf.len() > self.capacity {
            self.buf.pop_front();
            self.first_seq += 1;
            self.dropped += 1;
        }
    }

    /// Total events ever appended.
    pub fn total_appended(&self) -> u64 {
        self.first_seq + self.buf.len() as u64
    }

    /// Events evicted by capacity so far (a sizing signal: non-zero
    /// means the slowest consumer cannot rely on completeness).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The cursor a brand-new consumer should start from to skip
    /// history and follow only future events.
    pub fn live_cursor(&self) -> EventCursor {
        EventCursor(self.total_appended())
    }

    /// Everything appended since `cursor` (oldest first), the cursor to
    /// resume from, and how many events aged out unseen.
    pub fn poll_since(&self, cursor: EventCursor) -> EventPoll {
        self.poll_shared(cursor).materialize()
    }

    /// The cheap-path poll: like [`EventRing::poll_since`] but the
    /// returned events are `Arc`-shared with the ring — O(returned)
    /// pointer clones, no event deep-copies. Consumers that poll while
    /// holding a lock on the ring should use this and
    /// [`SharedEventPoll::materialize`] after releasing it.
    pub fn poll_shared(&self, cursor: EventCursor) -> SharedEventPoll {
        let end = self.total_appended();
        let from = cursor.0.min(end);
        let missed = self.first_seq.saturating_sub(from);
        let start = from.max(self.first_seq);
        let events =
            self.buf.iter().skip((start - self.first_seq) as usize).cloned().collect::<Vec<_>>();
        SharedEventPoll { events, cursor: EventCursor(end), missed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use mda_geo::{Position, Timestamp};

    fn ev(v: u32) -> MaritimeEvent {
        MaritimeEvent {
            t: Timestamp::from_mins(i64::from(v)),
            vessel: v,
            pos: Position::new(43.0, 5.0),
            kind: EventKind::GapStart,
        }
    }

    #[test]
    fn poll_is_incremental_and_ordered() {
        let mut ring = EventRing::new(100);
        ring.extend((1..=5).map(ev));
        let a = ring.poll_since(EventCursor::default());
        assert_eq!(a.events.iter().map(|e| e.vessel).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
        assert_eq!(a.missed, 0);
        // Nothing new: empty poll, same cursor.
        let b = ring.poll_since(a.cursor);
        assert!(b.events.is_empty());
        assert_eq!(b.cursor, a.cursor);
        ring.extend([ev(6)]);
        let c = ring.poll_since(b.cursor);
        assert_eq!(c.events.len(), 1);
        assert_eq!(c.events[0].vessel, 6);
    }

    #[test]
    fn capacity_eviction_reports_missed() {
        let mut ring = EventRing::new(3);
        ring.extend((1..=10).map(ev));
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        assert_eq!(ring.total_appended(), 10);
        let p = ring.poll_since(EventCursor::default());
        assert_eq!(p.missed, 7);
        assert_eq!(p.events.iter().map(|e| e.vessel).collect::<Vec<_>>(), vec![8, 9, 10]);
        // A caught-up consumer misses nothing even as eviction continues.
        ring.extend([ev(11)]);
        let q = ring.poll_since(p.cursor);
        assert_eq!(q.missed, 0);
        assert_eq!(q.events.len(), 1);
    }

    #[test]
    fn live_cursor_skips_history() {
        let mut ring = EventRing::new(10);
        ring.extend((1..=4).map(ev));
        let live = ring.live_cursor();
        ring.extend([ev(5)]);
        let p = ring.poll_since(live);
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].vessel, 5);
    }

    #[test]
    fn cursor_beyond_end_is_clamped() {
        let mut ring = EventRing::new(10);
        ring.extend((1..=2).map(ev));
        // A cursor from a different ring (or a bug) past the end must
        // not underflow or replay.
        let p = ring.poll_since(EventCursor(99));
        assert!(p.events.is_empty());
        assert_eq!(p.missed, 0);
        assert_eq!(p.cursor.next_seq(), 2);
    }

    #[test]
    fn resize_shrink_evicts_oldest_and_reports_missed() {
        let mut ring = EventRing::new(8);
        ring.extend((1..=6).map(ev));
        ring.set_capacity(3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 3);
        let p = ring.poll_since(EventCursor::default());
        assert_eq!(p.missed, 3);
        assert_eq!(p.events.iter().map(|e| e.vessel).collect::<Vec<_>>(), vec![4, 5, 6]);
        // Growing keeps everything and sequence numbers stay intact.
        ring.set_capacity(10);
        ring.extend([ev(7)]);
        let q = ring.poll_since(p.cursor);
        assert_eq!(q.missed, 0);
        assert_eq!(q.events[0].vessel, 7);
        // Zero clamps to one.
        ring.set_capacity(0);
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = EventRing::new(0);
        ring.extend([ev(1), ev(2)]);
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.poll_since(EventCursor::default()).events[0].vessel, 2);
    }
}
