//! Bounded event-log retention with cursor-based subscriptions.
//!
//! Recognised events are transient: the engine emits them once and the
//! caller decides what to keep. A serving layer needs more — several
//! independent consumers, each reading at its own pace, none able to
//! block ingest. The [`EventRing`] provides that: a bounded,
//! sequence-numbered log of the most recent events, polled with
//! [`EventRing::poll_since`] cursors. Every appended event gets a
//! monotonically increasing sequence number; when the ring is full the
//! oldest events are dropped and a lagging consumer's next poll reports
//! exactly how many it missed instead of silently skipping them.
//!
//! The ring itself is single-writer plain data — the serving layer
//! wraps it in its own lock and readers never mutate it (polling is
//! `&self`; the cursor lives with the consumer). Events are stored
//! behind `Arc`s so a consumer that must hold that lock while polling
//! can take the cheap pointer-clone path ([`EventRing::poll_shared`])
//! and deep-copy outside the critical section — even a cold-start
//! consumer replaying the whole retention blocks the writer only for
//! O(returned) pointer copies, not O(returned) event clones.

use crate::event::MaritimeEvent;
use mda_geo::VesselId;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// A per-session event filter, pushed down into the ring so a
/// subscription only pays (and only receives) what it asked for.
///
/// All three dimensions are conjunctive, and each is optional: `None`
/// means "no constraint". An all-`None` filter matches everything —
/// [`EventFilter::default`] is exactly that.
///
/// Filtering happens inside [`EventRing::poll_shared_filtered`], which
/// splits the two loss-shaped counters a filtered consumer must not
/// confuse: `missed` (events that aged out of retention before this
/// cursor polled them — the consumer cannot know whether they would
/// have matched) versus `filtered` (events the ring *did* examine and
/// excluded on the session's behalf).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventFilter {
    /// Only events whose primary vessel is in this set (`None`: all
    /// vessels).
    pub vessels: Option<BTreeSet<VesselId>>,
    /// Only events whose [`kind.label()`](crate::event::EventKind::label)
    /// is in this set (`None`: all kinds).
    pub kinds: Option<BTreeSet<String>>,
    /// Only zone-scoped events (entry/exit/illegal-fishing) naming this
    /// zone (`None`: no zone constraint; `Some` excludes events that
    /// carry no zone at all).
    pub zone: Option<String>,
}

impl EventFilter {
    /// The match-everything filter.
    pub fn all() -> Self {
        Self::default()
    }

    /// Restrict to a vessel set.
    pub fn for_vessels(ids: impl IntoIterator<Item = VesselId>) -> Self {
        Self { vessels: Some(ids.into_iter().collect()), ..Self::default() }
    }

    /// Restrict to event-kind labels (see
    /// [`EventKind::label`](crate::event::EventKind::label)).
    pub fn for_kinds(labels: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Self { kinds: Some(labels.into_iter().map(Into::into).collect()), ..Self::default() }
    }

    /// Restrict to events scoped to one named zone.
    pub fn for_zone(zone: impl Into<String>) -> Self {
        Self { zone: Some(zone.into()), ..Self::default() }
    }

    /// True when no constraint is set (every event matches).
    pub fn is_all(&self) -> bool {
        self.vessels.is_none() && self.kinds.is_none() && self.zone.is_none()
    }

    /// Does `event` pass every set constraint?
    pub fn matches(&self, event: &MaritimeEvent) -> bool {
        if let Some(vessels) = &self.vessels {
            if !vessels.contains(&event.vessel) {
                return false;
            }
        }
        if let Some(kinds) = &self.kinds {
            if !kinds.contains(event.kind.label()) {
                return false;
            }
        }
        if let Some(zone) = &self.zone {
            if event.kind.zone_name() != Some(zone.as_str()) {
                return false;
            }
        }
        true
    }
}

/// A consumer's position in the event log: the sequence number of the
/// next event it has not seen. Obtained from [`EventRing::poll_since`]
/// (or `EventCursor::default()` to start from the oldest retained
/// event) and passed back on the next poll.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventCursor(u64);

impl EventCursor {
    /// A cursor positioned at a raw sequence number — how a serving
    /// front reconstructs a consumer's position from a wire-carried
    /// resume point. Sequences past the end of the log are clamped at
    /// poll time, so any `u64` is safe here.
    pub fn at_seq(seq: u64) -> Self {
        Self(seq)
    }

    /// The sequence number of the next unseen event.
    pub fn next_seq(&self) -> u64 {
        self.0
    }
}

/// What one [`EventRing::poll_since`] returned.
#[derive(Debug, Clone, Default)]
pub struct EventPoll {
    /// Events since the cursor, oldest first (emission order).
    pub events: Vec<MaritimeEvent>,
    /// Pass this cursor to the next poll.
    pub cursor: EventCursor,
    /// Events that aged out of the ring before this consumer polled
    /// them (0 for a consumer keeping up with retention).
    pub missed: u64,
}

/// The cheap-path poll result of [`EventRing::poll_shared`]: events as
/// shared pointers, for consumers that poll under a lock and
/// materialize afterwards.
#[derive(Debug, Clone, Default)]
pub struct SharedEventPoll {
    /// Events since the cursor, oldest first, `Arc`-shared with the
    /// ring.
    pub events: Vec<Arc<MaritimeEvent>>,
    /// Pass this cursor to the next poll.
    pub cursor: EventCursor,
    /// Events that aged out of the ring before this consumer polled
    /// them.
    pub missed: u64,
}

impl SharedEventPoll {
    /// Deep-copy into an owned [`EventPoll`] (do this *outside* any
    /// lock guarding the ring).
    pub fn materialize(self) -> EventPoll {
        EventPoll {
            events: self.events.iter().map(|e| (**e).clone()).collect(),
            cursor: self.cursor,
            missed: self.missed,
        }
    }
}

/// The result of one [`EventRing::poll_shared_filtered`]: matching
/// events with their ring sequence numbers, plus the *split* loss
/// counters a filtered consumer needs — `missed` (aged out unseen;
/// match unknown) and `filtered` (examined, excluded by the filter).
#[derive(Debug, Clone, Default)]
pub struct FilteredPoll {
    /// Matching events since the cursor, oldest first, each with its
    /// ring sequence number, `Arc`-shared with the ring.
    pub events: Vec<(u64, Arc<MaritimeEvent>)>,
    /// Pass this cursor to the next poll (it advances over filtered
    /// events too — they are consumed, just not delivered).
    pub cursor: EventCursor,
    /// Events that aged out of the ring before this cursor polled them.
    /// Whether they would have matched the filter is unknowable — they
    /// are a *loss*, not a filtering decision.
    pub missed: u64,
    /// Events the ring examined on this poll and excluded because the
    /// filter rejected them. Not a loss: the session asked for this.
    pub filtered: u64,
}

impl FilteredPoll {
    /// Deep-copy into an owned [`FilteredEventPoll`] (do this *outside*
    /// any lock guarding the ring).
    pub fn materialize(self) -> FilteredEventPoll {
        FilteredEventPoll {
            events: self.events.iter().map(|(seq, e)| (*seq, (**e).clone())).collect(),
            cursor: self.cursor,
            missed: self.missed,
            filtered: self.filtered,
        }
    }
}

/// Owned counterpart of [`FilteredPoll`].
#[derive(Debug, Clone, Default)]
pub struct FilteredEventPoll {
    /// Matching events since the cursor, oldest first, with ring
    /// sequence numbers.
    pub events: Vec<(u64, MaritimeEvent)>,
    /// Pass this cursor to the next poll.
    pub cursor: EventCursor,
    /// Events that aged out unseen (loss; match unknown).
    pub missed: u64,
    /// Events examined and excluded by the filter (not a loss).
    pub filtered: u64,
}

/// A bounded, sequence-numbered ring of recognised events.
///
/// ```
/// use mda_events::event::{EventKind, MaritimeEvent};
/// use mda_events::ring::{EventCursor, EventRing};
/// use mda_geo::{Position, Timestamp};
///
/// let mut ring = EventRing::new(2);
/// let ev = |v: u32| MaritimeEvent {
///     t: Timestamp::from_mins(v as i64),
///     vessel: v,
///     pos: Position::new(43.0, 5.0),
///     kind: EventKind::GapStart,
/// };
/// ring.extend([ev(1), ev(2)]);
/// let poll = ring.poll_since(EventCursor::default());
/// assert_eq!(poll.events.len(), 2);
/// assert_eq!(poll.missed, 0);
/// // Capacity 2: a third event evicts the oldest; a stale consumer is
/// // told what it lost.
/// ring.extend([ev(3)]);
/// let late = ring.poll_since(EventCursor::default());
/// assert_eq!(late.missed, 1);
/// assert_eq!(late.events[0].vessel, 2);
/// // The returned cursor resumes exactly where the last poll stopped.
/// assert!(ring.poll_since(poll.cursor).events.len() == 1);
/// ```
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: VecDeque<Arc<MaritimeEvent>>,
    /// Sequence number of `buf[0]`.
    first_seq: u64,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring retaining at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { buf: VecDeque::with_capacity(capacity), first_seq: 0, capacity, dropped: 0 }
    }

    /// Append events in emission order, evicting the oldest beyond
    /// capacity.
    pub fn extend(&mut self, events: impl IntoIterator<Item = MaritimeEvent>) {
        for e in events {
            if self.buf.len() == self.capacity {
                self.buf.pop_front();
                self.first_seq += 1;
                self.dropped += 1;
            }
            self.buf.push_back(Arc::new(e));
        }
    }

    /// Events retained right now.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resize the retention at runtime (clamped to at least 1). Growing
    /// keeps everything; shrinking evicts the oldest events beyond the
    /// new capacity, counted in [`EventRing::dropped`] like any other
    /// eviction, so lagging cursors still learn exactly what they
    /// missed.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.buf.len() > self.capacity {
            self.buf.pop_front();
            self.first_seq += 1;
            self.dropped += 1;
        }
    }

    /// Total events ever appended.
    pub fn total_appended(&self) -> u64 {
        self.first_seq + self.buf.len() as u64
    }

    /// Events evicted by capacity so far (a sizing signal: non-zero
    /// means the slowest consumer cannot rely on completeness).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The cursor a brand-new consumer should start from to skip
    /// history and follow only future events.
    pub fn live_cursor(&self) -> EventCursor {
        EventCursor(self.total_appended())
    }

    /// Everything appended since `cursor` (oldest first), the cursor to
    /// resume from, and how many events aged out unseen.
    pub fn poll_since(&self, cursor: EventCursor) -> EventPoll {
        self.poll_shared(cursor).materialize()
    }

    /// The cheap-path poll: like [`EventRing::poll_since`] but the
    /// returned events are `Arc`-shared with the ring — O(returned)
    /// pointer clones, no event deep-copies. Consumers that poll while
    /// holding a lock on the ring should use this and
    /// [`SharedEventPoll::materialize`] after releasing it.
    pub fn poll_shared(&self, cursor: EventCursor) -> SharedEventPoll {
        let poll = self.poll_shared_filtered(cursor, None);
        SharedEventPoll {
            events: poll.events.into_iter().map(|(_, e)| e).collect(),
            cursor: poll.cursor,
            missed: poll.missed,
        }
    }

    /// The filter-pushdown poll: everything appended since `cursor`
    /// that passes `filter` (all events when `filter` is `None`), each
    /// with its ring sequence number, `Arc`-shared with the ring.
    ///
    /// The two loss-shaped counters are *split* (they used to be
    /// conflated into one per-cursor lag number, which filtered
    /// consumers could not interpret): `missed` counts events that aged
    /// out of retention before this cursor saw them — a real loss whose
    /// filter match is unknowable — while `filtered` counts events the
    /// ring examined on this poll and excluded on the session's behalf.
    /// `missed + filtered + events.len()` always equals the cursor
    /// distance covered by the poll.
    ///
    /// ```
    /// use mda_events::event::{EventKind, MaritimeEvent};
    /// use mda_events::ring::{EventCursor, EventFilter, EventRing};
    /// use mda_geo::{Position, Timestamp};
    ///
    /// let mut ring = EventRing::new(8);
    /// let ev = |v: u32| MaritimeEvent {
    ///     t: Timestamp::from_mins(v as i64),
    ///     vessel: v,
    ///     pos: Position::new(43.0, 5.0),
    ///     kind: EventKind::GapStart,
    /// };
    /// ring.extend((1..=6).map(ev));
    /// let filter = EventFilter::for_vessels([2, 4]);
    /// let poll = ring.poll_shared_filtered(EventCursor::default(), Some(&filter));
    /// let got: Vec<u32> = poll.events.iter().map(|(_, e)| e.vessel).collect();
    /// assert_eq!(got, vec![2, 4]);
    /// assert_eq!(poll.missed, 0, "nothing aged out");
    /// assert_eq!(poll.filtered, 4, "four events examined and excluded");
    /// ```
    pub fn poll_shared_filtered(
        &self,
        cursor: EventCursor,
        filter: Option<&EventFilter>,
    ) -> FilteredPoll {
        let end = self.total_appended();
        let from = cursor.0.min(end);
        let missed = self.first_seq.saturating_sub(from);
        let start = from.max(self.first_seq);
        let skip = (start - self.first_seq) as usize;
        let mut events = Vec::new();
        let mut filtered = 0u64;
        for (i, e) in self.buf.iter().enumerate().skip(skip) {
            match filter {
                Some(f) if !f.matches(e) => filtered += 1,
                _ => events.push((self.first_seq + i as u64, Arc::clone(e))),
            }
        }
        FilteredPoll { events, cursor: EventCursor(end), missed, filtered }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use mda_geo::{Position, Timestamp};

    fn ev(v: u32) -> MaritimeEvent {
        MaritimeEvent {
            t: Timestamp::from_mins(i64::from(v)),
            vessel: v,
            pos: Position::new(43.0, 5.0),
            kind: EventKind::GapStart,
        }
    }

    #[test]
    fn poll_is_incremental_and_ordered() {
        let mut ring = EventRing::new(100);
        ring.extend((1..=5).map(ev));
        let a = ring.poll_since(EventCursor::default());
        assert_eq!(a.events.iter().map(|e| e.vessel).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
        assert_eq!(a.missed, 0);
        // Nothing new: empty poll, same cursor.
        let b = ring.poll_since(a.cursor);
        assert!(b.events.is_empty());
        assert_eq!(b.cursor, a.cursor);
        ring.extend([ev(6)]);
        let c = ring.poll_since(b.cursor);
        assert_eq!(c.events.len(), 1);
        assert_eq!(c.events[0].vessel, 6);
    }

    #[test]
    fn capacity_eviction_reports_missed() {
        let mut ring = EventRing::new(3);
        ring.extend((1..=10).map(ev));
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        assert_eq!(ring.total_appended(), 10);
        let p = ring.poll_since(EventCursor::default());
        assert_eq!(p.missed, 7);
        assert_eq!(p.events.iter().map(|e| e.vessel).collect::<Vec<_>>(), vec![8, 9, 10]);
        // A caught-up consumer misses nothing even as eviction continues.
        ring.extend([ev(11)]);
        let q = ring.poll_since(p.cursor);
        assert_eq!(q.missed, 0);
        assert_eq!(q.events.len(), 1);
    }

    #[test]
    fn live_cursor_skips_history() {
        let mut ring = EventRing::new(10);
        ring.extend((1..=4).map(ev));
        let live = ring.live_cursor();
        ring.extend([ev(5)]);
        let p = ring.poll_since(live);
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].vessel, 5);
    }

    #[test]
    fn cursor_beyond_end_is_clamped() {
        let mut ring = EventRing::new(10);
        ring.extend((1..=2).map(ev));
        // A cursor from a different ring (or a bug) past the end must
        // not underflow or replay.
        let p = ring.poll_since(EventCursor(99));
        assert!(p.events.is_empty());
        assert_eq!(p.missed, 0);
        assert_eq!(p.cursor.next_seq(), 2);
    }

    #[test]
    fn resize_shrink_evicts_oldest_and_reports_missed() {
        let mut ring = EventRing::new(8);
        ring.extend((1..=6).map(ev));
        ring.set_capacity(3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 3);
        let p = ring.poll_since(EventCursor::default());
        assert_eq!(p.missed, 3);
        assert_eq!(p.events.iter().map(|e| e.vessel).collect::<Vec<_>>(), vec![4, 5, 6]);
        // Growing keeps everything and sequence numbers stay intact.
        ring.set_capacity(10);
        ring.extend([ev(7)]);
        let q = ring.poll_since(p.cursor);
        assert_eq!(q.missed, 0);
        assert_eq!(q.events[0].vessel, 7);
        // Zero clamps to one.
        ring.set_capacity(0);
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.len(), 1);
    }

    fn zoned(v: u32, zone: &str) -> MaritimeEvent {
        MaritimeEvent {
            t: Timestamp::from_mins(i64::from(v)),
            vessel: v,
            pos: Position::new(43.0, 5.0),
            kind: EventKind::ZoneEntry { zone: zone.into() },
        }
    }

    /// The regression the counter split exists for: a filtered lagging
    /// consumer must be able to tell "N events are *gone*" (aged out,
    /// match unknowable) from "N events were excluded *for me*".
    #[test]
    fn filtered_poll_splits_missed_from_filtered() {
        let mut ring = EventRing::new(4);
        ring.extend((1..=10).map(ev)); // 1..=6 aged out, 7..=10 retained
        let filter = EventFilter::for_vessels([8, 10, 1]); // 1 is long gone
        let poll = ring.poll_shared_filtered(EventCursor::default(), Some(&filter));
        assert_eq!(poll.missed, 6, "aged-out events are missed, not filtered");
        assert_eq!(poll.filtered, 2, "vessels 7 and 9 were examined and excluded");
        let got: Vec<u32> = poll.events.iter().map(|(_, e)| e.vessel).collect();
        assert_eq!(got, vec![8, 10]);
        // Sequence numbers are the ring's, not renumbered post-filter.
        let seqs: Vec<u64> = poll.events.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![7, 9], "vessel v sits at seq v-1");
        // Accounting closes: cursor distance = missed + filtered + delivered.
        assert_eq!(poll.cursor.next_seq(), poll.missed + poll.filtered + poll.events.len() as u64);
        // An unfiltered poll over the same cursor reports the same loss
        // and zero filtered.
        let plain = ring.poll_shared_filtered(EventCursor::default(), None);
        assert_eq!(plain.missed, 6);
        assert_eq!(plain.filtered, 0);
        assert_eq!(plain.events.len(), 4);
    }

    /// A caught-up filtered consumer accrues `filtered` but never
    /// `missed`; a lagging unfiltered one accrues `missed` but never
    /// `filtered`.
    #[test]
    fn filtered_and_missed_accrue_independently() {
        let mut ring = EventRing::new(100);
        let filter = EventFilter::for_vessels([2]);
        let mut cursor = EventCursor::default();
        let mut total_filtered = 0;
        for round in 1..=5u32 {
            ring.extend((1..=3).map(|v| ev(10 * round + v)));
            let poll = ring.poll_shared_filtered(cursor, Some(&filter));
            cursor = poll.cursor;
            assert_eq!(poll.missed, 0, "capacity 100: nothing can age out");
            total_filtered += poll.filtered;
        }
        assert_eq!(total_filtered, 15, "3 per round, none matching vessel 2");
    }

    #[test]
    fn filter_dimensions_conjoin() {
        let mut ring = EventRing::new(16);
        ring.extend([ev(1), zoned(1, "natura"), zoned(2, "natura"), zoned(2, "port")]);
        // Kind + zone + vessel all at once.
        let filter = EventFilter {
            vessels: Some([2].into_iter().collect()),
            kinds: Some(["zone-entry".to_string()].into_iter().collect()),
            zone: Some("natura".into()),
        };
        let poll = ring.poll_shared_filtered(EventCursor::default(), Some(&filter));
        assert_eq!(poll.events.len(), 1);
        assert_eq!(poll.filtered, 3);
        assert!(EventFilter::all().is_all());
        assert!(!EventFilter::for_zone("x").is_all());
        // Zone filters exclude events that carry no zone at all.
        assert!(!EventFilter::for_zone("natura").matches(&ev(1)));
        assert!(EventFilter::for_kinds(["gap-start"]).matches(&ev(1)));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = EventRing::new(0);
        ring.extend([ev(1), ev(2)]);
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.poll_since(EventCursor::default()).events[0].vessel, 2);
    }
}
