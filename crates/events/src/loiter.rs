//! Loitering detection over sliding position windows.
//!
//! A vessel that stays within a small disc for a long time while not
//! moored is loitering — the canonical precursor pattern for rendezvous,
//! smuggling hand-offs and waiting-for-orders behaviour.

use crate::event::{EventKind, MaritimeEvent};
use mda_geo::distance::haversine_m;
use mda_geo::{DurationMs, Fix, VesselId};
use std::collections::{HashMap, VecDeque};

/// Loiter detector configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoiterConfig {
    /// Window length the vessel must stay put for.
    pub window: DurationMs,
    /// Maximum radius of the containing disc, metres.
    pub radius_m: f64,
    /// Below this speed the vessel counts as moored, not loitering.
    pub min_speed_kn: f64,
    /// Re-arm delay: after an alert, stay silent this long.
    pub rearm: DurationMs,
}

impl Default for LoiterConfig {
    fn default() -> Self {
        Self {
            window: 45 * mda_geo::time::MINUTE,
            radius_m: 1_500.0,
            min_speed_kn: 0.5,
            rearm: 60 * mda_geo::time::MINUTE,
        }
    }
}

/// Streaming loiter detector.
#[derive(Debug)]
pub struct LoiterDetector {
    config: LoiterConfig,
    history: HashMap<VesselId, VecDeque<Fix>>,
    last_alert: HashMap<VesselId, mda_geo::Timestamp>,
}

impl LoiterDetector {
    /// New detector.
    pub fn new(config: LoiterConfig) -> Self {
        Self { config, history: HashMap::new(), last_alert: HashMap::new() }
    }

    /// Observe a fix; may emit a loitering event.
    ///
    /// Out-of-order stragglers (event time at or before the newest
    /// buffered fix) are ignored — the sliding window is meaningful
    /// only over monotone event time.
    pub fn observe(&mut self, fix: &Fix) -> Vec<MaritimeEvent> {
        let hist = self.history.entry(fix.id).or_default();
        if hist.back().is_some_and(|newest| fix.t <= newest.t) {
            return Vec::new(); // stale: never regress the window
        }
        hist.push_back(*fix);
        // Evict outside the window.
        while let Some(front) = hist.front() {
            if fix.t - front.t > self.config.window {
                hist.pop_front();
            } else {
                break;
            }
        }
        // Need full window coverage.
        let Some(front) = hist.front() else { return Vec::new() };
        if fix.t - front.t < self.config.window * 9 / 10 {
            return Vec::new();
        }
        // Re-arm check.
        if let Some(last) = self.last_alert.get(&fix.id) {
            if fix.t - *last < self.config.rearm {
                return Vec::new();
            }
        }
        // Moored vessels don't loiter (port calls are handled by zones).
        let mean_speed: f64 = hist.iter().map(|f| f.sog_kn).sum::<f64>() / hist.len() as f64;
        if mean_speed < self.config.min_speed_kn {
            return Vec::new();
        }
        // Containment: all positions within radius of the window centroid.
        let n = hist.len() as f64;
        let centroid = mda_geo::Position::new(
            hist.iter().map(|f| f.pos.lat).sum::<f64>() / n,
            hist.iter().map(|f| f.pos.lon).sum::<f64>() / n,
        );
        let max_dev = hist.iter().map(|f| haversine_m(f.pos, centroid)).fold(0.0f64, f64::max);
        if max_dev <= self.config.radius_m {
            self.last_alert.insert(fix.id, fix.t);
            return vec![MaritimeEvent {
                t: fix.t,
                vessel: fix.id,
                pos: centroid,
                kind: EventKind::Loitering {
                    radius_m: max_dev,
                    minutes: (fix.t - front.t) as f64 / 60_000.0,
                },
            }];
        }
        Vec::new()
    }

    /// Drop all state of an evicted vessel (TTL path).
    pub fn evict(&mut self, id: VesselId) {
        self.history.remove(&id);
        self.last_alert.remove(&id);
    }

    /// Vessels with buffered history.
    pub fn tracked_vessels(&self) -> usize {
        self.history.len()
    }

    /// Fixes buffered across all sliding windows (diagnostic).
    pub fn buffered_points(&self) -> usize {
        self.history.values().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::MINUTE;
    use mda_geo::{Position, Timestamp};

    fn cfg() -> LoiterConfig {
        LoiterConfig {
            window: 30 * MINUTE,
            radius_m: 1_000.0,
            min_speed_kn: 0.5,
            rearm: 60 * MINUTE,
        }
    }

    #[test]
    fn circling_vessel_loiters() {
        let mut d = LoiterDetector::new(cfg());
        let center = Position::new(42.6, 4.8);
        let mut events = Vec::new();
        for i in 0..50 {
            let brg = (i * 37) as f64 % 360.0;
            let pos = mda_geo::distance::destination(center, brg, 400.0);
            let f = Fix::new(9, Timestamp::from_mins(i), pos, 2.5, brg);
            events.extend(d.observe(&f));
        }
        assert_eq!(events.len(), 1, "one alert then re-arm silence");
        match &events[0].kind {
            EventKind::Loitering { radius_m, minutes } => {
                assert!(*radius_m <= 1_000.0);
                assert!(*minutes >= 27.0);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn transiting_vessel_does_not_loiter() {
        let mut d = LoiterDetector::new(cfg());
        let f0 = Fix::new(1, Timestamp::from_mins(0), Position::new(43.0, 5.0), 12.0, 90.0);
        for i in 0..60 {
            let t = Timestamp::from_mins(i);
            let f = Fix { t, pos: f0.dead_reckon(t), ..f0 };
            assert!(d.observe(&f).is_empty(), "false loiter at minute {i}");
        }
    }

    #[test]
    fn moored_vessel_does_not_loiter() {
        let mut d = LoiterDetector::new(cfg());
        for i in 0..60 {
            let f = Fix::new(1, Timestamp::from_mins(i), Position::new(43.28, 5.33), 0.05, 0.0);
            assert!(d.observe(&f).is_empty(), "moored alert at minute {i}");
        }
    }

    #[test]
    fn rearm_allows_later_alert() {
        let mut d = LoiterDetector::new(cfg());
        let center = Position::new(42.6, 4.8);
        let mut alerts = 0;
        for i in 0..200 {
            let brg = (i * 53) as f64 % 360.0;
            let pos = mda_geo::distance::destination(center, brg, 300.0);
            let f = Fix::new(9, Timestamp::from_mins(i), pos, 2.0, brg);
            alerts += d.observe(&f).len();
        }
        assert!(alerts >= 2, "re-armed alerts expected, got {alerts}");
        assert!(alerts <= 4, "but not continuous alarms, got {alerts}");
    }

    #[test]
    fn stale_fix_is_ignored() {
        let mut d = LoiterDetector::new(cfg());
        d.observe(&Fix::new(1, Timestamp::from_mins(10), Position::new(42.6, 4.8), 2.0, 0.0));
        d.observe(&Fix::new(1, Timestamp::from_mins(5), Position::new(43.0, 5.0), 2.0, 0.0));
        assert_eq!(d.buffered_points(), 1, "out-of-order fix must not enter the window");
    }

    #[test]
    fn evict_drops_window() {
        let mut d = LoiterDetector::new(cfg());
        for i in 0..5 {
            d.observe(&Fix::new(1, Timestamp::from_mins(i), Position::new(42.6, 4.8), 2.0, 0.0));
        }
        assert_eq!(d.tracked_vessels(), 1);
        assert_eq!(d.buffered_points(), 5);
        d.evict(1);
        assert_eq!(d.tracked_vessels(), 0);
        assert_eq!(d.buffered_points(), 0);
    }

    #[test]
    fn window_must_be_covered() {
        let mut d = LoiterDetector::new(cfg());
        // Only 10 minutes of history: no alert even though stationary-ish.
        let center = Position::new(42.6, 4.8);
        for i in 0..10 {
            let f = Fix::new(3, Timestamp::from_mins(i), center, 2.0, 0.0);
            assert!(d.observe(&f).is_empty());
        }
    }
}
