//! Maritime complex event recognition (paper §3.1).
//!
//! "The range of possible events of interest is very large, from
//! detecting vessels in distress and collisions at sea to discovering
//! illegal fishing..." This crate implements streaming detectors for
//! exactly the catalogue the paper enumerates, plus a small declarative
//! pattern automaton for composing them:
//!
//! - [`event`] — the event vocabulary: kinds, severity, provenance.
//! - [`gap`] — AIS communication gaps / going dark.
//! - [`veracity`] — kinematic spoofing (teleports, impossible speeds)
//!   and identity conflicts (one MMSI in two places — cloning).
//! - [`zone`] — zone entry/exit/transit and illegal fishing in
//!   protected areas.
//! - [`loiter`] — loitering and drifting detection over sliding
//!   windows.
//! - [`proximity`] — pairwise analytics on a versioned live spatial
//!   snapshot: rendezvous (sustained close approach at sea) and
//!   collision risk (CPA/TCPA), evaluated by watermark sweeps.
//! - [`pattern`] — sequence patterns with time bounds and negation over
//!   per-key event streams (the "formalization of events" challenge).
//! - [`ring`] — bounded event-log retention with cursor-based
//!   subscriptions ([`ring::EventRing::poll_since`]): the hand-off
//!   point between the engine's emission and concurrent consumers.
//! - [`engine`] — the sharded [`engine::EventEngine`]: per-vessel
//!   detectors behind `observe_batch` (vessel-hash shards, shard-count
//!   invariant emission), pairwise sweeps plus TTL eviction behind
//!   `tick(watermark)`, with per-detector counters.
//!
//! All detectors consume event-time-ordered fixes (use
//! `mda-stream::ReorderBuffer` upstream; the engine additionally
//! canonicalises every batch and stale-guards its snapshots, so a
//! shuffle within the upstream watermark delay cannot change what is
//! emitted) and are deterministic.
//!
//! ## Example
//!
//! ```
//! use mda_events::{EngineConfig, EventEngine};
//! use mda_geo::{Fix, Position, Timestamp};
//!
//! let mut engine = EventEngine::new(EngineConfig::default());
//! // A ~120 km jump in one minute is kinematically impossible: spoofing.
//! let a = Fix::new(1, Timestamp::from_secs(0), Position::new(43.0, 5.0), 10.0, 90.0);
//! let b = Fix::new(1, Timestamp::from_secs(60), Position::new(44.0, 6.0), 10.0, 90.0);
//! engine.observe(&a);
//! let events = engine.observe(&b);
//! assert!(!events.is_empty(), "teleport should raise an event");
//! ```

pub mod engine;
pub mod event;
pub mod gap;
pub mod loiter;
pub mod pattern;
pub mod proximity;
pub mod ring;
pub mod veracity;
pub mod zone;

pub use engine::{canonical_sort, EngineConfig, EngineLane, EngineStateStats, EventEngine};
pub use event::{EventKind, MaritimeEvent, Severity};
pub use proximity::{FleetIndex, LiveIndex};
pub use ring::{
    EventCursor, EventFilter, EventPoll, EventRing, FilteredEventPoll, FilteredPoll,
    SharedEventPoll,
};
pub use zone::NamedZone;
