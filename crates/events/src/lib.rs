//! Maritime complex event recognition (paper §3.1).
//!
//! "The range of possible events of interest is very large, from
//! detecting vessels in distress and collisions at sea to discovering
//! illegal fishing..." This crate implements streaming detectors for
//! exactly the catalogue the paper enumerates, plus a small declarative
//! pattern automaton for composing them:
//!
//! - [`event`] — the event vocabulary: kinds, severity, provenance.
//! - [`gap`] — AIS communication gaps / going dark.
//! - [`veracity`] — kinematic spoofing (teleports, impossible speeds)
//!   and identity conflicts (one MMSI in two places — cloning).
//! - [`zone`] — zone entry/exit/transit and illegal fishing in
//!   protected areas.
//! - [`loiter`] — loitering and drifting detection over sliding
//!   windows.
//! - [`proximity`] — pairwise analytics on a live spatial snapshot:
//!   rendezvous (sustained close approach at sea) and collision risk
//!   (CPA/TCPA).
//! - [`pattern`] — sequence patterns with time bounds and negation over
//!   per-key event streams (the "formalization of events" challenge).
//! - [`engine`] — the [`engine::EventEngine`] wiring every detector
//!   behind one `observe(fix)` call, with per-detector counters.
//!
//! All detectors consume event-time-ordered fixes (use
//! `mda-stream::ReorderBuffer` upstream) and are deterministic.

pub mod engine;
pub mod event;
pub mod gap;
pub mod loiter;
pub mod pattern;
pub mod proximity;
pub mod veracity;
pub mod zone;

pub use engine::{EngineConfig, EventEngine};
pub use event::{EventKind, MaritimeEvent, Severity};
pub use zone::NamedZone;
