//! Zone analytics: entry, exit, dwell, and illegal fishing.

use crate::event::{EventKind, MaritimeEvent};
use mda_geo::{Fix, Polygon, Timestamp, VesselId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A zone the detector watches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NamedZone {
    /// Zone name (stable key in emitted events).
    pub name: String,
    /// Geometry.
    pub area: Polygon,
    /// Fishing inside is illegal (protected area).
    pub protected: bool,
}

/// Speed band regarded as "fishing-like" (trawling speeds).
const FISHING_SPEED_KN: (f64, f64) = (0.8, 5.5);

/// Streaming zone detector over all vessels and zones.
#[derive(Debug)]
pub struct ZoneDetector {
    zones: Vec<NamedZone>,
    /// Entry time per (vessel, zone index) while inside.
    inside: HashMap<(VesselId, usize), Timestamp>,
    /// Whether illegal fishing was already reported for this visit.
    fishing_reported: HashMap<(VesselId, usize), bool>,
}

impl ZoneDetector {
    /// Watch the given zones.
    pub fn new(zones: Vec<NamedZone>) -> Self {
        Self { zones, inside: HashMap::new(), fishing_reported: HashMap::new() }
    }

    /// The zones being watched.
    pub fn zones(&self) -> &[NamedZone] {
        &self.zones
    }

    /// Observe a fix; emits entries/exits and illegal-fishing alerts.
    pub fn observe(&mut self, fix: &Fix) -> Vec<MaritimeEvent> {
        let mut out = Vec::new();
        for (zi, zone) in self.zones.iter().enumerate() {
            let key = (fix.id, zi);
            let is_inside = zone.area.contains(fix.pos);
            match (self.inside.contains_key(&key), is_inside) {
                (false, true) => {
                    self.inside.insert(key, fix.t);
                    self.fishing_reported.insert(key, false);
                    out.push(MaritimeEvent {
                        t: fix.t,
                        vessel: fix.id,
                        pos: fix.pos,
                        kind: EventKind::ZoneEntry { zone: zone.name.clone() },
                    });
                }
                (true, false) => {
                    let entered = self.inside.remove(&key).expect("key present");
                    self.fishing_reported.remove(&key);
                    out.push(MaritimeEvent {
                        t: fix.t,
                        vessel: fix.id,
                        pos: fix.pos,
                        kind: EventKind::ZoneExit {
                            zone: zone.name.clone(),
                            dwell_min: (fix.t - entered) as f64 / 60_000.0,
                        },
                    });
                }
                (true, true) => {
                    // Illegal fishing: fishing-band speed inside a
                    // protected area, reported once per visit.
                    if zone.protected
                        && fix.sog_kn >= FISHING_SPEED_KN.0
                        && fix.sog_kn <= FISHING_SPEED_KN.1
                        && !self.fishing_reported.get(&key).copied().unwrap_or(false)
                    {
                        self.fishing_reported.insert(key, true);
                        out.push(MaritimeEvent {
                            t: fix.t,
                            vessel: fix.id,
                            pos: fix.pos,
                            kind: EventKind::IllegalFishing { zone: zone.name.clone() },
                        });
                    }
                }
                (false, false) => {}
            }
        }
        out
    }

    /// Drop all state of the evicted vessels (TTL path) in one pass
    /// over the open visits, however many vessels age out at once.
    ///
    /// No `ZoneExit` is synthesised: a vessel that went dark inside a
    /// zone was last *seen* inside, and inventing an exit with an
    /// unknowable dwell would be a fabricated observation. If it
    /// resurfaces inside the zone later, a fresh `ZoneEntry` opens a
    /// new visit.
    pub fn evict(&mut self, gone: &HashSet<VesselId>) {
        if gone.is_empty() {
            return;
        }
        self.inside.retain(|(v, _), _| !gone.contains(v));
        self.fishing_reported.retain(|(v, _), _| !gone.contains(v));
    }

    /// Open (vessel, zone) visits currently tracked (diagnostic).
    pub fn open_visits(&self) -> usize {
        self.inside.len()
    }

    /// Vessels currently inside the given zone.
    pub fn occupancy(&self, zone_name: &str) -> usize {
        let Some(zi) = self.zones.iter().position(|z| z.name == zone_name) else {
            return 0;
        };
        self.inside.keys().filter(|(_, z)| *z == zi).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::{BoundingBox, Position};

    fn square_zone(name: &str, protected: bool) -> NamedZone {
        NamedZone {
            name: name.into(),
            area: Polygon::rectangle(BoundingBox::new(43.0, 5.0, 43.2, 5.2)),
            protected,
        }
    }

    fn fix(id: u32, t_min: i64, lat: f64, lon: f64, sog: f64) -> Fix {
        Fix::new(id, Timestamp::from_mins(t_min), Position::new(lat, lon), sog, 90.0)
    }

    #[test]
    fn entry_dwell_exit() {
        let mut d = ZoneDetector::new(vec![square_zone("RESERVE", false)]);
        assert!(d.observe(&fix(1, 0, 42.9, 5.1, 10.0)).is_empty());
        let entry = d.observe(&fix(1, 5, 43.1, 5.1, 10.0));
        assert_eq!(entry.len(), 1);
        assert!(matches!(&entry[0].kind, EventKind::ZoneEntry { zone } if zone == "RESERVE"));
        assert_eq!(d.occupancy("RESERVE"), 1);
        assert!(d.observe(&fix(1, 10, 43.15, 5.1, 10.0)).is_empty(), "still inside");
        let exit = d.observe(&fix(1, 25, 43.3, 5.1, 10.0));
        assert_eq!(exit.len(), 1);
        match &exit[0].kind {
            EventKind::ZoneExit { zone, dwell_min } => {
                assert_eq!(zone, "RESERVE");
                assert!((dwell_min - 20.0).abs() < 1e-9);
            }
            k => panic!("wrong kind {k:?}"),
        }
        assert_eq!(d.occupancy("RESERVE"), 0);
    }

    #[test]
    fn illegal_fishing_once_per_visit() {
        let mut d = ZoneDetector::new(vec![square_zone("RESERVE", true)]);
        d.observe(&fix(1, 0, 43.1, 5.1, 10.0)); // entry at transit speed
        let slow1 = d.observe(&fix(1, 5, 43.11, 5.1, 3.0));
        assert_eq!(slow1.len(), 1);
        assert!(matches!(&slow1[0].kind, EventKind::IllegalFishing { .. }));
        // Continues fishing: no repeated alert.
        assert!(d.observe(&fix(1, 10, 43.12, 5.11, 2.5)).is_empty());
        // Leaves and comes back: a new visit can alert again.
        d.observe(&fix(1, 20, 42.9, 5.1, 8.0));
        d.observe(&fix(1, 30, 43.1, 5.1, 8.0));
        let again = d.observe(&fix(1, 35, 43.11, 5.1, 3.0));
        assert_eq!(again.len(), 1);
    }

    #[test]
    fn transit_through_protected_zone_is_not_fishing() {
        let mut d = ZoneDetector::new(vec![square_zone("RESERVE", true)]);
        d.observe(&fix(1, 0, 43.1, 5.05, 14.0));
        let inside = d.observe(&fix(1, 3, 43.1, 5.1, 14.0));
        assert!(inside.is_empty(), "fast transit is legal");
        // Moored inside (speed ~0) is not fishing either.
        let moored = d.observe(&fix(1, 6, 43.1, 5.12, 0.1));
        assert!(moored.is_empty());
    }

    #[test]
    fn unprotected_zone_never_fishing_alerts() {
        let mut d = ZoneDetector::new(vec![square_zone("ANCHORAGE", false)]);
        d.observe(&fix(1, 0, 43.1, 5.1, 3.0));
        assert!(d.observe(&fix(1, 5, 43.11, 5.1, 3.0)).is_empty());
    }

    #[test]
    fn evict_closes_visits_silently_and_rearms_entry() {
        let mut d = ZoneDetector::new(vec![square_zone("RESERVE", true)]);
        d.observe(&fix(1, 0, 43.1, 5.1, 10.0));
        assert_eq!(d.occupancy("RESERVE"), 1);
        d.evict(&HashSet::from([1]));
        assert_eq!(d.occupancy("RESERVE"), 0);
        assert_eq!(d.open_visits(), 0);
        // The vessel resurfaces inside: a fresh visit (entry + a new
        // fishing budget) rather than a resumed one.
        let back = d.observe(&fix(1, 300, 43.1, 5.1, 3.0));
        assert!(back.iter().any(|e| matches!(e.kind, EventKind::ZoneEntry { .. })));
    }

    #[test]
    fn multiple_vessels_and_zones() {
        let z1 = square_zone("A", false);
        let z2 = NamedZone {
            name: "B".into(),
            area: Polygon::rectangle(BoundingBox::new(44.0, 6.0, 44.2, 6.2)),
            protected: false,
        };
        let mut d = ZoneDetector::new(vec![z1, z2]);
        d.observe(&fix(1, 0, 43.1, 5.1, 10.0));
        d.observe(&fix(2, 0, 44.1, 6.1, 10.0));
        assert_eq!(d.occupancy("A"), 1);
        assert_eq!(d.occupancy("B"), 1);
        assert_eq!(d.occupancy("C"), 0);
    }
}
