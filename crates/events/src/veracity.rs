//! Veracity analytics: kinematic spoofing and identity conflicts.
//!
//! The paper (§1) lists deliberate falsification — identity fraud,
//! obscured destinations, GPS manipulation — among the core AIS
//! problems. Two history-based detectors live here:
//!
//! - **Kinematic spoofing**: the speed implied by two consecutive
//!   reports of one identity exceeds anything a surface vessel can do.
//!   Catches GPS-offset episodes at their start and end (the teleports).
//! - **Identity conflict**: one MMSI *bouncing* between two coherent
//!   locations — the signature of MMSI cloning while both the imposter
//!   and the victim transmit. A single teleport is a spoofing symptom;
//!   repeated teleports in a short window are two transmitters.

use crate::event::{EventKind, MaritimeEvent};
use mda_geo::distance::haversine_m;
use mda_geo::motion::implied_speed_kn;
use mda_geo::{Fix, Timestamp, VesselId};
use std::collections::{HashMap, VecDeque};

/// Configuration for the veracity detectors.
#[derive(Debug, Clone, Copy)]
pub struct VeracityConfig {
    /// Implied speed above this is a teleport (knots). Fast ferries do
    /// ~40 kn; 60 leaves margin for timestamp noise.
    pub max_plausible_speed_kn: f64,
    /// Minimum displacement for a spoofing alert (metres), so that GPS
    /// jitter on nearly simultaneous messages cannot trigger it.
    pub min_jump_m: f64,
    /// Implied speed more than this many times the *reported* SOG is
    /// also suspicious, even below the absolute ceiling — the signature
    /// of a position offset straddling a long reception gap.
    pub speed_ratio: f64,
    /// Reported SOG floor for the ratio rule (avoids dividing by the
    /// near-zero SOG of stopped vessels).
    pub ratio_floor_kn: f64,
}

impl Default for VeracityConfig {
    fn default() -> Self {
        Self {
            max_plausible_speed_kn: 60.0,
            min_jump_m: 2_000.0,
            speed_ratio: 3.0,
            ratio_floor_kn: 5.0,
        }
    }
}

/// Window in which repeated teleports mean "two transmitters".
const BOUNCE_WINDOW: mda_geo::DurationMs = 10 * mda_geo::time::MINUTE;
/// Teleports within the window needed to call it a conflict.
const BOUNCE_COUNT: usize = 3;

/// Streaming spoofing/conflict detector.
#[derive(Debug)]
pub struct VeracityDetector {
    config: VeracityConfig,
    last: HashMap<VesselId, Fix>,
    /// Recent teleport times per identity (for the bounce rule).
    jumps: HashMap<VesselId, VecDeque<Timestamp>>,
}

impl VeracityDetector {
    /// New detector.
    pub fn new(config: VeracityConfig) -> Self {
        Self { config, last: HashMap::new(), jumps: HashMap::new() }
    }

    /// Observe a fix (keyed by *claimed* identity).
    ///
    /// Out-of-order stragglers (event time before the stored reference
    /// fix) are ignored entirely: comparing a late fix against a newer
    /// one measures the disorder of the transport, not vessel motion,
    /// and replacing the reference with it would poison the *next*
    /// comparison too.
    pub fn observe(&mut self, fix: &Fix) -> Vec<MaritimeEvent> {
        let mut out = Vec::new();
        if let Some(prev) = self.last.get(&fix.id) {
            let dt = fix.t - prev.t;
            if dt < 0 {
                return out; // stale: never regress the reference fix
            }
            let jump = haversine_m(prev.pos, fix.pos);
            if jump > self.config.min_jump_m {
                let speed = implied_speed_kn(prev, fix);
                // Ratio rule: the reported kinematics cannot explain the
                // displacement (both endpoints claim modest speed).
                let reported = prev.sog_kn.max(fix.sog_kn).max(self.config.ratio_floor_kn);
                let inconsistent = speed > reported * self.config.speed_ratio;
                if speed > self.config.max_plausible_speed_kn || inconsistent {
                    // Count this teleport; repeated teleports in a short
                    // window mean the identity is bouncing between two
                    // transmitters (cloning); an isolated teleport is a
                    // GPS-offset boundary.
                    let jumps = self.jumps.entry(fix.id).or_default();
                    while let Some(front) = jumps.front() {
                        if fix.t - *front > BOUNCE_WINDOW {
                            jumps.pop_front();
                        } else {
                            break;
                        }
                    }
                    jumps.push_back(fix.t);
                    if jumps.len() >= BOUNCE_COUNT {
                        out.push(MaritimeEvent {
                            t: fix.t,
                            vessel: fix.id,
                            pos: fix.pos,
                            kind: EventKind::IdentityConflict { separation_km: jump / 1_000.0 },
                        });
                    } else {
                        out.push(MaritimeEvent {
                            t: fix.t,
                            vessel: fix.id,
                            pos: fix.pos,
                            kind: EventKind::KinematicSpoofing { implied_speed_kn: speed },
                        });
                    }
                }
            }
        }
        // Keep the newer fix as reference (streams are event-time
        // ordered upstream).
        self.last.insert(fix.id, *fix);
        out
    }

    /// Drop all state of an evicted identity (TTL path).
    pub fn evict(&mut self, id: VesselId) {
        self.last.remove(&id);
        self.jumps.remove(&id);
    }

    /// Number of identities tracked.
    pub fn known_identities(&self) -> usize {
        self.last.len()
    }

    /// Teleport-window entries currently buffered (diagnostic).
    pub fn jump_entries(&self) -> usize {
        self.jumps.values().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::{MINUTE, SECOND};
    use mda_geo::{Position, Timestamp};

    fn fix_at(id: u32, t_s: i64, lat: f64, lon: f64) -> Fix {
        Fix::new(id, Timestamp::from_secs(t_s), Position::new(lat, lon), 10.0, 90.0)
    }

    #[test]
    fn honest_track_is_silent() {
        let mut d = VeracityDetector::new(VeracityConfig::default());
        let f0 = fix_at(1, 0, 43.0, 5.0);
        d.observe(&f0);
        for i in 1..30 {
            let t = Timestamp::from_secs(i * 60);
            let f = Fix { t, pos: f0.dead_reckon(t), ..f0 };
            assert!(d.observe(&f).is_empty(), "false alarm at {i}");
        }
    }

    #[test]
    fn teleport_is_spoofing() {
        let mut d = VeracityDetector::new(VeracityConfig::default());
        d.observe(&fix_at(1, 0, 43.0, 5.0));
        // 40 km in 10 minutes: ~130 kn.
        let events = d.observe(&fix_at(1, 600, 43.36, 5.0));
        assert_eq!(events.len(), 1);
        match &events[0].kind {
            EventKind::KinematicSpoofing { implied_speed_kn } => {
                assert!(*implied_speed_kn > 100.0, "speed {implied_speed_kn}");
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn bouncing_reports_are_identity_conflict() {
        // Two transmitters 60 km apart alternating every 10 s: after a
        // couple of teleports the bounce rule upgrades the diagnosis
        // from spoofing to identity conflict.
        let mut d = VeracityDetector::new(VeracityConfig::default());
        let mut kinds = Vec::new();
        for i in 0..8 {
            let f = if i % 2 == 0 {
                fix_at(1, i * 10, 43.0, 5.0)
            } else {
                fix_at(1, i * 10, 43.0, 5.74)
            };
            kinds.extend(d.observe(&f).into_iter().map(|e| e.kind));
        }
        assert!(kinds.len() >= 6, "every bounce alerts: {kinds:?}");
        assert!(matches!(kinds[0], EventKind::KinematicSpoofing { .. }));
        assert!(
            kinds.iter().any(|k| matches!(k, EventKind::IdentityConflict { .. })),
            "sustained bouncing becomes a conflict: {kinds:?}"
        );
        let _ = SECOND;
    }

    #[test]
    fn isolated_teleport_is_spoofing_not_conflict() {
        let mut d = VeracityDetector::new(VeracityConfig::default());
        let f0 = fix_at(1, 0, 43.0, 5.0);
        d.observe(&f0);
        // One offset jump, then a coherent track at the new location.
        let mut events = d.observe(&fix_at(1, 10, 43.0, 5.74));
        for i in 1..20 {
            events.extend(d.observe(&fix_at(1, 10 + i * 60, 43.0, 5.74 + i as f64 * 0.003)));
        }
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].kind, EventKind::KinematicSpoofing { .. }));
    }

    #[test]
    fn stale_fix_neither_alerts_nor_regresses_reference() {
        let mut d = VeracityDetector::new(VeracityConfig::default());
        d.observe(&fix_at(1, 0, 43.0, 5.0));
        d.observe(&fix_at(1, 600, 43.05, 5.0));
        // A late straggler far from the newest fix: not a teleport,
        // just disorder. It must not alert, and must not become the
        // reference (which would make the *next* honest fix look like
        // a teleport back).
        assert!(d.observe(&fix_at(1, 300, 43.0, 5.0)).is_empty());
        let honest = d.observe(&fix_at(1, 660, 43.055, 5.0));
        assert!(honest.is_empty(), "reference regressed: {honest:?}");
        assert_eq!(d.known_identities(), 1);
    }

    #[test]
    fn evict_drops_identity_state() {
        let mut d = VeracityDetector::new(VeracityConfig::default());
        d.observe(&fix_at(1, 0, 43.0, 5.0));
        d.observe(&fix_at(1, 10, 43.0, 5.74)); // one teleport buffered
        assert_eq!(d.known_identities(), 1);
        assert_eq!(d.jump_entries(), 1);
        d.evict(1);
        assert_eq!(d.known_identities(), 0);
        assert_eq!(d.jump_entries(), 0);
    }

    #[test]
    fn small_jitter_is_tolerated() {
        let mut d = VeracityDetector::new(VeracityConfig::default());
        d.observe(&fix_at(1, 0, 43.0, 5.0));
        // 500 m in 2 s would be 480 kn, but below min_jump_m.
        let events = d.observe(&fix_at(1, 2, 43.0045, 5.0));
        assert!(events.is_empty());
    }

    #[test]
    fn slow_legitimate_long_gap_is_fine() {
        let mut d = VeracityDetector::new(VeracityConfig::default());
        d.observe(&fix_at(1, 0, 43.0, 5.0));
        // 20 km in 1 h = ~11 kn: plausible even though the jump is big.
        let events = d.observe(&fix_at(1, 3_600, 43.18, 5.0));
        assert!(events.is_empty());
        let _ = MINUTE;
    }

    #[test]
    fn gap_straddling_offset_caught_by_ratio_rule() {
        // 20 km displacement over 25 minutes is only ~26 kn — below the
        // absolute ceiling — but both reports claim 6 kn: inconsistent.
        let mut d = VeracityDetector::new(VeracityConfig::default());
        let mut a = fix_at(1, 0, 43.0, 5.0);
        a.sog_kn = 6.0;
        d.observe(&a);
        let mut b = fix_at(1, 1_500, 43.18, 5.0);
        b.sog_kn = 6.0;
        let events = d.observe(&b);
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].kind, EventKind::KinematicSpoofing { .. }));
    }

    #[test]
    fn fast_ferry_not_flagged_by_ratio_rule() {
        // 22 kn reported, 22 kn implied: consistent, no alarm.
        let mut d = VeracityDetector::new(VeracityConfig::default());
        let mut a = fix_at(1, 0, 43.0, 5.0);
        a.sog_kn = 22.0;
        a.cog_deg = 0.0;
        d.observe(&a);
        let t = mda_geo::Timestamp::from_secs(600);
        let mut b = Fix { t, pos: a.dead_reckon(t), ..a };
        b.sog_kn = 22.0;
        assert!(d.observe(&b).is_empty());
    }

    #[test]
    fn spoofing_detected_on_offset_episode_boundaries() {
        // Simulate an episode: true track, then +30 km offset, then back.
        let mut d = VeracityDetector::new(VeracityConfig::default());
        let base = fix_at(1, 0, 43.0, 5.0);
        d.observe(&base);
        let mut alerts = 0;
        for i in 1..60 {
            let t = Timestamp::from_secs(i * 60);
            let true_pos = base.dead_reckon(t);
            let reported = if (20..40).contains(&i) {
                mda_geo::distance::destination(true_pos, 45.0, 30_000.0)
            } else {
                true_pos
            };
            let f = Fix { t, pos: reported, ..base };
            alerts += d.observe(&f).len();
        }
        // One teleport entering the episode, one leaving.
        assert_eq!(alerts, 2, "expected entry+exit teleports");
    }
}
