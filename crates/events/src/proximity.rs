//! Pairwise proximity analytics: rendezvous and collision risk.
//!
//! Both detectors share a live spatial snapshot of every vessel's latest
//! fix, bucketed into a coarse cell hash so that each incoming fix only
//! inspects its neighbourhood instead of the whole fleet.

use crate::event::{EventKind, MaritimeEvent};
use mda_geo::distance::haversine_m;
use mda_geo::motion::cpa;
use mda_geo::{DurationMs, Fix, Polygon, Timestamp, VesselId};
use std::collections::{HashMap, HashSet};

/// Cell size of the live index, degrees (~11 km of latitude).
const CELL_DEG: f64 = 0.1;

/// A live latest-fix index with neighbourhood queries.
#[derive(Debug, Default)]
pub struct LiveIndex {
    latest: HashMap<VesselId, Fix>,
    cells: HashMap<(i32, i32), HashSet<VesselId>>,
}

impl LiveIndex {
    /// New empty index.
    pub fn new() -> Self {
        Self::default()
    }

    fn cell_of(pos: mda_geo::Position) -> (i32, i32) {
        ((pos.lat / CELL_DEG).floor() as i32, (pos.lon / CELL_DEG).floor() as i32)
    }

    /// Update a vessel's latest fix.
    pub fn update(&mut self, fix: &Fix) {
        if let Some(old) = self.latest.insert(fix.id, *fix) {
            let old_cell = Self::cell_of(old.pos);
            let new_cell = Self::cell_of(fix.pos);
            if old_cell != new_cell {
                if let Some(set) = self.cells.get_mut(&old_cell) {
                    set.remove(&fix.id);
                    if set.is_empty() {
                        self.cells.remove(&old_cell);
                    }
                }
                self.cells.entry(new_cell).or_default().insert(fix.id);
            }
        } else {
            self.cells.entry(Self::cell_of(fix.pos)).or_default().insert(fix.id);
        }
    }

    /// Latest fixes of vessels within `radius_m` of `fix` (excluding
    /// `fix.id` itself), scanning only neighbouring cells.
    pub fn neighbours(&self, fix: &Fix, radius_m: f64) -> Vec<Fix> {
        let (r0, c0) = Self::cell_of(fix.pos);
        let cell_reach = (radius_m / 11_000.0).ceil() as i32 + 1;
        let mut out = Vec::new();
        for dr in -cell_reach..=cell_reach {
            for dc in -cell_reach..=cell_reach {
                if let Some(ids) = self.cells.get(&(r0 + dr, c0 + dc)) {
                    for id in ids {
                        if *id == fix.id {
                            continue;
                        }
                        let other = self.latest[id];
                        if haversine_m(fix.pos, other.pos) <= radius_m {
                            out.push(other);
                        }
                    }
                }
            }
        }
        // Cell sets iterate in hash order; sort so downstream detectors
        // emit deterministically for identical inputs.
        out.sort_unstable_by_key(|f| f.id);
        out
    }

    /// Latest fix of one vessel.
    pub fn latest(&self, id: VesselId) -> Option<&Fix> {
        self.latest.get(&id)
    }

    /// Number of tracked vessels.
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// True when no vessel is tracked.
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }
}

/// Rendezvous detector configuration.
#[derive(Debug, Clone)]
pub struct RendezvousConfig {
    /// Two vessels closer than this are "together", metres.
    pub radius_m: f64,
    /// Both must be slower than this, knots.
    pub max_speed_kn: f64,
    /// Minimum sustained duration.
    pub min_duration: DurationMs,
    /// Areas where proximity is normal (ports, anchorages) and must not
    /// alert.
    pub exclusion_zones: Vec<Polygon>,
}

impl Default for RendezvousConfig {
    fn default() -> Self {
        Self {
            radius_m: 500.0,
            max_speed_kn: 5.0,
            min_duration: 20 * mda_geo::time::MINUTE,
            exclusion_zones: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PairState {
    since: Timestamp,
    sum_dist_m: f64,
    samples: u32,
    reported: bool,
}

/// Streaming rendezvous detector. Shares a [`LiveIndex`] owned by the
/// engine.
#[derive(Debug)]
pub struct RendezvousDetector {
    config: RendezvousConfig,
    pairs: HashMap<(VesselId, VesselId), PairState>,
}

impl RendezvousDetector {
    /// New detector.
    pub fn new(config: RendezvousConfig) -> Self {
        Self { config, pairs: HashMap::new() }
    }

    /// Observe a fix against the live index (index already updated).
    pub fn observe(&mut self, fix: &Fix, index: &LiveIndex) -> Vec<MaritimeEvent> {
        let mut out = Vec::new();
        if self.config.exclusion_zones.iter().any(|z| z.contains(fix.pos)) {
            return out;
        }
        let slow = fix.sog_kn <= self.config.max_speed_kn;
        for other in index.neighbours(fix, self.config.radius_m * 2.0) {
            let key = pair_key(fix.id, other.id);
            let d = haversine_m(fix.pos, other.pos);
            // A stale snapshot (e.g. a vessel that went dark) is not
            // evidence of present proximity.
            let fresh = (fix.t - other.t).abs() <= 5 * mda_geo::time::MINUTE;
            let together = fresh
                && d <= self.config.radius_m
                && slow
                && other.sog_kn <= self.config.max_speed_kn
                && !self.config.exclusion_zones.iter().any(|z| z.contains(other.pos));
            match self.pairs.get_mut(&key) {
                Some(state) if together => {
                    state.sum_dist_m += d;
                    state.samples += 1;
                    if !state.reported && fix.t - state.since >= self.config.min_duration {
                        state.reported = true;
                        out.push(MaritimeEvent {
                            t: fix.t,
                            vessel: fix.id,
                            pos: fix.pos,
                            kind: EventKind::Rendezvous {
                                other: other.id,
                                distance_m: state.sum_dist_m / state.samples as f64,
                                minutes: (fix.t - state.since) as f64 / 60_000.0,
                            },
                        });
                    }
                }
                Some(_) if !together => {
                    self.pairs.remove(&key);
                }
                None if together => {
                    self.pairs.insert(
                        key,
                        PairState { since: fix.t, sum_dist_m: d, samples: 1, reported: false },
                    );
                }
                _ => {}
            }
        }
        out
    }

    /// Currently tracked candidate pairs.
    pub fn open_pairs(&self) -> usize {
        self.pairs.len()
    }
}

fn pair_key(a: VesselId, b: VesselId) -> (VesselId, VesselId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Collision-risk detector configuration.
#[derive(Debug, Clone, Copy)]
pub struct CollisionConfig {
    /// Search radius for candidate pairs, metres.
    pub search_radius_m: f64,
    /// Alert when projected CPA is below this, metres.
    pub dcpa_m: f64,
    /// Alert only for CPAs within this horizon, seconds.
    pub tcpa_horizon_s: f64,
    /// Both vessels must be under way (knots).
    pub min_speed_kn: f64,
    /// Silence per pair after an alert.
    pub rearm: DurationMs,
}

impl Default for CollisionConfig {
    fn default() -> Self {
        Self {
            search_radius_m: 15_000.0,
            dcpa_m: 300.0,
            tcpa_horizon_s: 1_200.0,
            min_speed_kn: 2.0,
            rearm: 10 * mda_geo::time::MINUTE,
        }
    }
}

/// Streaming CPA/TCPA collision-risk detector.
#[derive(Debug)]
pub struct CollisionDetector {
    config: CollisionConfig,
    last_alert: HashMap<(VesselId, VesselId), Timestamp>,
}

impl CollisionDetector {
    /// New detector.
    pub fn new(config: CollisionConfig) -> Self {
        Self { config, last_alert: HashMap::new() }
    }

    /// Observe a fix against the live index.
    pub fn observe(&mut self, fix: &Fix, index: &LiveIndex) -> Vec<MaritimeEvent> {
        let mut out = Vec::new();
        if fix.sog_kn < self.config.min_speed_kn {
            return out;
        }
        for other in index.neighbours(fix, self.config.search_radius_m) {
            if other.sog_kn < self.config.min_speed_kn {
                continue;
            }
            // Ignore stale snapshots (vessel likely out of date).
            if (fix.t - other.t).abs() > 5 * mda_geo::time::MINUTE {
                continue;
            }
            let key = pair_key(fix.id, other.id);
            if let Some(last) = self.last_alert.get(&key) {
                if fix.t - *last < self.config.rearm {
                    continue;
                }
            }
            let r = cpa(fix, &other);
            if r.dcpa_m <= self.config.dcpa_m
                && r.tcpa_s > 0.0
                && r.tcpa_s <= self.config.tcpa_horizon_s
            {
                self.last_alert.insert(key, fix.t);
                out.push(MaritimeEvent {
                    t: fix.t,
                    vessel: fix.id,
                    pos: fix.pos,
                    kind: EventKind::CollisionRisk {
                        other: other.id,
                        dcpa_m: r.dcpa_m,
                        tcpa_s: r.tcpa_s,
                    },
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::MINUTE;
    use mda_geo::{Position, Timestamp};

    fn fix(id: u32, t_min: i64, lat: f64, lon: f64, sog: f64, cog: f64) -> Fix {
        Fix::new(id, Timestamp::from_mins(t_min), Position::new(lat, lon), sog, cog)
    }

    #[test]
    fn live_index_neighbours_exact() {
        let mut idx = LiveIndex::new();
        idx.update(&fix(1, 0, 43.0, 5.0, 3.0, 0.0));
        idx.update(&fix(2, 0, 43.001, 5.0, 3.0, 0.0)); // ~110 m away
        idx.update(&fix(3, 0, 43.5, 5.0, 3.0, 0.0)); // ~55 km away
        let n = idx.neighbours(&fix(1, 1, 43.0, 5.0, 3.0, 0.0), 1_000.0);
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].id, 2);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn live_index_moves_between_cells() {
        let mut idx = LiveIndex::new();
        idx.update(&fix(1, 0, 43.0, 5.0, 10.0, 0.0));
        idx.update(&fix(1, 10, 43.5, 5.5, 10.0, 0.0));
        // Old location no longer matches.
        let near_old = idx.neighbours(&fix(2, 10, 43.0, 5.0, 0.0, 0.0), 2_000.0);
        assert!(near_old.is_empty());
        let near_new = idx.neighbours(&fix(2, 10, 43.5, 5.5, 0.0, 0.0), 2_000.0);
        assert_eq!(near_new.len(), 1);
    }

    #[test]
    fn rendezvous_requires_sustained_proximity() {
        let mut idx = LiveIndex::new();
        let mut d = RendezvousDetector::new(RendezvousConfig {
            min_duration: 20 * MINUTE,
            ..Default::default()
        });
        let mut events = Vec::new();
        for i in 0..30 {
            let a = fix(1, i, 42.60, 4.80, 1.0, 0.0);
            let b = fix(2, i, 42.601, 4.80, 1.5, 180.0); // ~110 m apart
            idx.update(&a);
            events.extend(d.observe(&a, &idx));
            idx.update(&b);
            events.extend(d.observe(&b, &idx));
        }
        assert_eq!(events.len(), 1, "exactly one rendezvous report");
        match &events[0].kind {
            EventKind::Rendezvous { minutes, distance_m, .. } => {
                assert!(*minutes >= 20.0);
                assert!(*distance_m < 200.0);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn passing_vessels_no_rendezvous() {
        let mut idx = LiveIndex::new();
        let mut d = RendezvousDetector::new(RendezvousConfig::default());
        let mut events = Vec::new();
        // Two fast vessels crossing: close only briefly, and too fast.
        for i in 0..30 {
            let a = fix(1, i, 42.60, 4.70 + i as f64 * 0.01, 14.0, 90.0);
            let b = fix(2, i, 42.60, 5.00 - i as f64 * 0.01, 14.0, 270.0);
            idx.update(&a);
            events.extend(d.observe(&a, &idx));
            idx.update(&b);
            events.extend(d.observe(&b, &idx));
        }
        assert!(events.is_empty());
    }

    #[test]
    fn rendezvous_suppressed_in_exclusion_zone() {
        let anchorage = Polygon::circle(Position::new(42.60, 4.80), 5_000.0);
        let mut idx = LiveIndex::new();
        let mut d = RendezvousDetector::new(RendezvousConfig {
            exclusion_zones: vec![anchorage],
            ..Default::default()
        });
        let mut events = Vec::new();
        for i in 0..40 {
            let a = fix(1, i, 42.60, 4.80, 1.0, 0.0);
            let b = fix(2, i, 42.601, 4.80, 1.0, 0.0);
            idx.update(&a);
            events.extend(d.observe(&a, &idx));
            idx.update(&b);
            events.extend(d.observe(&b, &idx));
        }
        assert!(events.is_empty(), "anchorage proximity is normal");
    }

    #[test]
    fn collision_alert_on_head_on_course() {
        let mut idx = LiveIndex::new();
        let mut d = CollisionDetector::new(CollisionConfig::default());
        // 6 NM apart, closing head-on at 10 kn each: TCPA ~18 min.
        let a = fix(1, 0, 42.60, 4.80, 10.0, 90.0);
        let b = fix(2, 0, 42.60, 4.80 + 0.1356, 10.0, 270.0);
        idx.update(&a);
        idx.update(&b);
        let events = d.observe(&a, &idx);
        assert_eq!(events.len(), 1);
        match &events[0].kind {
            EventKind::CollisionRisk { dcpa_m, tcpa_s, other } => {
                assert!(*dcpa_m < 300.0);
                assert!(*tcpa_s > 600.0 && *tcpa_s < 1_200.0, "tcpa {tcpa_s}");
                assert_eq!(*other, 2);
            }
            k => panic!("wrong kind {k:?}"),
        }
        // Re-arm: immediate re-check is silent.
        let again = d.observe(&fix(1, 1, 42.60, 4.8023, 10.0, 90.0), &idx);
        assert!(again.is_empty());
    }

    #[test]
    fn parallel_courses_no_alert() {
        let mut idx = LiveIndex::new();
        let mut d = CollisionDetector::new(CollisionConfig::default());
        let a = fix(1, 0, 42.60, 4.80, 10.0, 0.0);
        let b = fix(2, 0, 42.60, 4.85, 10.0, 0.0); // 4 km abeam, same course
        idx.update(&a);
        idx.update(&b);
        assert!(d.observe(&a, &idx).is_empty());
    }

    #[test]
    fn moored_vessels_no_collision_alert() {
        let mut idx = LiveIndex::new();
        let mut d = CollisionDetector::new(CollisionConfig::default());
        let a = fix(1, 0, 42.60, 4.80, 0.1, 0.0);
        let b = fix(2, 0, 42.6001, 4.80, 0.1, 0.0);
        idx.update(&a);
        idx.update(&b);
        assert!(d.observe(&a, &idx).is_empty());
    }
}
