//! Pairwise proximity analytics: rendezvous and collision risk.
//!
//! Both detectors run off a live latest-fix snapshot bucketed into a
//! coarse cell hash. The snapshot is *sharded*: the engine keeps one
//! [`LiveIndex`] per detector shard (written only by that shard's run)
//! and pairwise sweeps read the whole fleet through a [`FleetIndex`]
//! snapshot merged once per tick — shard-local writes, one shared
//! read-only cell grid, no locks.
//!
//! Unlike the per-vessel detectors, rendezvous and collision are
//! evaluated by **watermark-driven sweeps** (`sweep`), not per fix: at
//! every engine tick each shard walks its own live vessels in id order
//! and inspects the neighbourhood of each. Sampling the pair state at
//! aligned event times makes the emitted events a pure function of the
//! event-time stream — arrival order and shard count cannot change
//! them — and the per-entry [`LiveIndex`] *version* lets a sweep reuse
//! the previous distance for pairs neither side of which has
//! transmitted since, so sweep cost tracks fleet activity, not fleet
//! size squared.

use crate::event::{EventKind, MaritimeEvent};
use mda_geo::distance::haversine_m;
use mda_geo::motion::cpa;
use mda_geo::units::EARTH_RADIUS_M;
use mda_geo::{DurationMs, Fix, Polygon, Timestamp, VesselId};
use std::collections::{HashMap, HashSet};

/// Cell size of the live index, degrees (~11 km of latitude).
const CELL_DEG: f64 = 0.1;
/// Metres spanned by one cell of latitude.
const LAT_CELL_M: f64 = CELL_DEG * 111_320.0;

/// Metres of great-circle distance per degree of latitude difference,
/// on the same sphere [`haversine_m`] uses. The haversine central angle
/// is at least the latitude separation, so
/// `|Δlat| * METERS_PER_LAT_DEG` is an exact *lower bound* on the
/// haversine distance — candidates failing it can be pruned from a
/// neighbourhood scan by comparing latitude columns alone, without
/// computing any trigonometry, and no in-radius vessel is ever lost.
const METERS_PER_LAT_DEG: f64 = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;

/// Cell-scan reach `(lat_cells, lon_cells)` for a radius around a
/// latitude. Latitude cells are a fixed ~11 km, but longitude cells
/// shrink by `cos(lat)` (0.1° of longitude is ~3.8 km at 70°N), so the
/// east–west reach widens with latitude — a fixed reach silently
/// missed in-radius vessels in northern waters. One definition shared
/// by [`LiveIndex`] and [`FleetIndex`] so the two query paths can
/// never disagree. The cosine clamp keeps polar queries finite.
fn scan_reach(radius_m: f64, lat: f64) -> (i32, i32) {
    let lat_reach = (radius_m / LAT_CELL_M).ceil() as i32 + 1;
    let cos_lat = lat.to_radians().cos().max(0.05);
    let lon_reach = (radius_m / (LAT_CELL_M * cos_lat)).ceil() as i32 + 1;
    (lat_reach, lon_reach)
}

/// One tracked vessel: its latest accepted fix plus the index version
/// at which it was written.
#[derive(Debug, Clone, Copy)]
struct Entry {
    fix: Fix,
    version: u64,
}

/// A live latest-fix index with neighbourhood queries.
///
/// The index is *versioned*: every accepted update bumps a monotone
/// counter and stamps the entry with it, so a reader can tell whether a
/// vessel has transmitted since it last looked (the pairwise sweeps use
/// this to skip re-computing unchanged pair geometry). Updates are
/// stale-guarded: a late, out-of-order fix can never regress the
/// snapshot (see [`LiveIndex::update`]).
///
/// One cell's occupants as parallel columns: vessel ids plus their
/// latitudes/longitudes, so a neighbourhood scan prunes on dense
/// coordinate columns instead of chasing per-id hash lookups. Order
/// within a cell is insertion-defined and irrelevant — every consumer
/// sorts its result by vessel id.
#[derive(Debug, Clone, Default)]
struct CellVessels {
    ids: Vec<VesselId>,
    lat: Vec<f64>,
    lon: Vec<f64>,
}

impl CellVessels {
    fn push(&mut self, id: VesselId, pos: mda_geo::Position) {
        self.ids.push(id);
        self.lat.push(pos.lat);
        self.lon.push(pos.lon);
    }

    /// Drop a vessel (swap-remove; order is irrelevant, see above).
    fn remove(&mut self, id: VesselId) {
        if let Some(i) = self.ids.iter().position(|&x| x == id) {
            self.ids.swap_remove(i);
            self.lat.swap_remove(i);
            self.lon.swap_remove(i);
        }
    }

    /// Update a vessel's position in place (same cell, new fix).
    fn set_pos(&mut self, id: VesselId, pos: mda_geo::Position) {
        if let Some(i) = self.ids.iter().position(|&x| x == id) {
            self.lat[i] = pos.lat;
            self.lon[i] = pos.lon;
        }
    }

    fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// A live latest-fix index with neighbourhood queries.
///
/// The index is *versioned*: every accepted update bumps a monotone
/// counter and stamps the entry with it, so a reader can tell whether a
/// vessel has transmitted since it last looked (the pairwise sweeps use
/// this to skip re-computing unchanged pair geometry). Updates are
/// stale-guarded: a late, out-of-order fix can never regress the
/// snapshot (see [`LiveIndex::update`]).
///
/// The index is `Clone` so a writer lane can deposit a cheap
/// copy-on-quiesce view of its shards for the cross-lane
/// [`FleetIndex`] merge at a tick barrier.
#[derive(Debug, Clone, Default)]
pub struct LiveIndex {
    latest: HashMap<VesselId, Entry>,
    cells: HashMap<(i32, i32), CellVessels>,
    version: u64,
}

impl LiveIndex {
    /// New empty index.
    pub fn new() -> Self {
        Self::default()
    }

    fn cell_of(pos: mda_geo::Position) -> (i32, i32) {
        ((pos.lat / CELL_DEG).floor() as i32, (pos.lon / CELL_DEG).floor() as i32)
    }

    /// Update a vessel's latest fix. Returns `true` if the snapshot
    /// changed.
    ///
    /// The update is guarded on event time: a fix at or before the
    /// vessel's current latest is a late straggler and is ignored, so a
    /// disordered arrival stream can never regress the snapshot — the
    /// index contents are a pure function of the *set* of fixes seen,
    /// not their arrival order.
    pub fn update(&mut self, fix: &Fix) -> bool {
        match self.latest.get_mut(&fix.id) {
            Some(entry) => {
                if fix.t <= entry.fix.t {
                    return false; // stale: never regress the snapshot
                }
                let old_cell = Self::cell_of(entry.fix.pos);
                let new_cell = Self::cell_of(fix.pos);
                self.version += 1;
                *entry = Entry { fix: *fix, version: self.version };
                if old_cell == new_cell {
                    // The cell's coordinate columns mirror the latest
                    // positions; keep them exact even without a move.
                    if let Some(bucket) = self.cells.get_mut(&new_cell) {
                        bucket.set_pos(fix.id, fix.pos);
                    }
                } else {
                    if let Some(bucket) = self.cells.get_mut(&old_cell) {
                        bucket.remove(fix.id);
                        if bucket.is_empty() {
                            self.cells.remove(&old_cell);
                        }
                    }
                    self.cells.entry(new_cell).or_default().push(fix.id, fix.pos);
                }
                true
            }
            None => {
                self.version += 1;
                self.latest.insert(fix.id, Entry { fix: *fix, version: self.version });
                self.cells.entry(Self::cell_of(fix.pos)).or_default().push(fix.id, fix.pos);
                true
            }
        }
    }

    /// Drop a vessel from the snapshot (TTL eviction). Returns `true`
    /// if it was tracked.
    pub fn remove(&mut self, id: VesselId) -> bool {
        let Some(entry) = self.latest.remove(&id) else { return false };
        let cell = Self::cell_of(entry.fix.pos);
        if let Some(bucket) = self.cells.get_mut(&cell) {
            bucket.remove(id);
            if bucket.is_empty() {
                self.cells.remove(&cell);
            }
        }
        true
    }

    /// Latest fixes of vessels within `radius_m` of `fix` (excluding
    /// `fix.id` itself), scanning only neighbouring cells.
    ///
    /// The scan reach is derived per axis: latitude cells are a fixed
    /// ~11 km, but longitude cells shrink by `cos(lat)` (0.1° of
    /// longitude is ~3.8 km at 70°N), so the east–west reach widens
    /// with latitude — a fixed reach would silently miss in-radius
    /// vessels in northern waters.
    pub fn neighbours(&self, fix: &Fix, radius_m: f64) -> Vec<Fix> {
        self.neighbours_versioned(fix, radius_m).into_iter().map(|(f, _)| f).collect()
    }

    /// [`LiveIndex::neighbours`], but each fix is paired with the index
    /// version at which it was written (for sweep-side caching).
    pub fn neighbours_versioned(&self, fix: &Fix, radius_m: f64) -> Vec<(Fix, u64)> {
        let (r0, c0) = Self::cell_of(fix.pos);
        let (lat_reach, lon_reach) = scan_reach(radius_m, fix.pos.lat);
        let lat_cut = radius_m / METERS_PER_LAT_DEG;
        let mut out = Vec::new();
        for dr in -lat_reach..=lat_reach {
            for dc in -lon_reach..=lon_reach {
                let Some(bucket) = self.cells.get(&(r0 + dr, c0 + dc)) else { continue };
                for (i, &lat) in bucket.lat.iter().enumerate() {
                    // Meridional lower bound on the coordinate columns:
                    // too far in latitude alone means out of radius,
                    // with no trig and no entry lookup.
                    if (lat - fix.pos.lat).abs() > lat_cut {
                        continue;
                    }
                    let id = bucket.ids[i];
                    if id == fix.id {
                        continue;
                    }
                    let pos = mda_geo::Position::new(lat, bucket.lon[i]);
                    if haversine_m(fix.pos, pos) <= radius_m {
                        let entry = self.latest[&id];
                        out.push((entry.fix, entry.version));
                    }
                }
            }
        }
        // Cell buckets keep insertion order; sort so downstream
        // detectors emit deterministically for identical inputs.
        out.sort_unstable_by_key(|(f, _)| f.id);
        out
    }

    /// Latest fix of one vessel.
    pub fn latest(&self, id: VesselId) -> Option<&Fix> {
        self.latest.get(&id).map(|e| &e.fix)
    }

    /// Latest fix of one vessel plus its write version.
    pub fn latest_versioned(&self, id: VesselId) -> Option<(&Fix, u64)> {
        self.latest.get(&id).map(|e| (&e.fix, e.version))
    }

    /// Tracked vessel ids in ascending order (the canonical sweep
    /// order).
    pub fn vessels_sorted(&self) -> Vec<VesselId> {
        let mut ids: Vec<VesselId> = self.latest.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Total accepted updates so far (monotone).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of tracked vessels.
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// True when no vessel is tracked.
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }
}

/// A read-only whole-fleet snapshot merged from the engine's per-shard
/// [`LiveIndex`]es: what the pairwise sweeps (and the operator console)
/// query.
///
/// The snapshot is built **once per tick** in O(live vessels) and owns
/// its merged cell grid, so a neighbourhood query probes one cell map
/// regardless of how many shards fed it — sweep cost is independent of
/// the shard count (probing S per-shard maps per cell would make more
/// shards *more* expensive on every query).
#[derive(Debug, Default)]
pub struct FleetIndex {
    cells: HashMap<(i32, i32), FleetCell>,
    count: usize,
    shards: usize,
}

/// One merged cell: full entries plus parallel coordinate columns, so
/// the sweep's distance prune runs over dense `f64` columns and only
/// surviving candidates touch the 56-byte entry rows.
#[derive(Debug, Default)]
struct FleetCell {
    lat: Vec<f64>,
    lon: Vec<f64>,
    entries: Vec<(Fix, u64)>,
}

impl FleetIndex {
    /// Build a snapshot over the given shard indexes (one per detector
    /// shard). Cell contents are sorted by vessel id, so queries over
    /// equal snapshots answer identically whatever the shard count.
    pub fn snapshot(indexes: &[LiveIndex]) -> Self {
        assert!(!indexes.is_empty());
        let mut cells: HashMap<(i32, i32), FleetCell> = HashMap::new();
        let mut count = 0;
        for index in indexes {
            count += index.len();
            // lint:allow(deterministic-iteration): merge order is
            // immaterial — every bucket is canonically sorted below
            // before the snapshot is published.
            for entry in index.latest.values() {
                cells
                    .entry(LiveIndex::cell_of(entry.fix.pos))
                    .or_default()
                    .entries
                    .push((entry.fix, entry.version));
            }
        }
        for bucket in cells.values_mut() {
            bucket.entries.sort_unstable_by_key(|(f, _)| f.id);
            bucket.lat.extend(bucket.entries.iter().map(|(f, _)| f.pos.lat));
            bucket.lon.extend(bucket.entries.iter().map(|(f, _)| f.pos.lon));
        }
        Self { cells, count, shards: indexes.len() }
    }

    /// Latest fixes of vessels within `radius_m` of `fix` across the
    /// fleet, sorted by vessel id.
    pub fn neighbours(&self, fix: &Fix, radius_m: f64) -> Vec<Fix> {
        self.neighbours_versioned(fix, radius_m).into_iter().map(|(f, _)| f).collect()
    }

    /// [`FleetIndex::neighbours`] with per-entry write versions.
    ///
    /// Versions are only comparable within one shard, but a pair's two
    /// vessels always live in fixed shards, so a `(version_a,
    /// version_b)` pair is still a precise "has anything changed?"
    /// fingerprint.
    pub fn neighbours_versioned(&self, fix: &Fix, radius_m: f64) -> Vec<(Fix, u64)> {
        let (r0, c0) = LiveIndex::cell_of(fix.pos);
        let (lat_reach, lon_reach) = scan_reach(radius_m, fix.pos.lat);
        let lat_cut = radius_m / METERS_PER_LAT_DEG;
        let mut out = Vec::new();
        for dr in -lat_reach..=lat_reach {
            for dc in -lon_reach..=lon_reach {
                let Some(bucket) = self.cells.get(&(r0 + dr, c0 + dc)) else { continue };
                for (i, &lat) in bucket.lat.iter().enumerate() {
                    // Meridional lower bound on the latitude column: the
                    // common reject costs one subtract/compare per
                    // candidate and never touches the entry row.
                    if (lat - fix.pos.lat).abs() > lat_cut {
                        continue;
                    }
                    let pos = mda_geo::Position::new(lat, bucket.lon[i]);
                    let (f, v) = &bucket.entries[i];
                    if f.id != fix.id && haversine_m(fix.pos, pos) <= radius_m {
                        out.push((*f, *v));
                    }
                }
            }
        }
        out.sort_unstable_by_key(|(f, _)| f.id);
        out
    }

    /// Latest fix of one vessel (linear probe of its cell-mates is
    /// avoided by scanning only the snapshot's buckets lazily; intended
    /// for console lookups, not hot loops).
    pub fn latest(&self, id: VesselId) -> Option<&Fix> {
        self.cells
            .values()
            .flat_map(|bucket| bucket.entries.iter())
            .find(|(f, _)| f.id == id)
            .map(|(f, _)| f)
    }

    /// Shard count of the engine this snapshot was taken from.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Total tracked vessels across shards.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no shard tracks anything.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Rendezvous detector configuration.
#[derive(Debug, Clone)]
pub struct RendezvousConfig {
    /// Two vessels closer than this are "together", metres.
    pub radius_m: f64,
    /// Both must be slower than this, knots.
    pub max_speed_kn: f64,
    /// Minimum sustained duration.
    pub min_duration: DurationMs,
    /// A latest fix older than this (relative to the sweep watermark)
    /// is a stale snapshot — a vessel that went dark is not evidence of
    /// present proximity.
    pub freshness: DurationMs,
    /// Areas where proximity is normal (ports, anchorages) and must not
    /// alert.
    pub exclusion_zones: Vec<Polygon>,
}

impl Default for RendezvousConfig {
    fn default() -> Self {
        Self {
            radius_m: 500.0,
            max_speed_kn: 5.0,
            min_duration: 20 * mda_geo::time::MINUTE,
            freshness: 5 * mda_geo::time::MINUTE,
            exclusion_zones: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PairState {
    since: Timestamp,
    sum_dist_m: f64,
    samples: u32,
    reported: bool,
    /// `(version_a, version_b)` of the two fixes last evaluated, to
    /// reuse the distance when neither vessel transmitted since.
    versions: (u64, u64),
    last_dist_m: f64,
    last_sweep: Timestamp,
}

/// Watermark-swept rendezvous detector.
///
/// Pair state is keyed `(min_id, max_id)` and owned by the shard of the
/// *smaller* vessel id, so every pair is evaluated exactly once per
/// sweep, by exactly one shard.
#[derive(Debug)]
pub struct RendezvousDetector {
    config: RendezvousConfig,
    pairs: HashMap<(VesselId, VesselId), PairState>,
}

impl RendezvousDetector {
    /// New detector.
    pub fn new(config: RendezvousConfig) -> Self {
        Self { config, pairs: HashMap::new() }
    }

    /// One watermark sweep at event time `wm`: walk this shard's live
    /// vessels (`order` — ascending ids of `own`, computed once per
    /// tick and shared with the collision sweep) and evaluate each
    /// against its fleet-wide neighbourhood. Only pairs whose smaller
    /// id lives in `own` are touched, so sweeping every shard covers
    /// every pair exactly once.
    pub fn sweep(
        &mut self,
        wm: Timestamp,
        order: &[VesselId],
        own: &LiveIndex,
        fleet: &FleetIndex,
    ) -> Vec<MaritimeEvent> {
        let mut out = Vec::new();
        for &v in order {
            let (fv, ver_v) = own.latest_versioned(v).expect("listed vessel present");
            let fv = *fv;
            if wm.since(fv.t) > self.config.freshness {
                continue; // dark primary: its pairs expire via the retain below
            }
            let slow = fv.sog_kn <= self.config.max_speed_kn;
            let excluded = self.config.exclusion_zones.iter().any(|z| z.contains(fv.pos));
            for (fo, ver_o) in fleet.neighbours_versioned(&fv, self.config.radius_m * 2.0) {
                if fo.id <= v {
                    continue; // owned by the other vessel's shard
                }
                let key = (v, fo.id);
                let fresh_o = wm.since(fo.t) <= self.config.freshness;
                let cached = self
                    .pairs
                    .get(&key)
                    .is_some_and(|s| s.versions == (ver_v, ver_o) && fresh_o && !excluded);
                let (together, d) = if cached {
                    // Neither side transmitted since the last sweep:
                    // geometry and speeds are unchanged by construction.
                    (true, self.pairs[&key].last_dist_m)
                } else {
                    let d = haversine_m(fv.pos, fo.pos);
                    let together = fresh_o
                        && !excluded
                        && d <= self.config.radius_m
                        && slow
                        && fo.sog_kn <= self.config.max_speed_kn
                        && !self.config.exclusion_zones.iter().any(|z| z.contains(fo.pos));
                    (together, d)
                };
                match self.pairs.get_mut(&key) {
                    Some(state) if together => {
                        state.sum_dist_m += d;
                        state.samples += 1;
                        state.versions = (ver_v, ver_o);
                        state.last_dist_m = d;
                        state.last_sweep = wm;
                        if !state.reported && wm.since(state.since) >= self.config.min_duration {
                            state.reported = true;
                            out.push(MaritimeEvent {
                                t: wm,
                                vessel: v,
                                pos: fv.pos,
                                kind: EventKind::Rendezvous {
                                    other: fo.id,
                                    distance_m: state.sum_dist_m / f64::from(state.samples),
                                    minutes: wm.since(state.since) as f64 / 60_000.0,
                                },
                            });
                        }
                    }
                    Some(_) => {
                        self.pairs.remove(&key);
                    }
                    None if together => {
                        self.pairs.insert(
                            key,
                            PairState {
                                since: wm,
                                sum_dist_m: d,
                                samples: 1,
                                reported: false,
                                versions: (ver_v, ver_o),
                                last_dist_m: d,
                                last_sweep: wm,
                            },
                        );
                    }
                    None => {}
                }
            }
        }
        // A pair not revisited this sweep has drifted out of
        // neighbourhood range (or its primary went dark): forget it.
        self.pairs.retain(|_, s| s.last_sweep >= wm);
        out
    }

    /// Drop all pair state touching an evicted vessel (either side —
    /// the partner may live in another shard).
    pub fn evict(&mut self, gone: &HashSet<VesselId>) {
        if gone.is_empty() {
            return;
        }
        self.pairs.retain(|(a, b), _| !gone.contains(a) && !gone.contains(b));
    }

    /// Currently tracked candidate pairs.
    pub fn open_pairs(&self) -> usize {
        self.pairs.len()
    }
}

/// Collision-risk detector configuration.
#[derive(Debug, Clone, Copy)]
pub struct CollisionConfig {
    /// Search radius for candidate pairs, metres.
    pub search_radius_m: f64,
    /// Alert when projected CPA is below this, metres.
    pub dcpa_m: f64,
    /// Alert only for CPAs within this horizon, seconds.
    pub tcpa_horizon_s: f64,
    /// Both vessels must be under way (knots).
    pub min_speed_kn: f64,
    /// Silence per pair after an alert.
    pub rearm: DurationMs,
    /// A latest fix older than this (relative to the sweep watermark)
    /// is ignored — its projection is no longer trustworthy.
    pub freshness: DurationMs,
}

impl Default for CollisionConfig {
    fn default() -> Self {
        Self {
            search_radius_m: 15_000.0,
            dcpa_m: 300.0,
            tcpa_horizon_s: 1_200.0,
            min_speed_kn: 2.0,
            rearm: 10 * mda_geo::time::MINUTE,
            freshness: 5 * mda_geo::time::MINUTE,
        }
    }
}

/// Watermark-swept CPA/TCPA collision-risk detector.
///
/// Like [`RendezvousDetector`], pairs are owned by the shard of the
/// smaller vessel id and evaluated once per sweep. The per-pair re-arm
/// map is self-pruning: an entry older than the re-arm window can no
/// longer suppress anything and is dropped at the end of each sweep.
#[derive(Debug)]
pub struct CollisionDetector {
    config: CollisionConfig,
    last_alert: HashMap<(VesselId, VesselId), Timestamp>,
}

impl CollisionDetector {
    /// New detector.
    pub fn new(config: CollisionConfig) -> Self {
        Self { config, last_alert: HashMap::new() }
    }

    /// One watermark sweep at event time `wm` over this shard's live
    /// vessels (`order` — ascending ids of `own`).
    pub fn sweep(
        &mut self,
        wm: Timestamp,
        order: &[VesselId],
        own: &LiveIndex,
        fleet: &FleetIndex,
    ) -> Vec<MaritimeEvent> {
        let mut out = Vec::new();
        for &v in order {
            let Some(fv) = own.latest(v).copied() else { continue };
            if wm.since(fv.t) > self.config.freshness || fv.sog_kn < self.config.min_speed_kn {
                continue;
            }
            for other in fleet.neighbours(&fv, self.config.search_radius_m) {
                if other.id <= v
                    || other.sog_kn < self.config.min_speed_kn
                    || wm.since(other.t) > self.config.freshness
                {
                    continue;
                }
                let key = (v, other.id);
                if let Some(last) = self.last_alert.get(&key) {
                    if wm.since(*last) < self.config.rearm {
                        continue;
                    }
                }
                let r = cpa(&fv, &other);
                if r.dcpa_m <= self.config.dcpa_m
                    && r.tcpa_s > 0.0
                    && r.tcpa_s <= self.config.tcpa_horizon_s
                {
                    self.last_alert.insert(key, wm);
                    out.push(MaritimeEvent {
                        t: wm,
                        vessel: v,
                        pos: fv.pos,
                        kind: EventKind::CollisionRisk {
                            other: other.id,
                            dcpa_m: r.dcpa_m,
                            tcpa_s: r.tcpa_s,
                        },
                    });
                }
            }
        }
        // Expired re-arm entries can never suppress again: drop them so
        // the map tracks recent alerts, not every pair ever alerted.
        self.last_alert.retain(|_, t| wm.since(*t) < self.config.rearm);
        out
    }

    /// Drop re-arm state touching an evicted vessel.
    pub fn evict(&mut self, gone: &HashSet<VesselId>) {
        if gone.is_empty() {
            return;
        }
        self.last_alert.retain(|(a, b), _| !gone.contains(a) && !gone.contains(b));
    }

    /// Pairs currently inside their re-arm window.
    pub fn armed_pairs(&self) -> usize {
        self.last_alert.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::MINUTE;
    use mda_geo::{Position, Timestamp};

    fn fix(id: u32, t_min: i64, lat: f64, lon: f64, sog: f64, cog: f64) -> Fix {
        Fix::new(id, Timestamp::from_mins(t_min), Position::new(lat, lon), sog, cog)
    }

    /// Sweep a rendezvous detector over a single shard index.
    fn rz_sweep(d: &mut RendezvousDetector, idx: &LiveIndex, t_min: i64) -> Vec<MaritimeEvent> {
        let view = FleetIndex::snapshot(std::slice::from_ref(idx));
        d.sweep(Timestamp::from_mins(t_min), &idx.vessels_sorted(), idx, &view)
    }

    fn col_sweep(d: &mut CollisionDetector, idx: &LiveIndex, t_min: i64) -> Vec<MaritimeEvent> {
        let view = FleetIndex::snapshot(std::slice::from_ref(idx));
        d.sweep(Timestamp::from_mins(t_min), &idx.vessels_sorted(), idx, &view)
    }

    #[test]
    fn live_index_neighbours_exact() {
        let mut idx = LiveIndex::new();
        idx.update(&fix(1, 0, 43.0, 5.0, 3.0, 0.0));
        idx.update(&fix(2, 0, 43.001, 5.0, 3.0, 0.0)); // ~110 m away
        idx.update(&fix(3, 0, 43.5, 5.0, 3.0, 0.0)); // ~55 km away
        let n = idx.neighbours(&fix(1, 1, 43.0, 5.0, 3.0, 0.0), 1_000.0);
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].id, 2);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn live_index_moves_between_cells() {
        let mut idx = LiveIndex::new();
        idx.update(&fix(1, 0, 43.0, 5.0, 10.0, 0.0));
        idx.update(&fix(1, 10, 43.5, 5.5, 10.0, 0.0));
        // Old location no longer matches.
        let near_old = idx.neighbours(&fix(2, 10, 43.0, 5.0, 0.0, 0.0), 2_000.0);
        assert!(near_old.is_empty());
        let near_new = idx.neighbours(&fix(2, 10, 43.5, 5.5, 0.0, 0.0), 2_000.0);
        assert_eq!(near_new.len(), 1);
    }

    #[test]
    fn live_index_never_regresses_on_late_fix() {
        // Regression: a late out-of-order fix used to overwrite the
        // newer snapshot (and strand the vessel in the wrong cell).
        let mut idx = LiveIndex::new();
        idx.update(&fix(1, 10, 43.5, 5.5, 10.0, 0.0));
        assert!(!idx.update(&fix(1, 5, 43.0, 5.0, 10.0, 0.0)), "stale fix must be refused");
        assert_eq!(idx.latest(1).unwrap().t, Timestamp::from_mins(10));
        // The cell hash still reflects the newest position only.
        assert!(idx.neighbours(&fix(2, 10, 43.0, 5.0, 0.0, 0.0), 2_000.0).is_empty());
        assert_eq!(idx.neighbours(&fix(2, 10, 43.5, 5.5, 0.0, 0.0), 2_000.0).len(), 1);
    }

    #[test]
    fn live_index_shuffled_arrival_converges() {
        // Any arrival order of the same fix set must produce the same
        // snapshot.
        let mut fixes: Vec<Fix> = (0..30)
            .flat_map(|i| {
                (1..=5u32).map(move |id| {
                    fix(id, i, 42.0 + f64::from(id) * 0.2, 4.0 + i as f64 * 0.05, 8.0, 90.0)
                })
            })
            .collect();
        let mut ordered = LiveIndex::new();
        for f in &fixes {
            ordered.update(f);
        }
        // Deterministic shuffle (LCG swap walk).
        let mut s = 0x9E37_79B9u64;
        for i in (1..fixes.len()).rev() {
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            fixes.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut shuffled = LiveIndex::new();
        for f in &fixes {
            shuffled.update(f);
        }
        assert_eq!(ordered.len(), shuffled.len());
        for id in 1..=5u32 {
            assert_eq!(ordered.latest(id), shuffled.latest(id), "vessel {id} diverged");
        }
    }

    #[test]
    fn neighbours_at_high_latitude_widen_reach() {
        // At 70°N a 0.1° longitude cell is only ~3.8 km wide. Two
        // vessels ~14.8 km apart in longitude (inside a 15 km radius)
        // sit 4 cells apart — beyond the old fixed 3-cell reach
        // derived from the 11 km latitude cell size.
        let mut idx = LiveIndex::new();
        idx.update(&fix(1, 0, 70.0, 5.095, 15.0, 90.0));
        idx.update(&fix(2, 0, 70.0, 5.485, 15.0, 270.0));
        let d = haversine_m(Position::new(70.0, 5.095), Position::new(70.0, 5.485));
        assert!(d < 15_000.0, "test geometry broke: {d}");
        let n = idx.neighbours(&fix(1, 0, 70.0, 5.095, 15.0, 90.0), 15_000.0);
        assert_eq!(n.len(), 1, "high-latitude neighbour missed");
        assert_eq!(n[0].id, 2);
    }

    #[test]
    fn collision_pair_at_high_latitude_is_screened() {
        // The same geometry as above, head-on at 15 kn: a genuine
        // collision course the fixed-reach index never saw.
        let mut idx = LiveIndex::new();
        let mut d = CollisionDetector::new(CollisionConfig::default());
        idx.update(&fix(1, 0, 70.0, 5.095, 15.0, 90.0));
        idx.update(&fix(2, 0, 70.0, 5.485, 15.0, 270.0));
        let events = col_sweep(&mut d, &idx, 0);
        assert_eq!(events.len(), 1, "70°N collision pair missed");
        match &events[0].kind {
            EventKind::CollisionRisk { other, dcpa_m, tcpa_s } => {
                assert_eq!(*other, 2);
                assert!(*dcpa_m < 300.0);
                assert!(*tcpa_s > 0.0 && *tcpa_s <= 1_200.0, "tcpa {tcpa_s}");
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn fleet_index_merges_shards() {
        let mut a = LiveIndex::new();
        let mut b = LiveIndex::new();
        a.update(&fix(1, 0, 43.0, 5.0, 3.0, 0.0));
        b.update(&fix(2, 0, 43.001, 5.0, 3.0, 0.0));
        let shards = [a, b];
        let view = FleetIndex::snapshot(&shards);
        assert_eq!(view.len(), 2);
        assert_eq!(view.shard_count(), 2);
        assert_eq!(view.latest(2).unwrap().id, 2);
        let n = view.neighbours(&fix(1, 0, 43.0, 5.0, 3.0, 0.0), 1_000.0);
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].id, 2);
    }

    #[test]
    fn rendezvous_requires_sustained_proximity() {
        let mut idx = LiveIndex::new();
        let mut d = RendezvousDetector::new(RendezvousConfig {
            min_duration: 20 * MINUTE,
            ..Default::default()
        });
        let mut events = Vec::new();
        for i in 0..30 {
            idx.update(&fix(1, i, 42.60, 4.80, 1.0, 0.0));
            idx.update(&fix(2, i, 42.601, 4.80, 1.5, 180.0)); // ~110 m apart
            events.extend(rz_sweep(&mut d, &idx, i));
        }
        assert_eq!(events.len(), 1, "exactly one rendezvous report");
        match &events[0].kind {
            EventKind::Rendezvous { minutes, distance_m, other } => {
                assert!(*minutes >= 20.0);
                assert!(*distance_m < 200.0);
                assert_eq!(*other, 2);
            }
            k => panic!("wrong kind {k:?}"),
        }
        assert_eq!(events[0].vessel, 1, "reported once, by the smaller id");
    }

    #[test]
    fn rendezvous_version_cache_skips_recompute() {
        // Two anchored vessels that transmit once: subsequent sweeps
        // reuse the cached distance (versions unchanged) and still
        // accumulate duration — within the freshness horizon.
        let mut idx = LiveIndex::new();
        let mut d = RendezvousDetector::new(RendezvousConfig {
            min_duration: 2 * MINUTE,
            freshness: 10 * MINUTE,
            ..Default::default()
        });
        idx.update(&fix(1, 0, 42.60, 4.80, 0.8, 0.0));
        idx.update(&fix(2, 0, 42.601, 4.80, 0.8, 0.0));
        let mut events = Vec::new();
        for i in 0..4 {
            events.extend(rz_sweep(&mut d, &idx, i));
        }
        assert_eq!(events.len(), 1, "cached sweeps still accrue duration");
        assert_eq!(d.open_pairs(), 1);
    }

    #[test]
    fn passing_vessels_no_rendezvous() {
        let mut idx = LiveIndex::new();
        let mut d = RendezvousDetector::new(RendezvousConfig::default());
        let mut events = Vec::new();
        // Two fast vessels crossing: close only briefly, and too fast.
        for i in 0..30 {
            idx.update(&fix(1, i, 42.60, 4.70 + i as f64 * 0.01, 14.0, 90.0));
            idx.update(&fix(2, i, 42.60, 5.00 - i as f64 * 0.01, 14.0, 270.0));
            events.extend(rz_sweep(&mut d, &idx, i));
        }
        assert!(events.is_empty());
    }

    #[test]
    fn rendezvous_suppressed_in_exclusion_zone() {
        let anchorage = Polygon::circle(Position::new(42.60, 4.80), 5_000.0);
        let mut idx = LiveIndex::new();
        let mut d = RendezvousDetector::new(RendezvousConfig {
            exclusion_zones: vec![anchorage],
            ..Default::default()
        });
        let mut events = Vec::new();
        for i in 0..40 {
            idx.update(&fix(1, i, 42.60, 4.80, 1.0, 0.0));
            idx.update(&fix(2, i, 42.601, 4.80, 1.0, 0.0));
            events.extend(rz_sweep(&mut d, &idx, i));
        }
        assert!(events.is_empty(), "anchorage proximity is normal");
    }

    #[test]
    fn rendezvous_pair_expires_when_partner_goes_dark() {
        let mut idx = LiveIndex::new();
        let mut d = RendezvousDetector::new(RendezvousConfig {
            freshness: 5 * MINUTE,
            ..Default::default()
        });
        idx.update(&fix(1, 0, 42.60, 4.80, 1.0, 0.0));
        idx.update(&fix(2, 0, 42.601, 4.80, 1.0, 0.0));
        rz_sweep(&mut d, &idx, 0);
        assert_eq!(d.open_pairs(), 1);
        // Vessel 2 stops transmitting; vessel 1 keeps going.
        for i in 1..10 {
            idx.update(&fix(1, i, 42.60, 4.80, 1.0, 0.0));
            rz_sweep(&mut d, &idx, i);
        }
        assert_eq!(d.open_pairs(), 0, "stale partner must not hold the pair open");
    }

    #[test]
    fn rendezvous_evict_drops_pairs() {
        let mut idx = LiveIndex::new();
        let mut d = RendezvousDetector::new(RendezvousConfig::default());
        idx.update(&fix(1, 0, 42.60, 4.80, 1.0, 0.0));
        idx.update(&fix(2, 0, 42.601, 4.80, 1.0, 0.0));
        rz_sweep(&mut d, &idx, 0);
        assert_eq!(d.open_pairs(), 1);
        d.evict(&HashSet::from([2u32]));
        assert_eq!(d.open_pairs(), 0);
    }

    #[test]
    fn collision_alert_on_head_on_course() {
        let mut idx = LiveIndex::new();
        let mut d = CollisionDetector::new(CollisionConfig::default());
        // 6 NM apart, closing head-on at 10 kn each: TCPA ~18 min.
        idx.update(&fix(1, 0, 42.60, 4.80, 10.0, 90.0));
        idx.update(&fix(2, 0, 42.60, 4.80 + 0.1356, 10.0, 270.0));
        let events = col_sweep(&mut d, &idx, 0);
        assert_eq!(events.len(), 1);
        match &events[0].kind {
            EventKind::CollisionRisk { dcpa_m, tcpa_s, other } => {
                assert!(*dcpa_m < 300.0);
                assert!(*tcpa_s > 600.0 && *tcpa_s < 1_200.0, "tcpa {tcpa_s}");
                assert_eq!(*other, 2);
            }
            k => panic!("wrong kind {k:?}"),
        }
        // Re-arm: the next sweep is silent even though the geometry
        // still alarms.
        let again = col_sweep(&mut d, &idx, 1);
        assert!(again.is_empty());
        assert_eq!(d.armed_pairs(), 1);
        // Once the re-arm window passes (and the fixes have gone
        // stale), the re-arm entry self-prunes.
        let later = col_sweep(&mut d, &idx, 11);
        assert!(later.is_empty());
        assert_eq!(d.armed_pairs(), 0, "expired re-arm entries must be pruned");
    }

    #[test]
    fn parallel_courses_no_alert() {
        let mut idx = LiveIndex::new();
        let mut d = CollisionDetector::new(CollisionConfig::default());
        idx.update(&fix(1, 0, 42.60, 4.80, 10.0, 0.0));
        idx.update(&fix(2, 0, 42.60, 4.85, 10.0, 0.0)); // 4 km abeam, same course
        assert!(col_sweep(&mut d, &idx, 0).is_empty());
    }

    #[test]
    fn moored_vessels_no_collision_alert() {
        let mut idx = LiveIndex::new();
        let mut d = CollisionDetector::new(CollisionConfig::default());
        idx.update(&fix(1, 0, 42.60, 4.80, 0.1, 0.0));
        idx.update(&fix(2, 0, 42.6001, 4.80, 0.1, 0.0));
        assert!(col_sweep(&mut d, &idx, 0).is_empty());
    }
}
