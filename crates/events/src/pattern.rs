//! Declarative sequence patterns over per-key event streams.
//!
//! The paper calls for "machine learning methods supporting the
//! identification and the *formalization* of events and patterns".
//! The formalisation half is this module: a pattern is a named sequence
//! of predicates with a time bound and optional negated ("without")
//! conditions, evaluated incrementally per key. Example: *gap-start,
//! then gap-end, then zone-entry into a protected area, within two
//! hours, without a port call in between* — the classic dark-approach
//! signature.

use mda_geo::{DurationMs, Timestamp};
use std::collections::HashMap;
use std::hash::Hash;

/// A step predicate over events of type `E`.
pub type Predicate<E> = Box<dyn Fn(&E) -> bool + Send>;

/// A sequence pattern with a time window and negation.
pub struct SequencePattern<E> {
    name: String,
    steps: Vec<Predicate<E>>,
    /// Events matching this predicate *abort* any partial match.
    unless: Option<Predicate<E>>,
    within: DurationMs,
}

/// A completed match.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternMatch<K> {
    /// Pattern name.
    pub pattern: String,
    /// The key (vessel) the match belongs to.
    pub key: K,
    /// Time of the first matched step.
    pub started: Timestamp,
    /// Time of the last matched step.
    pub completed: Timestamp,
}

/// Incremental matcher of one pattern over many keys.
pub struct PatternMatcher<K, E> {
    pattern: SequencePattern<E>,
    /// Partial matches per key: (next step index, start time, last time).
    partial: HashMap<K, (usize, Timestamp, Timestamp)>,
}

impl<E> SequencePattern<E> {
    /// Start building a pattern.
    pub fn builder(name: &str, within: DurationMs) -> SequencePatternBuilder<E> {
        SequencePatternBuilder { name: name.to_string(), steps: Vec::new(), unless: None, within }
    }
}

/// Builder for [`SequencePattern`].
pub struct SequencePatternBuilder<E> {
    name: String,
    steps: Vec<Predicate<E>>,
    unless: Option<Predicate<E>>,
    within: DurationMs,
}

impl<E> SequencePatternBuilder<E> {
    /// Append a step that must match next.
    pub fn then(mut self, pred: impl Fn(&E) -> bool + Send + 'static) -> Self {
        self.steps.push(Box::new(pred));
        self
    }

    /// Abort partial matches when this predicate fires.
    pub fn unless(mut self, pred: impl Fn(&E) -> bool + Send + 'static) -> Self {
        self.unless = Some(Box::new(pred));
        self
    }

    /// Finish the pattern; panics if no steps were added.
    pub fn build(self) -> SequencePattern<E> {
        assert!(!self.steps.is_empty(), "pattern needs at least one step");
        SequencePattern {
            name: self.name,
            steps: self.steps,
            unless: self.unless,
            within: self.within,
        }
    }
}

impl<K: Eq + Hash + Clone, E> PatternMatcher<K, E> {
    /// New matcher for a pattern.
    pub fn new(pattern: SequencePattern<E>) -> Self {
        Self { pattern, partial: HashMap::new() }
    }

    /// Observe one event for `key` at time `t`; returns a match if the
    /// pattern completed.
    pub fn observe(&mut self, key: K, t: Timestamp, event: &E) -> Option<PatternMatch<K>> {
        // Negation aborts any partial match for the key.
        if let Some(unless) = &self.pattern.unless {
            if unless(event) {
                self.partial.remove(&key);
                return None;
            }
        }
        let state = self.partial.get(&key).copied();
        match state {
            None => {
                if (self.pattern.steps[0])(event) {
                    if self.pattern.steps.len() == 1 {
                        return Some(PatternMatch {
                            pattern: self.pattern.name.clone(),
                            key,
                            started: t,
                            completed: t,
                        });
                    }
                    self.partial.insert(key, (1, t, t));
                }
                None
            }
            Some((next, started, _)) => {
                // Window expiry: drop and retry the event as a fresh
                // first step.
                if t - started > self.pattern.within {
                    self.partial.remove(&key);
                    return self.observe(key, t, event);
                }
                if (self.pattern.steps[next])(event) {
                    if next + 1 == self.pattern.steps.len() {
                        self.partial.remove(&key);
                        return Some(PatternMatch {
                            pattern: self.pattern.name.clone(),
                            key,
                            started,
                            completed: t,
                        });
                    }
                    self.partial.insert(key, (next + 1, started, t));
                } else if (self.pattern.steps[0])(event) && next != 1 {
                    // Non-matching event that could restart the pattern.
                    self.partial.insert(key, (1, t, t));
                }
                None
            }
        }
    }

    /// Drop partial matches whose window can no longer complete as of
    /// `now` (event time).
    ///
    /// Window expiry is otherwise handled lazily, when the key's *next*
    /// event arrives — but keys that never produce another event would
    /// pin their partial state forever. Long-running deployments should
    /// call this from the same watermark tick that drives engine
    /// eviction. Returns the number of partials dropped.
    pub fn prune_expired(&mut self, now: Timestamp) -> usize {
        let before = self.partial.len();
        let within = self.pattern.within;
        self.partial.retain(|_, (_, started, _)| now.since(*started) <= within);
        before - self.partial.len()
    }

    /// Drop the partial match of an evicted key (TTL path).
    pub fn evict(&mut self, key: &K) {
        self.partial.remove(key);
    }

    /// Number of keys with a partial match in flight.
    pub fn partial_count(&self) -> usize {
        self.partial.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::MINUTE;

    #[derive(Debug, Clone, PartialEq)]
    enum Ev {
        GapStart,
        GapEnd,
        ZoneEntry(&'static str),
        PortCall,
    }

    fn dark_approach() -> SequencePattern<Ev> {
        SequencePattern::builder("dark-approach", 120 * MINUTE)
            .then(|e: &Ev| matches!(e, Ev::GapStart))
            .then(|e: &Ev| matches!(e, Ev::GapEnd))
            .then(|e: &Ev| matches!(e, Ev::ZoneEntry("RESERVE")))
            .unless(|e: &Ev| matches!(e, Ev::PortCall))
            .build()
    }

    #[test]
    fn full_sequence_matches() {
        let mut m = PatternMatcher::new(dark_approach());
        assert!(m.observe(1u32, Timestamp::from_mins(0), &Ev::GapStart).is_none());
        assert!(m.observe(1, Timestamp::from_mins(30), &Ev::GapEnd).is_none());
        let hit = m
            .observe(1, Timestamp::from_mins(50), &Ev::ZoneEntry("RESERVE"))
            .expect("pattern must complete");
        assert_eq!(hit.pattern, "dark-approach");
        assert_eq!(hit.started, Timestamp::from_mins(0));
        assert_eq!(hit.completed, Timestamp::from_mins(50));
        assert_eq!(m.partial_count(), 0);
    }

    #[test]
    fn wrong_zone_does_not_complete() {
        let mut m = PatternMatcher::new(dark_approach());
        m.observe(1u32, Timestamp::from_mins(0), &Ev::GapStart);
        m.observe(1, Timestamp::from_mins(30), &Ev::GapEnd);
        assert!(m.observe(1, Timestamp::from_mins(50), &Ev::ZoneEntry("HARBOUR")).is_none());
        // The right zone later still completes (within window).
        assert!(m.observe(1, Timestamp::from_mins(60), &Ev::ZoneEntry("RESERVE")).is_some());
    }

    #[test]
    fn negation_aborts() {
        let mut m = PatternMatcher::new(dark_approach());
        m.observe(1u32, Timestamp::from_mins(0), &Ev::GapStart);
        m.observe(1, Timestamp::from_mins(30), &Ev::GapEnd);
        m.observe(1, Timestamp::from_mins(40), &Ev::PortCall); // innocent explanation
        assert!(m.observe(1, Timestamp::from_mins(50), &Ev::ZoneEntry("RESERVE")).is_none());
        assert_eq!(m.partial_count(), 0);
    }

    #[test]
    fn window_expiry_restarts() {
        let mut m = PatternMatcher::new(dark_approach());
        m.observe(1u32, Timestamp::from_mins(0), &Ev::GapStart);
        m.observe(1, Timestamp::from_mins(30), &Ev::GapEnd);
        // 3 hours later: window expired; the entry does not complete but
        // a fresh GapStart can begin again.
        assert!(m.observe(1, Timestamp::from_mins(200), &Ev::ZoneEntry("RESERVE")).is_none());
        m.observe(1, Timestamp::from_mins(210), &Ev::GapStart);
        m.observe(1, Timestamp::from_mins(220), &Ev::GapEnd);
        assert!(m.observe(1, Timestamp::from_mins(230), &Ev::ZoneEntry("RESERVE")).is_some());
    }

    #[test]
    fn prune_expired_drops_dead_partials() {
        let mut m = PatternMatcher::new(dark_approach());
        m.observe(1u32, Timestamp::from_mins(0), &Ev::GapStart);
        m.observe(2, Timestamp::from_mins(100), &Ev::GapStart);
        assert_eq!(m.partial_count(), 2);
        // Key 1's 120-minute window is over; key 2's is still open.
        assert_eq!(m.prune_expired(Timestamp::from_mins(130)), 1);
        assert_eq!(m.partial_count(), 1);
        // Key 2 can still complete.
        m.observe(2, Timestamp::from_mins(140), &Ev::GapEnd);
        assert!(m.observe(2, Timestamp::from_mins(150), &Ev::ZoneEntry("RESERVE")).is_some());
        // Evicting a key drops its partial outright.
        m.observe(3, Timestamp::from_mins(150), &Ev::GapStart);
        m.evict(&3);
        assert_eq!(m.partial_count(), 0);
    }

    #[test]
    fn keys_are_independent() {
        let mut m = PatternMatcher::new(dark_approach());
        m.observe(1u32, Timestamp::from_mins(0), &Ev::GapStart);
        m.observe(2, Timestamp::from_mins(0), &Ev::GapEnd); // key 2 out of order
        m.observe(1, Timestamp::from_mins(10), &Ev::GapEnd);
        assert!(m.observe(2, Timestamp::from_mins(20), &Ev::ZoneEntry("RESERVE")).is_none());
        assert!(m.observe(1, Timestamp::from_mins(20), &Ev::ZoneEntry("RESERVE")).is_some());
    }

    #[test]
    fn single_step_pattern() {
        let p = SequencePattern::builder("any-gap", 10 * MINUTE)
            .then(|e: &Ev| matches!(e, Ev::GapStart))
            .build();
        let mut m = PatternMatcher::new(p);
        assert!(m.observe(5u32, Timestamp::from_mins(1), &Ev::GapStart).is_some());
        assert!(m.observe(5, Timestamp::from_mins(2), &Ev::GapEnd).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_pattern_panics() {
        let _ = SequencePattern::<Ev>::builder("empty", MINUTE).build();
    }
}
