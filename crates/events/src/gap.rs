//! AIS communication-gap detection ("going dark").
//!
//! Two complementary paths:
//!
//! - retrospective: when a vessel resumes transmitting after more than
//!   the threshold, emit `GapStart` (back-dated to the last fix) and
//!   `GapEnd` — this is how archived data is annotated;
//! - live: [`GapDetector::check_silent`] reports vessels that have been
//!   silent longer than the threshold *as of now*, which is what an
//!   operator console shows as "dark vessels".
//!
//! The live path is **heap-driven**: every observed fix pushes a
//! `(last_t, vessel)` deadline onto a min-heap, and a sweep pops only
//! the deadlines that have actually expired (lazily discarding entries
//! superseded by a newer fix). A sweep therefore costs O(expired ·
//! log n), not O(all vessels) — on a fleet where most ships transmit
//! every few seconds, almost nothing.
//!
//! Vessels silent past the engine's TTL graduate from the deadline heap
//! into an *idle* heap, from which [`GapDetector::evict_idle`] drops
//! their tracking state entirely — the hook the engine's
//! watermark-driven eviction uses to keep long-running detector state
//! bounded by the live fleet, not by every vessel ever seen.

use crate::event::{EventKind, MaritimeEvent};
use mda_geo::{DurationMs, Fix, Timestamp, VesselId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Streaming gap detector over all vessels.
#[derive(Debug)]
pub struct GapDetector {
    threshold: DurationMs,
    last_fix: HashMap<VesselId, Fix>,
    /// Vessels already reported silent (to avoid repeating the alarm).
    reported_silent: HashMap<VesselId, Timestamp>,
    /// Silence deadlines, one per observed fix: `(last_t, vessel)`.
    /// Entries are invalidated lazily — an entry whose `last_t` no
    /// longer matches the vessel's latest fix is skipped on pop.
    deadlines: BinaryHeap<Reverse<(Timestamp, VesselId)>>,
    /// Vessels already past the silence threshold, awaiting TTL
    /// eviction, keyed by the same lazy `(last_t, vessel)` scheme.
    idle: BinaryHeap<Reverse<(Timestamp, VesselId)>>,
}

impl GapDetector {
    /// Silence longer than `threshold` is a gap.
    pub fn new(threshold: DurationMs) -> Self {
        assert!(threshold > 0);
        Self {
            threshold,
            last_fix: HashMap::new(),
            reported_silent: HashMap::new(),
            deadlines: BinaryHeap::new(),
            idle: BinaryHeap::new(),
        }
    }

    /// Observe a fix; emits `GapStart`+`GapEnd` when it closes a gap.
    ///
    /// Out-of-order stragglers (a fix at or before the vessel's stored
    /// latest) are ignored: silence is defined by the *newest* evidence
    /// of transmission, so a late fix can neither open nor close a gap.
    pub fn observe(&mut self, fix: &Fix) -> Vec<MaritimeEvent> {
        let mut out = Vec::new();
        if let Some(prev) = self.last_fix.get(&fix.id) {
            if fix.t <= prev.t {
                return out; // stale: never regress the silence clock
            }
            let silence = fix.t - prev.t;
            if silence > self.threshold {
                // Only emit GapStart if the live path has not already.
                if self.reported_silent.remove(&fix.id).is_none() {
                    out.push(MaritimeEvent {
                        t: prev.t,
                        vessel: fix.id,
                        pos: prev.pos,
                        kind: EventKind::GapStart,
                    });
                }
                out.push(MaritimeEvent {
                    t: fix.t,
                    vessel: fix.id,
                    pos: fix.pos,
                    kind: EventKind::GapEnd { minutes: silence as f64 / 60_000.0 },
                });
            } else {
                self.reported_silent.remove(&fix.id);
            }
        }
        self.last_fix.insert(fix.id, *fix);
        self.deadlines.push(Reverse((fix.t, fix.id)));
        out
    }

    /// Live sweep: vessels silent for longer than the threshold as of
    /// `now`, not yet reported. Emits their `GapStart` immediately.
    ///
    /// Pops only expired deadlines from the heap; vessels that kept
    /// transmitting have a newer deadline further down and their
    /// expired entries are discarded without any per-vessel scan.
    pub fn check_silent(&mut self, now: Timestamp) -> Vec<MaritimeEvent> {
        let mut out = Vec::new();
        while let Some(Reverse((t, id))) = self.deadlines.peek().copied() {
            if now.since(t) <= self.threshold {
                break; // youngest deadline not expired: nothing older is
            }
            self.deadlines.pop();
            // Lazy invalidation: only the entry matching the vessel's
            // current latest fix speaks for it.
            let Some(fix) = self.last_fix.get(&id) else { continue };
            if fix.t != t {
                continue;
            }
            // Genuinely silent: stage for TTL eviction, alert once.
            self.idle.push(Reverse((t, id)));
            if let std::collections::hash_map::Entry::Vacant(e) = self.reported_silent.entry(id) {
                e.insert(t);
                out.push(MaritimeEvent { t, vessel: id, pos: fix.pos, kind: EventKind::GapStart });
            }
        }
        out.sort_by_key(|e| (e.t, e.vessel));
        out
    }

    /// Drop all tracking state of vessels whose latest fix is at or
    /// before `cut` (the engine's `watermark − TTL`). Returns the
    /// evicted ids, sorted.
    ///
    /// Only vessels already past the silence threshold are candidates
    /// (they sit in the idle heap, placed there by
    /// [`GapDetector::check_silent`]); a vessel that resumed
    /// transmitting since is skipped via the same lazy-invalidation
    /// rule as the deadline heap.
    pub fn evict_idle(&mut self, cut: Timestamp) -> Vec<VesselId> {
        let mut gone = Vec::new();
        while let Some(Reverse((t, id))) = self.idle.peek().copied() {
            if t > cut {
                break;
            }
            self.idle.pop();
            let Some(fix) = self.last_fix.get(&id) else { continue };
            if fix.t != t {
                continue; // resumed since: a fresher entry tracks it
            }
            self.last_fix.remove(&id);
            self.reported_silent.remove(&id);
            gone.push(id);
        }
        gone.sort_unstable();
        gone
    }

    /// Vessels currently flagged silent.
    pub fn silent_now(&self) -> usize {
        self.reported_silent.len()
    }

    /// Total vessels currently tracked (bounded by eviction, not by
    /// every vessel ever seen).
    pub fn known_vessels(&self) -> usize {
        self.last_fix.len()
    }

    /// Entries across both lazy heaps (diagnostic; bounded by the fix
    /// rate within one threshold window plus idle vessels).
    pub fn heap_len(&self) -> usize {
        self.deadlines.len() + self.idle.len()
    }

    /// Latest stored fix time of a vessel, if tracked.
    pub fn last_seen(&self, id: VesselId) -> Option<Timestamp> {
        self.last_fix.get(&id).map(|f| f.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::MINUTE;
    use mda_geo::Position;

    fn fix(id: u32, t_min: i64) -> Fix {
        Fix::new(id, Timestamp::from_mins(t_min), Position::new(43.0, 5.0), 10.0, 0.0)
    }

    #[test]
    fn continuous_stream_no_gap() {
        let mut d = GapDetector::new(10 * MINUTE);
        for i in 0..20 {
            assert!(d.observe(&fix(1, i)).is_empty());
        }
        assert_eq!(d.known_vessels(), 1);
    }

    #[test]
    fn retrospective_gap_emits_both_edges() {
        let mut d = GapDetector::new(10 * MINUTE);
        d.observe(&fix(1, 0));
        d.observe(&fix(1, 2));
        let events = d.observe(&fix(1, 60));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::GapStart);
        assert_eq!(events[0].t, Timestamp::from_mins(2), "back-dated to last fix");
        match &events[1].kind {
            EventKind::GapEnd { minutes } => assert!((minutes - 58.0).abs() < 1e-9),
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn live_sweep_reports_once() {
        let mut d = GapDetector::new(10 * MINUTE);
        d.observe(&fix(1, 0));
        d.observe(&fix(2, 0));
        let first = d.check_silent(Timestamp::from_mins(15));
        assert_eq!(first.len(), 2);
        assert_eq!(d.silent_now(), 2);
        // No repeated alarm.
        assert!(d.check_silent(Timestamp::from_mins(20)).is_empty());
    }

    #[test]
    fn live_then_resume_emits_only_gap_end() {
        let mut d = GapDetector::new(10 * MINUTE);
        d.observe(&fix(1, 0));
        let live = d.check_silent(Timestamp::from_mins(20));
        assert_eq!(live.len(), 1);
        let resume = d.observe(&fix(1, 30));
        assert_eq!(resume.len(), 1, "GapStart was already emitted live");
        assert!(matches!(resume[0].kind, EventKind::GapEnd { .. }));
        assert_eq!(d.silent_now(), 0);
    }

    #[test]
    fn independent_vessels() {
        let mut d = GapDetector::new(10 * MINUTE);
        d.observe(&fix(1, 0));
        d.observe(&fix(2, 0));
        d.observe(&fix(2, 5)); // vessel 2 keeps talking
        let events = d.observe(&fix(1, 30));
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.vessel == 1));
    }

    #[test]
    fn stale_fix_does_not_reset_silence_clock() {
        // A late out-of-order fix must not make a dark vessel look
        // alive (the stale-state bug class this module used to have).
        let mut d = GapDetector::new(10 * MINUTE);
        d.observe(&fix(1, 0));
        d.observe(&fix(1, 20)); // closes a 20-min gap
        assert!(d.observe(&fix(1, 5)).is_empty(), "straggler must be ignored");
        assert_eq!(d.last_seen(1), Some(Timestamp::from_mins(20)), "clock regressed");
        // Silence is measured from minute 20, not minute 5.
        assert!(d.check_silent(Timestamp::from_mins(25)).is_empty());
        assert_eq!(d.check_silent(Timestamp::from_mins(31)).len(), 1);
    }

    #[test]
    fn expired_heap_entries_are_lazily_discarded() {
        let mut d = GapDetector::new(10 * MINUTE);
        // 100 fixes from one vessel: 100 heap entries, 99 of them stale.
        for i in 0..100 {
            d.observe(&fix(1, i));
        }
        assert_eq!(d.heap_len(), 100);
        // Sweep well past every old deadline: all stale entries drain,
        // no false alarms (its latest fix at minute 99 is recent).
        assert!(d.check_silent(Timestamp::from_mins(105)).is_empty());
        // Only deadlines inside the last threshold window survive
        // (minutes 95..=99 here) — the heap is bounded by the fix rate
        // within one threshold window, not by history length.
        assert_eq!(d.heap_len(), 5);
    }

    #[test]
    fn evict_idle_drops_dead_state_and_spares_the_living() {
        let mut d = GapDetector::new(10 * MINUTE);
        d.observe(&fix(1, 0)); // goes dark forever
        d.observe(&fix(2, 0)); // dark, then resumes
        let silent = d.check_silent(Timestamp::from_mins(15));
        assert_eq!(silent.len(), 2);
        d.observe(&fix(2, 16)); // vessel 2 is back
                                // TTL cut at minute 10: vessel 1 (last fix 0) is evicted;
                                // vessel 2's idle entry is stale and skipped.
        let gone = d.evict_idle(Timestamp::from_mins(10));
        assert_eq!(gone, vec![1]);
        assert_eq!(d.known_vessels(), 1);
        assert_eq!(d.silent_now(), 0, "evicted vessel leaves no silent flag");
        // If vessel 1 ever returns it is treated as brand new — no gap
        // edges from beyond the TTL.
        assert!(d.observe(&fix(1, 600)).is_empty());
        assert_eq!(d.known_vessels(), 2);
    }

    #[test]
    fn eviction_before_threshold_is_a_no_op() {
        let mut d = GapDetector::new(10 * MINUTE);
        d.observe(&fix(1, 0));
        // Not yet swept silent: the idle heap is empty, so even an
        // aggressive cut evicts nothing.
        assert!(d.evict_idle(Timestamp::from_mins(60)).is_empty());
        assert_eq!(d.known_vessels(), 1);
    }
}
