//! AIS communication-gap detection ("going dark").
//!
//! Two complementary paths:
//!
//! - retrospective: when a vessel resumes transmitting after more than
//!   the threshold, emit `GapStart` (back-dated to the last fix) and
//!   `GapEnd` — this is how archived data is annotated;
//! - live: [`GapDetector::check_silent`] reports vessels that have been
//!   silent longer than the threshold *as of now*, which is what an
//!   operator console shows as "dark vessels".

use crate::event::{EventKind, MaritimeEvent};
use mda_geo::{DurationMs, Fix, Timestamp, VesselId};
use std::collections::HashMap;

/// Streaming gap detector over all vessels.
#[derive(Debug)]
pub struct GapDetector {
    threshold: DurationMs,
    last_fix: HashMap<VesselId, Fix>,
    /// Vessels already reported silent (to avoid repeating the alarm).
    reported_silent: HashMap<VesselId, Timestamp>,
}

impl GapDetector {
    /// Silence longer than `threshold` is a gap.
    pub fn new(threshold: DurationMs) -> Self {
        assert!(threshold > 0);
        Self { threshold, last_fix: HashMap::new(), reported_silent: HashMap::new() }
    }

    /// Observe a fix; emits `GapStart`+`GapEnd` when it closes a gap.
    pub fn observe(&mut self, fix: &Fix) -> Vec<MaritimeEvent> {
        let mut out = Vec::new();
        if let Some(prev) = self.last_fix.insert(fix.id, *fix) {
            let silence = fix.t - prev.t;
            if silence > self.threshold {
                // Only emit GapStart if the live path has not already.
                if self.reported_silent.remove(&fix.id).is_none() {
                    out.push(MaritimeEvent {
                        t: prev.t,
                        vessel: fix.id,
                        pos: prev.pos,
                        kind: EventKind::GapStart,
                    });
                }
                out.push(MaritimeEvent {
                    t: fix.t,
                    vessel: fix.id,
                    pos: fix.pos,
                    kind: EventKind::GapEnd { minutes: silence as f64 / 60_000.0 },
                });
            } else {
                self.reported_silent.remove(&fix.id);
            }
        }
        out
    }

    /// Live sweep: vessels silent for longer than the threshold as of
    /// `now`, not yet reported. Emits their `GapStart` immediately.
    pub fn check_silent(&mut self, now: Timestamp) -> Vec<MaritimeEvent> {
        let mut out = Vec::new();
        for (id, fix) in &self.last_fix {
            if now - fix.t > self.threshold && !self.reported_silent.contains_key(id) {
                self.reported_silent.insert(*id, fix.t);
                out.push(MaritimeEvent {
                    t: fix.t,
                    vessel: *id,
                    pos: fix.pos,
                    kind: EventKind::GapStart,
                });
            }
        }
        out.sort_by_key(|e| (e.t, e.vessel));
        out
    }

    /// Vessels currently flagged silent.
    pub fn silent_now(&self) -> usize {
        self.reported_silent.len()
    }

    /// Total vessels ever seen.
    pub fn known_vessels(&self) -> usize {
        self.last_fix.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::MINUTE;
    use mda_geo::Position;

    fn fix(id: u32, t_min: i64) -> Fix {
        Fix::new(id, Timestamp::from_mins(t_min), Position::new(43.0, 5.0), 10.0, 0.0)
    }

    #[test]
    fn continuous_stream_no_gap() {
        let mut d = GapDetector::new(10 * MINUTE);
        for i in 0..20 {
            assert!(d.observe(&fix(1, i)).is_empty());
        }
        assert_eq!(d.known_vessels(), 1);
    }

    #[test]
    fn retrospective_gap_emits_both_edges() {
        let mut d = GapDetector::new(10 * MINUTE);
        d.observe(&fix(1, 0));
        d.observe(&fix(1, 2));
        let events = d.observe(&fix(1, 60));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::GapStart);
        assert_eq!(events[0].t, Timestamp::from_mins(2), "back-dated to last fix");
        match &events[1].kind {
            EventKind::GapEnd { minutes } => assert!((minutes - 58.0).abs() < 1e-9),
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn live_sweep_reports_once() {
        let mut d = GapDetector::new(10 * MINUTE);
        d.observe(&fix(1, 0));
        d.observe(&fix(2, 0));
        let first = d.check_silent(Timestamp::from_mins(15));
        assert_eq!(first.len(), 2);
        assert_eq!(d.silent_now(), 2);
        // No repeated alarm.
        assert!(d.check_silent(Timestamp::from_mins(20)).is_empty());
    }

    #[test]
    fn live_then_resume_emits_only_gap_end() {
        let mut d = GapDetector::new(10 * MINUTE);
        d.observe(&fix(1, 0));
        let live = d.check_silent(Timestamp::from_mins(20));
        assert_eq!(live.len(), 1);
        let resume = d.observe(&fix(1, 30));
        assert_eq!(resume.len(), 1, "GapStart was already emitted live");
        assert!(matches!(resume[0].kind, EventKind::GapEnd { .. }));
        assert_eq!(d.silent_now(), 0);
    }

    #[test]
    fn independent_vessels() {
        let mut d = GapDetector::new(10 * MINUTE);
        d.observe(&fix(1, 0));
        d.observe(&fix(2, 0));
        d.observe(&fix(2, 5)); // vessel 2 keeps talking
        let events = d.observe(&fix(1, 30));
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.vessel == 1));
    }
}
