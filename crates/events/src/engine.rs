//! The event engine: every detector behind one `observe` call.

use crate::event::MaritimeEvent;
use crate::gap::GapDetector;
use crate::loiter::{LoiterConfig, LoiterDetector};
use crate::proximity::{
    CollisionConfig, CollisionDetector, LiveIndex, RendezvousConfig, RendezvousDetector,
};
use crate::veracity::{VeracityConfig, VeracityDetector};
use crate::zone::{NamedZone, ZoneDetector};
use mda_geo::{DurationMs, Fix, Timestamp};
use std::collections::HashMap;

/// Engine-wide configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// AIS silence threshold for gap detection.
    pub gap_threshold: DurationMs,
    /// Veracity detector tuning.
    pub veracity: VeracityConfig,
    /// Loiter detector tuning.
    pub loiter: LoiterConfig,
    /// Rendezvous detector tuning.
    pub rendezvous: RendezvousConfig,
    /// Collision detector tuning.
    pub collision: CollisionConfig,
    /// Zones to watch.
    pub zones: Vec<NamedZone>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            gap_threshold: 15 * mda_geo::time::MINUTE,
            veracity: VeracityConfig::default(),
            loiter: LoiterConfig::default(),
            rendezvous: RendezvousConfig::default(),
            collision: CollisionConfig::default(),
            zones: Vec::new(),
        }
    }
}

/// The streaming maritime event engine.
///
/// Feed event-time-ordered fixes; collect [`MaritimeEvent`]s. The engine
/// also exposes [`EventEngine::tick`] for watermark-driven live checks
/// (dark-vessel sweeps).
pub struct EventEngine {
    gap: GapDetector,
    veracity: VeracityDetector,
    loiter: LoiterDetector,
    rendezvous: RendezvousDetector,
    collision: CollisionDetector,
    zones: ZoneDetector,
    index: LiveIndex,
    counts: HashMap<&'static str, u64>,
    fixes_seen: u64,
}

impl EventEngine {
    /// Build an engine from configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            gap: GapDetector::new(config.gap_threshold),
            veracity: VeracityDetector::new(config.veracity),
            loiter: LoiterDetector::new(config.loiter),
            rendezvous: RendezvousDetector::new(config.rendezvous),
            collision: CollisionDetector::new(config.collision),
            zones: ZoneDetector::new(config.zones),
            index: LiveIndex::new(),
            counts: HashMap::new(),
            fixes_seen: 0,
        }
    }

    /// Observe one fix through every detector.
    pub fn observe(&mut self, fix: &Fix) -> Vec<MaritimeEvent> {
        self.fixes_seen += 1;
        self.index.update(fix);
        let mut out = Vec::new();
        out.extend(self.gap.observe(fix));
        out.extend(self.veracity.observe(fix));
        out.extend(self.loiter.observe(fix));
        out.extend(self.zones.observe(fix));
        out.extend(self.rendezvous.observe(fix, &self.index));
        out.extend(self.collision.observe(fix, &self.index));
        for e in &out {
            *self.counts.entry(e.kind.label()).or_insert(0) += 1;
        }
        out
    }

    /// Watermark-driven live checks (call periodically with advancing
    /// event time): currently the dark-vessel sweep.
    pub fn tick(&mut self, now: Timestamp) -> Vec<MaritimeEvent> {
        let out = self.gap.check_silent(now);
        for e in &out {
            *self.counts.entry(e.kind.label()).or_insert(0) += 1;
        }
        out
    }

    /// Events emitted so far, by kind label.
    pub fn counts(&self) -> &HashMap<&'static str, u64> {
        &self.counts
    }

    /// Fixes processed.
    pub fn fixes_seen(&self) -> u64 {
        self.fixes_seen
    }

    /// The live latest-fix index (for the operator picture).
    pub fn live_index(&self) -> &LiveIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use mda_geo::{BoundingBox, Polygon, Position};

    fn engine_with_zone() -> EventEngine {
        let zones = vec![NamedZone {
            name: "RESERVE".into(),
            area: Polygon::rectangle(BoundingBox::new(42.5, 4.5, 42.7, 4.8)),
            protected: true,
        }];
        EventEngine::new(EngineConfig { zones, ..Default::default() })
    }

    fn fix(id: u32, t_min: i64, lat: f64, lon: f64, sog: f64, cog: f64) -> Fix {
        Fix::new(id, Timestamp::from_mins(t_min), Position::new(lat, lon), sog, cog)
    }

    #[test]
    fn engine_dispatches_all_detectors() {
        let mut e = engine_with_zone();
        // Vessel 1 transits into the reserve and slows to fishing speed.
        e.observe(&fix(1, 0, 42.4, 4.6, 9.0, 0.0));
        let entry = e.observe(&fix(1, 10, 42.55, 4.6, 9.0, 0.0));
        assert!(entry.iter().any(|ev| matches!(ev.kind, EventKind::ZoneEntry { .. })));
        let fishing = e.observe(&fix(1, 20, 42.6, 4.62, 3.0, 45.0));
        assert!(fishing.iter().any(|ev| matches!(ev.kind, EventKind::IllegalFishing { .. })));
        assert!(e.counts()["zone-entry"] >= 1);
        assert!(e.counts()["illegal-fishing"] >= 1);
        assert_eq!(e.fixes_seen(), 3);
    }

    #[test]
    fn engine_gap_and_tick() {
        let mut e = engine_with_zone();
        e.observe(&fix(2, 0, 43.0, 5.0, 10.0, 90.0));
        let live = e.tick(Timestamp::from_mins(30));
        assert_eq!(live.len(), 1);
        assert!(matches!(live[0].kind, EventKind::GapStart));
        assert_eq!(e.counts()["gap-start"], 1);
    }

    #[test]
    fn engine_spoofing_path() {
        let mut e = engine_with_zone();
        e.observe(&fix(3, 0, 43.0, 5.0, 10.0, 90.0));
        let events = e.observe(&fix(3, 10, 43.0, 5.8, 10.0, 90.0)); // ~65 km in 10 min
        assert!(events.iter().any(|ev| matches!(ev.kind, EventKind::KinematicSpoofing { .. })));
    }

    #[test]
    fn engine_collision_path() {
        let mut e = engine_with_zone();
        e.observe(&fix(10, 0, 43.0, 5.0, 10.0, 90.0));
        let events = e.observe(&fix(11, 0, 43.0, 5.135, 10.0, 270.0));
        assert!(events.iter().any(|ev| matches!(ev.kind, EventKind::CollisionRisk { .. })));
    }

    #[test]
    fn live_index_exposed() {
        let mut e = engine_with_zone();
        e.observe(&fix(1, 0, 43.0, 5.0, 10.0, 90.0));
        assert_eq!(e.live_index().len(), 1);
        assert!(e.live_index().latest(1).is_some());
    }
}
