//! The sharded, watermark-driven event engine.
//!
//! Detector state is split two ways:
//!
//! - **Per-vessel state** (gap, veracity, loiter, zone) lives in
//!   vessel-hash shards routed by [`mda_geo::vessel_shard`] — the same
//!   function the sharded trajectory store uses, so engine shard *i*
//!   and store shard *i* own the same vessels whenever their shard
//!   counts match. [`EventEngine::observe_batch`] canonicalises a batch
//!   to `(t, vessel)` order, dispatches it shard-affine (one run per
//!   shard under one borrow) and merges emission with a stable
//!   `(t, vessel, kind)` sort, so the emitted events are independent of
//!   both arrival order (within the upstream watermark delay) and the
//!   shard count.
//! - **Pairwise state** (rendezvous, collision) is driven off the
//!   versioned per-shard [`LiveIndex`] grid by watermark sweeps in
//!   [`EventEngine::tick`]: each shard walks its own live vessels
//!   against a read-only fleet-wide [`FleetIndex`] view, and a pair is
//!   owned by the shard of its smaller vessel id.
//!
//! [`EventEngine::tick`] is also the **eviction** path: vessels silent
//! past [`EngineConfig::vessel_ttl`] are dropped from the live index,
//! the gap/veracity/loiter/zone maps and all pair state, so detector
//! memory on a long-running stream is bounded by the live fleet — not
//! by every vessel ever seen. The engine reports evictions through
//! [`EventEngine::take_evicted`] so upstream stages (e.g. the
//! pipeline's per-vessel compressors) can drop their state too.

use crate::event::MaritimeEvent;
use crate::gap::GapDetector;
use crate::loiter::{LoiterConfig, LoiterDetector};
use crate::proximity::{
    CollisionConfig, CollisionDetector, FleetIndex, LiveIndex, RendezvousConfig, RendezvousDetector,
};
use crate::veracity::{VeracityConfig, VeracityDetector};
use crate::zone::{NamedZone, ZoneDetector};
use mda_geo::{vessel_shard, DurationMs, Fix, Timestamp, VesselId};
use mda_stream::runner::partition_by_shard;
use std::collections::{HashMap, HashSet};

/// Batches at least this large run their shard dispatch on scoped
/// threads (one per non-empty shard); smaller batches stay inline —
/// the result is identical either way.
const PAR_BATCH_MIN: usize = 1_024;
/// Pairwise sweeps go parallel when the live fleet is at least this
/// large.
const PAR_SWEEP_MIN: usize = 512;

/// Engine-wide configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// AIS silence threshold for gap detection.
    pub gap_threshold: DurationMs,
    /// Veracity detector tuning.
    pub veracity: VeracityConfig,
    /// Loiter detector tuning.
    pub loiter: LoiterConfig,
    /// Rendezvous detector tuning.
    pub rendezvous: RendezvousConfig,
    /// Collision detector tuning.
    pub collision: CollisionConfig,
    /// Zones to watch.
    pub zones: Vec<NamedZone>,
    /// Detector shards. Per-vessel state is partitioned by
    /// [`mda_geo::vessel_shard`]; match the trajectory store's shard
    /// count to align the two layers. Emission is shard-count
    /// invariant, so this is purely a throughput/parallelism knob.
    pub shards: usize,
    /// Detector-state time-to-live: a vessel silent for longer than
    /// this (of event time, measured at [`EventEngine::tick`]) is
    /// evicted from every detector map and the live index. Effective
    /// eviction happens at `max(vessel_ttl, gap_threshold)` — a vessel
    /// must first be swept silent before it can idle out. Evicted
    /// vessels that resurface are treated as new (no gap edges across
    /// the eviction). Use `DurationMs::MAX` to disable eviction.
    pub vessel_ttl: DurationMs,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            gap_threshold: 15 * mda_geo::time::MINUTE,
            veracity: VeracityConfig::default(),
            loiter: LoiterConfig::default(),
            rendezvous: RendezvousConfig::default(),
            collision: CollisionConfig::default(),
            zones: Vec::new(),
            shards: 1,
            vessel_ttl: 2 * mda_geo::time::HOUR,
        }
    }
}

/// Sort a batch of fixes into the engine's canonical total order.
///
/// The order is over fix *content*, not just `(t, id)`: two fixes of
/// one vessel with the same timestamp but different payloads (cloned
/// identities, dual-receiver feeds) must still sort the same way under
/// any arrival order, or the duplicate pair would be the one place
/// processing depends on arrival. Bit patterns give a cheap
/// arbitrary-but-fixed tiebreak. The sort is stable, so equal keys
/// (true duplicates) keep arrival order.
///
/// Exposed so every consumer of watermark-released batches — the
/// engine itself, writer lanes, the pipeline's synopsis loop — agrees
/// on one canonical processing order.
pub fn canonical_sort(fixes: &mut [Fix]) {
    fixes.sort_by_key(|f| {
        (
            f.t,
            f.id,
            f.pos.lat.to_bits(),
            f.pos.lon.to_bits(),
            f.sog_kn.to_bits(),
            f.cog_deg.to_bits(),
        )
    });
}

/// One detector shard: the per-vessel detectors for the vessels hashing
/// here, plus the pairwise state owned by this shard (pairs whose
/// smaller id lives here).
struct DetectorShard {
    gap: GapDetector,
    veracity: VeracityDetector,
    loiter: LoiterDetector,
    zones: ZoneDetector,
    rendezvous: RendezvousDetector,
    collision: CollisionDetector,
}

impl DetectorShard {
    fn new(config: &EngineConfig) -> Self {
        Self {
            gap: GapDetector::new(config.gap_threshold),
            veracity: VeracityDetector::new(config.veracity),
            loiter: LoiterDetector::new(config.loiter),
            zones: ZoneDetector::new(config.zones.clone()),
            rendezvous: RendezvousDetector::new(config.rendezvous.clone()),
            collision: CollisionDetector::new(config.collision),
        }
    }

    /// Per-vessel detector run over this shard's slice of a canonical
    /// batch (one borrow for the whole run).
    fn run(&mut self, index: &mut LiveIndex, fixes: &[Fix]) -> Vec<MaritimeEvent> {
        let mut out = Vec::new();
        for fix in fixes {
            index.update(fix);
            out.extend(self.gap.observe(fix));
            out.extend(self.veracity.observe(fix));
            out.extend(self.loiter.observe(fix));
            out.extend(self.zones.observe(fix));
        }
        out
    }

    /// Pairwise (rendezvous/collision) sweep of this shard's vessels
    /// against the fleet-wide view.
    fn sweep_pairs(
        &mut self,
        wm: Timestamp,
        own: &LiveIndex,
        fleet: &FleetIndex,
    ) -> Vec<MaritimeEvent> {
        let order = own.vessels_sorted();
        let mut out = self.rendezvous.sweep(wm, &order, own, fleet);
        out.extend(self.collision.sweep(wm, &order, own, fleet));
        out
    }

    /// Dark-vessel check plus TTL eviction for this shard: returns the
    /// gap events and the ids evicted from this shard's per-vessel
    /// state and index. Pair state is *not* touched here — pairs may
    /// reference partners in other shards, so pair eviction fans the
    /// union of evicted ids out via [`DetectorShard::evict_pairs`].
    fn check_silent_and_evict(
        &mut self,
        index: &mut LiveIndex,
        wm: Timestamp,
        cut: Timestamp,
    ) -> (Vec<MaritimeEvent>, Vec<VesselId>) {
        let events = self.gap.check_silent(wm);
        let gone = self.gap.evict_idle(cut);
        if !gone.is_empty() {
            // Zone state is keyed (vessel, zone): evict all ids in one
            // retain pass. The per-vessel maps are O(1) removals.
            // lint:allow(deterministic-iteration): `gone` is a Vec in
            // eviction order; the collected set is order-free.
            let gone_set: HashSet<VesselId> = gone.iter().copied().collect();
            self.zones.evict(&gone_set);
            // lint:allow(deterministic-iteration): per-id evictions
            // commute; no emission happens in this loop.
            for &id in &gone {
                self.veracity.evict(id);
                self.loiter.evict(id);
                index.remove(id);
            }
        }
        (events, gone)
    }

    /// Drop pair state referencing any vessel in `gone` (the fan-out
    /// step of eviction).
    fn evict_pairs(&mut self, gone: &HashSet<VesselId>) {
        self.rendezvous.evict(gone);
        self.collision.evict(gone);
    }

    /// Accumulate this shard's resident-state counters into `s`.
    fn accumulate_stats(&self, s: &mut EngineStateStats) {
        s.gap_tracked += self.gap.known_vessels();
        s.gap_heap += self.gap.heap_len();
        s.veracity_identities += self.veracity.known_identities();
        s.loiter_points += self.loiter.buffered_points();
        s.zone_visits += self.zones.open_visits();
        s.rendezvous_pairs += self.rendezvous.open_pairs();
        s.collision_pairs += self.collision.armed_pairs();
    }
}

/// Resident detector state, summed across shards — the numbers the TTL
/// eviction keeps bounded on a long-running stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStateStats {
    /// Vessels in the live latest-fix index.
    pub live_vessels: usize,
    /// Vessels tracked by the gap detector.
    pub gap_tracked: usize,
    /// Lazy heap entries buffered by the gap detectors.
    pub gap_heap: usize,
    /// Identities tracked by the veracity detector.
    pub veracity_identities: usize,
    /// Fixes buffered in loiter sliding windows.
    pub loiter_points: usize,
    /// Open (vessel, zone) visits.
    pub zone_visits: usize,
    /// Open rendezvous candidate pairs.
    pub rendezvous_pairs: usize,
    /// Collision pairs inside their re-arm window.
    pub collision_pairs: usize,
}

impl EngineStateStats {
    /// Coarse total of resident entries (for bounded-state checks).
    pub fn resident_entries(&self) -> usize {
        self.live_vessels
            + self.gap_tracked
            + self.gap_heap
            + self.veracity_identities
            + self.loiter_points
            + self.zone_visits
            + self.rendezvous_pairs
            + self.collision_pairs
    }
}

/// The streaming maritime event engine (sharded, watermark-driven).
///
/// Feed event-time-ordered fixes — singly via [`EventEngine::observe`]
/// or, preferably, in watermark-released batches via
/// [`EventEngine::observe_batch`] — and drive
/// [`EventEngine::tick`] with aligned event-time watermarks for the
/// dark-vessel sweep, the pairwise (rendezvous/collision) sweeps and
/// TTL eviction.
pub struct EventEngine {
    shards: Vec<DetectorShard>,
    indexes: Vec<LiveIndex>,
    vessel_ttl: DurationMs,
    counts: HashMap<&'static str, u64>,
    fixes_seen: u64,
    evicted: Vec<VesselId>,
}

impl EventEngine {
    /// Build an engine from configuration (`config.shards` is clamped
    /// to at least 1).
    pub fn new(config: EngineConfig) -> Self {
        let n = config.shards.max(1);
        Self {
            shards: (0..n).map(|_| DetectorShard::new(&config)).collect(),
            indexes: (0..n).map(|_| LiveIndex::new()).collect(),
            vessel_ttl: config.vessel_ttl,
            counts: HashMap::new(),
            fixes_seen: 0,
            evicted: Vec::new(),
        }
    }

    /// Observe one fix through the per-vessel detectors.
    ///
    /// Equivalent to a one-element [`EventEngine::observe_batch`]. Note
    /// that rendezvous/collision events are *not* produced here — the
    /// pairwise detectors are watermark-swept by [`EventEngine::tick`].
    pub fn observe(&mut self, fix: &Fix) -> Vec<MaritimeEvent> {
        self.observe_batch(std::slice::from_ref(fix))
    }

    /// Observe a watermark-released batch of fixes through the
    /// per-vessel detectors, one shard run per borrow.
    ///
    /// The batch is first canonicalised to `(t, vessel)` order (stable,
    /// so equal keys keep arrival order), then dispatched shard-affine.
    /// Because per-vessel detectors only consume their own vessel's
    /// subsequence — which canonicalisation makes a pure function of
    /// the batch *content* — the returned events are identical for any
    /// arrival shuffle the upstream reorder stage tolerates, and for
    /// any shard count. Emission is merged with a stable
    /// `(t, vessel, kind)` sort ([`MaritimeEvent::sort_key`]).
    ///
    /// Large batches (≥ ~1k fixes) on a multi-shard engine run their
    /// shard dispatch on scoped threads.
    pub fn observe_batch(&mut self, batch: &[Fix]) -> Vec<MaritimeEvent> {
        if batch.is_empty() {
            return Vec::new();
        }
        self.fixes_seen += batch.len() as u64;
        let mut fixes = batch.to_vec();
        canonical_sort(&mut fixes);
        let n = self.shards.len();
        let per_shard = partition_by_shard(fixes, n, |f| vessel_shard(f.id, n));
        let lanes = self
            .shards
            .iter_mut()
            .zip(self.indexes.iter_mut())
            .zip(per_shard)
            .map(|((shard, index), fixes)| (shard, index, fixes));
        let mut events: Vec<MaritimeEvent> = if n > 1 && batch.len() >= PAR_BATCH_MIN {
            std::thread::scope(|scope| {
                let handles: Vec<_> = lanes
                    .filter(|(_, _, fixes)| !fixes.is_empty())
                    .map(|(shard, index, fixes)| scope.spawn(move || shard.run(index, &fixes)))
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("detector shard panicked"))
                    .collect()
            })
        } else {
            lanes.flat_map(|(shard, index, fixes)| shard.run(index, &fixes)).collect()
        };
        events.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        self.tally(&events);
        events
    }

    /// Watermark-driven sweep at event time `wm`: per shard, run the
    /// pairwise (rendezvous/collision) sweeps against the fleet index,
    /// the heap-driven dark-vessel check, and TTL eviction.
    ///
    /// Call with *aligned*, monotone watermarks (e.g. every minute of
    /// event time) so the sweep times — and therefore the emitted
    /// events — are a pure function of the event-time stream. Evicted
    /// vessel ids accumulate until [`EventEngine::take_evicted`].
    pub fn tick(&mut self, wm: Timestamp) -> Vec<MaritimeEvent> {
        let mut events = self.pairwise_sweeps(wm);
        // Dark-vessel sweep + TTL eviction, shard-local.
        let cut = Timestamp(wm.millis().saturating_sub(self.vessel_ttl));
        let mut gone_all: Vec<VesselId> = Vec::new();
        for (shard, index) in self.shards.iter_mut().zip(self.indexes.iter_mut()) {
            let (shard_events, gone) = shard.check_silent_and_evict(index, wm, cut);
            events.extend(shard_events);
            gone_all.extend(gone);
        }
        // Pair state may reference an evicted partner from *another*
        // shard, so pair eviction fans the full id set out to every
        // shard.
        if !gone_all.is_empty() {
            let gone_set: HashSet<VesselId> = gone_all.iter().copied().collect();
            for shard in &mut self.shards {
                shard.evict_pairs(&gone_set);
            }
            gone_all.sort_unstable();
            self.evicted.extend(gone_all);
        }
        events.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        self.tally(&events);
        events
    }

    fn pairwise_sweeps(&mut self, wm: Timestamp) -> Vec<MaritimeEvent> {
        let EventEngine { ref mut shards, ref indexes, .. } = *self;
        // One merged snapshot per tick: queries probe a single cell
        // grid however many shards fed it, so sweep cost does not grow
        // with the shard count.
        let fleet = FleetIndex::snapshot(indexes);
        if shards.len() > 1 && fleet.len() >= PAR_SWEEP_MIN {
            std::thread::scope(|scope| {
                let fleet = &fleet;
                let handles: Vec<_> = shards
                    .iter_mut()
                    .enumerate()
                    .map(|(s, shard)| {
                        let own = &indexes[s];
                        scope.spawn(move || shard.sweep_pairs(wm, own, fleet))
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().expect("sweep shard panicked")).collect()
            })
        } else {
            let mut out = Vec::new();
            for (s, shard) in shards.iter_mut().enumerate() {
                out.extend(shard.sweep_pairs(wm, &indexes[s], &fleet));
            }
            out
        }
    }

    /// Vessel ids evicted by TTL since the last call (sorted within
    /// each tick). Upstream per-vessel state (compressors, semantic
    /// term caches) should be dropped for these ids.
    pub fn take_evicted(&mut self) -> Vec<VesselId> {
        std::mem::take(&mut self.evicted)
    }

    /// Events emitted so far, by kind label.
    pub fn counts(&self) -> &HashMap<&'static str, u64> {
        &self.counts
    }

    /// Fixes processed.
    pub fn fixes_seen(&self) -> u64 {
        self.fixes_seen
    }

    /// Number of detector shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The live latest-fix picture (for the operator console): a
    /// merged snapshot of every shard's index, built in O(live
    /// vessels). For just the count, use
    /// [`EventEngine::live_vessel_count`].
    pub fn live_index(&self) -> FleetIndex {
        FleetIndex::snapshot(&self.indexes)
    }

    /// Vessels currently tracked in the live index, without building a
    /// snapshot (O(shards)).
    pub fn live_vessel_count(&self) -> usize {
        self.indexes.iter().map(LiveIndex::len).sum()
    }

    /// Resident detector state, summed across shards.
    pub fn state_stats(&self) -> EngineStateStats {
        let mut s = EngineStateStats {
            live_vessels: self.indexes.iter().map(LiveIndex::len).sum(),
            ..Default::default()
        };
        for shard in &self.shards {
            shard.accumulate_stats(&mut s);
        }
        s
    }

    fn tally(&mut self, events: &[MaritimeEvent]) {
        for e in events {
            *self.counts.entry(e.kind.label()).or_insert(0) += 1;
        }
    }
}

/// One owned shard slot inside an [`EngineLane`].
struct LaneSlot {
    /// Global shard index in `0..total_shards`.
    shard: usize,
    detectors: DetectorShard,
    index: LiveIndex,
}

/// A writer lane's slice of the sharded event engine.
///
/// Where [`EventEngine`] owns *every* detector shard, an `EngineLane`
/// owns exactly the shards `{s : s % lanes == lane}` out of the same
/// global shard space — the ownership convention of
/// [`mda_stream::runner::run_shard_affine_indexed`] — and runs the
/// identical per-shard code paths (the internal `DetectorShard` type
/// is shared), so N lanes together emit exactly what one engine does.
///
/// The cross-shard steps stay with the caller's barrier protocol:
///
/// - per-vessel detection over a **canonically sorted** batch
///   ([`EngineLane::observe_sorted`], see [`canonical_sort`]) returns
///   per-shard event lists for the leader to merge;
/// - at a tick boundary the lane deposits
///   [`EngineLane::index_clones`], the leader builds the fleet-wide
///   [`FleetIndex`], every lane sweeps its own shards against it
///   ([`EngineLane::sweep`]), and the leader unions the evicted ids
///   for the [`EngineLane::evict_pairs`] fan-out.
pub struct EngineLane {
    total_shards: usize,
    slots: Vec<LaneSlot>,
    vessel_ttl: DurationMs,
    fixes_seen: u64,
}

impl EngineLane {
    /// Build lane `lane` of `lanes` over `config`'s global shard space
    /// (`config.shards` clamped to at least 1). Lanes beyond the shard
    /// count own nothing; callers normally clamp `lanes <= shards`.
    pub fn new(config: &EngineConfig, lane: usize, lanes: usize) -> Self {
        assert!(lanes >= 1 && lane < lanes, "lane {lane} of {lanes}");
        let total = config.shards.max(1);
        let slots = (lane..total)
            .step_by(lanes)
            .map(|shard| LaneSlot {
                shard,
                detectors: DetectorShard::new(config),
                index: LiveIndex::new(),
            })
            .collect();
        Self { total_shards: total, slots, vessel_ttl: config.vessel_ttl, fixes_seen: 0 }
    }

    /// Global shard count of the engine this lane is a slice of.
    pub fn total_shards(&self) -> usize {
        self.total_shards
    }

    /// Global shard indexes this lane owns, ascending.
    pub fn owned_shards(&self) -> Vec<usize> {
        self.slots.iter().map(|s| s.shard).collect()
    }

    /// True if this lane owns `id`'s shard.
    pub fn owns(&self, id: VesselId) -> bool {
        let shard = vessel_shard(id, self.total_shards);
        self.slots.iter().any(|s| s.shard == shard)
    }

    /// Per-vessel detector run over a batch already in
    /// [`canonical_sort`] order (sorting a lane's subset with the same
    /// total order yields the same per-shard subsequences a global sort
    /// would). Every fix must belong to an owned shard. Returns
    /// `(global shard, events)` per owned shard, ascending, each list
    /// in this shard's processing order — the leader concatenates the
    /// deposits in global shard order and applies the engine's stable
    /// `(t, vessel, kind)` merge sort.
    pub fn observe_sorted(&mut self, batch: &[Fix]) -> Vec<(usize, Vec<MaritimeEvent>)> {
        self.fixes_seen += batch.len() as u64;
        let mut per_slot: Vec<Vec<Fix>> = vec![Vec::new(); self.slots.len()];
        for fix in batch {
            let shard = vessel_shard(fix.id, self.total_shards);
            let slot = self
                .slots
                .iter()
                .position(|s| s.shard == shard)
                .expect("fix routed to a shard this lane does not own");
            per_slot[slot].push(*fix);
        }
        self.slots
            .iter_mut()
            .zip(per_slot)
            .map(|(slot, fixes)| (slot.shard, slot.detectors.run(&mut slot.index, &fixes)))
            .collect()
    }

    /// Clones of the owned shards' live indexes, `(global shard,
    /// index)` ascending — the lane's deposit for the leader's
    /// [`FleetIndex::snapshot`] merge at a tick boundary.
    pub fn index_clones(&self) -> Vec<(usize, LiveIndex)> {
        self.slots.iter().map(|s| (s.shard, s.index.clone())).collect()
    }

    /// Boundary sweep of the owned shards at watermark `wm` against
    /// the merged fleet view: pairwise (rendezvous/collision) sweeps,
    /// the dark-vessel check and TTL eviction — the same per-shard
    /// steps as [`EventEngine::tick`]. Returns `(global shard,
    /// events)` per owned shard plus the ids evicted from this lane's
    /// per-vessel state; the caller unions the latter across lanes and
    /// fans the union back through [`EngineLane::evict_pairs`].
    pub fn sweep(
        &mut self,
        wm: Timestamp,
        fleet: &FleetIndex,
    ) -> (Vec<(usize, Vec<MaritimeEvent>)>, Vec<VesselId>) {
        let cut = Timestamp(wm.millis().saturating_sub(self.vessel_ttl));
        let mut gone_all = Vec::new();
        let per_shard = self
            .slots
            .iter_mut()
            .map(|slot| {
                let mut events = slot.detectors.sweep_pairs(wm, &slot.index, fleet);
                let (gap_events, gone) =
                    slot.detectors.check_silent_and_evict(&mut slot.index, wm, cut);
                events.extend(gap_events);
                gone_all.extend(gone);
                (slot.shard, events)
            })
            .collect();
        (per_shard, gone_all)
    }

    /// Drop pair state referencing any vessel in `gone` — the fan-out
    /// step after the leader unioned every lane's evictions (a pair
    /// may span lanes).
    pub fn evict_pairs(&mut self, gone: &HashSet<VesselId>) {
        if gone.is_empty() {
            return;
        }
        for slot in &mut self.slots {
            slot.detectors.evict_pairs(gone);
        }
    }

    /// Vessels currently tracked in the owned shards' live indexes.
    pub fn live_count(&self) -> usize {
        self.slots.iter().map(|s| s.index.len()).sum()
    }

    /// Fixes processed by this lane.
    pub fn fixes_seen(&self) -> u64 {
        self.fixes_seen
    }

    /// Resident detector state of the owned shards. Summing lane stats
    /// across all lanes equals the single-engine
    /// [`EventEngine::state_stats`] on the same stream.
    pub fn state_stats(&self) -> EngineStateStats {
        let mut s = EngineStateStats { live_vessels: self.live_count(), ..Default::default() };
        for slot in &self.slots {
            slot.detectors.accumulate_stats(&mut s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use mda_geo::time::HOUR;
    use mda_geo::{BoundingBox, Polygon, Position};

    fn engine_with_zone() -> EventEngine {
        let zones = vec![NamedZone {
            name: "RESERVE".into(),
            area: Polygon::rectangle(BoundingBox::new(42.5, 4.5, 42.7, 4.8)),
            protected: true,
        }];
        EventEngine::new(EngineConfig { zones, ..Default::default() })
    }

    fn fix(id: u32, t_min: i64, lat: f64, lon: f64, sog: f64, cog: f64) -> Fix {
        Fix::new(id, Timestamp::from_mins(t_min), Position::new(lat, lon), sog, cog)
    }

    #[test]
    fn engine_dispatches_all_detectors() {
        let mut e = engine_with_zone();
        // Vessel 1 transits into the reserve and slows to fishing speed.
        e.observe(&fix(1, 0, 42.4, 4.6, 9.0, 0.0));
        let entry = e.observe(&fix(1, 10, 42.55, 4.6, 9.0, 0.0));
        assert!(entry.iter().any(|ev| matches!(ev.kind, EventKind::ZoneEntry { .. })));
        let fishing = e.observe(&fix(1, 20, 42.6, 4.62, 3.0, 45.0));
        assert!(fishing.iter().any(|ev| matches!(ev.kind, EventKind::IllegalFishing { .. })));
        assert!(e.counts()["zone-entry"] >= 1);
        assert!(e.counts()["illegal-fishing"] >= 1);
        assert_eq!(e.fixes_seen(), 3);
    }

    #[test]
    fn engine_gap_and_tick() {
        let mut e = engine_with_zone();
        e.observe(&fix(2, 0, 43.0, 5.0, 10.0, 90.0));
        let live = e.tick(Timestamp::from_mins(30));
        assert_eq!(live.len(), 1);
        assert!(matches!(live[0].kind, EventKind::GapStart));
        assert_eq!(e.counts()["gap-start"], 1);
    }

    #[test]
    fn engine_spoofing_path() {
        let mut e = engine_with_zone();
        e.observe(&fix(3, 0, 43.0, 5.0, 10.0, 90.0));
        let events = e.observe(&fix(3, 10, 43.0, 5.8, 10.0, 90.0)); // ~65 km in 10 min
        assert!(events.iter().any(|ev| matches!(ev.kind, EventKind::KinematicSpoofing { .. })));
    }

    #[test]
    fn engine_collision_path_via_tick() {
        let mut e = engine_with_zone();
        e.observe_batch(&[fix(10, 0, 43.0, 5.0, 10.0, 90.0), fix(11, 0, 43.0, 5.135, 10.0, 270.0)]);
        // Pairwise analytics are watermark-swept, not per-fix.
        let events = e.tick(Timestamp::from_mins(1));
        assert!(
            events.iter().any(|ev| matches!(ev.kind, EventKind::CollisionRisk { other: 11, .. })),
            "head-on pair must alert on the sweep: {events:?}"
        );
    }

    #[test]
    fn engine_rendezvous_path_via_tick() {
        let mut e = engine_with_zone();
        let mut events = Vec::new();
        for i in 0..30 {
            e.observe_batch(&[
                fix(20, i, 43.20, 5.40, 1.0, 0.0),
                fix(21, i, 43.201, 5.40, 1.0, 180.0),
            ]);
            events.extend(e.tick(Timestamp::from_mins(i)));
        }
        let rz: Vec<_> =
            events.iter().filter(|ev| matches!(ev.kind, EventKind::Rendezvous { .. })).collect();
        assert_eq!(rz.len(), 1, "one sustained-proximity report: {events:?}");
        assert_eq!(rz[0].vessel, 20);
    }

    #[test]
    fn observe_batch_matches_serial_observe() {
        // The canonical batch path and the one-at-a-time path must
        // agree on an already-ordered stream.
        let batch: Vec<Fix> = (0..40)
            .flat_map(|i| {
                [
                    fix(1, i, 42.4 + i as f64 * 0.01, 4.6, 9.0, 0.0),
                    fix(2, i, 43.0, 5.0 + i as f64 * 0.02, 12.0, 90.0),
                ]
            })
            .collect();
        let mut serial = engine_with_zone();
        let mut a = Vec::new();
        for f in &batch {
            a.extend(serial.observe(f));
        }
        let mut batched = engine_with_zone();
        let b = batched.observe_batch(&batch);
        assert_eq!(a, b, "batching must not change per-vessel detection");
        assert_eq!(serial.fixes_seen(), batched.fixes_seen());
    }

    #[test]
    fn shard_count_does_not_change_emission() {
        let batch: Vec<Fix> = (0..60)
            .flat_map(|i| {
                (1..=10u32).map(move |v| {
                    fix(v, i, 42.0 + f64::from(v) * 0.1, 4.0 + i as f64 * 0.01, 8.0, 90.0)
                })
            })
            .collect();
        let run = |shards: usize| {
            let mut e = EventEngine::new(EngineConfig { shards, ..Default::default() });
            let mut out = e.observe_batch(&batch);
            out.extend(e.tick(Timestamp::from_mins(90)));
            out
        };
        let reference = run(1);
        assert!(!reference.is_empty(), "gap ticks should fire");
        for shards in [2usize, 4, 8] {
            assert_eq!(run(shards), reference, "{shards} shards diverged");
        }
    }

    #[test]
    fn parallel_batch_path_matches_sequential() {
        // Enough fixes to cross PAR_BATCH_MIN: the scoped-thread
        // dispatch must be invisible in the output.
        // 0.03° of longitude per minute is a ~78 kn implied speed
        // against 9 kn reported: every fix raises a spoofing event, so
        // the comparison is over real content, not empty vectors.
        let batch: Vec<Fix> = (0..80)
            .flat_map(|i| {
                (1..=20u32).map(move |v| {
                    fix(v, i, 42.0 + f64::from(v) * 0.05, 4.0 + i as f64 * 0.03, 9.0, 90.0)
                })
            })
            .collect();
        assert!(batch.len() >= PAR_BATCH_MIN);
        let mut sharded = EventEngine::new(EngineConfig { shards: 4, ..Default::default() });
        let mut single = EventEngine::new(EngineConfig { shards: 1, ..Default::default() });
        assert_eq!(sharded.observe_batch(&batch), single.observe_batch(&batch));
    }

    #[test]
    fn parallel_sweep_path_matches_sequential() {
        // A fleet large enough to cross PAR_SWEEP_MIN: the scoped-
        // thread pairwise sweeps must emit exactly what one shard does.
        // Vessels pair up head-on 11 km apart, so sweeps really alert.
        let batch: Vec<Fix> = (0..600u32)
            .map(|v| {
                let lane = f64::from(v / 2) * 0.02;
                if v % 2 == 0 {
                    fix(v + 1, 0, 42.0 + lane, 5.0, 10.0, 90.0)
                } else {
                    fix(v + 1, 0, 42.0 + lane, 5.135, 10.0, 270.0)
                }
            })
            .collect();
        let run = |shards: usize| {
            let mut e = EventEngine::new(EngineConfig { shards, ..Default::default() });
            e.observe_batch(&batch);
            assert!(e.live_vessel_count() >= PAR_SWEEP_MIN);
            e.tick(Timestamp::from_mins(1))
        };
        let reference = run(1);
        assert!(
            reference.iter().any(|ev| matches!(ev.kind, EventKind::CollisionRisk { .. })),
            "head-on lanes must alert"
        );
        for shards in [4usize, 8] {
            assert_eq!(run(shards), reference, "{shards}-shard parallel sweep diverged");
        }
    }

    #[test]
    fn ttl_eviction_bounds_state_and_reports_ids() {
        let mut e =
            EventEngine::new(EngineConfig { vessel_ttl: HOUR, shards: 4, ..Default::default() });
        // Vessel 1 transmits briefly and dies; vessel 2 keeps going.
        e.observe(&fix(1, 0, 43.0, 5.0, 10.0, 90.0));
        for i in 0..200 {
            e.observe(&fix(2, i, 43.5, 5.0 + i as f64 * 0.01, 10.0, 90.0));
            e.tick(Timestamp::from_mins(i));
        }
        let gone = e.take_evicted();
        assert_eq!(gone, vec![1], "dead vessel must be evicted once");
        let stats = e.state_stats();
        assert_eq!(stats.live_vessels, 1, "only the living vessel remains indexed");
        assert_eq!(stats.gap_tracked, 1);
        // Dead vessel resurfacing is new — and trackable again.
        e.observe(&fix(1, 300, 43.0, 5.0, 10.0, 90.0));
        assert_eq!(e.state_stats().live_vessels, 2);
        assert!(e.take_evicted().is_empty());
    }

    #[test]
    fn disabled_ttl_keeps_state() {
        let mut e =
            EventEngine::new(EngineConfig { vessel_ttl: DurationMs::MAX, ..Default::default() });
        e.observe(&fix(1, 0, 43.0, 5.0, 10.0, 90.0));
        for i in 1..500 {
            e.tick(Timestamp::from_mins(i * 10));
        }
        assert!(e.take_evicted().is_empty());
        assert_eq!(e.state_stats().gap_tracked, 1);
    }

    #[test]
    fn live_index_exposed() {
        let mut e = engine_with_zone();
        e.observe(&fix(1, 0, 43.0, 5.0, 10.0, 90.0));
        assert_eq!(e.live_index().len(), 1);
        assert!(e.live_index().latest(1).is_some());
        assert_eq!(e.shard_count(), 1);
    }

    /// Drive `lanes` [`EngineLane`]s through the same observe/tick
    /// cadence as one [`EventEngine`], merging exactly the way the
    /// multi-writer leader does, and return the merged emission.
    fn run_lanes_merged(
        config: &EngineConfig,
        lanes: usize,
        rounds: &[Vec<Fix>],
    ) -> Vec<MaritimeEvent> {
        let total = config.shards.max(1);
        let mut lane_engines: Vec<EngineLane> =
            (0..lanes).map(|w| EngineLane::new(config, w, lanes)).collect();
        let merge = |per_shard: &mut Vec<Vec<MaritimeEvent>>| {
            let mut all: Vec<MaritimeEvent> = Vec::new();
            for list in per_shard.iter_mut() {
                all.append(list);
            }
            all.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
            all
        };
        let mut out = Vec::new();
        for (round, batch) in rounds.iter().enumerate() {
            let mut sorted = batch.clone();
            canonical_sort(&mut sorted);
            // Observe: each lane takes its own vessels, deposits per shard.
            let mut per_shard: Vec<Vec<MaritimeEvent>> = vec![Vec::new(); total];
            for lane in &mut lane_engines {
                let own: Vec<Fix> = sorted.iter().filter(|f| lane.owns(f.id)).copied().collect();
                for (shard, events) in lane.observe_sorted(&own) {
                    per_shard[shard] = events;
                }
            }
            out.extend(merge(&mut per_shard));
            // Tick: fleet merge, per-lane sweeps, union eviction fan-out.
            let wm = Timestamp::from_mins(round as i64 + 1);
            let mut indexes: Vec<LiveIndex> = vec![LiveIndex::new(); total];
            for lane in &lane_engines {
                for (shard, index) in lane.index_clones() {
                    indexes[shard] = index;
                }
            }
            let fleet = FleetIndex::snapshot(&indexes);
            let mut per_shard: Vec<Vec<MaritimeEvent>> = vec![Vec::new(); total];
            let mut gone_all: HashSet<VesselId> = HashSet::new();
            for lane in &mut lane_engines {
                let (shard_events, gone) = lane.sweep(wm, &fleet);
                for (shard, events) in shard_events {
                    per_shard[shard] = events;
                }
                gone_all.extend(gone);
            }
            for lane in &mut lane_engines {
                lane.evict_pairs(&gone_all);
            }
            out.extend(merge(&mut per_shard));
        }
        out
    }

    #[test]
    fn lane_decomposition_matches_single_engine() {
        // Dense traffic with head-on pairs, dark vessels and zone
        // transits, driven through observe+tick rounds: the lane
        // decomposition (any lane count) must reproduce the single
        // engine's emission event for event.
        let zones = vec![NamedZone {
            name: "RESERVE".into(),
            area: mda_geo::Polygon::rectangle(BoundingBox::new(42.5, 4.5, 42.7, 4.8)),
            protected: true,
        }];
        let config = EngineConfig { zones, shards: 8, vessel_ttl: HOUR, ..Default::default() };
        let rounds: Vec<Vec<Fix>> = (0..90i64)
            .map(|i| {
                (1..=16u32)
                    .filter(|v| i < 20 || v % 5 != 0) // every 5th vessel goes dark
                    .map(|v| {
                        let lane_lat = 42.4 + f64::from(v / 2) * 0.02;
                        if v % 2 == 0 {
                            fix(v, i, lane_lat, 4.4 + i as f64 * 0.004, 9.0, 90.0)
                        } else {
                            fix(v, i, lane_lat, 5.0 - i as f64 * 0.004, 9.0, 270.0)
                        }
                    })
                    .collect()
            })
            .collect();
        let mut single = EventEngine::new(config.clone());
        let mut reference = Vec::new();
        for (round, batch) in rounds.iter().enumerate() {
            reference.extend(single.observe_batch(batch));
            reference.extend(single.tick(Timestamp::from_mins(round as i64 + 1)));
        }
        assert!(!reference.is_empty(), "scenario must emit events");
        for lanes in [1usize, 2, 3, 8] {
            assert_eq!(
                run_lanes_merged(&config, lanes, &rounds),
                reference,
                "{lanes} lanes diverged from the single engine"
            );
        }
    }

    #[test]
    fn counts_include_tick_events() {
        let mut e = engine_with_zone();
        e.observe(&fix(2, 0, 43.0, 5.0, 10.0, 90.0));
        e.tick(Timestamp::from_mins(30));
        assert_eq!(e.counts()["gap-start"], 1);
    }
}
