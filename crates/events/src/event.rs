//! The maritime event vocabulary.

use mda_geo::{Position, Timestamp, VesselId};
use serde::{Deserialize, Serialize};

/// How urgent an event is for the operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Routine (e.g. port arrival).
    Info,
    /// Worth a look (e.g. loitering).
    Warning,
    /// Requires action (e.g. collision risk, spoofing).
    Alert,
}

/// The kinds of events the engine recognises.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// AIS silence began (detected retrospectively or by timeout).
    GapStart,
    /// AIS transmission resumed after a gap of the given minutes.
    GapEnd {
        /// Gap duration in minutes.
        minutes: f64,
    },
    /// Reported movement is kinematically impossible (teleport).
    KinematicSpoofing {
        /// Implied speed in knots between consecutive reports.
        implied_speed_kn: f64,
    },
    /// One identity transmitted from two incompatible locations.
    IdentityConflict {
        /// Distance between the two claimed positions, km.
        separation_km: f64,
    },
    /// Vessel entered a named zone.
    ZoneEntry {
        /// Zone name.
        zone: String,
    },
    /// Vessel left a named zone.
    ZoneExit {
        /// Zone name.
        zone: String,
        /// Dwell time inside, minutes.
        dwell_min: f64,
    },
    /// Fishing-speed movement inside a protected area.
    IllegalFishing {
        /// Zone name.
        zone: String,
    },
    /// Vessel stayed within a small radius while underway.
    Loitering {
        /// Radius of the loiter disc, metres.
        radius_m: f64,
        /// Duration of the loiter, minutes.
        minutes: f64,
    },
    /// Two vessels in sustained close proximity at sea.
    Rendezvous {
        /// The other vessel.
        other: VesselId,
        /// Mean separation during the encounter, metres.
        distance_m: f64,
        /// Encounter duration, minutes.
        minutes: f64,
    },
    /// Projected close approach.
    CollisionRisk {
        /// The other vessel.
        other: VesselId,
        /// Distance at closest point of approach, metres.
        dcpa_m: f64,
        /// Time to closest point of approach, seconds.
        tcpa_s: f64,
    },
}

impl EventKind {
    /// Default severity of this kind.
    pub fn severity(&self) -> Severity {
        match self {
            EventKind::GapStart | EventKind::GapEnd { .. } => Severity::Warning,
            EventKind::KinematicSpoofing { .. } | EventKind::IdentityConflict { .. } => {
                Severity::Alert
            }
            EventKind::ZoneEntry { .. } | EventKind::ZoneExit { .. } => Severity::Info,
            EventKind::IllegalFishing { .. } => Severity::Alert,
            EventKind::Loitering { .. } => Severity::Warning,
            EventKind::Rendezvous { .. } => Severity::Warning,
            EventKind::CollisionRisk { .. } => Severity::Alert,
        }
    }

    /// The zone this event is scoped to, for the zone-shaped kinds
    /// (entry, exit, illegal fishing); `None` for every other kind.
    /// Subscription zone filters match on this.
    pub fn zone_name(&self) -> Option<&str> {
        match self {
            EventKind::ZoneEntry { zone }
            | EventKind::ZoneExit { zone, .. }
            | EventKind::IllegalFishing { zone } => Some(zone.as_str()),
            _ => None,
        }
    }

    /// Short machine-readable label (used as grouping key in reports).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::GapStart => "gap-start",
            EventKind::GapEnd { .. } => "gap-end",
            EventKind::KinematicSpoofing { .. } => "spoofing",
            EventKind::IdentityConflict { .. } => "identity-conflict",
            EventKind::ZoneEntry { .. } => "zone-entry",
            EventKind::ZoneExit { .. } => "zone-exit",
            EventKind::IllegalFishing { .. } => "illegal-fishing",
            EventKind::Loitering { .. } => "loitering",
            EventKind::Rendezvous { .. } => "rendezvous",
            EventKind::CollisionRisk { .. } => "collision-risk",
        }
    }
}

/// A recognised event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaritimeEvent {
    /// Event time (event-time semantics, not arrival time).
    pub t: Timestamp,
    /// Primary vessel involved.
    pub vessel: VesselId,
    /// Where it happened.
    pub pos: Position,
    /// What happened.
    pub kind: EventKind,
}

impl MaritimeEvent {
    /// Severity shortcut.
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }

    /// The canonical `(t, vessel, kind)` ordering key.
    ///
    /// The sharded engine merges per-shard emission by stable-sorting
    /// on this key, which is what makes its output independent of the
    /// shard count: one vessel's events always come from one shard in
    /// a deterministic per-vessel order, and the key interleaves
    /// different vessels' events identically however they were
    /// partitioned.
    pub fn sort_key(&self) -> (Timestamp, VesselId, &'static str) {
        (self.t, self.vessel, self.kind.label())
    }
}

impl std::fmt::Display for MaritimeEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:?}] {} vessel {} at {} ({})",
            self.severity(),
            self.kind.label(),
            self.vessel,
            self.pos,
            self.t
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Alert);
    }

    #[test]
    fn kind_severities() {
        assert_eq!(EventKind::GapStart.severity(), Severity::Warning);
        assert_eq!(
            EventKind::CollisionRisk { other: 2, dcpa_m: 100.0, tcpa_s: 300.0 }.severity(),
            Severity::Alert
        );
        assert_eq!(EventKind::ZoneEntry { zone: "X".into() }.severity(), Severity::Info);
    }

    #[test]
    fn display_is_informative() {
        let e = MaritimeEvent {
            t: Timestamp::from_secs(60),
            vessel: 227000001,
            pos: Position::new(43.0, 5.0),
            kind: EventKind::Loitering { radius_m: 500.0, minutes: 45.0 },
        };
        let s = e.to_string();
        assert!(s.contains("loitering"));
        assert!(s.contains("227000001"));
    }
}
