//! Determinism properties of the sharded, watermark-driven engine.
//!
//! Two invariants lock the refactor down:
//!
//! 1. **Arrival-shuffle invariance** — feeding the same fix set through
//!    the standard upstream discipline (reorder buffer + bounded
//!    out-of-orderness watermark + aligned ticks), the emitted event
//!    *multiset* is identical for in-order arrival and for any shuffle
//!    whose displacement stays within the watermark delay.
//! 2. **Shard-count invariance** — the same run emits identically on
//!    1/2/4/8 detector shards.

use mda_events::engine::{EngineConfig, EventEngine};
use mda_events::event::MaritimeEvent;
use mda_geo::time::{MINUTE, SECOND};
use mda_geo::{DurationMs, Fix, Position, Timestamp};
use mda_stream::reorder::ReorderBuffer;
use mda_stream::watermark::{BoundedOutOfOrderness, TickSchedule};
use proptest::prelude::*;

const DELAY: DurationMs = 5 * MINUTE;
const TICK: DurationMs = MINUTE;

/// A scenario exercising every detector: cruisers, a rendezvous pair,
/// a vessel going dark, a spoofer, a head-on collision pair — and one
/// cloned identity transmitting two *different* fixes with the *same*
/// timestamp, the duplicate-(t, vessel) shape that only the engine's
/// total content ordering keeps arrival-invariant.
fn scenario_fixes() -> Vec<Fix> {
    let mut fixes = Vec::new();
    let f = |id: u32, t_s: i64, lat: f64, lon: f64, sog: f64, cog: f64| {
        Fix::new(id, Timestamp::from_secs(t_s), Position::new(lat, lon), sog, cog)
    };
    for minute in 0..90i64 {
        let t = minute * 60;
        // Cruisers 1..=6, staggered a few seconds apart.
        for v in 1..=6u32 {
            fixes.push(f(
                v,
                t + i64::from(v),
                42.0 + f64::from(v) * 0.15,
                4.0 + minute as f64 * 0.005,
                10.0,
                90.0,
            ));
        }
        // Rendezvous pair 9/10: slow and ~110 m apart all along.
        fixes.push(f(9, t + 20, 43.20, 5.60, 1.0, 0.0));
        fixes.push(f(10, t + 25, 43.201, 5.60, 1.2, 180.0));
        // Vessel 11 goes dark after minute 20 (gap + dark sweep).
        if minute < 20 {
            fixes.push(f(11, t + 30, 43.40, 5.20, 8.0, 0.0));
        }
        // Vessel 12 teleports between two coherent locations.
        let lon12 = if (20..40).contains(&minute) { 5.9 } else { 5.0 };
        fixes.push(f(12, t + 35, 43.6, lon12, 9.0, 90.0));
        // Collision pair 13/14: head-on, closing at 20 kn, reset every
        // 30 minutes so several sweeps alert.
        let leg = (minute % 30) as f64;
        fixes.push(f(13, t + 40, 43.80, 5.00 + leg * 0.001, 10.0, 90.0));
        fixes.push(f(14, t + 45, 43.80, 5.12 - leg * 0.001, 10.0, 270.0));
        // Vessel 15 is cloned: two transmitters claim the identity at
        // the same instant from 60 km apart — duplicate (t, vessel)
        // keys whose arrival order must not leak into emission.
        fixes.push(f(15, t + 50, 42.5, 5.0, 6.0, 0.0));
        fixes.push(f(15, t + 50, 42.5, 5.74, 6.0, 180.0));
    }
    fixes.sort_by_key(|x| (x.t, x.id));
    fixes
}

/// Feed `arrivals` (arrival order!) through the standard upstream
/// discipline into an engine with `shards` shards; return the emitted
/// multiset as a sorted fingerprint.
fn run(arrivals: &[Fix], shards: usize) -> Vec<String> {
    let mut engine = EventEngine::new(EngineConfig { shards, ..Default::default() });
    let mut reorder: ReorderBuffer<Fix> = ReorderBuffer::new();
    let mut watermark = BoundedOutOfOrderness::new(DELAY);
    let mut ticks = TickSchedule::new(TICK);
    let mut events: Vec<MaritimeEvent> = Vec::new();
    // Interleave released fixes with aligned tick boundaries by event
    // time (the pipeline's `advance` discipline, via the shared
    // TickSchedule): boundary T fires after exactly the fixes with
    // t <= T.
    let advance =
        |engine: &mut EventEngine, released: Vec<Fix>, wm: Timestamp, ticks: &mut TickSchedule| {
            let mut out = Vec::new();
            let mut pending: Vec<Fix> = Vec::new();
            for fix in released {
                while let Some(boundary) = ticks.before_observation(fix.t) {
                    out.extend(engine.observe_batch(&std::mem::take(&mut pending)));
                    out.extend(engine.tick(boundary));
                }
                pending.push(fix);
            }
            out.extend(engine.observe_batch(&pending));
            while let Some(boundary) = ticks.at_watermark(wm) {
                out.extend(engine.tick(boundary));
            }
            out
        };
    for fix in arrivals {
        assert!(reorder.push(fix.t, *fix), "generator produced an over-late fix");
        let wm = watermark.observe(fix.t);
        let released: Vec<Fix> = reorder.release(wm).into_iter().map(|(_, x)| x).collect();
        events.extend(advance(&mut engine, released, wm, &mut ticks));
    }
    let rest: Vec<Fix> = reorder.drain_all().into_iter().map(|(_, x)| x).collect();
    // Final sweep at the maximum event time seen — arrival-invariant.
    let now = watermark.current().saturating_add(DELAY);
    events.extend(advance(&mut engine, rest, now, &mut ticks));
    if ticks.anchored() && now > ticks.last_boundary() {
        events.extend(engine.tick(now));
    }
    let mut fingerprint: Vec<String> = events.iter().map(|e| format!("{e:?}")).collect();
    fingerprint.sort();
    fingerprint
}

/// Shuffle `fixes` into an arrival order whose displacement stays
/// within the watermark delay: sort by `t + jitter` with
/// `|jitter| < DELAY / 2`.
fn bounded_shuffle(fixes: &[Fix], seed: u64) -> Vec<Fix> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        // xorshift64*
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let half = DELAY / 2 - SECOND;
    let mut keyed: Vec<(i64, Fix)> = fixes
        .iter()
        .map(|f| {
            let jitter = (next() % (2 * half + 1) as u64) as i64 - half;
            (f.t.millis() + jitter, *f)
        })
        .collect();
    keyed.sort_by_key(|(k, f)| (*k, f.id));
    keyed.into_iter().map(|(_, f)| f).collect()
}

#[test]
fn scenario_produces_every_event_family() {
    // Sanity: the fingerprint we compare across runs actually covers
    // gaps, spoofing, rendezvous and collision events.
    let fingerprint = run(&scenario_fixes(), 1);
    for family in ["GapStart", "KinematicSpoofing", "Rendezvous", "CollisionRisk"] {
        assert!(fingerprint.iter().any(|e| e.contains(family)), "scenario never produced {family}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// In-order arrival vs a bounded shuffle: identical event multiset.
    #[test]
    fn shuffle_within_delay_is_invisible(seed in 1u64..1_000_000) {
        let fixes = scenario_fixes();
        let reference = run(&fixes, 4);
        let shuffled = bounded_shuffle(&fixes, seed);
        prop_assert!(shuffled != fixes, "shuffle was the identity; weak test");
        prop_assert_eq!(run(&shuffled, 4), reference, "arrival order leaked into emission");
    }

    /// Shard count (1/2/4/8) never changes the event multiset, under
    /// shuffled arrival too.
    #[test]
    fn emission_is_shard_count_invariant(seed in 1u64..1_000_000) {
        let arrivals = bounded_shuffle(&scenario_fixes(), seed);
        let reference = run(&arrivals, 1);
        for shards in [2usize, 4, 8] {
            prop_assert_eq!(run(&arrivals, shards), reference.clone(), "shards diverged");
        }
    }
}
