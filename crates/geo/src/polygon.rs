//! Simple polygons on the lat/lon plane: containment, hulls, area.
//!
//! Zones of interest in the maritime domain (ports, anchorages, protected
//! areas, EEZ slices) are small enough that planar geometry on degrees is
//! adequate; containment is what the event detectors need and it must be
//! exact with respect to the polygon as drawn.

use crate::bbox::BoundingBox;
use crate::pos::Position;
use serde::{Deserialize, Serialize};

/// A simple polygon (no self-intersection, not crossing the
/// antimeridian). The ring is stored open: first vertex is not repeated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Position>,
    bbox: BoundingBox,
}

impl Polygon {
    /// Build a polygon from at least three vertices.
    ///
    /// Returns `None` if fewer than three vertices are supplied.
    pub fn new(mut vertices: Vec<Position>) -> Option<Self> {
        // Drop an explicitly closed ring's duplicate last vertex.
        if vertices.len() >= 2 && vertices.first() == vertices.last() {
            vertices.pop();
        }
        if vertices.len() < 3 {
            return None;
        }
        let bbox = BoundingBox::from_points(&vertices)?;
        Some(Self { vertices, bbox })
    }

    /// Convenience: an axis-aligned rectangle.
    pub fn rectangle(b: BoundingBox) -> Self {
        Polygon::new(vec![
            Position::new(b.min_lat, b.min_lon),
            Position::new(b.min_lat, b.max_lon),
            Position::new(b.max_lat, b.max_lon),
            Position::new(b.max_lat, b.min_lon),
        ])
        .expect("rectangle always has 4 vertices")
    }

    /// A regular n-gon approximating a circle of radius `radius_m` metres
    /// around `center` (n = 24). Useful for "within R of a point" zones.
    pub fn circle(center: Position, radius_m: f64) -> Self {
        const N: usize = 24;
        let vertices = (0..N)
            .map(|i| {
                let brg = 360.0 * i as f64 / N as f64;
                crate::distance::destination(center, brg, radius_m)
            })
            .collect();
        Polygon::new(vertices).expect("circle has 24 vertices")
    }

    /// The vertex ring (open).
    pub fn vertices(&self) -> &[Position] {
        &self.vertices
    }

    /// Precomputed bounding box, used as a cheap pre-filter.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Even-odd (ray casting) containment test. Points exactly on an edge
    /// may fall on either side; maritime zones are defined with margins so
    /// this does not matter in practice.
    pub fn contains(&self, p: Position) -> bool {
        if !self.bbox.contains(p) {
            return false;
        }
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if ((vi.lat > p.lat) != (vj.lat > p.lat))
                && (p.lon < (vj.lon - vi.lon) * (p.lat - vi.lat) / (vj.lat - vi.lat) + vi.lon)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Signed planar area in square degrees (positive if counter-clockwise).
    pub fn signed_area_deg2(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.lon * b.lat - b.lon * a.lat;
        }
        acc / 2.0
    }

    /// Planar centroid (adequate for zone labelling).
    pub fn centroid(&self) -> Position {
        let n = self.vertices.len() as f64;
        let (mut lat, mut lon) = (0.0, 0.0);
        for v in &self.vertices {
            lat += v.lat;
            lon += v.lon;
        }
        Position::new(lat / n, lon / n)
    }
}

/// Convex hull of a point set (Andrew's monotone chain). Returns the hull
/// as a counter-clockwise polygon, or `None` if the input is degenerate
/// (fewer than three non-collinear points).
pub fn convex_hull(points: &[Position]) -> Option<Polygon> {
    if points.len() < 3 {
        return None;
    }
    let mut pts: Vec<Position> = points.to_vec();
    pts.sort_by(|a, b| a.lon.partial_cmp(&b.lon).unwrap().then(a.lat.partial_cmp(&b.lat).unwrap()));
    pts.dedup_by(|a, b| a.lon == b.lon && a.lat == b.lat);
    if pts.len() < 3 {
        return None;
    }
    fn cross(o: Position, a: Position, b: Position) -> f64 {
        (a.lon - o.lon) * (b.lat - o.lat) - (a.lat - o.lat) * (b.lon - o.lon)
    }
    let mut hull: Vec<Position> = Vec::with_capacity(pts.len() * 2);
    for &p in &pts {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev() {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point repeats the first
    Polygon::new(hull)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rectangle(BoundingBox::new(0.0, 0.0, 1.0, 1.0))
    }

    #[test]
    fn rejects_degenerate() {
        assert!(Polygon::new(vec![]).is_none());
        assert!(Polygon::new(vec![Position::new(0.0, 0.0), Position::new(1.0, 1.0)]).is_none());
    }

    #[test]
    fn closed_ring_is_normalised() {
        let p = Polygon::new(vec![
            Position::new(0.0, 0.0),
            Position::new(0.0, 1.0),
            Position::new(1.0, 1.0),
            Position::new(0.0, 0.0),
        ])
        .unwrap();
        assert_eq!(p.vertices().len(), 3);
    }

    #[test]
    fn square_containment() {
        let sq = unit_square();
        assert!(sq.contains(Position::new(0.5, 0.5)));
        assert!(!sq.contains(Position::new(1.5, 0.5)));
        assert!(!sq.contains(Position::new(-0.1, 0.5)));
    }

    #[test]
    fn concave_polygon_containment() {
        // A "C" shape: the notch must be outside.
        let c = Polygon::new(vec![
            Position::new(0.0, 0.0),
            Position::new(0.0, 3.0),
            Position::new(3.0, 3.0),
            Position::new(3.0, 0.0),
            Position::new(2.0, 0.0),
            Position::new(2.0, 2.0),
            Position::new(1.0, 2.0),
            Position::new(1.0, 0.0),
        ])
        .unwrap();
        assert!(c.contains(Position::new(0.5, 1.0)), "left arm");
        assert!(c.contains(Position::new(2.5, 1.0)), "right arm");
        assert!(c.contains(Position::new(1.5, 2.5)), "bridge");
        assert!(!c.contains(Position::new(1.5, 1.0)), "notch is outside");
    }

    #[test]
    fn circle_contains_center_and_excludes_far() {
        let center = Position::new(43.0, 5.0);
        let circ = Polygon::circle(center, 5_000.0);
        assert!(circ.contains(center));
        assert!(circ.contains(crate::distance::destination(center, 77.0, 3_000.0)));
        assert!(!circ.contains(crate::distance::destination(center, 77.0, 6_000.0)));
    }

    #[test]
    fn area_of_unit_square() {
        let sq = unit_square();
        assert!((sq.signed_area_deg2().abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_square() {
        let c = unit_square().centroid();
        assert!((c.lat - 0.5).abs() < 1e-12 && (c.lon - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let mut pts = unit_square().vertices().to_vec();
        pts.push(Position::new(0.5, 0.5));
        pts.push(Position::new(0.2, 0.8));
        let hull = convex_hull(&pts).unwrap();
        assert_eq!(hull.vertices().len(), 4);
        assert!((hull.signed_area_deg2().abs() - 1.0).abs() < 1e-12);
        assert!(hull.signed_area_deg2() > 0.0, "ccw orientation");
    }

    #[test]
    fn hull_of_collinear_points_is_none() {
        let pts: Vec<Position> = (0..5).map(|i| Position::new(i as f64, i as f64)).collect();
        assert!(convex_hull(&pts).is_none());
    }
}
