//! A static STR-packed R-tree over point data.
//!
//! Built once (Sort-Tile-Recursive bulk loading), queried many times —
//! exactly the access pattern of archival trajectory queries in
//! `mda-store`. For dynamic data the workspace uses [`crate::grid`]; the
//! R-tree exists for skewed archival distributions where a uniform grid
//! degenerates.

use crate::bbox::BoundingBox;
use crate::distance::equirectangular_m;
use crate::pos::Position;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

const NODE_CAPACITY: usize = 16;

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf { bbox: BoundingBox, entries: Vec<(Position, T)> },
    Inner { bbox: BoundingBox, children: Vec<Node<T>> },
}

impl<T> Node<T> {
    fn bbox(&self) -> &BoundingBox {
        match self {
            Node::Leaf { bbox, .. } | Node::Inner { bbox, .. } => bbox,
        }
    }
}

/// Static R-tree over `(Position, T)` points.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Option<Node<T>>,
    len: usize,
}

impl<T: Clone> RTree<T> {
    /// Bulk-load a tree from points using Sort-Tile-Recursive packing.
    pub fn bulk_load(mut items: Vec<(Position, T)>) -> Self {
        let len = items.len();
        if items.is_empty() {
            return Self { root: None, len: 0 };
        }
        let leaves = Self::pack_leaves(&mut items);
        let root = Self::build_upwards(leaves);
        Self { root: Some(root), len }
    }

    fn pack_leaves(items: &mut [(Position, T)]) -> Vec<Node<T>> {
        let n = items.len();
        let leaf_count = n.div_ceil(NODE_CAPACITY);
        let slices = (leaf_count as f64).sqrt().ceil() as usize; // vertical strips
        let per_slice = n.div_ceil(slices);
        items.sort_by(|a, b| a.0.lon.partial_cmp(&b.0.lon).unwrap_or(Ordering::Equal));
        let mut leaves = Vec::with_capacity(leaf_count);
        for strip in items.chunks_mut(per_slice.max(1)) {
            strip.sort_by(|a, b| a.0.lat.partial_cmp(&b.0.lat).unwrap_or(Ordering::Equal));
            for chunk in strip.chunks(NODE_CAPACITY) {
                let entries: Vec<(Position, T)> = chunk.to_vec();
                let bbox =
                    BoundingBox::from_points(&entries.iter().map(|(p, _)| *p).collect::<Vec<_>>())
                        .expect("non-empty chunk");
                leaves.push(Node::Leaf { bbox, entries });
            }
        }
        leaves
    }

    fn build_upwards(mut level: Vec<Node<T>>) -> Node<T> {
        while level.len() > 1 {
            level.sort_by(|a, b| {
                a.bbox().center().lon.partial_cmp(&b.bbox().center().lon).unwrap_or(Ordering::Equal)
            });
            let mut next = Vec::with_capacity(level.len().div_ceil(NODE_CAPACITY));
            let mut iter = level.into_iter().peekable();
            while iter.peek().is_some() {
                let children: Vec<Node<T>> = iter.by_ref().take(NODE_CAPACITY).collect();
                let bbox =
                    children.iter().skip(1).fold(*children[0].bbox(), |acc, c| acc.union(c.bbox()));
                next.push(Node::Inner { bbox, children });
            }
            level = next;
        }
        level.into_iter().next().expect("non-empty level")
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All points inside `query`.
    pub fn query_bbox(&self, query: &BoundingBox) -> Vec<(Position, T)> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            Self::query_node(root, query, &mut out);
        }
        out
    }

    fn query_node(node: &Node<T>, query: &BoundingBox, out: &mut Vec<(Position, T)>) {
        match node {
            Node::Leaf { bbox, entries } => {
                if bbox.intersects(query) {
                    for (p, v) in entries {
                        if query.contains(*p) {
                            out.push((*p, v.clone()));
                        }
                    }
                }
            }
            Node::Inner { bbox, children } => {
                if bbox.intersects(query) {
                    for c in children {
                        Self::query_node(c, query, out);
                    }
                }
            }
        }
    }

    /// The `k` nearest stored points to `target` (best-first search with
    /// bbox lower bounds), closest first.
    pub fn nearest_k(&self, target: Position, k: usize) -> Vec<(Position, T, f64)> {
        let root = match &self.root {
            Some(r) => r,
            None => return Vec::new(),
        };
        if k == 0 {
            return Vec::new();
        }

        struct Candidate<'a, T> {
            dist: f64,
            payload: CandidateKind<'a, T>,
        }
        enum CandidateKind<'a, T> {
            Node(&'a Node<T>),
            Point(Position, &'a T),
        }
        impl<T> PartialEq for Candidate<'_, T> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist
            }
        }
        impl<T> Eq for Candidate<'_, T> {}
        impl<T> PartialOrd for Candidate<'_, T> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for Candidate<'_, T> {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on distance.
                other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal)
            }
        }

        let mut heap = BinaryHeap::new();
        heap.push(Candidate {
            dist: bbox_min_dist_m(root.bbox(), target),
            payload: CandidateKind::Node(root),
        });
        let mut result = Vec::with_capacity(k);
        while let Some(c) = heap.pop() {
            match c.payload {
                CandidateKind::Node(Node::Inner { children, .. }) => {
                    for ch in children {
                        heap.push(Candidate {
                            dist: bbox_min_dist_m(ch.bbox(), target),
                            payload: CandidateKind::Node(ch),
                        });
                    }
                }
                CandidateKind::Node(Node::Leaf { entries, .. }) => {
                    for (p, v) in entries {
                        heap.push(Candidate {
                            dist: equirectangular_m(target, *p),
                            payload: CandidateKind::Point(*p, v),
                        });
                    }
                }
                CandidateKind::Point(p, v) => {
                    result.push((p, v.clone(), c.dist));
                    if result.len() == k {
                        break;
                    }
                }
            }
        }
        result
    }
}

/// Lower bound on the distance from `target` to any point in `b`, in
/// metres (equirectangular metric, consistent with [`RTree::nearest_k`]).
fn bbox_min_dist_m(b: &BoundingBox, target: Position) -> f64 {
    let lat = target.lat.clamp(b.min_lat, b.max_lat);
    let lon = target.lon.clamp(b.min_lon, b.max_lon);
    equirectangular_m(target, Position::new(lat, lon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<(Position, u32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u32)
            .map(|i| (Position::new(rng.gen_range(40.0..45.0), rng.gen_range(2.0..9.0)), i))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
        assert!(t.query_bbox(&BoundingBox::WORLD).is_empty());
        assert!(t.nearest_k(Position::new(0.0, 0.0), 3).is_empty());
    }

    #[test]
    fn query_matches_scan() {
        let pts = random_points(2_000, 11);
        let tree = RTree::bulk_load(pts.clone());
        assert_eq!(tree.len(), 2_000);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..25 {
            let lat = rng.gen_range(40.0..44.0);
            let lon = rng.gen_range(2.0..8.0);
            let q = BoundingBox::new(lat, lon, lat + 0.7, lon + 0.9);
            let mut from_tree: Vec<u32> = tree.query_bbox(&q).into_iter().map(|(_, v)| v).collect();
            let mut from_scan: Vec<u32> =
                pts.iter().filter(|(p, _)| q.contains(*p)).map(|(_, v)| *v).collect();
            from_tree.sort_unstable();
            from_scan.sort_unstable();
            assert_eq!(from_tree, from_scan);
        }
    }

    #[test]
    fn nearest_k_matches_brute_force() {
        let pts = random_points(1_000, 21);
        let tree = RTree::bulk_load(pts.clone());
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..20 {
            let target = Position::new(rng.gen_range(40.0..45.0), rng.gen_range(2.0..9.0));
            let got: Vec<u32> = tree.nearest_k(target, 7).into_iter().map(|(_, v, _)| v).collect();
            let mut brute: Vec<(f64, u32)> =
                pts.iter().map(|(p, v)| (equirectangular_m(target, *p), *v)).collect();
            brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let want: Vec<u32> = brute.iter().take(7).map(|(_, v)| *v).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn nearest_k_ordered_by_distance() {
        let pts = random_points(300, 31);
        let tree = RTree::bulk_load(pts);
        let res = tree.nearest_k(Position::new(42.5, 5.5), 10);
        assert_eq!(res.len(), 10);
        for w in res.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
    }

    #[test]
    fn nearest_k_larger_than_len() {
        let pts = random_points(5, 41);
        let tree = RTree::bulk_load(pts);
        assert_eq!(tree.nearest_k(Position::new(42.0, 5.0), 50).len(), 5);
    }

    #[test]
    fn single_point_tree() {
        let tree = RTree::bulk_load(vec![(Position::new(1.0, 2.0), 9u32)]);
        assert_eq!(tree.len(), 1);
        let r = tree.nearest_k(Position::new(1.1, 2.1), 1);
        assert_eq!(r[0].1, 9);
    }
}
