//! Compact integer/float codecs for sealed trajectory storage.
//!
//! The archive's cold tier stores per-vessel slabs of fixes
//! delta-encoded columnar; this module provides the shared primitives:
//!
//! - **LEB128 varints** ([`write_varint`] / [`read_varint`]) — small
//!   magnitudes (deltas of sorted timestamps, quantized position steps)
//!   cost one or two bytes instead of eight.
//! - **ZigZag mapping** ([`zigzag`] / [`unzigzag`]) — signed deltas of
//!   either sign stay small as varints.
//! - **Fixed-point quantization** ([`quantize`] / [`dequantize`]) — a
//!   lossy float→integer mapping with an explicit, recorded scale.
//! - **Bit-exact float transport** ([`write_f64_xor`] /
//!   [`read_f64_xor`]) — XOR against the previous value's bit pattern,
//!   varint-encoded; repeated values (a vessel holding course and
//!   speed) cost one byte and the round-trip is always exact.
//!
//! ## Example
//!
//! ```
//! use mda_geo::codec::{read_varint, write_varint, unzigzag, zigzag};
//!
//! let mut buf = Vec::new();
//! for delta in [0i64, -3, 60_000, 42] {
//!     write_varint(&mut buf, zigzag(delta));
//! }
//! let mut at = 0;
//! assert_eq!(unzigzag(read_varint(&buf, &mut at).unwrap()), 0);
//! assert_eq!(unzigzag(read_varint(&buf, &mut at).unwrap()), -3);
//! ```

/// Append `value` as an LEB128 varint (7 payload bits per byte).
pub fn write_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read an LEB128 varint from `buf` at `*at`, advancing the cursor.
///
/// Returns `None` — never panics, never wraps — on any malformed
/// input: truncation mid-value, more than 10 bytes (the longest
/// encoding of a `u64`), or a 10th byte carrying payload bits past bit
/// 63 (which would silently overflow a `u64`). At most 10 bytes are
/// consumed even when rejecting.
pub fn read_varint(buf: &[u8], at: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*at)?;
        *at += 1;
        if shift == 63 && byte & 0xFE != 0 {
            // 10th byte: only the lowest payload bit fits in a u64, and
            // it must terminate — anything else is overflow or an 11th
            // byte, both rejected rather than wrapped.
            return None;
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// Map a signed integer onto an unsigned one so small magnitudes of
/// either sign become small varints: `0, -1, 1, -2, ... → 0, 1, 2, 3`.
#[inline]
pub const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub const fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Quantize a float onto the integer lattice of step `1 / scale`
/// (round-to-nearest). The reconstruction error of [`dequantize`] is at
/// most `0.5 / scale`.
///
/// Non-finite and out-of-range inputs saturate instead of producing
/// undefined lattice points: `NaN` maps to 0, and anything beyond the
/// `i64` range (including ±∞) clamps to `i64::MIN` / `i64::MAX`.
#[inline]
pub fn quantize(value: f64, scale: f64) -> i64 {
    let scaled = value * scale;
    if scaled.is_nan() {
        return 0;
    }
    if scaled >= i64::MAX as f64 {
        return i64::MAX;
    }
    if scaled <= i64::MIN as f64 {
        return i64::MIN;
    }
    scaled.round() as i64
}

/// Inverse of [`quantize`] (up to the quantization error).
#[inline]
pub fn dequantize(q: i64, scale: f64) -> f64 {
    q as f64 / scale
}

/// Append `value` bit-exactly as `varint(bits(value) XOR bits(prev))`.
/// Returns `value` (the next `prev`). Equal consecutive values cost one
/// byte; arbitrary values cost at most ten.
pub fn write_f64_xor(buf: &mut Vec<u8>, prev: f64, value: f64) -> f64 {
    write_varint(buf, value.to_bits() ^ prev.to_bits());
    value
}

/// Read a float written by [`write_f64_xor`] given the same `prev`.
pub fn read_f64_xor(buf: &[u8], at: &mut usize, prev: f64) -> Option<f64> {
    Some(f64::from_bits(read_varint(buf, at)? ^ prev.to_bits()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn varint_round_trip_edges() {
        let cases =
            [0u64, 1, 127, 128, 16_383, 16_384, u64::from(u32::MAX), u64::MAX - 1, u64::MAX];
        for v in cases {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut at = 0;
            assert_eq!(read_varint(&buf, &mut at), Some(v));
            assert_eq!(at, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        let mut at = 0;
        assert_eq!(read_varint(&buf[..buf.len() - 1], &mut at), None);
        assert_eq!(read_varint(&[], &mut 0), None);
    }

    #[test]
    fn varint_rejects_overlong_and_overflow() {
        // 11 continuation bytes: must reject without consuming past 10.
        let mut at = 0;
        assert_eq!(read_varint(&[0x80; 11], &mut at), None);
        assert!(at <= 10, "consumed {at} bytes");
        // 10th byte with payload bits above bit 63 would wrap a u64.
        let mut overflow = vec![0xFF; 9];
        overflow.push(0x02);
        assert_eq!(read_varint(&overflow, &mut 0), None);
        // Adversarial all-0xFF stream: continuation forever, high bits set.
        assert_eq!(read_varint(&[0xFF; 32], &mut 0), None);
        // The canonical 10-byte encoding of u64::MAX still decodes.
        let mut max = vec![0xFF; 9];
        max.push(0x01);
        assert_eq!(read_varint(&max, &mut 0), Some(u64::MAX));
    }

    #[test]
    fn quantize_saturates_non_finite() {
        assert_eq!(quantize(f64::NAN, 1e5), 0);
        assert_eq!(quantize(f64::INFINITY, 1e5), i64::MAX);
        assert_eq!(quantize(f64::NEG_INFINITY, 1e5), i64::MIN);
        assert_eq!(quantize(1e300, 1e5), i64::MAX);
        assert_eq!(quantize(-1e300, 1e5), i64::MIN);
        // NaN can also arise from the multiply itself (0 × ∞).
        assert_eq!(quantize(0.0, f64::INFINITY), 0);
        assert_eq!(quantize(1.0, f64::INFINITY), i64::MAX);
    }

    #[test]
    fn zigzag_round_trip_and_order() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, 12_345, -12_345] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert!(zigzag(100) < zigzag(-1_000));
    }

    #[test]
    fn quantization_error_is_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let scale = 1e5; // 1e-5 degrees ≈ 1.1 m of latitude
        for _ in 0..1_000 {
            let v: f64 = rng.gen_range(-180.0..180.0);
            let back = dequantize(quantize(v, scale), scale);
            assert!((back - v).abs() <= 0.5 / scale + 1e-12, "{v} → {back}");
        }
    }

    #[test]
    fn f64_xor_is_bit_exact() {
        let mut rng = StdRng::seed_from_u64(4);
        let values: Vec<f64> =
            (0..500).map(|i| if i % 3 == 0 { 42.5 } else { rng.gen_range(-1e9..1e9) }).collect();
        let mut buf = Vec::new();
        let mut prev = 0.0;
        for &v in &values {
            prev = write_f64_xor(&mut buf, prev, v);
        }
        let mut at = 0;
        let mut prev = 0.0;
        for &v in &values {
            let got = read_f64_xor(&buf, &mut at, prev).unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
            prev = got;
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn repeated_values_compress_to_one_byte() {
        let mut buf = Vec::new();
        let mut prev = 0.0;
        for _ in 0..100 {
            prev = write_f64_xor(&mut buf, prev, 123.456);
        }
        // First value costs up to 10 bytes, the 99 repeats one byte each.
        assert!(buf.len() <= 10 + 99, "buf {}", buf.len());
    }
}
