//! Local tangent-plane projection for metric computations.
//!
//! Kalman filtering, CPA computation and association gating all want flat
//! Euclidean coordinates. [`LocalFrame`] is an equirectangular projection
//! centred on a reference position: accurate to well under 0.1% within a
//! couple of degrees of the origin, which covers any single-vessel
//! processing context.

use crate::pos::Position;
use crate::units::EARTH_RADIUS_M;
use serde::{Deserialize, Serialize};

/// A point in a local east/north metric frame, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LocalPoint {
    /// Metres east of the frame origin.
    pub x: f64,
    /// Metres north of the frame origin.
    pub y: f64,
}

impl LocalPoint {
    /// Euclidean norm in metres.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Vector difference `self - other`.
    #[inline]
    pub fn minus(&self, other: LocalPoint) -> LocalPoint {
        LocalPoint { x: self.x - other.x, y: self.y - other.y }
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: LocalPoint) -> f64 {
        self.x * other.x + self.y * other.y
    }
}

/// An equirectangular projection centred on `origin`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LocalFrame {
    origin: Position,
    cos_lat: f64,
}

impl LocalFrame {
    /// Create a frame centred at `origin`.
    pub fn new(origin: Position) -> Self {
        Self { origin, cos_lat: origin.lat_rad().cos() }
    }

    /// The frame origin.
    #[inline]
    pub fn origin(&self) -> Position {
        self.origin
    }

    /// Project a geographic position to local metres.
    pub fn project(&self, p: Position) -> LocalPoint {
        let mut dlon = p.lon - self.origin.lon;
        if dlon > 180.0 {
            dlon -= 360.0;
        } else if dlon < -180.0 {
            dlon += 360.0;
        }
        LocalPoint {
            x: dlon.to_radians() * self.cos_lat * EARTH_RADIUS_M,
            y: (p.lat - self.origin.lat).to_radians() * EARTH_RADIUS_M,
        }
    }

    /// Inverse projection: local metres back to a geographic position.
    pub fn unproject(&self, p: LocalPoint) -> Position {
        let lat = self.origin.lat + (p.y / EARTH_RADIUS_M).to_degrees();
        let lon = self.origin.lon + (p.x / (EARTH_RADIUS_M * self.cos_lat)).to_degrees();
        Position::new(lat, lon).normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::haversine_m;

    #[test]
    fn round_trip_identity() {
        let frame = LocalFrame::new(Position::new(43.3, 5.4));
        let p = Position::new(43.45, 5.61);
        let back = frame.unproject(frame.project(p));
        assert!(haversine_m(p, back) < 0.01, "round trip error too large");
    }

    #[test]
    fn projected_distance_matches_haversine_nearby() {
        let frame = LocalFrame::new(Position::new(43.3, 5.4));
        let a = Position::new(43.31, 5.43);
        let b = Position::new(43.36, 5.35);
        let planar = frame.project(a).minus(frame.project(b)).norm();
        let sphere = haversine_m(a, b);
        assert!((planar - sphere).abs() / sphere < 1e-3, "{planar} vs {sphere}");
    }

    #[test]
    fn origin_maps_to_zero() {
        let o = Position::new(-12.0, 96.0);
        let frame = LocalFrame::new(o);
        let z = frame.project(o);
        assert_eq!(z.x, 0.0);
        assert_eq!(z.y, 0.0);
    }

    #[test]
    fn handles_antimeridian_neighbourhood() {
        let frame = LocalFrame::new(Position::new(0.0, 179.9));
        let east = frame.project(Position::new(0.0, -179.9));
        assert!(east.x > 0.0 && east.x < 30_000.0, "x = {}", east.x);
    }

    #[test]
    fn local_point_algebra() {
        let a = LocalPoint { x: 3.0, y: 4.0 };
        assert_eq!(a.norm(), 5.0);
        let b = LocalPoint { x: 1.0, y: 1.0 };
        let d = a.minus(b);
        assert_eq!((d.x, d.y), (2.0, 3.0));
        assert_eq!(a.dot(b), 7.0);
    }
}
