//! Great-circle distance and bearing math on the spherical Earth.
//!
//! All functions take [`Position`] in degrees and return metres / degrees.
//! A spherical model is accurate to ~0.5% which is far below the sensor
//! noise of any maritime data source; the workspace never needs an
//! ellipsoidal model.

use crate::pos::Position;
use crate::units::{norm_deg_360, EARTH_RADIUS_M};

/// Great-circle (haversine) distance between two positions, in metres.
pub fn haversine_m(a: Position, b: Position) -> f64 {
    let (la1, lo1) = (a.lat_rad(), a.lon_rad());
    let (la2, lo2) = (b.lat_rad(), b.lon_rad());
    let dlat = la2 - la1;
    let dlon = lo2 - lo1;
    let h = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().min(1.0).asin()
}

/// Fast equirectangular approximation of distance in metres.
///
/// Within ~100 km the error versus haversine is below 0.1%; this is the
/// work-horse for hot loops (association gating, index scans).
pub fn equirectangular_m(a: Position, b: Position) -> f64 {
    let mlat = ((a.lat + b.lat) / 2.0).to_radians();
    let x = (b.lon_rad() - a.lon_rad()) * mlat.cos();
    let y = b.lat_rad() - a.lat_rad();
    EARTH_RADIUS_M * (x * x + y * y).sqrt()
}

/// Initial great-circle bearing from `a` to `b`, degrees in `[0, 360)`.
pub fn initial_bearing_deg(a: Position, b: Position) -> f64 {
    let (la1, la2) = (a.lat_rad(), b.lat_rad());
    let dlon = b.lon_rad() - a.lon_rad();
    let y = dlon.sin() * la2.cos();
    let x = la1.cos() * la2.sin() - la1.sin() * la2.cos() * dlon.cos();
    norm_deg_360(y.atan2(x).to_degrees())
}

/// Destination point after travelling `distance_m` metres from `start` on
/// the initial bearing `bearing_deg`.
pub fn destination(start: Position, bearing_deg: f64, distance_m: f64) -> Position {
    let delta = distance_m / EARTH_RADIUS_M;
    let theta = bearing_deg.to_radians();
    let la1 = start.lat_rad();
    let lo1 = start.lon_rad();
    let la2 = (la1.sin() * delta.cos() + la1.cos() * delta.sin() * theta.cos()).asin();
    let lo2 =
        lo1 + (theta.sin() * delta.sin() * la1.cos()).atan2(delta.cos() - la1.sin() * la2.sin());
    Position::new(la2.to_degrees(), lo2.to_degrees()).normalized()
}

/// Signed cross-track distance in metres of point `p` from the great
/// circle through `a` towards `b`. Negative means left of track.
pub fn cross_track_m(p: Position, a: Position, b: Position) -> f64 {
    let d13 = haversine_m(a, p) / EARTH_RADIUS_M;
    let theta13 = initial_bearing_deg(a, p).to_radians();
    let theta12 = initial_bearing_deg(a, b).to_radians();
    EARTH_RADIUS_M * (d13.sin() * (theta13 - theta12).sin()).asin()
}

/// Along-track distance in metres: how far along the `a`→`b` great circle
/// the closest point to `p` lies.
pub fn along_track_m(p: Position, a: Position, b: Position) -> f64 {
    let d13 = haversine_m(a, p) / EARTH_RADIUS_M;
    let xt = cross_track_m(p, a, b) / EARTH_RADIUS_M;
    let cos_ratio = (d13.cos() / xt.cos()).clamp(-1.0, 1.0);
    let at = cos_ratio.acos() * EARTH_RADIUS_M;
    // Sign: negative when the foot of the perpendicular is behind `a`.
    let theta13 = initial_bearing_deg(a, p).to_radians();
    let theta12 = initial_bearing_deg(a, b).to_radians();
    if (theta13 - theta12).cos() < 0.0 {
        -at
    } else {
        at
    }
}

/// Distance in metres from `p` to the great-circle *segment* `a`..`b`
/// (clamped to the endpoints, unlike [`cross_track_m`]).
pub fn segment_distance_m(p: Position, a: Position, b: Position) -> f64 {
    let seg = haversine_m(a, b);
    if seg < 1e-9 {
        return haversine_m(p, a);
    }
    let at = along_track_m(p, a, b);
    if at < 0.0 {
        haversine_m(p, a)
    } else if at > seg {
        haversine_m(p, b)
    } else {
        cross_track_m(p, a, b).abs()
    }
}

/// Linear interpolation between two positions at fraction `f` in `[0,1]`.
///
/// For the short segments between consecutive AIS fixes, chordal
/// interpolation on lat/lon (with longitude unwrapping) is within
/// centimetres of the great-circle point.
pub fn interpolate(a: Position, b: Position, f: f64) -> Position {
    let mut dlon = b.lon - a.lon;
    if dlon > 180.0 {
        dlon -= 360.0;
    } else if dlon < -180.0 {
        dlon += 360.0;
    }
    Position::new(a.lat + (b.lat - a.lat) * f, a.lon + dlon * f).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::nm_to_meters;

    const MARSEILLE: Position = Position::new(43.2965, 5.3698);
    const GENOA: Position = Position::new(44.4056, 8.9463);

    #[test]
    fn haversine_known_distance() {
        // Marseille–Genoa is about 313 km.
        let d = haversine_m(MARSEILLE, GENOA);
        assert!((d - 313_000.0).abs() < 5_000.0, "got {d}");
    }

    #[test]
    fn haversine_zero_and_symmetry() {
        assert_eq!(haversine_m(MARSEILLE, MARSEILLE), 0.0);
        let ab = haversine_m(MARSEILLE, GENOA);
        let ba = haversine_m(GENOA, MARSEILLE);
        assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn equirectangular_close_to_haversine_nearby() {
        let a = Position::new(43.0, 5.0);
        let b = Position::new(43.2, 5.3);
        let h = haversine_m(a, b);
        let e = equirectangular_m(a, b);
        assert!((h - e).abs() / h < 1e-3, "h={h} e={e}");
    }

    #[test]
    fn bearing_cardinal_directions() {
        let o = Position::new(0.0, 0.0);
        assert!((initial_bearing_deg(o, Position::new(1.0, 0.0)) - 0.0).abs() < 1e-9);
        assert!((initial_bearing_deg(o, Position::new(0.0, 1.0)) - 90.0).abs() < 1e-9);
        assert!((initial_bearing_deg(o, Position::new(-1.0, 0.0)) - 180.0).abs() < 1e-9);
        assert!((initial_bearing_deg(o, Position::new(0.0, -1.0)) - 270.0).abs() < 1e-9);
    }

    #[test]
    fn destination_round_trip() {
        let d = nm_to_meters(25.0);
        let dest = destination(MARSEILLE, 137.0, d);
        let back = haversine_m(MARSEILLE, dest);
        assert!((back - d).abs() < 1.0, "distance {back} vs {d}");
        let brg = initial_bearing_deg(MARSEILLE, dest);
        assert!((brg - 137.0).abs() < 0.1, "bearing {brg}");
    }

    #[test]
    fn destination_crossing_antimeridian() {
        let p = Position::new(0.0, 179.9);
        let dest = destination(p, 90.0, nm_to_meters(30.0));
        assert!(dest.lon < -179.0, "wrapped lon {}", dest.lon);
    }

    #[test]
    fn cross_track_sign_and_magnitude() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(0.0, 2.0);
        // Point north of an eastward track is left of track => negative by
        // the standard convention (bearing difference sin < 0).
        let north = Position::new(0.1, 1.0);
        let south = Position::new(-0.1, 1.0);
        let xtn = cross_track_m(north, a, b);
        let xts = cross_track_m(south, a, b);
        assert!(xtn < 0.0 && xts > 0.0, "{xtn} {xts}");
        assert!((xtn.abs() - haversine_m(Position::new(0.0, 1.0), north)).abs() < 50.0);
    }

    #[test]
    fn segment_distance_clamps_to_endpoints() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(0.0, 1.0);
        let before = Position::new(0.0, -1.0);
        let after = Position::new(0.0, 2.0);
        assert!((segment_distance_m(before, a, b) - haversine_m(before, a)).abs() < 1.0);
        assert!((segment_distance_m(after, a, b) - haversine_m(after, b)).abs() < 1.0);
        let mid = Position::new(0.5, 0.5);
        assert!(segment_distance_m(mid, a, b) < haversine_m(mid, a));
    }

    #[test]
    fn interpolate_endpoints_and_midpoint() {
        let m = interpolate(MARSEILLE, GENOA, 0.0);
        assert!((m.lat - MARSEILLE.lat).abs() < 1e-12);
        let g = interpolate(MARSEILLE, GENOA, 1.0);
        assert!((g.lon - GENOA.lon).abs() < 1e-12);
        let mid = interpolate(MARSEILLE, GENOA, 0.5);
        let dm = haversine_m(MARSEILLE, mid);
        let dg = haversine_m(mid, GENOA);
        // Chordal interpolation deviates slightly from the great-circle
        // midpoint over a ~313 km leg; allow 1% of the leg length.
        assert!((dm - dg).abs() < 3_200.0, "{dm} vs {dg}");
    }

    #[test]
    fn interpolate_across_antimeridian() {
        let a = Position::new(0.0, 179.5);
        let b = Position::new(0.0, -179.5);
        let mid = interpolate(a, b, 0.5);
        assert!(mid.lon.abs() > 179.9, "mid lon {}", mid.lon);
    }
}
