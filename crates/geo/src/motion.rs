//! Kinematic fixes and motion math: dead-reckoning, interpolation, CPA.
//!
//! [`Fix`] is the unit of data flowing through the whole workspace — a
//! timestamped kinematic observation of one moving object, independent of
//! which sensor produced it (AIS, radar plot, VMS report).

use crate::distance::{destination, haversine_m, initial_bearing_deg, interpolate};
use crate::pos::Position;
use crate::projection::{LocalFrame, LocalPoint};
use crate::time::Timestamp;
use crate::units::knots_to_mps;
use serde::{Deserialize, Serialize};

/// Identifier of a moving object. For AIS sources this is the MMSI; for
/// anonymous sensors (radar) it is a locally assigned track id.
pub type VesselId = u32;

/// The canonical shard a vessel's keyed state lives in, for `shards`
/// shards.
///
/// This is THE routing function of the workspace: the sharded
/// trajectory store, the sharded event engine and shard-affine ingest
/// workers all derive their placement from it, so "shard *i* of the
/// store" and "shard *i* of the event engine" hold the same vessels
/// whenever their shard counts match. The hash is a splitmix64 finalizer
/// — sequential MMSIs scatter uniformly.
#[inline]
pub fn vessel_shard(id: VesselId, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    let mut z = u64::from(id).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// A timestamped kinematic observation of one moving object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fix {
    /// Object identifier (MMSI or local track id).
    pub id: VesselId,
    /// Event time of the observation.
    pub t: Timestamp,
    /// Observed position.
    pub pos: Position,
    /// Speed over ground in knots.
    pub sog_kn: f64,
    /// Course over ground in degrees `[0, 360)`.
    pub cog_deg: f64,
}

impl Fix {
    /// Construct a fix.
    pub fn new(id: VesselId, t: Timestamp, pos: Position, sog_kn: f64, cog_deg: f64) -> Self {
        Self { id, t, pos, sog_kn, cog_deg }
    }

    /// Speed over ground in metres per second.
    #[inline]
    pub fn speed_mps(&self) -> f64 {
        knots_to_mps(self.sog_kn)
    }

    /// Velocity vector (east, north) in metres per second.
    pub fn velocity_mps(&self) -> LocalPoint {
        let v = self.speed_mps();
        let c = self.cog_deg.to_radians();
        LocalPoint { x: v * c.sin(), y: v * c.cos() }
    }

    /// Dead-reckoned position at time `t`, assuming constant speed and
    /// course since this fix. Works backwards in time too.
    pub fn dead_reckon(&self, t: Timestamp) -> Position {
        let dt_s = (t - self.t) as f64 / 1_000.0;
        let dist = self.speed_mps() * dt_s;
        if dist == 0.0 {
            return self.pos;
        }
        if dist > 0.0 {
            destination(self.pos, self.cog_deg, dist)
        } else {
            destination(self.pos, (self.cog_deg + 180.0) % 360.0, -dist)
        }
    }
}

/// Time-interpolate a position between two fixes of the same object.
///
/// Returns the position at `t`; clamps to the endpoints if `t` is outside
/// the fix interval.
pub fn interpolate_fixes(a: &Fix, b: &Fix, t: Timestamp) -> Position {
    debug_assert!(a.t <= b.t);
    let span = (b.t - a.t) as f64;
    if span <= 0.0 {
        return a.pos;
    }
    let f = ((t - a.t) as f64 / span).clamp(0.0, 1.0);
    interpolate(a.pos, b.pos, f)
}

/// Observed speed implied by two consecutive fixes, in knots. Used by
/// veracity checks: a reported SOG wildly different from the implied speed
/// flags manipulation.
pub fn implied_speed_kn(a: &Fix, b: &Fix) -> f64 {
    let dt_s = (b.t - a.t).abs() as f64 / 1_000.0;
    if dt_s == 0.0 {
        return f64::INFINITY;
    }
    crate::units::mps_to_knots(haversine_m(a.pos, b.pos) / dt_s)
}

/// Observed course implied by two consecutive fixes, degrees `[0, 360)`.
pub fn implied_course_deg(a: &Fix, b: &Fix) -> f64 {
    initial_bearing_deg(a.pos, b.pos)
}

/// Closest point of approach between two moving objects, under the
/// constant-velocity assumption, computed in a local frame centred
/// between the two fixes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cpa {
    /// Time to CPA in seconds from the *later* of the two fix times
    /// (clamped at zero: if the objects are already diverging, the CPA is
    /// now).
    pub tcpa_s: f64,
    /// Distance at CPA in metres.
    pub dcpa_m: f64,
}

/// Compute CPA/TCPA between two fixes (typically aligned to the same
/// event time; if not, the earlier one is dead-reckoned forward first).
pub fn cpa(a: &Fix, b: &Fix) -> Cpa {
    // Align both to the later timestamp.
    let t0 = a.t.max(b.t);
    let pa = a.dead_reckon(t0);
    let pb = b.dead_reckon(t0);
    let mid = interpolate(pa, pb, 0.5);
    let frame = LocalFrame::new(mid);
    let dp = frame.project(pb).minus(frame.project(pa));
    let dv = b.velocity_mps().minus(a.velocity_mps());
    let dv2 = dv.dot(dv);
    if dv2 < 1e-12 {
        // Same velocity: distance is constant.
        return Cpa { tcpa_s: 0.0, dcpa_m: dp.norm() };
    }
    let tcpa = (-dp.dot(dv) / dv2).max(0.0);
    let at_cpa = LocalPoint { x: dp.x + dv.x * tcpa, y: dp.y + dv.y * tcpa };
    Cpa { tcpa_s: tcpa, dcpa_m: at_cpa.norm() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Timestamp, MINUTE};
    use crate::units::nm_to_meters;

    fn fix(id: u32, t_min: i64, lat: f64, lon: f64, sog: f64, cog: f64) -> Fix {
        Fix::new(id, Timestamp::from_mins(t_min), Position::new(lat, lon), sog, cog)
    }

    #[test]
    fn dead_reckon_travels_expected_distance() {
        let f = fix(1, 0, 43.0, 5.0, 12.0, 90.0);
        let p = f.dead_reckon(Timestamp::from_mins(60));
        // 12 knots for 1h = 12 NM.
        let d = haversine_m(f.pos, p);
        assert!((d - nm_to_meters(12.0)).abs() < 5.0, "d = {d}");
        assert!(p.lon > f.pos.lon);
    }

    #[test]
    fn dead_reckon_backwards() {
        let f = fix(1, 60, 43.0, 5.0, 10.0, 0.0);
        let p = f.dead_reckon(Timestamp::from_mins(0));
        assert!(p.lat < f.pos.lat, "should have been further south");
        let d = haversine_m(f.pos, p);
        assert!((d - nm_to_meters(10.0)).abs() < 5.0);
    }

    #[test]
    fn dead_reckon_stationary() {
        let f = fix(1, 0, 43.0, 5.0, 0.0, 45.0);
        assert_eq!(f.dead_reckon(Timestamp::from_mins(30)), f.pos);
    }

    #[test]
    fn velocity_components() {
        let f = fix(1, 0, 0.0, 0.0, 10.0, 90.0);
        let v = f.velocity_mps();
        assert!((v.x - knots_to_mps(10.0)).abs() < 1e-9);
        assert!(v.y.abs() < 1e-9);
    }

    #[test]
    fn interpolation_midpoint() {
        let a = fix(1, 0, 0.0, 0.0, 10.0, 90.0);
        let b = fix(1, 10, 0.0, 0.1, 10.0, 90.0);
        let mid = interpolate_fixes(&a, &b, Timestamp::from_mins(5));
        assert!((mid.lon - 0.05).abs() < 1e-9);
        // Clamping outside the interval.
        let before = interpolate_fixes(&a, &b, Timestamp::from_mins(-5));
        assert_eq!(before, a.pos);
    }

    #[test]
    fn implied_speed_matches_reported_for_consistent_track() {
        let a = fix(1, 0, 43.0, 5.0, 10.0, 90.0);
        let b = Fix { t: a.t + 10 * MINUTE, pos: a.dead_reckon(a.t + 10 * MINUTE), ..a };
        let s = implied_speed_kn(&a, &b);
        assert!((s - 10.0).abs() < 0.1, "implied {s}");
        let c = implied_course_deg(&a, &b);
        assert!((c - 90.0).abs() < 0.5, "implied course {c}");
    }

    #[test]
    fn cpa_head_on_collision_course() {
        // Two vessels 2 NM apart closing head-on at 10 kn each.
        let a = fix(1, 0, 0.0, 0.0, 10.0, 90.0);
        let b = fix(2, 0, 0.0, 2.0 / 60.0, 10.0, 270.0);
        let r = cpa(&a, &b);
        assert!(r.dcpa_m < 50.0, "dcpa = {}", r.dcpa_m);
        // Closing speed 20 kn over 2 NM => 6 minutes.
        assert!((r.tcpa_s - 360.0).abs() < 10.0, "tcpa = {}", r.tcpa_s);
    }

    #[test]
    fn cpa_parallel_courses_keep_distance() {
        let a = fix(1, 0, 0.0, 0.0, 10.0, 0.0);
        let b = fix(2, 0, 0.0, 0.1, 10.0, 0.0);
        let r = cpa(&a, &b);
        assert_eq!(r.tcpa_s, 0.0);
        assert!((r.dcpa_m - haversine_m(a.pos, b.pos)).abs() < 20.0);
    }

    #[test]
    fn cpa_diverging_is_now() {
        let a = fix(1, 0, 0.0, 0.0, 10.0, 270.0);
        let b = fix(2, 0, 0.0, 0.1, 10.0, 90.0);
        let r = cpa(&a, &b);
        assert_eq!(r.tcpa_s, 0.0);
    }

    #[test]
    fn vessel_shard_is_uniform_and_stable() {
        // Sequential MMSIs must scatter, not clump, and routing must be
        // a pure function of (id, shards).
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for id in 227_000_000u32..227_000_800 {
            let s = vessel_shard(id, shards);
            assert!(s < shards);
            assert_eq!(s, vessel_shard(id, shards), "routing must be stable");
            counts[s] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*min * 2 > *max, "sequential ids clump: {counts:?}");
        // One shard degenerates to the identity routing.
        assert_eq!(vessel_shard(42, 1), 0);
    }
}
