//! Geospatial and kinematic substrate for the maritime analytics workspace.
//!
//! Every other crate builds on the vocabulary defined here:
//!
//! - [`Position`] — WGS84 latitude/longitude in degrees.
//! - [`Timestamp`] / [`DurationMs`] — event time in integer milliseconds.
//! - [`Fix`] — a timestamped kinematic observation of a moving object
//!   (position, speed over ground, course over ground).
//! - Distance/bearing math on the sphere ([`distance`]), local metric
//!   projections ([`projection`]), and motion models ([`motion`]).
//! - Spatial containers: [`bbox::BoundingBox`], [`polygon::Polygon`],
//!   a uniform [`grid::GridIndex`], an [`rtree::RTree`], and
//!   [`geohash`] encoding.
//! - Compact storage codecs ([`codec`]): varints, zigzag deltas,
//!   fixed-point quantization and bit-exact float transport, shared by
//!   the sealed cold-tier trajectory segments.
//!
//! The crate is dependency-light on purpose: it is the bottom of the
//! workspace dependency graph and is exercised by property tests that
//! compare indexed queries against brute-force scans.
//!
//! ## Example
//!
//! ```
//! use mda_geo::distance::haversine_m;
//! use mda_geo::{Fix, Position, Timestamp};
//!
//! let marseille = Position::new(43.30, 5.37);
//! let toulon = Position::new(43.12, 5.93);
//! let d = haversine_m(marseille, toulon);
//! assert!((40_000.0..60_000.0).contains(&d), "Marseille-Toulon is ~49 km");
//!
//! let fix = Fix::new(1, Timestamp::from_secs(0), marseille, 12.0, 90.0);
//! assert!(fix.speed_mps() > 6.0);
//! ```

pub mod bbox;
pub mod codec;
pub mod distance;
pub mod geohash;
pub mod grid;
pub mod motion;
pub mod polygon;
pub mod pos;
pub mod projection;
pub mod rtree;
pub mod time;
pub mod units;

pub use bbox::BoundingBox;
pub use motion::{vessel_shard, Fix, VesselId};
pub use polygon::Polygon;
pub use pos::Position;
pub use time::{DurationMs, Timestamp};
