//! Event time as integer milliseconds since the Unix epoch.
//!
//! The workspace uses logical event time everywhere (simulated clocks in
//! `mda-sim`, watermark-driven processing in `mda-stream`); wall-clock time
//! never appears in algorithm code, which keeps every experiment
//! deterministic and replayable.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A duration in milliseconds (may be negative as an intermediate value).
pub type DurationMs = i64;

/// Milliseconds in one second.
pub const SECOND: DurationMs = 1_000;
/// Milliseconds in one minute.
pub const MINUTE: DurationMs = 60 * SECOND;
/// Milliseconds in one hour.
pub const HOUR: DurationMs = 60 * MINUTE;
/// Milliseconds in one day.
pub const DAY: DurationMs = 24 * HOUR;

/// A point in event time, in milliseconds since the Unix epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// The smallest representable timestamp.
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The largest representable timestamp.
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// From whole seconds since the epoch.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        Timestamp(s * 1_000)
    }

    /// From whole minutes since the epoch.
    #[inline]
    pub const fn from_mins(m: i64) -> Self {
        Timestamp(m * MINUTE)
    }

    /// Milliseconds since the epoch.
    #[inline]
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// Seconds since the epoch as `f64` (for metric computations).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Elapsed time from `earlier` to `self` in milliseconds (negative if
    /// `self` precedes `earlier`).
    #[inline]
    pub fn since(self, earlier: Timestamp) -> DurationMs {
        self.0 - earlier.0
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: DurationMs) -> Timestamp {
        Timestamp(self.0.saturating_add(d))
    }

    /// Truncate to the start of the window of length `width_ms` that
    /// contains this instant (floor alignment; handles negative times).
    #[inline]
    pub fn window_start(self, width_ms: DurationMs) -> Timestamp {
        assert!(width_ms > 0, "window width must be positive");
        Timestamp(self.0.div_euclid(width_ms) * width_ms)
    }
}

impl Add<DurationMs> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: DurationMs) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl AddAssign<DurationMs> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: DurationMs) {
        self.0 += rhs;
    }
}

impl Sub<DurationMs> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, rhs: DurationMs) -> Timestamp {
        Timestamp(self.0 - rhs)
    }
}

impl SubAssign<DurationMs> for Timestamp {
    #[inline]
    fn sub_assign(&mut self, rhs: DurationMs) {
        self.0 -= rhs;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = DurationMs;
    #[inline]
    fn sub(self, rhs: Timestamp) -> DurationMs {
        self.0 - rhs.0
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(10);
        assert_eq!(t + 500, Timestamp(10_500));
        assert_eq!(t - 500, Timestamp(9_500));
        assert_eq!((t + MINUTE) - t, MINUTE);
        assert_eq!(t.since(Timestamp::from_secs(4)), 6 * SECOND);
    }

    #[test]
    fn window_alignment() {
        assert_eq!(Timestamp(12_345).window_start(10_000), Timestamp(10_000));
        assert_eq!(Timestamp(-1).window_start(10_000), Timestamp(-10_000));
        assert_eq!(Timestamp(0).window_start(10_000), Timestamp(0));
        assert_eq!(Timestamp(9_999).window_start(10_000), Timestamp(0));
    }

    #[test]
    fn ordering() {
        assert!(Timestamp(1) < Timestamp(2));
        assert!(Timestamp::MIN < Timestamp(0));
        assert!(Timestamp(0) < Timestamp::MAX);
    }

    #[test]
    fn mutating_ops() {
        let mut t = Timestamp(0);
        t += HOUR;
        t -= MINUTE;
        assert_eq!(t, Timestamp(HOUR - MINUTE));
    }
}
