//! Physical constants and unit conversions used throughout the workspace.
//!
//! Maritime data mixes units freely: AIS reports speed in knots and
//! distances are quoted in nautical miles, while error metrics and motion
//! models work in metres and metres per second. Keeping the conversions in
//! one place avoids the classic ×1852 / ÷1852 bugs.

/// Mean Earth radius in metres (IUGG spherical approximation).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// One nautical mile in metres (exact, by definition).
pub const NM_IN_METERS: f64 = 1_852.0;

/// One knot in metres per second.
pub const KNOT_IN_MPS: f64 = NM_IN_METERS / 3_600.0;

/// Convert knots to metres per second.
#[inline]
pub fn knots_to_mps(kn: f64) -> f64 {
    kn * KNOT_IN_MPS
}

/// Convert metres per second to knots.
#[inline]
pub fn mps_to_knots(mps: f64) -> f64 {
    mps / KNOT_IN_MPS
}

/// Convert nautical miles to metres.
#[inline]
pub fn nm_to_meters(nm: f64) -> f64 {
    nm * NM_IN_METERS
}

/// Convert metres to nautical miles.
#[inline]
pub fn meters_to_nm(m: f64) -> f64 {
    m / NM_IN_METERS
}

/// Normalise an angle in degrees to the half-open range `[0, 360)`.
#[inline]
pub fn norm_deg_360(deg: f64) -> f64 {
    let d = deg % 360.0;
    if d < 0.0 {
        d + 360.0
    } else {
        d
    }
}

/// Normalise an angle in degrees to the half-open range `(-180, 180]`.
#[inline]
pub fn norm_deg_180(deg: f64) -> f64 {
    let d = norm_deg_360(deg);
    if d > 180.0 {
        d - 360.0
    } else {
        d
    }
}

/// Smallest absolute difference between two headings, in degrees `[0, 180]`.
///
/// `heading_delta(350.0, 10.0) == 20.0`, i.e. the wrap-around at north is
/// handled correctly.
#[inline]
pub fn heading_delta(a_deg: f64, b_deg: f64) -> f64 {
    norm_deg_180(b_deg - a_deg).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knot_round_trip() {
        let kn = 17.3;
        assert!((mps_to_knots(knots_to_mps(kn)) - kn).abs() < 1e-12);
    }

    #[test]
    fn one_knot_is_about_half_mps() {
        assert!((knots_to_mps(1.0) - 0.514444).abs() < 1e-4);
    }

    #[test]
    fn nm_round_trip() {
        assert_eq!(nm_to_meters(1.0), 1852.0);
        assert!((meters_to_nm(nm_to_meters(3.7)) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn norm_360_wraps_negative() {
        assert!((norm_deg_360(-90.0) - 270.0).abs() < 1e-12);
        assert!((norm_deg_360(720.5) - 0.5).abs() < 1e-12);
        assert_eq!(norm_deg_360(0.0), 0.0);
    }

    #[test]
    fn norm_180_is_symmetric_range() {
        assert!((norm_deg_180(270.0) - -90.0).abs() < 1e-12);
        assert!((norm_deg_180(180.0) - 180.0).abs() < 1e-12);
        assert!((norm_deg_180(-180.0) - 180.0).abs() < 1e-12);
    }

    #[test]
    fn heading_delta_wraps_north() {
        assert!((heading_delta(350.0, 10.0) - 20.0).abs() < 1e-12);
        assert!((heading_delta(10.0, 350.0) - 20.0).abs() < 1e-12);
        assert!((heading_delta(0.0, 180.0) - 180.0).abs() < 1e-12);
        assert_eq!(heading_delta(45.0, 45.0), 0.0);
    }
}
