//! Geohash encoding/decoding (base-32 interleaved bits).
//!
//! Geohashes are used as compact spatial keys: blocking keys in link
//! discovery (`mda-semantics`) and cell labels in synopses. The
//! implementation follows the public geohash specification.

use crate::bbox::BoundingBox;
use crate::pos::Position;

const BASE32: &[u8; 32] = b"0123456789bcdefghjkmnpqrstuvwxyz";

fn base32_index(c: u8) -> Option<u32> {
    BASE32.iter().position(|&b| b == c.to_ascii_lowercase()).map(|i| i as u32)
}

/// Encode a position into a geohash of `precision` characters (1..=12).
pub fn encode(p: Position, precision: usize) -> String {
    assert!((1..=12).contains(&precision), "precision must be in 1..=12");
    let (mut lat_lo, mut lat_hi) = (-90.0f64, 90.0f64);
    let (mut lon_lo, mut lon_hi) = (-180.0f64, 180.0f64);
    let mut even_bit = true; // longitude first
    let mut out = String::with_capacity(precision);
    let mut idx: u32 = 0;
    let mut bit = 0;
    while out.len() < precision {
        if even_bit {
            let mid = (lon_lo + lon_hi) / 2.0;
            if p.lon >= mid {
                idx = (idx << 1) | 1;
                lon_lo = mid;
            } else {
                idx <<= 1;
                lon_hi = mid;
            }
        } else {
            let mid = (lat_lo + lat_hi) / 2.0;
            if p.lat >= mid {
                idx = (idx << 1) | 1;
                lat_lo = mid;
            } else {
                idx <<= 1;
                lat_hi = mid;
            }
        }
        even_bit = !even_bit;
        bit += 1;
        if bit == 5 {
            out.push(BASE32[idx as usize] as char);
            bit = 0;
            idx = 0;
        }
    }
    out
}

/// Decode a geohash into the bounding box it denotes. Returns `None` for
/// invalid characters or an empty string.
pub fn decode_bbox(hash: &str) -> Option<BoundingBox> {
    if hash.is_empty() {
        return None;
    }
    let (mut lat_lo, mut lat_hi) = (-90.0f64, 90.0f64);
    let (mut lon_lo, mut lon_hi) = (-180.0f64, 180.0f64);
    let mut even_bit = true;
    for c in hash.bytes() {
        let idx = base32_index(c)?;
        for shift in (0..5).rev() {
            let bit = (idx >> shift) & 1;
            if even_bit {
                let mid = (lon_lo + lon_hi) / 2.0;
                if bit == 1 {
                    lon_lo = mid;
                } else {
                    lon_hi = mid;
                }
            } else {
                let mid = (lat_lo + lat_hi) / 2.0;
                if bit == 1 {
                    lat_lo = mid;
                } else {
                    lat_hi = mid;
                }
            }
            even_bit = !even_bit;
        }
    }
    Some(BoundingBox::new(lat_lo, lon_lo, lat_hi, lon_hi))
}

/// Decode a geohash to the centre point of its cell.
pub fn decode(hash: &str) -> Option<Position> {
    decode_bbox(hash).map(|b| b.center())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // Well-known reference: 57.64911, 10.40744 -> "u4pruydqqvj".
        let h = encode(Position::new(57.64911, 10.40744), 11);
        assert_eq!(h, "u4pruydqqvj");
    }

    #[test]
    fn decode_contains_original() {
        let p = Position::new(43.2965, 5.3698);
        for precision in 1..=12 {
            let h = encode(p, precision);
            let b = decode_bbox(&h).unwrap();
            assert!(b.contains(p), "precision {precision}");
        }
    }

    #[test]
    fn longer_hash_is_prefix_refinement() {
        let p = Position::new(-33.8688, 151.2093);
        let h8 = encode(p, 8);
        let h5 = encode(p, 5);
        assert!(h8.starts_with(&h5));
        let b8 = decode_bbox(&h8).unwrap();
        let b5 = decode_bbox(&h5).unwrap();
        assert!(b5.area_deg2() > b8.area_deg2());
        assert!(b5.intersects(&b8));
    }

    #[test]
    fn decode_rejects_invalid() {
        assert!(decode_bbox("").is_none());
        assert!(decode_bbox("abc!").is_none());
        // 'a', 'i', 'l', 'o' are not in the geohash alphabet.
        assert!(decode_bbox("a").is_none());
    }

    #[test]
    fn round_trip_center_error_small() {
        let p = Position::new(1.2345, 2.3456);
        let c = decode(&encode(p, 9)).unwrap();
        assert!((c.lat - p.lat).abs() < 1e-4);
        assert!((c.lon - p.lon).abs() < 1e-4);
    }

    #[test]
    fn neighbours_share_prefix_statistically() {
        // Two points 100 m apart usually share a long prefix; just check
        // they share the first 4 characters here (they are in the same
        // ~20 km cell).
        let a = Position::new(43.0000, 5.0000);
        let b = Position::new(43.0009, 5.0009);
        assert_eq!(encode(a, 4), encode(b, 4));
    }
}
