//! WGS84 positions in degrees.

use serde::{Deserialize, Serialize};

/// A geographic position: latitude and longitude in decimal degrees
/// (WGS84). Latitude is positive north, longitude positive east.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// Latitude in degrees, valid range `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, valid range `[-180, 180]`.
    pub lon: f64,
}

impl Position {
    /// Create a position without validation. Prefer [`Position::checked`]
    /// at ingest boundaries.
    #[inline]
    pub const fn new(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Create a position, returning `None` for out-of-range or non-finite
    /// coordinates. AIS reserves lat=91/lon=181 for "not available"; those
    /// are rejected here, letting the codec map them to `Option`.
    pub fn checked(lat: f64, lon: f64) -> Option<Self> {
        if lat.is_finite()
            && lon.is_finite()
            && (-90.0..=90.0).contains(&lat)
            && (-180.0..=180.0).contains(&lon)
        {
            Some(Self { lat, lon })
        } else {
            None
        }
    }

    /// True if the coordinates are inside the valid WGS84 ranges.
    #[inline]
    pub fn is_valid(&self) -> bool {
        Position::checked(self.lat, self.lon).is_some()
    }

    /// Latitude in radians.
    #[inline]
    pub fn lat_rad(&self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    #[inline]
    pub fn lon_rad(&self) -> f64 {
        self.lon.to_radians()
    }

    /// Wrap a longitude that drifted outside `[-180, 180]` (e.g. after
    /// dead-reckoning across the antimeridian) back into range, and clamp
    /// latitude into `[-90, 90]`.
    pub fn normalized(&self) -> Self {
        let mut lon = (self.lon + 180.0).rem_euclid(360.0) - 180.0;
        if lon == -180.0 {
            lon = 180.0;
        }
        Self { lat: self.lat.clamp(-90.0, 90.0), lon }
    }
}

impl std::fmt::Display for Position {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.5}, {:.5})", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_accepts_valid() {
        assert!(Position::checked(43.3, 5.4).is_some());
        assert!(Position::checked(-90.0, 180.0).is_some());
        assert!(Position::checked(90.0, -180.0).is_some());
    }

    #[test]
    fn checked_rejects_sentinels_and_nan() {
        assert!(Position::checked(91.0, 0.0).is_none());
        assert!(Position::checked(0.0, 181.0).is_none());
        assert!(Position::checked(f64::NAN, 0.0).is_none());
        assert!(Position::checked(0.0, f64::INFINITY).is_none());
    }

    #[test]
    fn normalized_wraps_longitude() {
        let p = Position::new(10.0, 185.0).normalized();
        assert!((p.lon - -175.0).abs() < 1e-12);
        let q = Position::new(10.0, -185.0).normalized();
        assert!((q.lon - 175.0).abs() < 1e-12);
        let r = Position::new(95.0, 0.0).normalized();
        assert_eq!(r.lat, 90.0);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Position::new(1.0, 2.0).to_string(), "(1.00000, 2.00000)");
    }
}
