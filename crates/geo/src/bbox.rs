//! Axis-aligned geographic bounding boxes.
//!
//! Boxes are closed on all sides and must not cross the antimeridian
//! (regions of interest in the experiments never do; global extents use
//! the full `[-180, 180]` box).

use crate::pos::Position;
use serde::{Deserialize, Serialize};

/// A closed axis-aligned box in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Southern edge (min latitude).
    pub min_lat: f64,
    /// Western edge (min longitude).
    pub min_lon: f64,
    /// Northern edge (max latitude).
    pub max_lat: f64,
    /// Eastern edge (max longitude).
    pub max_lon: f64,
}

impl BoundingBox {
    /// The whole globe.
    pub const WORLD: BoundingBox =
        BoundingBox { min_lat: -90.0, min_lon: -180.0, max_lat: 90.0, max_lon: 180.0 };

    /// Build from corners; panics in debug builds if inverted.
    pub fn new(min_lat: f64, min_lon: f64, max_lat: f64, max_lon: f64) -> Self {
        debug_assert!(min_lat <= max_lat && min_lon <= max_lon, "inverted bounding box");
        Self { min_lat, min_lon, max_lat, max_lon }
    }

    /// An empty box ready to be extended with [`BoundingBox::extend`].
    pub fn empty() -> Self {
        Self {
            min_lat: f64::INFINITY,
            min_lon: f64::INFINITY,
            max_lat: f64::NEG_INFINITY,
            max_lon: f64::NEG_INFINITY,
        }
    }

    /// True if no point has been added yet.
    pub fn is_empty(&self) -> bool {
        self.min_lat > self.max_lat || self.min_lon > self.max_lon
    }

    /// Smallest box containing all `points`; `None` for an empty slice.
    pub fn from_points(points: &[Position]) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let mut b = Self::empty();
        for p in points {
            b.extend(*p);
        }
        Some(b)
    }

    /// Grow to include `p`.
    pub fn extend(&mut self, p: Position) {
        self.min_lat = self.min_lat.min(p.lat);
        self.max_lat = self.max_lat.max(p.lat);
        self.min_lon = self.min_lon.min(p.lon);
        self.max_lon = self.max_lon.max(p.lon);
    }

    /// Grow to include another box.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        BoundingBox {
            min_lat: self.min_lat.min(other.min_lat),
            min_lon: self.min_lon.min(other.min_lon),
            max_lat: self.max_lat.max(other.max_lat),
            max_lon: self.max_lon.max(other.max_lon),
        }
    }

    /// True if `p` lies inside or on the border.
    #[inline]
    pub fn contains(&self, p: Position) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// True if the two boxes share at least a border point.
    #[inline]
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min_lat <= other.max_lat
            && self.max_lat >= other.min_lat
            && self.min_lon <= other.max_lon
            && self.max_lon >= other.min_lon
    }

    /// Expand the box by `margin_deg` degrees on every side (clamped to
    /// the world box).
    pub fn inflate(&self, margin_deg: f64) -> BoundingBox {
        BoundingBox {
            min_lat: (self.min_lat - margin_deg).max(-90.0),
            min_lon: (self.min_lon - margin_deg).max(-180.0),
            max_lat: (self.max_lat + margin_deg).min(90.0),
            max_lon: (self.max_lon + margin_deg).min(180.0),
        }
    }

    /// Centre of the box.
    pub fn center(&self) -> Position {
        Position::new((self.min_lat + self.max_lat) / 2.0, (self.min_lon + self.max_lon) / 2.0)
    }

    /// Height in degrees of latitude.
    #[inline]
    pub fn lat_span(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Width in degrees of longitude.
    #[inline]
    pub fn lon_span(&self) -> f64 {
        self.max_lon - self.min_lon
    }

    /// "Area" in square degrees (used only for index heuristics).
    #[inline]
    pub fn area_deg2(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.lat_span() * self.lon_span()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gulf_of_lion() -> BoundingBox {
        BoundingBox::new(42.0, 3.0, 43.6, 6.2)
    }

    #[test]
    fn contains_and_borders() {
        let b = gulf_of_lion();
        assert!(b.contains(Position::new(43.0, 5.0)));
        assert!(b.contains(Position::new(42.0, 3.0)), "border is inside");
        assert!(!b.contains(Position::new(41.9, 5.0)));
        assert!(!b.contains(Position::new(43.0, 6.3)));
    }

    #[test]
    fn intersection_cases() {
        let b = gulf_of_lion();
        let overlapping = BoundingBox::new(43.0, 5.0, 44.0, 7.0);
        let disjoint = BoundingBox::new(10.0, 10.0, 11.0, 11.0);
        let touching = BoundingBox::new(43.6, 6.2, 45.0, 8.0);
        assert!(b.intersects(&overlapping));
        assert!(!b.intersects(&disjoint));
        assert!(b.intersects(&touching), "shared corner counts");
    }

    #[test]
    fn from_points_and_extend() {
        let pts = [Position::new(1.0, 2.0), Position::new(-1.0, 5.0), Position::new(0.5, 3.0)];
        let b = BoundingBox::from_points(&pts).unwrap();
        assert_eq!(b, BoundingBox::new(-1.0, 2.0, 1.0, 5.0));
        assert!(BoundingBox::from_points(&[]).is_none());
    }

    #[test]
    fn empty_box_behaviour() {
        let e = BoundingBox::empty();
        assert!(e.is_empty());
        assert!(!e.contains(Position::new(0.0, 0.0)));
        assert_eq!(e.area_deg2(), 0.0);
        let mut e2 = e;
        e2.extend(Position::new(1.0, 1.0));
        assert!(!e2.is_empty());
        assert_eq!(e2.area_deg2(), 0.0, "single point has zero area");
    }

    #[test]
    fn inflate_clamps_to_world() {
        let b = BoundingBox::new(89.0, 179.0, 90.0, 180.0).inflate(5.0);
        assert_eq!(b.max_lat, 90.0);
        assert_eq!(b.max_lon, 180.0);
        assert_eq!(b.min_lat, 84.0);
    }

    #[test]
    fn union_covers_both() {
        let a = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
        let b = BoundingBox::new(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert_eq!(u, BoundingBox::new(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn center_is_midpoint() {
        let b = BoundingBox::new(0.0, 0.0, 2.0, 4.0);
        assert_eq!(b.center(), Position::new(1.0, 2.0));
    }
}
