//! Uniform lat/lon grid index over a bounding box.
//!
//! The grid is the work-horse spatial index of the workspace: O(1)
//! insertion, cheap range queries, and it doubles as the cell structure
//! for density rasters and pattern-of-life models. Items are `(Position,
//! payload)` pairs; payloads are small copyable ids in practice.

use crate::bbox::BoundingBox;
use crate::pos::Position;

/// Index of a grid cell (column-major `row * cols + col`).
pub type CellId = usize;

/// A uniform grid over `bounds` with `rows x cols` cells.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    bounds: BoundingBox,
    rows: usize,
    cols: usize,
    cells: Vec<Vec<(Position, T)>>,
    len: usize,
}

impl<T: Clone> GridIndex<T> {
    /// Create an empty grid. `rows` and `cols` must be nonzero.
    pub fn new(bounds: BoundingBox, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid must have at least one cell");
        assert!(!bounds.is_empty(), "grid bounds must be non-empty");
        Self { bounds, rows, cols, cells: vec![Vec::new(); rows * cols], len: 0 }
    }

    /// Create a grid whose cells are approximately `cell_deg` degrees.
    pub fn with_cell_size(bounds: BoundingBox, cell_deg: f64) -> Self {
        assert!(cell_deg > 0.0);
        let rows = (bounds.lat_span() / cell_deg).ceil().max(1.0) as usize;
        let cols = (bounds.lon_span() / cell_deg).ceil().max(1.0) as usize;
        Self::new(bounds, rows, cols)
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grid shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The indexed bounds.
    pub fn bounds(&self) -> &BoundingBox {
        &self.bounds
    }

    /// Row/col of the cell containing `p`, clamped to the grid edge.
    pub fn cell_of(&self, p: Position) -> (usize, usize) {
        let fr = (p.lat - self.bounds.min_lat) / self.bounds.lat_span().max(f64::MIN_POSITIVE);
        let fc = (p.lon - self.bounds.min_lon) / self.bounds.lon_span().max(f64::MIN_POSITIVE);
        let r = ((fr * self.rows as f64) as isize).clamp(0, self.rows as isize - 1) as usize;
        let c = ((fc * self.cols as f64) as isize).clamp(0, self.cols as isize - 1) as usize;
        (r, c)
    }

    /// Flat cell id of the cell containing `p`.
    pub fn cell_id(&self, p: Position) -> CellId {
        let (r, c) = self.cell_of(p);
        r * self.cols + c
    }

    /// Insert an item. Points outside the bounds are clamped into the
    /// border cells (callers filter beforehand when that is not wanted).
    pub fn insert(&mut self, pos: Position, value: T) {
        let id = self.cell_id(pos);
        self.cells[id].push((pos, value));
        self.len += 1;
    }

    /// Remove all items for which `pred` returns false. Returns the
    /// number of removed items.
    pub fn retain(&mut self, mut pred: impl FnMut(&Position, &T) -> bool) -> usize {
        let before = self.len;
        let mut len = 0;
        for cell in &mut self.cells {
            cell.retain(|(p, v)| pred(p, v));
            len += cell.len();
        }
        self.len = len;
        before - len
    }

    /// Clear all contents, keeping the allocation.
    pub fn clear(&mut self) {
        for cell in &mut self.cells {
            cell.clear();
        }
        self.len = 0;
    }

    /// All items whose position lies in `query` (exact filtering after
    /// the cell-level pre-selection).
    pub fn query_bbox(&self, query: &BoundingBox) -> Vec<(Position, T)> {
        let mut out = Vec::new();
        self.for_each_in_bbox(query, |p, v| out.push((p, v.clone())));
        out
    }

    /// Visit every item inside `query` without allocating.
    pub fn for_each_in_bbox(&self, query: &BoundingBox, mut f: impl FnMut(Position, &T)) {
        if !self.bounds.intersects(query) {
            return;
        }
        let (r0, c0) = self.cell_of(Position::new(
            query.min_lat.max(self.bounds.min_lat),
            query.min_lon.max(self.bounds.min_lon),
        ));
        let (r1, c1) = self.cell_of(Position::new(
            query.max_lat.min(self.bounds.max_lat),
            query.max_lon.min(self.bounds.max_lon),
        ));
        for r in r0..=r1 {
            for c in c0..=c1 {
                for (p, v) in &self.cells[r * self.cols + c] {
                    if query.contains(*p) {
                        f(*p, v);
                    }
                }
            }
        }
    }

    /// Count of items per cell, row-major; the raw material of density
    /// rasters.
    pub fn cell_counts(&self) -> Vec<usize> {
        self.cells.iter().map(Vec::len).collect()
    }

    /// Iterate over all items.
    pub fn iter(&self) -> impl Iterator<Item = &(Position, T)> {
        self.cells.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridIndex<u32> {
        GridIndex::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 10, 10)
    }

    #[test]
    fn insert_and_count() {
        let mut g = grid();
        assert!(g.is_empty());
        g.insert(Position::new(0.5, 0.5), 1);
        g.insert(Position::new(9.5, 9.5), 2);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn cell_assignment() {
        let g = grid();
        assert_eq!(g.cell_of(Position::new(0.5, 0.5)), (0, 0));
        assert_eq!(g.cell_of(Position::new(9.99, 9.99)), (9, 9));
        // Max corner clamps into the last cell.
        assert_eq!(g.cell_of(Position::new(10.0, 10.0)), (9, 9));
        // Out-of-bounds clamps to edge cells.
        assert_eq!(g.cell_of(Position::new(-5.0, 20.0)), (0, 9));
    }

    #[test]
    fn bbox_query_exact() {
        let mut g = grid();
        for i in 0..100u32 {
            let lat = (i / 10) as f64 + 0.5;
            let lon = (i % 10) as f64 + 0.5;
            g.insert(Position::new(lat, lon), i);
        }
        let q = BoundingBox::new(2.0, 3.0, 4.99, 5.99);
        let mut hits = g.query_bbox(&q);
        hits.sort_by_key(|(_, v)| *v);
        let ids: Vec<u32> = hits.iter().map(|(_, v)| *v).collect();
        // Rows 2..=4 (lat 2.5,3.5,4.5), cols 3..=5 => 9 items.
        assert_eq!(ids, vec![23, 24, 25, 33, 34, 35, 43, 44, 45]);
    }

    #[test]
    fn query_matches_linear_scan_randomised() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = grid();
        let mut all = Vec::new();
        for i in 0..500u32 {
            let p = Position::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0));
            g.insert(p, i);
            all.push((p, i));
        }
        for _ in 0..20 {
            let a = rng.gen_range(0.0..8.0);
            let b = rng.gen_range(0.0..8.0);
            let q =
                BoundingBox::new(a, b, a + rng.gen_range(0.1..2.0), b + rng.gen_range(0.1..2.0));
            let mut from_grid: Vec<u32> = g.query_bbox(&q).into_iter().map(|(_, v)| v).collect();
            let mut from_scan: Vec<u32> =
                all.iter().filter(|(p, _)| q.contains(*p)).map(|(_, v)| *v).collect();
            from_grid.sort_unstable();
            from_scan.sort_unstable();
            assert_eq!(from_grid, from_scan);
        }
    }

    #[test]
    fn retain_removes_and_recounts() {
        let mut g = grid();
        for i in 0..10u32 {
            g.insert(Position::new(5.0, 5.0), i);
        }
        let removed = g.retain(|_, v| v % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn with_cell_size_shape() {
        let g: GridIndex<()> =
            GridIndex::with_cell_size(BoundingBox::new(0.0, 0.0, 10.0, 20.0), 2.5);
        assert_eq!(g.shape(), (4, 8));
    }

    #[test]
    fn cell_counts_sum_to_len() {
        let mut g = grid();
        for i in 0..42u32 {
            g.insert(Position::new((i % 10) as f64, (i % 7) as f64), i);
        }
        assert_eq!(g.cell_counts().iter().sum::<usize>(), g.len());
    }
}
