//! Property-based tests for the geospatial substrate.

use mda_geo::bbox::BoundingBox;
use mda_geo::distance::{destination, haversine_m, initial_bearing_deg, interpolate};
use mda_geo::geohash;
use mda_geo::grid::GridIndex;
use mda_geo::pos::Position;
use mda_geo::projection::LocalFrame;
use mda_geo::rtree::RTree;
use mda_geo::units::{heading_delta, norm_deg_180, norm_deg_360};
use proptest::prelude::*;

fn arb_pos() -> impl Strategy<Value = Position> {
    // Stay away from the poles where bearings degenerate.
    (-80.0f64..80.0, -179.0f64..179.0).prop_map(|(lat, lon)| Position::new(lat, lon))
}

proptest! {
    #[test]
    fn haversine_symmetric_nonnegative(a in arb_pos(), b in arb_pos()) {
        let ab = haversine_m(a, b);
        let ba = haversine_m(b, a);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn haversine_triangle_inequality(a in arb_pos(), b in arb_pos(), c in arb_pos()) {
        let ab = haversine_m(a, b);
        let bc = haversine_m(b, c);
        let ac = haversine_m(a, c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn destination_distance_round_trip(
        p in arb_pos(),
        bearing in 0.0f64..360.0,
        dist in 1.0f64..500_000.0,
    ) {
        let d = destination(p, bearing, dist);
        let measured = haversine_m(p, d);
        prop_assert!((measured - dist).abs() < dist * 1e-6 + 0.5,
            "asked {dist}, measured {measured}");
    }

    #[test]
    fn bearing_in_range(a in arb_pos(), b in arb_pos()) {
        prop_assume!(haversine_m(a, b) > 1.0);
        let brg = initial_bearing_deg(a, b);
        prop_assert!((0.0..360.0).contains(&brg));
    }

    #[test]
    fn angle_normalisation_invariants(deg in -10_000.0f64..10_000.0) {
        let n360 = norm_deg_360(deg);
        prop_assert!((0.0..360.0).contains(&n360));
        let n180 = norm_deg_180(deg);
        prop_assert!(n180 > -180.0 - 1e-9 && n180 <= 180.0 + 1e-9);
        // Both normalisations represent the same angle.
        prop_assert!(heading_delta(n360, n180) < 1e-9);
    }

    #[test]
    fn interpolation_stays_between(a in arb_pos(), b in arb_pos(), f in 0.0f64..1.0) {
        prop_assume!((a.lon - b.lon).abs() < 90.0); // avoid antimeridian subtleties
        let m = interpolate(a, b, f);
        let total = haversine_m(a, b);
        prop_assert!(haversine_m(a, m) <= total + 1.0);
        prop_assert!(haversine_m(m, b) <= total + 1.0);
    }

    #[test]
    fn local_frame_round_trip(origin in arb_pos(), dlat in -0.5f64..0.5, dlon in -0.5f64..0.5) {
        let frame = LocalFrame::new(origin);
        let p = Position::new(origin.lat + dlat, origin.lon + dlon);
        let back = frame.unproject(frame.project(p));
        prop_assert!(haversine_m(p, back) < 0.5, "round-trip error too large");
    }

    #[test]
    fn geohash_decode_contains_encoded(p in arb_pos(), precision in 1usize..=12) {
        let h = geohash::encode(p, precision);
        let b = geohash::decode_bbox(&h).unwrap();
        prop_assert!(b.contains(p));
    }

    #[test]
    fn grid_query_equals_scan(
        pts in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 0..200),
        q0 in 0.0f64..9.0,
        q1 in 0.0f64..9.0,
        span in 0.1f64..3.0,
    ) {
        let mut grid: GridIndex<usize> =
            GridIndex::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 8, 8);
        let items: Vec<(Position, usize)> = pts
            .iter()
            .enumerate()
            .map(|(i, (lat, lon))| (Position::new(*lat, *lon), i))
            .collect();
        for (p, i) in &items {
            grid.insert(*p, *i);
        }
        let q = BoundingBox::new(q0, q1, (q0 + span).min(10.0), (q1 + span).min(10.0));
        let mut got: Vec<usize> = grid.query_bbox(&q).into_iter().map(|(_, v)| v).collect();
        let mut want: Vec<usize> =
            items.iter().filter(|(p, _)| q.contains(*p)).map(|(_, v)| *v).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rtree_query_equals_scan(
        pts in prop::collection::vec((40.0f64..45.0, 2.0f64..9.0), 1..300),
        q0 in 40.0f64..44.0,
        q1 in 2.0f64..8.0,
    ) {
        let items: Vec<(Position, usize)> = pts
            .iter()
            .enumerate()
            .map(|(i, (lat, lon))| (Position::new(*lat, *lon), i))
            .collect();
        let tree = RTree::bulk_load(items.clone());
        let q = BoundingBox::new(q0, q1, q0 + 1.0, q1 + 1.0);
        let mut got: Vec<usize> = tree.query_bbox(&q).into_iter().map(|(_, v)| v).collect();
        let mut want: Vec<usize> =
            items.iter().filter(|(p, _)| q.contains(*p)).map(|(_, v)| *v).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
