//! Contact-to-track association.
//!
//! Anonymous contacts (radar plots) must be assigned to existing tracks
//! before they can update them. The classical recipe: chi-square gating
//! on the Kalman innovation, then a global assignment that prevents two
//! contacts claiming one track. A greedy global-nearest-neighbour pass
//! over the gated pairs (sorted by Mahalanobis distance) is within a few
//! percent of the optimal Hungarian assignment at maritime densities and
//! is O(n log n) in the number of gated pairs.

/// Chi-square 99% gate for a 2-dof innovation.
pub const GATE_99: f64 = 9.21;

/// One gated candidate pairing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidatePair {
    /// Index of the contact in the caller's contact list.
    pub contact: usize,
    /// Index of the track in the caller's track list.
    pub track: usize,
    /// Squared Mahalanobis distance of the pairing.
    pub dist_sq: f64,
}

/// Result of an assignment round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Assignment {
    /// `(contact, track)` pairs, each index used at most once.
    pub pairs: Vec<(usize, usize)>,
    /// Contacts that matched no track (candidates for new tracks).
    pub unmatched_contacts: Vec<usize>,
}

/// Greedy global-nearest-neighbour assignment over gated pairs.
///
/// `n_contacts` is the total number of contacts under consideration;
/// `candidates` holds every pairing that passed the gate. Pairs are
/// taken best-first; a contact or track already claimed is skipped.
pub fn assign_greedy(n_contacts: usize, mut candidates: Vec<CandidatePair>) -> Assignment {
    candidates
        .sort_by(|a, b| a.dist_sq.partial_cmp(&b.dist_sq).unwrap_or(std::cmp::Ordering::Equal));
    let mut contact_used = vec![false; n_contacts];
    let mut track_used = std::collections::HashSet::new();
    let mut pairs = Vec::new();
    for c in candidates {
        if c.contact >= n_contacts || contact_used[c.contact] || track_used.contains(&c.track) {
            continue;
        }
        contact_used[c.contact] = true;
        track_used.insert(c.track);
        pairs.push((c.contact, c.track));
    }
    let unmatched_contacts = (0..n_contacts).filter(|i| !contact_used[*i]).collect();
    Assignment { pairs, unmatched_contacts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(contact: usize, track: usize, d: f64) -> CandidatePair {
        CandidatePair { contact, track, dist_sq: d }
    }

    #[test]
    fn one_to_one_takes_best() {
        let a = assign_greedy(1, vec![pair(0, 0, 5.0), pair(0, 1, 1.0)]);
        assert_eq!(a.pairs, vec![(0, 1)]);
        assert!(a.unmatched_contacts.is_empty());
    }

    #[test]
    fn conflicting_contacts_resolve_globally() {
        // Contact 0 is close to track 0 (1.0) and track 1 (2.0);
        // contact 1 only gates with track 0 (1.5). Greedy best-first:
        // (0,0) taken, then (1,0) blocked, (0,1) blocked by contact 0,
        // leaving contact 1 unmatched... unless (1,0) had been cheaper.
        let a = assign_greedy(2, vec![pair(0, 0, 1.0), pair(0, 1, 2.0), pair(1, 0, 1.5)]);
        assert_eq!(a.pairs, vec![(0, 0)]);
        assert_eq!(a.unmatched_contacts, vec![1]);
    }

    #[test]
    fn greedy_prefers_global_cheap_pairs() {
        // (1,0) is globally cheapest; contact 0 then takes track 1.
        let a = assign_greedy(2, vec![pair(0, 0, 3.0), pair(0, 1, 4.0), pair(1, 0, 1.0)]);
        assert_eq!(a.pairs, vec![(1, 0), (0, 1)]);
        assert!(a.unmatched_contacts.is_empty());
    }

    #[test]
    fn ungated_contacts_are_unmatched() {
        let a = assign_greedy(3, vec![pair(1, 7, 2.0)]);
        assert_eq!(a.pairs, vec![(1, 7)]);
        assert_eq!(a.unmatched_contacts, vec![0, 2]);
    }

    #[test]
    fn empty_inputs() {
        let a = assign_greedy(0, vec![]);
        assert!(a.pairs.is_empty());
        assert!(a.unmatched_contacts.is_empty());
    }
}
