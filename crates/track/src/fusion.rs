//! The multi-source fuser: track lifecycle and identity management.
//!
//! Reports from all sensors flow into one [`Fuser`]. Identity-bearing
//! reports (AIS, VMS) go straight to their vessel's track; anonymous
//! radar plots are gated and assigned. Tracks are confirmed after enough
//! updates, coast through silence (the radar keeps a dark vessel's track
//! alive — the fusion benefit the paper calls "compensating for the lack
//! of coverage"), and are dropped when stale.

use crate::associate::{assign_greedy, CandidatePair, GATE_99};
use crate::kalman::{CvKalman, KalmanConfig};
use crate::sensor::{SensorKind, SensorReport};
use mda_geo::projection::LocalPoint;
use mda_geo::units::knots_to_mps;
use mda_geo::{DurationMs, Position, Timestamp, VesselId};
use std::collections::HashMap;

/// Lifecycle state of a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackState {
    /// Newly created, not yet corroborated.
    Tentative,
    /// Enough updates to be trusted.
    Confirmed,
    /// No recent update; position is extrapolated.
    Coasted,
}

/// One fused vessel track.
#[derive(Debug, Clone)]
pub struct Track {
    /// Stable fuser-assigned id.
    pub track_id: u64,
    /// Claimed identity, once an identity-bearing report matched.
    pub identity: Option<VesselId>,
    /// The kinematic filter.
    pub filter: CvKalman,
    /// Lifecycle state.
    pub state: TrackState,
    /// Number of measurement updates.
    pub hits: u32,
    /// Time of the last measurement update.
    pub last_update: Timestamp,
    /// Updates contributed per sensor kind.
    pub updates_by_source: HashMap<SensorKind, u64>,
    /// Times an identity-bearing report failed the gate so hard the
    /// filter was re-initialised (dark period or spoofing symptom).
    pub reinit_count: u32,
}

impl Track {
    /// Current estimated position (at filter time).
    pub fn position(&self) -> Position {
        self.filter.position()
    }

    /// Estimated speed in knots.
    pub fn speed_kn(&self) -> f64 {
        mda_geo::units::mps_to_knots(self.filter.speed_mps())
    }
}

/// Fuser tuning.
#[derive(Debug, Clone, Copy)]
pub struct FuserConfig {
    /// Kalman filter tuning.
    pub kalman: KalmanConfig,
    /// Association gate (squared Mahalanobis, 2 dof).
    pub gate: f64,
    /// Updates needed to confirm a track.
    pub confirm_hits: u32,
    /// Silence after which a track is coasted.
    pub coast_timeout: DurationMs,
    /// Silence after which a track is dropped.
    pub drop_timeout: DurationMs,
    /// Identity-bearing reports farther than this many gates from the
    /// track cause a filter re-initialisation instead of an update.
    pub reinit_gate_factor: f64,
}

impl Default for FuserConfig {
    fn default() -> Self {
        Self {
            kalman: KalmanConfig::default(),
            gate: GATE_99,
            confirm_hits: 3,
            coast_timeout: 10 * mda_geo::time::MINUTE,
            drop_timeout: 60 * mda_geo::time::MINUTE,
            reinit_gate_factor: 50.0,
        }
    }
}

/// Multi-source track fuser.
#[derive(Debug)]
pub struct Fuser {
    config: FuserConfig,
    tracks: HashMap<u64, Track>,
    by_identity: HashMap<VesselId, u64>,
    next_id: u64,
    dropped: u64,
}

impl Fuser {
    /// New fuser.
    pub fn new(config: FuserConfig) -> Self {
        Self { config, tracks: HashMap::new(), by_identity: HashMap::new(), next_id: 1, dropped: 0 }
    }

    /// Ingest one report; returns the id of the track it updated or
    /// created.
    pub fn ingest(&mut self, report: &SensorReport) -> u64 {
        match report.claimed_id {
            Some(id) if report.kind.identity_bearing() => self.ingest_identified(id, report),
            _ => self.ingest_anonymous(report),
        }
    }

    fn ingest_identified(&mut self, id: VesselId, report: &SensorReport) -> u64 {
        if let Some(&track_id) = self.by_identity.get(&id) {
            let fresh_filter = self.new_filter(report);
            let track = self.tracks.get_mut(&track_id).expect("identity index consistent");
            track.filter.predict(report.t);
            let d2 = track.filter.gate_distance_sq(report.pos, report.sigma_m());
            if d2 > self.config.gate * self.config.reinit_gate_factor {
                // Teleport-scale disagreement: restart the filter where
                // the report claims to be (and let the veracity layer
                // flag the jump).
                track.filter = fresh_filter;
                track.reinit_count += 1;
            } else {
                track.filter.update(report.pos, report.sigma_m(), report.t);
            }
            Self::record_update(track, report);
            Self::maybe_confirm(track, self.config.confirm_hits);
            track_id
        } else {
            // Try to adopt an anonymous track before creating a new one:
            // radar may have been tracking this vessel while it was dark.
            if let Some(track_id) = self.best_anonymous_match(report) {
                let track = self.tracks.get_mut(&track_id).expect("just matched");
                track.identity = Some(id);
                track.filter.update(report.pos, report.sigma_m(), report.t);
                Self::record_update(track, report);
                Self::maybe_confirm(track, self.config.confirm_hits);
                self.by_identity.insert(id, track_id);
                track_id
            } else {
                let track_id = self.spawn_track(report, Some(id));
                self.by_identity.insert(id, track_id);
                track_id
            }
        }
    }

    fn ingest_anonymous(&mut self, report: &SensorReport) -> u64 {
        // Gate against every live track (identity-bearing ones too: the
        // radar sees AIS-transmitting vessels as well).
        let mut best: Option<(u64, f64)> = None;
        for (tid, track) in &mut self.tracks {
            track.filter.predict(report.t);
            let d2 = track.filter.gate_distance_sq(report.pos, report.sigma_m());
            if d2 <= self.config.gate && best.map(|(_, bd)| d2 < bd).unwrap_or(true) {
                best = Some((*tid, d2));
            }
        }
        if let Some((tid, _)) = best {
            let track = self.tracks.get_mut(&tid).expect("just gated");
            track.filter.update(report.pos, report.sigma_m(), report.t);
            Self::record_update(track, report);
            Self::maybe_confirm(track, self.config.confirm_hits);
            tid
        } else {
            self.spawn_track(report, None)
        }
    }

    /// Ingest a whole radar scan (simultaneous anonymous contacts) with
    /// global assignment, which prevents two close plots claiming one
    /// track. Returns per-contact track ids.
    pub fn ingest_scan(&mut self, contacts: &[SensorReport]) -> Vec<u64> {
        let track_ids: Vec<u64> = self.tracks.keys().copied().collect();
        let mut candidates = Vec::new();
        for (ci, c) in contacts.iter().enumerate() {
            for (ti, tid) in track_ids.iter().enumerate() {
                let track = self.tracks.get_mut(tid).expect("listed");
                track.filter.predict(c.t);
                let d2 = track.filter.gate_distance_sq(c.pos, c.sigma_m());
                if d2 <= self.config.gate {
                    candidates.push(CandidatePair { contact: ci, track: ti, dist_sq: d2 });
                }
            }
        }
        let assignment = assign_greedy(contacts.len(), candidates);
        let mut out = vec![0u64; contacts.len()];
        for (ci, ti) in assignment.pairs {
            let tid = track_ids[ti];
            let track = self.tracks.get_mut(&tid).expect("listed");
            track.filter.update(contacts[ci].pos, contacts[ci].sigma_m(), contacts[ci].t);
            Self::record_update(track, &contacts[ci]);
            Self::maybe_confirm(track, self.config.confirm_hits);
            out[ci] = tid;
        }
        for ci in assignment.unmatched_contacts {
            out[ci] = self.spawn_track(&contacts[ci], None);
        }
        out
    }

    fn best_anonymous_match(&mut self, report: &SensorReport) -> Option<u64> {
        let gate = self.config.gate;
        let mut best: Option<(u64, f64)> = None;
        for (tid, track) in &mut self.tracks {
            if track.identity.is_some() {
                continue;
            }
            track.filter.predict(report.t);
            let d2 = track.filter.gate_distance_sq(report.pos, report.sigma_m());
            if d2 <= gate && best.map(|(_, bd)| d2 < bd).unwrap_or(true) {
                best = Some((*tid, d2));
            }
        }
        best.map(|(tid, _)| tid)
    }

    fn new_filter(&self, report: &SensorReport) -> CvKalman {
        let mut f = CvKalman::new(report.pos, report.sigma_m(), report.t, self.config.kalman);
        if let (Some(sog), Some(cog)) = (report.sog_kn, report.cog_deg) {
            let v = knots_to_mps(sog);
            let rad = cog.to_radians();
            f = f.with_velocity(LocalPoint { x: v * rad.sin(), y: v * rad.cos() }, 4.0);
        }
        f
    }

    fn spawn_track(&mut self, report: &SensorReport, identity: Option<VesselId>) -> u64 {
        let track_id = self.next_id;
        self.next_id += 1;
        let mut updates_by_source = HashMap::new();
        updates_by_source.insert(report.kind, 1);
        self.tracks.insert(
            track_id,
            Track {
                track_id,
                identity,
                filter: self.new_filter(report),
                state: TrackState::Tentative,
                hits: 1,
                last_update: report.t,
                updates_by_source,
                reinit_count: 0,
            },
        );
        track_id
    }

    fn record_update(track: &mut Track, report: &SensorReport) {
        track.hits += 1;
        track.last_update = report.t;
        *track.updates_by_source.entry(report.kind).or_insert(0) += 1;
        if track.state == TrackState::Coasted {
            track.state = TrackState::Confirmed;
        }
    }

    fn maybe_confirm(track: &mut Track, confirm_hits: u32) {
        if track.state == TrackState::Tentative && track.hits >= confirm_hits {
            track.state = TrackState::Confirmed;
        }
    }

    /// Advance lifecycle states at time `now`; drops stale tracks and
    /// returns them.
    pub fn sweep(&mut self, now: Timestamp) -> Vec<Track> {
        let coast = self.config.coast_timeout;
        let drop_after = self.config.drop_timeout;
        let mut dropped = Vec::new();
        let stale: Vec<u64> = self
            .tracks
            .iter()
            .filter(|(_, t)| now - t.last_update > drop_after)
            .map(|(id, _)| *id)
            .collect();
        for id in stale {
            let t = self.tracks.remove(&id).expect("listed");
            if let Some(vid) = t.identity {
                self.by_identity.remove(&vid);
            }
            self.dropped += 1;
            dropped.push(t);
        }
        for t in self.tracks.values_mut() {
            if now - t.last_update > coast && t.state == TrackState::Confirmed {
                t.state = TrackState::Coasted;
            }
        }
        dropped
    }

    /// The track currently associated with a vessel identity.
    pub fn track_of(&self, id: VesselId) -> Option<&Track> {
        self.by_identity.get(&id).and_then(|tid| self.tracks.get(tid))
    }

    /// A track by fuser id.
    pub fn track(&self, track_id: u64) -> Option<&Track> {
        self.tracks.get(&track_id)
    }

    /// All live tracks.
    pub fn tracks(&self) -> impl Iterator<Item = &Track> {
        self.tracks.values()
    }

    /// `(live, confirmed, dropped-so-far)` counts.
    pub fn stats(&self) -> (usize, usize, u64) {
        let confirmed = self.tracks.values().filter(|t| t.state != TrackState::Tentative).count();
        (self.tracks.len(), confirmed, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::time::MINUTE;
    use mda_geo::{Fix, Position};

    fn ais_report(id: u32, t_s: i64, lat: f64, lon: f64) -> SensorReport {
        SensorReport::from_fix(
            SensorKind::AisTerrestrial,
            &Fix::new(id, Timestamp::from_secs(t_s), Position::new(lat, lon), 10.0, 90.0),
        )
    }

    fn radar_report(t_s: i64, lat: f64, lon: f64) -> SensorReport {
        SensorReport {
            kind: SensorKind::Radar,
            t: Timestamp::from_secs(t_s),
            pos: Position::new(lat, lon),
            claimed_id: None,
            sog_kn: None,
            cog_deg: None,
            accuracy_m: None,
        }
    }

    #[test]
    fn identified_reports_build_one_track() {
        let mut f = Fuser::new(FuserConfig::default());
        let mut tid = 0;
        for i in 0..5 {
            tid = f.ingest(&ais_report(7, i * 10, 43.0, 5.0 + i as f64 * 0.0005));
        }
        let (live, confirmed, _) = f.stats();
        assert_eq!(live, 1);
        assert_eq!(confirmed, 1);
        let track = f.track(tid).unwrap();
        assert_eq!(track.identity, Some(7));
        assert_eq!(track.hits, 5);
    }

    #[test]
    fn different_identities_different_tracks() {
        let mut f = Fuser::new(FuserConfig::default());
        f.ingest(&ais_report(1, 0, 43.0, 5.0));
        f.ingest(&ais_report(2, 0, 44.0, 6.0));
        assert_eq!(f.stats().0, 2);
        assert!(f.track_of(1).is_some());
        assert!(f.track_of(2).is_some());
    }

    #[test]
    fn radar_updates_existing_track() {
        let mut f = Fuser::new(FuserConfig::default());
        for i in 0..3 {
            f.ingest(&ais_report(7, i * 10, 43.0, 5.0 + i as f64 * 0.0005));
        }
        // Radar plot near the predicted position joins the same track.
        let tid = f.ingest(&radar_report(40, 43.0, 5.002));
        assert_eq!(f.stats().0, 1, "no new track spawned");
        let track = f.track(tid).unwrap();
        assert_eq!(track.updates_by_source[&SensorKind::Radar], 1);
    }

    #[test]
    fn far_radar_spawns_new_track() {
        let mut f = Fuser::new(FuserConfig::default());
        f.ingest(&ais_report(7, 0, 43.0, 5.0));
        f.ingest(&radar_report(10, 44.5, 7.5));
        assert_eq!(f.stats().0, 2);
    }

    #[test]
    fn ais_adopts_anonymous_radar_track() {
        let mut f = Fuser::new(FuserConfig::default());
        // Radar tracks an unknown vessel...
        let rid = f.ingest(&radar_report(0, 43.0, 5.0));
        f.ingest(&radar_report(30, 43.0, 5.001));
        // ...then it switches AIS on nearby.
        let tid = f.ingest(&ais_report(9, 60, 43.0, 5.0015));
        assert_eq!(tid, rid, "AIS adopted the radar track");
        let track = f.track(tid).unwrap();
        assert_eq!(track.identity, Some(9));
        assert_eq!(f.stats().0, 1);
    }

    #[test]
    fn teleport_reinitialises_filter() {
        let mut f = Fuser::new(FuserConfig::default());
        for i in 0..4 {
            f.ingest(&ais_report(7, i * 10, 43.0, 5.0 + i as f64 * 0.0005));
        }
        // GPS-spoofed jump of ~60 km.
        let tid = f.ingest(&ais_report(7, 50, 43.5, 5.5));
        let track = f.track(tid).unwrap();
        assert_eq!(track.reinit_count, 1);
        // Filter followed the claimed position.
        assert!(mda_geo::distance::haversine_m(track.position(), Position::new(43.5, 5.5)) < 100.0);
    }

    #[test]
    fn lifecycle_coast_and_drop() {
        let cfg = FuserConfig {
            coast_timeout: MINUTE,
            drop_timeout: 5 * MINUTE,
            ..FuserConfig::default()
        };
        let mut f = Fuser::new(cfg);
        for i in 0..3 {
            f.ingest(&ais_report(7, i, 43.0, 5.0));
        }
        f.sweep(Timestamp::from_secs(2 + 90));
        assert_eq!(f.track_of(7).unwrap().state, TrackState::Coasted);
        let dropped = f.sweep(Timestamp::from_secs(2 + 400));
        assert_eq!(dropped.len(), 1);
        assert!(f.track_of(7).is_none());
        assert_eq!(f.stats().2, 1);
    }

    #[test]
    fn coasted_track_revives_on_update() {
        let cfg = FuserConfig { coast_timeout: MINUTE, ..FuserConfig::default() };
        let mut f = Fuser::new(cfg);
        for i in 0..3 {
            f.ingest(&ais_report(7, i * 10, 43.0, 5.0 + i as f64 * 0.0005));
        }
        f.sweep(Timestamp::from_secs(200));
        assert_eq!(f.track_of(7).unwrap().state, TrackState::Coasted);
        f.ingest(&ais_report(7, 210, 43.0, 5.004));
        assert_eq!(f.track_of(7).unwrap().state, TrackState::Confirmed);
    }

    #[test]
    fn scan_assignment_keeps_tracks_separate() {
        let mut f = Fuser::new(FuserConfig::default());
        // Two established tracks 2 km apart.
        for i in 0..4 {
            f.ingest(&ais_report(1, i * 10, 43.00, 5.000 + i as f64 * 0.0005));
            f.ingest(&ais_report(2, i * 10, 43.02, 5.000 + i as f64 * 0.0005));
        }
        let scan = vec![radar_report(45, 43.00, 5.0022), radar_report(45, 43.02, 5.0022)];
        let ids = f.ingest_scan(&scan);
        assert_ne!(ids[0], ids[1], "each contact its own track");
        assert_eq!(f.stats().0, 2, "no spurious tracks");
    }

    #[test]
    fn scan_spawns_for_unmatched() {
        let mut f = Fuser::new(FuserConfig::default());
        let ids = f.ingest_scan(&[radar_report(0, 43.0, 5.0), radar_report(0, 44.0, 6.0)]);
        assert_eq!(ids.len(), 2);
        assert_eq!(f.stats().0, 2);
    }

    #[test]
    fn fused_track_tracks_speed() {
        let mut f = Fuser::new(FuserConfig::default());
        let fix0 = Fix::new(5, Timestamp::from_secs(0), Position::new(43.0, 5.0), 12.0, 90.0);
        for i in 0..30 {
            let t = Timestamp::from_secs(i * 10);
            let fix = Fix { t, pos: fix0.dead_reckon(t), ..fix0 };
            f.ingest(&SensorReport::from_fix(SensorKind::AisTerrestrial, &fix));
        }
        let track = f.track_of(5).unwrap();
        assert!((track.speed_kn() - 12.0).abs() < 1.0, "speed {}", track.speed_kn());
    }
}
