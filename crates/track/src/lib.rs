//! Multi-source tracking and fusion (paper §2.4).
//!
//! The information-fusion layer of the architecture: build vessel tracks
//! from heterogeneous sensors (AIS, coastal radar, VMS), associate new
//! contacts to tracks, smooth kinematics, and estimate per-source
//! reliability so that conflicting information can be weighed — the
//! paper's "suitable management of conflicting information".
//!
//! - [`kalman`] — constant-velocity Kalman filter over a local metric
//!   frame, with innovation gating (Mahalanobis distance).
//! - [`sensor`] — the common sensor-report vocabulary: identity-bearing
//!   (AIS/VMS) and anonymous (radar) contacts with per-source accuracy.
//! - [`associate`] — contact→track gating and greedy global-nearest-
//!   neighbour assignment.
//! - [`fusion`] — the [`fusion::Fuser`]: track lifecycle (tentative,
//!   confirmed, coasted, dropped), identity management, multi-source
//!   update, coverage accounting.
//! - [`reliability`] — per-source reliability scores from innovation
//!   statistics (the Ceolin-style trust assessment of §4).
//!
//! ## Example
//!
//! ```
//! use mda_geo::{Fix, Position, Timestamp};
//! use mda_track::{Fuser, FuserConfig, SensorKind, SensorReport};
//!
//! let mut fuser = Fuser::new(FuserConfig::default());
//! for i in 0..5i64 {
//!     let fix = Fix::new(
//!         9,
//!         Timestamp::from_secs(i * 10),
//!         Position::new(43.0, 5.0 + 0.001 * i as f64),
//!         10.0,
//!         90.0,
//!     );
//!     fuser.ingest(&SensorReport::from_fix(SensorKind::AisTerrestrial, &fix));
//! }
//! assert!(fuser.tracks().count() >= 1);
//! ```

pub mod associate;
pub mod fusion;
pub mod kalman;
pub mod reliability;
pub mod sensor;

pub use fusion::{Fuser, FuserConfig, Track, TrackState};
pub use kalman::{CvKalman, KalmanConfig};
pub use reliability::ReliabilityMonitor;
pub use sensor::{SensorKind, SensorReport};
