//! Per-source reliability estimation from innovation statistics.
//!
//! §4 of the paper: "additional knowledge on sources' quality may help"
//! resolve conflicting information, citing trust-assessment work
//! (Ceolin et al.). The idea implemented here: for a well-calibrated
//! sensor, the normalised innovation squared (NIS) of its measurements
//! against the fused track is chi-square distributed with 2 degrees of
//! freedom, i.e. mean 2. A source whose average NIS runs far above 2 is
//! either mis-calibrated or lying; its reliability score decays
//! accordingly and downstream fusion rules can discount it.

use crate::sensor::SensorKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Exponentially weighted per-source NIS statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReliabilityMonitor {
    stats: HashMap<SensorKind, SourceStats>,
    /// EWMA factor (weight of the newest sample).
    alpha: f64,
}

/// Statistics for one source.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceStats {
    /// Exponentially weighted mean NIS.
    pub ewma_nis: f64,
    /// Total observations.
    pub count: u64,
    /// Observations that failed the 99% gate entirely.
    pub gate_rejects: u64,
}

impl Default for SourceStats {
    fn default() -> Self {
        Self { ewma_nis: 2.0, count: 0, gate_rejects: 0 }
    }
}

/// Expected NIS for a consistent 2-dof measurement.
const EXPECTED_NIS: f64 = 2.0;

impl ReliabilityMonitor {
    /// New monitor with EWMA factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Self { stats: HashMap::new(), alpha }
    }

    /// Record one measurement's NIS (squared Mahalanobis innovation).
    pub fn record(&mut self, kind: SensorKind, nis: f64) {
        let alpha = self.alpha;
        let s = self.stats.entry(kind).or_default();
        s.count += 1;
        s.ewma_nis = (1.0 - alpha) * s.ewma_nis + alpha * nis;
        if nis > crate::associate::GATE_99 {
            s.gate_rejects += 1;
        }
    }

    /// Reliability score in `[0, 1]`: 1 for a calibrated source, decaying
    /// exponentially as the average NIS exceeds its expectation.
    pub fn score(&self, kind: SensorKind) -> f64 {
        match self.stats.get(&kind) {
            None => 1.0, // no evidence against an unseen source
            Some(s) => {
                let excess = (s.ewma_nis / EXPECTED_NIS - 1.0).max(0.0);
                (-excess / 2.0).exp()
            }
        }
    }

    /// Raw statistics for one source.
    pub fn stats(&self, kind: SensorKind) -> Option<&SourceStats> {
        self.stats.get(&kind)
    }

    /// `(kind, score, ewma_nis, count)` rows for reporting.
    pub fn report(&self) -> Vec<(SensorKind, f64, f64, u64)> {
        let mut rows: Vec<_> =
            self.stats.iter().map(|(k, s)| (*k, self.score(*k), s.ewma_nis, s.count)).collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unseen_source_fully_trusted() {
        let m = ReliabilityMonitor::new(0.1);
        assert_eq!(m.score(SensorKind::Radar), 1.0);
    }

    #[test]
    fn calibrated_source_keeps_high_score() {
        let mut m = ReliabilityMonitor::new(0.1);
        for _ in 0..100 {
            m.record(SensorKind::AisTerrestrial, 2.0); // exactly as expected
        }
        assert!(m.score(SensorKind::AisTerrestrial) > 0.99);
    }

    #[test]
    fn inconsistent_source_decays() {
        let mut m = ReliabilityMonitor::new(0.1);
        for _ in 0..100 {
            m.record(SensorKind::AisSatellite, 20.0); // 10x expectation
        }
        let s = m.score(SensorKind::AisSatellite);
        assert!(s < 0.05, "score {s}");
        assert!(m.stats(SensorKind::AisSatellite).unwrap().gate_rejects == 100);
    }

    #[test]
    fn scores_order_sources_by_quality() {
        let mut m = ReliabilityMonitor::new(0.2);
        for _ in 0..50 {
            m.record(SensorKind::AisTerrestrial, 1.8);
            m.record(SensorKind::Radar, 4.0);
            m.record(SensorKind::Vms, 10.0);
        }
        let report = m.report();
        assert_eq!(report[0].0, SensorKind::AisTerrestrial);
        assert_eq!(report[2].0, SensorKind::Vms);
        assert!(report[0].1 > report[1].1 && report[1].1 > report[2].1);
    }

    #[test]
    fn recovery_after_bad_period() {
        let mut m = ReliabilityMonitor::new(0.2);
        for _ in 0..20 {
            m.record(SensorKind::Vms, 30.0);
        }
        let bad = m.score(SensorKind::Vms);
        for _ in 0..60 {
            m.record(SensorKind::Vms, 2.0);
        }
        let recovered = m.score(SensorKind::Vms);
        assert!(recovered > bad, "EWMA forgets: {bad} -> {recovered}");
        assert!(recovered > 0.9);
    }
}
