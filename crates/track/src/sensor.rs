//! The common sensor-report vocabulary for fusion.
//!
//! The paper's fusion discussion (§2.4) turns on the *asymmetries*
//! between maritime sources: AIS is identity-bearing, accurate (~10 m)
//! and frequent but cooperative (can be switched off or spoofed); coastal
//! radar is non-cooperative and cannot be turned off by the target, but
//! is anonymous and coarse; VMS is identity-bearing but sparse. These
//! structural properties live here, shared by the simulator and the
//! fuser.

use mda_geo::{Position, Timestamp, VesselId};
use serde::{Deserialize, Serialize};

/// The kind of sensor that produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// Terrestrial AIS receiver.
    AisTerrestrial,
    /// Satellite AIS (delayed, bursty).
    AisSatellite,
    /// Coastal surveillance radar (anonymous plots).
    Radar,
    /// Vessel Monitoring System (fisheries; sparse, identity-bearing).
    Vms,
}

impl SensorKind {
    /// Typical 1-sigma position accuracy in metres. AIS GPS accuracy is
    /// ~10 m (the figure quoted in §2.5); VTS radar is far coarser.
    pub fn accuracy_m(&self) -> f64 {
        match self {
            SensorKind::AisTerrestrial | SensorKind::AisSatellite => 10.0,
            SensorKind::Radar => 150.0,
            SensorKind::Vms => 30.0,
        }
    }

    /// Whether reports carry the transmitted identity.
    pub fn identity_bearing(&self) -> bool {
        !matches!(self, SensorKind::Radar)
    }

    /// Whether the target can prevent being observed (cooperative
    /// sensing). Radar keeps seeing dark vessels — the core of the C3
    /// experiment.
    pub fn cooperative(&self) -> bool {
        !matches!(self, SensorKind::Radar)
    }
}

/// One observation from one sensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorReport {
    /// Producing sensor kind.
    pub kind: SensorKind,
    /// Receiver event time.
    pub t: Timestamp,
    /// Observed position.
    pub pos: Position,
    /// Transmitted identity, if the sensor carries one (and the target
    /// transmitted truthfully — spoofed identities appear here too).
    pub claimed_id: Option<VesselId>,
    /// Speed over ground in knots, if measured.
    pub sog_kn: Option<f64>,
    /// Course over ground in degrees, if measured.
    pub cog_deg: Option<f64>,
    /// Measurement accuracy override (1-sigma metres); `None` uses the
    /// sensor-kind default.
    pub accuracy_m: Option<f64>,
}

impl SensorReport {
    /// Effective 1-sigma accuracy in metres.
    pub fn sigma_m(&self) -> f64 {
        self.accuracy_m.unwrap_or_else(|| self.kind.accuracy_m())
    }

    /// Convenience constructor for an AIS report from a fix.
    pub fn from_fix(kind: SensorKind, fix: &mda_geo::Fix) -> Self {
        Self {
            kind,
            t: fix.t,
            pos: fix.pos,
            claimed_id: Some(fix.id),
            sog_kn: Some(fix.sog_kn),
            cog_deg: Some(fix.cog_deg),
            accuracy_m: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_asymmetries() {
        assert!(SensorKind::AisTerrestrial.identity_bearing());
        assert!(!SensorKind::Radar.identity_bearing());
        assert!(!SensorKind::Radar.cooperative());
        assert!(SensorKind::Vms.cooperative());
        assert!(SensorKind::Radar.accuracy_m() > SensorKind::AisTerrestrial.accuracy_m());
    }

    #[test]
    fn report_sigma_override() {
        let fix =
            mda_geo::Fix::new(1, Timestamp::from_secs(0), Position::new(43.0, 5.0), 10.0, 90.0);
        let mut r = SensorReport::from_fix(SensorKind::AisTerrestrial, &fix);
        assert_eq!(r.sigma_m(), 10.0);
        r.accuracy_m = Some(99.0);
        assert_eq!(r.sigma_m(), 99.0);
        assert_eq!(r.claimed_id, Some(1));
        assert_eq!(r.sog_kn, Some(10.0));
    }
}
