//! Constant-velocity Kalman filter over a local metric frame.
//!
//! State is `[x, y, vx, vy]` (metres, metres/second) in a
//! [`mda_geo::projection::LocalFrame`] centred near the
//! track. The filter uses the standard white-noise-acceleration process
//! model; measurements are positions with per-sensor noise. The
//! Mahalanobis innovation distance doubles as the association gate.

use mda_geo::projection::{LocalFrame, LocalPoint};
use mda_geo::{Position, Timestamp};
use serde::{Deserialize, Serialize};

type M4 = [[f64; 4]; 4];

fn m4_zero() -> M4 {
    [[0.0; 4]; 4]
}

fn m4_identity() -> M4 {
    let mut m = m4_zero();
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    m
}

fn m4_mul(a: &M4, b: &M4) -> M4 {
    let mut c = m4_zero();
    for i in 0..4 {
        for k in 0..4 {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..4 {
                c[i][j] += aik * b[k][j];
            }
        }
    }
    c
}

fn m4_add(a: &M4, b: &M4) -> M4 {
    let mut c = m4_zero();
    for i in 0..4 {
        for j in 0..4 {
            c[i][j] = a[i][j] + b[i][j];
        }
    }
    c
}

fn m4_transpose(a: &M4) -> M4 {
    let mut c = m4_zero();
    for i in 0..4 {
        for j in 0..4 {
            c[i][j] = a[j][i];
        }
    }
    c
}

/// Filter tuning parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KalmanConfig {
    /// Process noise intensity (white-noise acceleration PSD, m²/s³).
    pub process_noise: f64,
    /// Initial velocity variance when a track starts, (m/s)².
    pub initial_velocity_var: f64,
}

impl Default for KalmanConfig {
    fn default() -> Self {
        Self { process_noise: 0.05, initial_velocity_var: 25.0 }
    }
}

/// A constant-velocity Kalman filter for one track.
#[derive(Debug, Clone)]
pub struct CvKalman {
    frame: LocalFrame,
    /// State `[x, y, vx, vy]`.
    x: [f64; 4],
    /// State covariance.
    p: M4,
    t: Timestamp,
    config: KalmanConfig,
}

impl CvKalman {
    /// Initialise from a first position measurement with standard
    /// deviation `sigma_m` at time `t`.
    pub fn new(pos: Position, sigma_m: f64, t: Timestamp, config: KalmanConfig) -> Self {
        let frame = LocalFrame::new(pos);
        let mut p = m4_zero();
        p[0][0] = sigma_m * sigma_m;
        p[1][1] = sigma_m * sigma_m;
        p[2][2] = config.initial_velocity_var;
        p[3][3] = config.initial_velocity_var;
        Self { frame, x: [0.0; 4], p, t, config }
    }

    /// Initialise with a known velocity (east, north m/s), e.g. from an
    /// AIS SOG/COG report.
    pub fn with_velocity(mut self, v: LocalPoint, var: f64) -> Self {
        self.x[2] = v.x;
        self.x[3] = v.y;
        self.p[2][2] = var;
        self.p[3][3] = var;
        self
    }

    /// Time of the last predict/update.
    pub fn time(&self) -> Timestamp {
        self.t
    }

    /// Current position estimate.
    pub fn position(&self) -> Position {
        self.frame.unproject(LocalPoint { x: self.x[0], y: self.x[1] })
    }

    /// Current velocity estimate (east, north) in m/s.
    pub fn velocity(&self) -> LocalPoint {
        LocalPoint { x: self.x[2], y: self.x[3] }
    }

    /// Current speed estimate in m/s.
    pub fn speed_mps(&self) -> f64 {
        self.velocity().norm()
    }

    /// Position uncertainty: trace of the position covariance block, m².
    pub fn position_var(&self) -> f64 {
        self.p[0][0] + self.p[1][1]
    }

    /// Advance the state to time `t` (no-op when `t <= self.t`).
    pub fn predict(&mut self, t: Timestamp) {
        let dt = (t - self.t) as f64 / 1_000.0;
        if dt <= 0.0 {
            return;
        }
        self.t = t;
        // x' = F x
        self.x[0] += self.x[2] * dt;
        self.x[1] += self.x[3] * dt;
        // P' = F P Ft + Q
        let mut f = m4_identity();
        f[0][2] = dt;
        f[1][3] = dt;
        let fp = m4_mul(&f, &self.p);
        let mut p = m4_mul(&fp, &m4_transpose(&f));
        let q = self.config.process_noise;
        let dt2 = dt * dt;
        let dt3 = dt2 * dt;
        let q_pos = q * dt3 / 3.0;
        let q_cross = q * dt2 / 2.0;
        let q_vel = q * dt;
        let qm = {
            let mut m = m4_zero();
            m[0][0] = q_pos;
            m[1][1] = q_pos;
            m[0][2] = q_cross;
            m[2][0] = q_cross;
            m[1][3] = q_cross;
            m[3][1] = q_cross;
            m[2][2] = q_vel;
            m[3][3] = q_vel;
            m
        };
        p = m4_add(&p, &qm);
        self.p = p;
    }

    /// Squared Mahalanobis distance of a position measurement with noise
    /// `sigma_m` against the *current* (predicted) state. Used as the
    /// association gate (chi-square with 2 dof: 9.21 ≈ 99%).
    pub fn gate_distance_sq(&self, pos: Position, sigma_m: f64) -> f64 {
        let z = self.frame.project(pos);
        let dy = [z.x - self.x[0], z.y - self.x[1]];
        let r = sigma_m * sigma_m;
        let s00 = self.p[0][0] + r;
        let s11 = self.p[1][1] + r;
        let s01 = self.p[0][1];
        let det = s00 * s11 - s01 * s01;
        if det <= 0.0 {
            return f64::INFINITY;
        }
        (dy[0] * dy[0] * s11 - 2.0 * dy[0] * dy[1] * s01 + dy[1] * dy[1] * s00) / det
    }

    /// Fuse a position measurement with standard deviation `sigma_m`
    /// taken at time `t` (predicts to `t` first).
    pub fn update(&mut self, pos: Position, sigma_m: f64, t: Timestamp) {
        self.predict(t);
        let z = self.frame.project(pos);
        let y = [z.x - self.x[0], z.y - self.x[1]];
        let r = sigma_m * sigma_m;
        // S = H P Ht + R (2x2), H = [I2 0]
        let s00 = self.p[0][0] + r;
        let s11 = self.p[1][1] + r;
        let s01 = self.p[0][1];
        let det = s00 * s11 - s01 * s01;
        if det <= 0.0 {
            return;
        }
        let inv = [[s11 / det, -s01 / det], [-s01 / det, s00 / det]];
        // K = P Ht S^-1 (4x2)
        let mut k = [[0.0f64; 2]; 4];
        for (k_row, p_row) in k.iter_mut().zip(&self.p) {
            for (j, k_ij) in k_row.iter_mut().enumerate() {
                *k_ij = p_row[0] * inv[0][j] + p_row[1] * inv[1][j];
            }
        }
        // x += K y
        for (x_i, k_row) in self.x.iter_mut().zip(&k) {
            *x_i += k_row[0] * y[0] + k_row[1] * y[1];
        }
        // P = (I - K H) P
        let mut ikh = m4_identity();
        for i in 0..4 {
            ikh[i][0] -= k[i][0];
            ikh[i][1] -= k[i][1];
        }
        self.p = m4_mul(&ikh, &self.p);
        self.maybe_recenter();
    }

    /// Keep the local frame near the state so projection error stays
    /// negligible on long tracks.
    fn maybe_recenter(&mut self) {
        let here = LocalPoint { x: self.x[0], y: self.x[1] };
        if here.norm() > 50_000.0 {
            let new_origin = self.frame.unproject(here);
            self.frame = LocalFrame::new(new_origin);
            self.x[0] = 0.0;
            self.x[1] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mda_geo::distance::haversine_m;

    use mda_geo::units::knots_to_mps;

    fn truth_track(n: usize, dt_s: i64, speed_kn: f64, cog: f64) -> Vec<(Timestamp, Position)> {
        let f0 =
            mda_geo::Fix::new(1, Timestamp::from_secs(0), Position::new(43.0, 5.0), speed_kn, cog);
        (0..n)
            .map(|i| {
                let t = Timestamp::from_secs(i as i64 * dt_s);
                (t, f0.dead_reckon(t))
            })
            .collect()
    }

    #[test]
    fn converges_on_noiseless_track() {
        let truth = truth_track(30, 10, 12.0, 45.0);
        let mut kf = CvKalman::new(truth[0].1, 10.0, truth[0].0, KalmanConfig::default());
        for (t, p) in &truth[1..] {
            kf.update(*p, 10.0, *t);
        }
        let (t_last, p_last) = truth[truth.len() - 1];
        assert_eq!(kf.time(), t_last);
        assert!(haversine_m(kf.position(), p_last) < 15.0);
        let v = knots_to_mps(12.0);
        assert!((kf.speed_mps() - v).abs() < 0.5, "speed {}", kf.speed_mps());
    }

    #[test]
    fn smooths_noisy_measurements() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let truth = truth_track(120, 10, 15.0, 90.0);
        let sigma = 50.0;
        let mut kf = CvKalman::new(truth[0].1, sigma, truth[0].0, KalmanConfig::default());
        let mut raw_err = 0.0;
        let mut kf_err = 0.0;
        let mut count = 0.0;
        for (t, p) in &truth[1..] {
            // Add ~sigma of noise in each axis.
            let noisy = mda_geo::distance::destination(
                *p,
                rng.gen_range(0.0..360.0),
                rng.gen_range(0.0..1.5) * sigma,
            );
            kf.update(noisy, sigma, *t);
            if kf.time() > Timestamp::from_secs(300) {
                raw_err += haversine_m(noisy, *p);
                kf_err += haversine_m(kf.position(), *p);
                count += 1.0;
            }
        }
        raw_err /= count;
        kf_err /= count;
        assert!(
            kf_err < raw_err * 0.8,
            "filter should beat raw measurements: {kf_err:.1} vs {raw_err:.1}"
        );
    }

    #[test]
    fn predict_moves_with_velocity() {
        let start = Position::new(43.0, 5.0);
        let mut kf = CvKalman::new(start, 10.0, Timestamp::from_secs(0), KalmanConfig::default())
            .with_velocity(LocalPoint { x: 5.0, y: 0.0 }, 1.0);
        kf.predict(Timestamp::from_secs(100));
        let moved = haversine_m(start, kf.position());
        assert!((moved - 500.0).abs() < 5.0, "moved {moved}");
    }

    #[test]
    fn predict_grows_uncertainty() {
        let mut kf = CvKalman::new(
            Position::new(43.0, 5.0),
            10.0,
            Timestamp::from_secs(0),
            KalmanConfig::default(),
        );
        let before = kf.position_var();
        kf.predict(Timestamp::from_secs(600));
        assert!(kf.position_var() > before);
    }

    #[test]
    fn update_shrinks_uncertainty() {
        let p = Position::new(43.0, 5.0);
        let mut kf = CvKalman::new(p, 100.0, Timestamp::from_secs(0), KalmanConfig::default());
        let before = kf.position_var();
        kf.update(p, 100.0, Timestamp::from_secs(1));
        assert!(kf.position_var() < before);
    }

    #[test]
    fn gate_accepts_consistent_rejects_wild() {
        let truth = truth_track(10, 10, 10.0, 0.0);
        let mut kf = CvKalman::new(truth[0].1, 10.0, truth[0].0, KalmanConfig::default());
        for (t, p) in &truth[1..] {
            kf.update(*p, 10.0, *t);
        }
        kf.predict(Timestamp::from_secs(100));
        let expected = truth[9].1;
        assert!(kf.gate_distance_sq(expected, 10.0) < 9.21);
        // 5 km off: far outside the 99% gate.
        let wild = mda_geo::distance::destination(expected, 90.0, 5_000.0);
        assert!(kf.gate_distance_sq(wild, 10.0) > 9.21);
    }

    #[test]
    fn long_track_recenters_frame() {
        // 30 kn for 2 hours ≈ 111 km: forces at least one recenter.
        let truth = truth_track(720, 10, 30.0, 90.0);
        let mut kf = CvKalman::new(truth[0].1, 10.0, truth[0].0, KalmanConfig::default());
        for (t, p) in &truth[1..] {
            kf.update(*p, 10.0, *t);
        }
        let end = truth.last().unwrap().1;
        assert!(
            haversine_m(kf.position(), end) < 30.0,
            "drift {}",
            haversine_m(kf.position(), end)
        );
    }

    #[test]
    fn out_of_order_update_ignored_by_predict() {
        let mut kf = CvKalman::new(
            Position::new(43.0, 5.0),
            10.0,
            Timestamp::from_secs(100),
            KalmanConfig::default(),
        );
        kf.predict(Timestamp::from_secs(50)); // stale: no-op
        assert_eq!(kf.time(), Timestamp::from_secs(100));
    }

    #[test]
    fn second_second_order_matrix_helpers() {
        let i = m4_identity();
        let z = m4_zero();
        assert_eq!(m4_mul(&i, &i), i);
        assert_eq!(m4_add(&z, &i), i);
        assert_eq!(m4_transpose(&i), i);
        let mut a = m4_zero();
        a[0][1] = 2.0;
        a[3][2] = -1.0;
        let at = m4_transpose(&a);
        assert_eq!(at[1][0], 2.0);
        assert_eq!(at[2][3], -1.0);
    }
}
