//! C5 — multi-source fusion vs single sources (§2.4).
//!
//! The paper: fusion "can overcome some of the single source processing
//! issues (e.g., compensating for the lack of coverage and increasing
//! accuracy)". Measured: track coverage and position error against
//! ground truth for AIS-only, radar-only, and fused configurations on a
//! scenario with dark ships (where AIS-only must lose coverage) and
//! coarse radar (where radar-only must lose accuracy). Evaluation runs
//! *online*: the fuser is scored at each checkpoint with exactly the
//! state it had at that moment.

use crate::util::{f, pct, table};
use mda_geo::distance::haversine_m;
use mda_geo::projection::{LocalFrame, LocalPoint};
use mda_geo::{Position, Timestamp};
use mda_sim::scenario::{Scenario, ScenarioConfig, SimOutput};
use mda_track::fusion::{Fuser, FuserConfig};
use mda_track::sensor::{SensorKind, SensorReport};

/// Which streams a configuration consumes.
#[derive(Clone, Copy, PartialEq)]
pub enum Sources {
    /// Cooperative AIS only.
    AisOnly,
    /// Non-cooperative radar only.
    RadarOnly,
    /// Everything.
    Fused,
}

fn stream(sim: &SimOutput, sources: Sources) -> Vec<(Timestamp, SensorReport)> {
    let mut items: Vec<(Timestamp, SensorReport)> = Vec::new();
    if sources != Sources::RadarOnly {
        for obs in &sim.ais {
            if let Some(fix) = obs.msg.to_fix(obs.t_sent) {
                items.push((
                    obs.t_received,
                    SensorReport::from_fix(SensorKind::AisTerrestrial, &fix),
                ));
            }
        }
        for v in &sim.vms {
            items.push((
                v.t,
                SensorReport {
                    kind: SensorKind::Vms,
                    t: v.t,
                    pos: v.pos,
                    claimed_id: Some(v.id),
                    sog_kn: None,
                    cog_deg: None,
                    accuracy_m: None,
                },
            ));
        }
    }
    if sources != Sources::AisOnly {
        for plot in &sim.radar {
            items.push((
                plot.t,
                SensorReport {
                    kind: SensorKind::Radar,
                    t: plot.t,
                    pos: plot.pos,
                    claimed_id: None,
                    sog_kn: None,
                    cog_deg: None,
                    accuracy_m: None,
                },
            ));
        }
    }
    items.sort_by_key(|(t, _)| *t);
    items
}

/// Feed a fuser the selected streams (no evaluation) — used by the
/// criterion bench.
pub fn drive(sim: &SimOutput, sources: Sources) -> Fuser {
    let mut fuser = Fuser::new(FuserConfig::default());
    for (_, report) in stream(sim, sources) {
        fuser.ingest(&report);
    }
    fuser
}

/// Extrapolate a track to `t` without mutating the fuser.
fn track_pos_at(track: &mda_track::fusion::Track, t: Timestamp) -> Position {
    let dt_s = (t - track.filter.time()) as f64 / 1_000.0;
    let v = track.filter.velocity();
    let frame = LocalFrame::new(track.filter.position());
    frame.unproject(LocalPoint { x: v.x * dt_s, y: v.y * dt_s })
}

/// Truth position of a vessel at `t` (nearest earlier fix).
fn truth_at(sim: &SimOutput, id: u32, t: Timestamp) -> Option<Position> {
    let fixes = sim.truth.get(&id)?;
    let idx = fixes.partition_point(|f| f.t <= t);
    idx.checked_sub(1).map(|i| fixes[i].pos)
}

/// Drive the stream and evaluate coverage/accuracy at checkpoints as
/// they pass. A vessel is covered when a recently-updated track lies
/// within `gate_m` of its true position.
pub fn drive_and_evaluate(
    sim: &SimOutput,
    sources: Sources,
    gate_m: f64,
) -> (Fuser, f64, f64, f64) {
    let mut fuser = Fuser::new(FuserConfig::default());
    let duration = sim.config.duration;
    let mut checkpoints: Vec<Timestamp> = (1..=24).map(|i| Timestamp(duration * i / 25)).collect();
    checkpoints.reverse(); // pop() takes the earliest

    let mut covered = 0usize;
    let mut total = 0usize;
    let mut err_sq = 0.0;
    let mut dark_covered = 0usize;
    let mut dark_total = 0usize;
    let mut evaluate_now = |fuser: &Fuser, t: Timestamp| {
        for id in sim.truth.keys() {
            let Some(truth_pos) = truth_at(sim, *id, t) else { continue };
            let is_dark = sim
                .dark_episodes
                .get(id)
                .map(|eps| eps.iter().any(|e| e.contains(t)))
                .unwrap_or(false);
            total += 1;
            if is_dark {
                dark_total += 1;
            }
            let mut best = f64::INFINITY;
            for track in fuser.tracks() {
                if (t - track.last_update).abs() > 5 * mda_geo::time::MINUTE {
                    continue; // stale track: not current coverage
                }
                let d = haversine_m(track_pos_at(track, t), truth_pos);
                if d < best {
                    best = d;
                }
            }
            if best <= gate_m {
                covered += 1;
                err_sq += best * best;
                if is_dark {
                    dark_covered += 1;
                }
            }
        }
    };

    for (arrival, report) in stream(sim, sources) {
        while let Some(&cp) = checkpoints.last() {
            if arrival >= cp {
                evaluate_now(&fuser, cp);
                checkpoints.pop();
            } else {
                break;
            }
        }
        fuser.ingest(&report);
    }
    for cp in checkpoints.into_iter().rev() {
        evaluate_now(&fuser, cp);
    }
    let coverage = covered as f64 / total.max(1) as f64;
    let dark_coverage = dark_covered as f64 / dark_total.max(1) as f64;
    let rmse = if covered > 0 { (err_sq / covered as f64).sqrt() } else { f64::NAN };
    (fuser, coverage, dark_coverage, rmse)
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let sim = Scenario::generate(ScenarioConfig::regional(71, 60, 4 * mda_geo::time::HOUR));
    let gate = 2_000.0;
    let mut rows = Vec::new();
    for (name, sources) in [
        ("AIS only", Sources::AisOnly),
        ("radar only", Sources::RadarOnly),
        ("fused (AIS+radar+VMS)", Sources::Fused),
    ] {
        let (fuser, coverage, dark_coverage, rmse) = drive_and_evaluate(&sim, sources, gate);
        let (live, confirmed, _) = fuser.stats();
        rows.push(vec![
            name.to_string(),
            format!("{live}/{confirmed}"),
            pct(coverage),
            pct(dark_coverage),
            format!("{} m", f(rmse, 0)),
        ]);
    }
    let mut out = String::new();
    out.push_str(&table(
        "C5 — coverage and accuracy by source configuration",
        &[
            "configuration",
            "tracks (live/conf)",
            "coverage",
            "dark-episode coverage",
            "RMSE (covered)",
        ],
        &rows,
    ));
    out.push_str(
        "\n(expected shape: AIS-only is accurate but loses dark vessels;\n\
         radar-only keeps contacts but is coarse and coastal; fusion wins\n\
         on coverage while keeping near-AIS accuracy — §2.4's claim)\n",
    );
    out
}
