//! C6 — trajectory prediction at different time scales (§3.1).
//!
//! Dead reckoning, constant turn and the learned route network are
//! evaluated at horizons from 5 to 60 minutes. The expected shape: the
//! kinematic predictors win at short horizons; the route network wins
//! once lanes turn — the crossover is the experiment's point.

use crate::util::{f, table};
use mda_forecast::kinematic::{ConstantTurnPredictor, DeadReckoningPredictor};
use mda_forecast::routenet::{RouteNetPredictor, RouteNetwork};
use mda_forecast::Predictor;
use mda_geo::distance::haversine_m;
use mda_geo::time::MINUTE;
use mda_geo::Fix;
use mda_sim::scenario::{Scenario, ScenarioConfig, SimOutput};

/// Train/test split: learn the network from even vessels, test on odd.
pub fn setup() -> (SimOutput, RouteNetwork) {
    let sim = Scenario::generate(ScenarioConfig::regional_honest(83, 60, 10 * mda_geo::time::HOUR));
    let mut net = RouteNetwork::new(sim.world.bounds, 0.02);
    for (id, fixes) in &sim.truth {
        if id % 2 == 0 {
            net.learn_all(fixes);
        }
    }
    (sim, net)
}

/// Mean prediction error at one horizon over the test vessels.
pub fn horizon_errors(
    sim: &SimOutput,
    net: &RouteNetwork,
    horizon_min: i64,
) -> (f64, f64, f64, usize) {
    let dr = DeadReckoningPredictor;
    let ct = ConstantTurnPredictor::default();
    let rn = RouteNetPredictor::new(net.clone());
    let (mut e_dr, mut e_ct, mut e_rn) = (0.0, 0.0, 0.0);
    let mut n = 0usize;
    for (id, fixes) in &sim.truth {
        if id % 2 == 0 || fixes.len() < 100 {
            continue; // training vessel or too short
        }
        // Several cut points per vessel, avoiding the trailing horizon.
        let horizon = horizon_min * MINUTE;
        for cut_frac in [0.3, 0.5, 0.7] {
            let cut = (fixes.len() as f64 * cut_frac) as usize;
            let history = &fixes[..cut];
            let Some(last) = history.last() else { continue };
            if last.sog_kn < 6.0 {
                continue; // moored/fishing walk: transit prediction only
            }
            let at = last.t + horizon;
            // Ground truth at `at`.
            let idx = fixes.partition_point(|f| f.t <= at);
            if idx >= fixes.len() {
                continue;
            }
            let truth: &Fix = &fixes[idx];
            if (truth.t - at).abs() > MINUTE {
                continue;
            }
            let p_dr = dr.predict(history, at).expect("history non-empty");
            let p_ct = ct.predict(history, at).expect("history non-empty");
            let p_rn = rn.predict(history, at).expect("history non-empty");
            e_dr += haversine_m(p_dr, truth.pos);
            e_ct += haversine_m(p_ct, truth.pos);
            e_rn += haversine_m(p_rn, truth.pos);
            n += 1;
        }
    }
    let n_f = n.max(1) as f64;
    (e_dr / n_f, e_ct / n_f, e_rn / n_f, n)
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let (sim, net) = setup();
    let mut rows = Vec::new();
    let mut crossover: Option<i64> = None;
    for h in [5i64, 10, 20, 30, 45, 60] {
        let (dr, ct, rn, n) = horizon_errors(&sim, &net, h);
        if crossover.is_none() && rn < dr {
            crossover = Some(h);
        }
        let winner = if rn < dr.min(ct) {
            "route-net"
        } else if ct < dr {
            "const-turn"
        } else {
            "dead-reck"
        };
        rows.push(vec![
            format!("{h} min"),
            format!("{} m", f(dr, 0)),
            format!("{} m", f(ct, 0)),
            format!("{} m", f(rn, 0)),
            winner.to_string(),
            n.to_string(),
        ]);
    }
    let mut out = String::new();
    out.push_str(&table(
        "C6 — mean prediction error vs horizon",
        &["horizon", "dead-reckoning", "constant-turn", "route-network", "winner", "samples"],
        &rows,
    ));
    out.push_str(&match crossover {
        Some(h) => format!(
            "\ncrossover: the learned route network overtakes dead reckoning at ~{h} min\n\
             (paper: prediction needed \"at different time scales\" — no single model wins)\n"
        ),
        None => "\nno crossover observed in this run (traffic too straight)\n".to_string(),
    });
    out
}
