//! Experiment harness regenerating every figure and quantitative claim
//! of the paper (see DESIGN.md §3 for the index).
//!
//! Each module exposes `run() -> String` producing the experiment's
//! table; the `experiments` binary prints them all, and the Criterion
//! benches in `benches/` time the hot kernels. EXPERIMENTS.md records
//! paper-vs-measured for each row.
//!
//! ## Example
//!
//! ```no_run
//! // Regenerate the C1 compression experiment table (takes a while).
//! println!("{}", mda_bench::c1_synopses::run());
//! ```

pub mod c10_ingest;
pub mod c11_tiered;
pub mod c12_events;
pub mod c13_query;
pub mod c14_multi;
pub mod c15_serve;
pub mod c16_durability;
pub mod c17_adaptive;
pub mod c1_synopses;
pub mod c2_veracity;
pub mod c3_godark;
pub mod c4_events;
pub mod c5_fusion;
pub mod c6_forecast;
pub mod c7_knn;
pub mod c8_semantics;
pub mod c9_viz;
pub mod fig1_coverage;
pub mod fig2_pipeline;
pub mod snapshot;
pub mod util;
