//! C9 — multi-scale visual aggregation (§3.2).
//!
//! "Scalable spatio-temporal analytical querying, such as drill-down /
//! zoom-in": pyramid build time and drill-down query latency as data
//! grows, and the speedup of answering region queries at the coarsest
//! adequate level instead of the base raster.

use crate::util::{f, table, timed};
use mda_geo::{BoundingBox, Position};
use mda_viz::pyramid::AggregationPyramid;
use mda_viz::raster::DensityRaster;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lane-structured random positions (mixture of lanes + noise).
pub fn positions(n: usize, seed: u64) -> Vec<Position> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.7) {
                // On-lane: a band across the region.
                let t: f64 = rng.gen_range(0.0..1.0);
                Position::new(
                    42.4 + t * 1.2 + rng.gen_range(-0.03..0.03),
                    3.4 + t * 2.6 + rng.gen_range(-0.03..0.03),
                )
            } else {
                Position::new(rng.gen_range(42.0..43.9), rng.gen_range(3.0..6.4))
            }
        })
        .collect()
}

/// Run the experiment and return the report text.
pub fn run() -> String {
    let bounds = BoundingBox::new(42.0, 3.0, 43.9, 6.5);
    let window = BoundingBox::new(42.8, 4.4, 43.2, 5.1);
    let mut rows = Vec::new();
    for n in [10_000usize, 100_000, 1_000_000] {
        let pts = positions(n, 5);
        let (pyramid, build_s) = timed(|| {
            let mut base = DensityRaster::new(bounds, 256, 256);
            for p in &pts {
                base.add(*p);
            }
            AggregationPyramid::from_base(base)
        });
        // Drill-down: answer the same window at base and at level 3.
        let reps = 2_000;
        let (fine_sum, fine_s) = timed(|| {
            let mut acc = 0u64;
            for _ in 0..reps {
                acc += pyramid.region_sum(0, &window);
            }
            acc / reps as u64
        });
        let (_, coarse_s) = timed(|| {
            let mut acc = 0u64;
            for _ in 0..reps {
                acc += pyramid.region_sum(3, &window);
            }
            acc
        });
        rows.push(vec![
            n.to_string(),
            format!("{} ms", f(build_s * 1e3, 1)),
            format!("{} µs", f(fine_s * 1e6 / reps as f64, 1)),
            format!("{} µs", f(coarse_s * 1e6 / reps as f64, 1)),
            format!("{}x", f(fine_s / coarse_s, 1)),
            fine_sum.to_string(),
        ]);
    }
    let mut out = String::new();
    out.push_str(&table(
        "C9 — aggregation pyramid build & drill-down latency",
        &[
            "positions",
            "build (256²+levels)",
            "query@L0",
            "query@L3",
            "zoom-out speedup",
            "window count",
        ],
        &rows,
    ));
    out.push_str(
        "\n(build is linear in data size; query latency is independent of data\n\
         size and shrinks with zoom level — the interactivity §3.2 demands)\n",
    );
    out
}
